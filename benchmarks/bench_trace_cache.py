"""Trace-cache smoke benchmark: a trimmed Table 2 replay, memoized vs not.

Measures two things on the tab02 workload set and writes both to
``BENCH_trace_cache.json`` at the repository root:

* **trace replay** — the headline number: wall-clock to schedule the
  captured trace population (every trace the trimmed tab02 replay sends to
  ``TimingModel.run``, across two trial seeds, baseline and Mallacc) with
  memoization on vs off.  This isolates the tentpole: the scheduler itself.
* **end-to-end** — ``compare_workload`` wall-clock with memoization on vs
  off (application cache-traffic modeling disabled so the simulator core,
  not the app-traffic stream, is what's timed).

Both configurations produce bit-identical cycle counts — asserted here and,
exhaustively, by ``tests/integration/test_trace_cache_differential.py``.

Run via pytest (``pytest benchmarks/bench_trace_cache.py -m bench_smoke``)
or directly (``python benchmarks/bench_trace_cache.py``).
"""

import gc
import json
import os
import sys
import time
from contextlib import contextmanager
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.harness.experiments import compare_workload, make_baseline, make_mallacc
from repro.harness.runner import run_workload
from repro.sim.timing import CoreConfig, TimingModel
from repro.workloads import MACRO_WORKLOADS

#: Trimmed tab02: four of the eight macro workloads, two trial seeds
#: (the full table runs all eight with four seed-randomized trials each).
TRIM_WORKLOADS = ["400.perlbench", "483.xalancbmk", "masstree.same", "xapian.abstracts"]
TRIM_OPS = int(os.environ.get("REPRO_BENCH_OPS", "800"))
TRIM_SEEDS = (100, 117, 134, 151)  # tab02's four trial seeds (base_seed + 17*t)

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_trace_cache.json"


def _capture_traces():
    """Every trace the trimmed replay schedules, in submission order."""
    traces = []
    for name in TRIM_WORKLOADS:
        workload = MACRO_WORKLOADS[name]
        for seed in TRIM_SEEDS:
            ops = list(workload.ops(seed=seed, num_ops=TRIM_OPS))
            for alloc in (
                make_baseline(memoize_traces=False),
                make_mallacc(memoize_traces=False),
            ):
                original = alloc.machine.timing.run

                def spy(trace, _original=original):
                    traces.append(trace)
                    return _original(trace)

                alloc.machine.timing.run = spy
                run_workload(alloc, ops, name=name, model_app_traffic=False)
                alloc.machine.timing.run = original
    return traces


@contextmanager
def _gc_paused():
    """Cyclic GC off while timing: the passes allocate hundreds of thousands
    of small tuples, and a mid-pass gen-2 collection (which scans every
    accumulated fingerprint) would be charged to whichever pass it lands in."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _time_trace_replay(traces, repeats=2):
    # Best-of-N on both passes: scheduler interpreter noise (OS jitter,
    # frequency scaling) only ever inflates a pass, so the min is the
    # faithful estimate.  Each repeat uses a fresh model.
    seconds_off, seconds_on = float("inf"), float("inf")
    unmemoized = memoized = None
    warm = None
    for _ in range(repeats):
        cold = TimingModel(CoreConfig(trace_cache_entries=0))
        with _gc_paused():
            t0 = time.perf_counter()
            unmemoized = [cold.run(t).cycles for t in traces]
            seconds_off = min(seconds_off, time.perf_counter() - t0)

        warm = TimingModel(CoreConfig())
        with _gc_paused():
            t0 = time.perf_counter()
            memoized = [warm.run(t).cycles for t in traces]
            seconds_on = min(seconds_on, time.perf_counter() - t0)

    assert memoized == unmemoized, "memoized replay diverged from unmemoized"
    return {
        "traces": len(traces),
        "seconds_unmemoized": round(seconds_off, 4),
        "seconds_memoized": round(seconds_on, 4),
        "speedup": round(seconds_off / seconds_on, 2),
        "hit_rate": round(warm.cache_stats.hit_rate, 4),
    }


def _time_end_to_end():
    def replay(memoize):
        with _gc_paused():
            t0 = time.perf_counter()
            results = {
                name: compare_workload(
                    MACRO_WORKLOADS[name],
                    num_ops=TRIM_OPS,
                    seed=TRIM_SEEDS[0],
                    model_app_traffic=False,
                    memoize_traces=memoize,
                )
                for name in TRIM_WORKLOADS
            }
            return time.perf_counter() - t0, results

    seconds_off, off = replay(False)
    seconds_on, on = replay(True)
    # Best-of-2, same rationale as the trace replay: noise only inflates.
    seconds_off = min(seconds_off, replay(False)[0])
    seconds_on = min(seconds_on, replay(True)[0])

    identical = all(
        [r.cycles for r in off[name].baseline.records]
        == [r.cycles for r in on[name].baseline.records]
        and [r.cycles for r in off[name].mallacc.records]
        == [r.cycles for r in on[name].mallacc.records]
        and [r.ablated for r in off[name].baseline.records]
        == [r.ablated for r in on[name].baseline.records]
        for name in TRIM_WORKLOADS
    )
    hits = sum(c.baseline.trace_cache_hits + c.mallacc.trace_cache_hits for c in on.values())
    lookups = sum(
        c.baseline.trace_cache_lookups + c.mallacc.trace_cache_lookups for c in on.values()
    )
    return {
        "seconds_unmemoized": round(seconds_off, 4),
        "seconds_memoized": round(seconds_on, 4),
        "speedup": round(seconds_off / seconds_on, 2),
        "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
        "bit_identical": identical,
    }


def main() -> dict:
    traces = _capture_traces()
    replay = _time_trace_replay(traces)
    end_to_end = _time_end_to_end()
    payload = {
        "benchmark": "trace_cache_tab02_replay",
        "workloads": TRIM_WORKLOADS,
        "ops_per_workload": TRIM_OPS,
        "seeds": list(TRIM_SEEDS),
        "speedup": replay["speedup"],
        "hit_rate": replay["hit_rate"],
        "trace_replay": replay,
        "end_to_end": end_to_end,
        "notes": (
            "trace_replay times TimingModel.run over the captured tab02 trace "
            "population (the tentpole's target); end_to_end times full "
            "compare_workload replays with app-traffic modeling off.  Cycle "
            "counts are bit-identical in every configuration."
        ),
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


@pytest.mark.bench_smoke
def test_bench_trace_cache():
    payload = main()
    assert payload["end_to_end"]["bit_identical"]
    assert payload["hit_rate"] >= 0.90
    # Memoization's *relative* payoff shrank when the unmemoized scheduler
    # itself got faster (slotted Uops, hoisted scheduling-loop binds in the
    # emission fast-forward round): ~4.4x before, ~2.7x after, with both
    # absolute times improving.  The floor tracks the new baseline.
    assert payload["speedup"] >= 2.0
    # End-to-end is Amdahl-limited (scheduling is ~45% of a replay even with
    # app traffic off), so the bar here is only "clearly faster".
    assert payload["end_to_end"]["speedup"] >= 1.1
    print()
    print(f"trace replay : {payload['speedup']:.2f}x over {payload['trace_replay']['traces']} traces "
          f"({100 * payload['hit_rate']:.1f}% hit rate)")
    print(f"end to end   : {payload['end_to_end']['speedup']:.2f}x "
          f"({100 * payload['end_to_end']['hit_rate']:.1f}% hit rate)")
    print(f"written to   : {OUT_PATH}")


if __name__ == "__main__":
    result = main()
    print(json.dumps(result, indent=2))

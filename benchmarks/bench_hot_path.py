"""Hot-path benchmark: the columnar replay engine vs the reference engine.

Measures the end-to-end effect of the columnar engine — flat-array
template scheduling, the lazy ring hierarchy, arena-slab memory, the
fused fast-path twins, and the fused slow-path refill twins
(central-cache transfers, page-heap span traffic, span carving) — and
writes the numbers to ``BENCH_hot_path.json`` at the repository root.

* **end-to-end** — ``compare_workload`` wall-clock on the trimmed tab02
  workload set, *before* (``REPRO_ENGINE=reference``: the PR 7
  configuration — object-model engine with O(1) caches and interning on)
  vs *after* (columnar defaults).  Passes are interleaved best-of-N in one
  process so frequency scaling and OS jitter hit both sides alike, and
  application cache traffic is modeled (the lazy ring hierarchy is part of
  what is being measured).
* **profiler** — overhead of the opt-in :class:`HotPathProfiler`: wall
  clock with a profiler attached vs not, plus a direct microbenchmark of
  what the *disabled* hooks cost (one attribute read and an ``is None``
  test per allocator call).
* **observability** — cost of the always-present ``repro.obs`` hook sites
  with the tracer disabled (one manifest collection plus two global-tracer
  checks per replay), asserted under 1% of a replay.

Both end-to-end configurations produce bit-identical cycle counts —
asserted here and, exhaustively, by
``tests/integration/test_hot_path_differential.py``.

Run via pytest (``pytest benchmarks/bench_hot_path.py -m bench_smoke``)
or directly (``python benchmarks/bench_hot_path.py``).
"""

import gc
import json
import os
import sys
import time
from contextlib import contextmanager
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.harness.experiments import compare_workload, make_baseline
from repro.harness.profile import HotPathProfiler
from repro.harness.runner import run_workload
from repro.obs.bridges import refill_summary
from repro.obs.manifest import collect_manifest
from repro.obs.tracer import get_tracer
from repro.workloads import MACRO_WORKLOADS

#: Same trimmed tab02 set as bench_trace_cache.py.
TRIM_WORKLOADS = ["400.perlbench", "483.xalancbmk", "masstree.same", "xapian.abstracts"]
TRIM_OPS = int(os.environ.get("REPRO_BENCH_OPS", "600"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
SEED = 100

#: Conservative CI floor for the set-wide speedup.  Locally measured >2x
#: with the refill machinery fused (the committed bench_floors.json floor
#: is 2.0; its 20% regression tolerance lands exactly here); the floor
#: absorbs starved shared runners without letting a real regression
#: (losing the columnar scheduler, the lazy hierarchy, or the fused twins
#: drops well below) slip through.
SPEEDUP_FLOOR = 1.6

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_hot_path.json"

#: The "before" configuration: the reference engine on otherwise-default
#: (PR 7) settings — O(1) caches, interning on.  The engine is selected
#: from the environment at machine construction, so switching it between
#: in-process passes is safe.
BEFORE_ENV = {"REPRO_ENGINE": "reference"}


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@contextmanager
def _gc_paused():
    """Cyclic GC off while timing (same rationale as bench_trace_cache.py:
    a mid-pass gen-2 collection lands in whichever pass it hits)."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


@contextmanager
def _env(overrides):
    saved = {k: os.environ.get(k) for k in overrides}
    os.environ.update(overrides)
    try:
        yield
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def _observable(comparison):
    """Every per-call cycle count and ablation result of one comparison —
    the byte-identity payload."""
    return (
        [r.cycles for r in comparison.baseline.records],
        [r.ablated for r in comparison.baseline.records],
        [r.cycles for r in comparison.mallacc.records],
        [r.ablated for r in comparison.mallacc.records],
    )


def _run_before(name):
    with _env(BEFORE_ENV):
        return compare_workload(MACRO_WORKLOADS[name], num_ops=TRIM_OPS, seed=SEED)


def _run_after(name):
    return compare_workload(MACRO_WORKLOADS[name], num_ops=TRIM_OPS, seed=SEED)


def _time_end_to_end():
    per_workload = {}
    total_before = total_after = 0.0
    intern_hits = intern_lookups = 0
    for name in TRIM_WORKLOADS:
        best_before = best_after = float("inf")
        obs_before = obs_after = None
        last_after = None
        for _ in range(REPEATS):
            with _gc_paused():
                t0 = time.perf_counter()
                c = _run_before(name)
                best_before = min(best_before, time.perf_counter() - t0)
            obs_before = _observable(c)
            with _gc_paused():
                t0 = time.perf_counter()
                c = _run_after(name)
                best_after = min(best_after, time.perf_counter() - t0)
            obs_after = _observable(c)
            last_after = c
        assert obs_before == obs_after, f"{name}: fast path diverged from reference"
        intern_hits += last_after.baseline.intern_hits + last_after.mallacc.intern_hits
        intern_lookups += (
            last_after.baseline.intern_hits + last_after.baseline.intern_misses
            + last_after.mallacc.intern_hits + last_after.mallacc.intern_misses
        )
        # One profiled columnar replay (outside the timed passes) to
        # attribute the slow-path refill share per workload directly.
        prof = HotPathProfiler()
        run_workload(
            make_baseline(),
            MACRO_WORKLOADS[name].ops(seed=SEED, num_ops=TRIM_OPS),
            name=name,
            profiler=prof,
        )
        per_workload[name] = {
            "seconds_before": round(best_before, 4),
            "seconds_after": round(best_after, 4),
            "speedup": round(best_before / best_after, 2),
            "refill_share": round(refill_summary(prof)["refill_share"], 4),
        }
        total_before += best_before
        total_after += best_after
    return {
        "per_workload": per_workload,
        "seconds_before": round(total_before, 4),
        "seconds_after": round(total_after, 4),
        "speedup": round(total_before / total_after, 2),
        "intern_hit_rate": round(intern_hits / intern_lookups, 4) if intern_lookups else 0.0,
        "bit_identical": True,  # asserted per-workload above
    }


def _time_profiler():
    """Profiler cost: attached vs not, plus the disabled-hook microcost."""
    name = "483.xalancbmk"
    ops = list(MACRO_WORKLOADS[name].ops(seed=SEED, num_ops=TRIM_OPS))

    def replay(profiler):
        alloc = make_baseline()
        with _gc_paused():
            t0 = time.perf_counter()
            result = run_workload(alloc, ops, name=name, profiler=profiler)
            return time.perf_counter() - t0, result

    seconds_off = min(replay(None)[0] for _ in range(REPEATS))
    t_on, result = replay(HotPathProfiler())
    for _ in range(REPEATS - 1):
        t_on = min(t_on, replay(HotPathProfiler())[0])

    # What the *disabled* hooks cost: the allocator's only per-call guard is
    # one attribute read plus an ``is None`` test (see TCMalloc._finish).
    # Time that guard directly and scale by the calls in a replay.
    machine = make_baseline().machine
    n = 200_000
    with _gc_paused():
        t0 = time.perf_counter()
        for _ in range(n):
            if machine.profiler is not None:  # pragma: no cover - always None
                raise AssertionError
        guard_seconds = time.perf_counter() - t0
    calls = len(ops)
    overhead_disabled = (guard_seconds / n) * calls / seconds_off

    return {
        "workload": name,
        "seconds_profiler_off": round(seconds_off, 4),
        "seconds_profiler_on": round(t_on, 4),
        "overhead_enabled": round(t_on / seconds_off - 1.0, 4),
        "overhead_disabled": round(overhead_disabled, 6),
        "allocator_calls": calls,
    }


def _time_observability(replay_seconds: float) -> dict:
    """Disabled-observability cost per replay.

    The runner's hook sites are per-*replay*, not per-op: one manifest
    collection at entry, one global-tracer read plus ``enabled`` check at
    each end, and a frozen-dataclass copy to stamp the wall time.  Time
    exactly that sequence and express it as a fraction of the (already
    measured) replay wall clock.
    """
    n = 2_000
    name = "483.xalancbmk"
    with _gc_paused():
        t0 = time.perf_counter()
        for _ in range(n):
            manifest = collect_manifest(
                {"entry": "run_workload", "workload": name,
                 "model_app_traffic": True}
            )
            tracer = get_tracer()
            if tracer.enabled:  # pragma: no cover - disabled in this bench
                raise AssertionError("bench expects the default disabled tracer")
            if get_tracer().enabled:  # pragma: no cover - exit-side check
                raise AssertionError
            manifest.finished(0.0)
        hook_seconds = time.perf_counter() - t0
    per_replay = hook_seconds / n
    return {
        "workload": name,
        "hook_seconds_per_replay": round(per_replay, 9),
        "overhead_disabled": round(per_replay / replay_seconds, 6),
    }


def main() -> dict:
    cpus = _usable_cpus()
    end_to_end = _time_end_to_end()
    profiler = _time_profiler()
    observability = _time_observability(profiler["seconds_profiler_off"])
    payload = {
        "benchmark": "hot_path_fast_forward",
        "workloads": TRIM_WORKLOADS,
        "ops_per_workload": TRIM_OPS,
        "seed": SEED,
        "repeats": REPEATS,
        "speedup": end_to_end["speedup"],
        "speedup_floor": SPEEDUP_FLOOR,
        "cpus": cpus,
        # Wall-clock ratios on a 1-CPU (or fully pinned) host are at the
        # mercy of whatever else the machine runs; record the speedup but
        # only gate CI on it when at least 2 CPUs are usable.  Byte
        # identity and the intern/profiler bounds are asserted regardless.
        "speedup_asserted": cpus >= 2,
        "end_to_end": end_to_end,
        "profiler": profiler,
        "observability": observability,
        "notes": (
            "before = REPRO_ENGINE=reference on otherwise-default settings "
            "(the PR 7 configuration: object-model engine, O(1) caches, "
            "interning on); after = columnar defaults (flat-array template "
            "scheduling, lazy ring hierarchy, arena slabs, fused fast-path "
            "twins, fused slow-path refill twins).  Passes are interleaved "
            "best-of-N in one process; cycle counts are bit-identical on "
            "both engines.  per_workload.refill_share is the profiler-"
            "measured fraction of columnar replay wall time spent in refill "
            "emission (central cache / page heap / scavenge), now fused.  "
            "profiler.overhead_disabled is the measured cost of the dormant "
            "per-call guard, not a config comparison."
        ),
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


@pytest.mark.bench_smoke
def test_bench_hot_path():
    payload = main()
    assert payload["end_to_end"]["bit_identical"]
    assert payload["end_to_end"]["intern_hit_rate"] >= 0.80
    # Dormant profiler hooks must stay in the noise (<5% of a replay).
    assert payload["profiler"]["overhead_disabled"] < 0.05
    # Disabled observability (manifest + tracer hooks) must cost <1%.
    assert payload["observability"]["overhead_disabled"] < 0.01
    if payload["speedup_asserted"]:
        assert payload["speedup"] >= SPEEDUP_FLOOR
    print()
    print(f"end to end  : {payload['speedup']:.2f}x over {len(TRIM_WORKLOADS)} workloads "
          f"({100 * payload['end_to_end']['intern_hit_rate']:.1f}% intern hit rate)")
    for name, row in payload["end_to_end"]["per_workload"].items():
        print(f"  {name:<18}{row['speedup']:.2f}x "
              f"({row['seconds_before']:.3f}s -> {row['seconds_after']:.3f}s, "
              f"refill {100 * row['refill_share']:.1f}%)")
    print(f"profiler    : {100 * payload['profiler']['overhead_disabled']:.3f}% disabled, "
          f"{100 * payload['profiler']['overhead_enabled']:.1f}% enabled")
    print(f"observability: {100 * payload['observability']['overhead_disabled']:.4f}% disabled")
    print(f"written to  : {OUT_PATH}")


if __name__ == "__main__":
    result = main()
    print(json.dumps(result, indent=2))

"""Figure 15: xapian call-duration distributions, baseline vs limit vs Mallacc.

Paper: "The baseline case is already very fast — with virtually all calls
between 20 and 40 cycles ... Our best-case latency optimizations manage to
reduce the average call length almost twofold, with median calls now at 13
cycles, and a distribution very close to that of the limit study."
"""

from conftest import run_once

from repro.harness.figures import render_histogram
from repro.harness.metrics import duration_histogram, mean_cycles, median_cycles


def test_fig15_xapian_duration_pdf(benchmark, macro_comparisons):
    comparison = run_once(benchmark, lambda: macro_comparisons["xapian.pages"])

    base_records = [r for r in comparison.baseline.records if r.is_malloc]
    accel_records = [r for r in comparison.mallacc.records if r.is_malloc]

    base_med = median_cycles(base_records)
    accel_med = median_cycles(accel_records)
    base_mean = mean_cycles(base_records, malloc_only=True)
    accel_mean = mean_cycles(accel_records, malloc_only=True)
    limit_mean = comparison.baseline.ablated_malloc_cycles("limit") / max(
        1, len(base_records)
    )

    print()
    print(render_histogram(duration_histogram(base_records, malloc_only=True),
                           title="Figure 15a — xapian.pages baseline malloc PDF"))
    print()
    print(render_histogram(duration_histogram(accel_records, malloc_only=True),
                           title="Figure 15b — xapian.pages Mallacc malloc PDF"))
    print()
    print(f"median: baseline {base_med:.0f} cy -> Mallacc {accel_med:.0f} cy (paper: ~13 cy)")
    print(f"mean:   baseline {base_mean:.1f} -> Mallacc {accel_mean:.1f}, limit {limit_mean:.1f}")

    # Shape: Mallacc median near the paper's 13 cycles, large reduction,
    # Mallacc close to the limit study.
    assert accel_med < base_med
    assert 9 <= accel_med <= 20
    assert accel_mean <= base_mean * 0.8
    assert accel_mean <= limit_mean * 1.5

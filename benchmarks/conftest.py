"""Shared fixtures for the figure/table benchmarks.

Each ``bench_*`` file regenerates one table or figure from the paper's
evaluation and prints the rows/series for side-by-side comparison.  The
expensive macro-workload comparisons are computed once per session and
shared.

Scale knobs (environment):

* ``REPRO_BENCH_OPS``   — ops per workload run (default 3000)
* ``REPRO_BENCH_TRIALS`` — trials for the Table 2 t-tests (default 4)
* ``REPRO_TRACE_CACHE`` — "0" disables trace-scheduling memoization
  (results are bit-identical; only wall-clock changes)
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.harness.experiments import compare_workload
from repro.workloads import MACRO_WORKLOADS

BENCH_OPS = int(os.environ.get("REPRO_BENCH_OPS", "3000"))
BENCH_TRIALS = int(os.environ.get("REPRO_BENCH_TRIALS", "4"))
TRACE_CACHE = os.environ.get("REPRO_TRACE_CACHE", "1") != "0"

#: Order the paper's figures list workloads in (bottom-up in the bar charts).
WORKLOAD_ORDER = [
    "400.perlbench",
    "465.tonto",
    "471.omnetpp",
    "483.xalancbmk",
    "masstree.same",
    "masstree.wcol1",
    "xapian.abstracts",
    "xapian.pages",
]


@pytest.fixture(scope="session")
def macro_comparisons():
    """Baseline-vs-Mallacc comparisons for all eight macro workloads,
    32-entry malloc cache (the paper's headline configuration)."""
    return {
        name: compare_workload(
            MACRO_WORKLOADS[name], num_ops=BENCH_OPS, seed=1,
            memoize_traces=TRACE_CACHE,
        )
        for name in WORKLOAD_ORDER
    }


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

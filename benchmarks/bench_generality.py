"""Mallacc's generality: the same hardware accelerating two allocators.

Section 4: "we would like to hard-code as few allocator-dependent details as
possible (ideally none), so that many current and future allocators can
benefit from acceleration."  The jemalloc-style allocator has a different
size-class schedule and tcache discipline; the five instructions are used
unchanged (index keying — the one TCMalloc-specific bit — is also measured
in its disabled, raw-size mode).
"""

import os

from conftest import run_once

from repro.alloc import TCMalloc
from repro.alloc.constants import AllocatorConfig
from repro.alloc.hoard import HoardAllocator, MallaccHoard
from repro.alloc.jemalloc import Jemalloc, make_mallacc_jemalloc
from repro.core import MallaccTCMalloc
from repro.core.malloc_cache import MallocCacheConfig
from repro.harness.figures import render_table

PAIRS = int(os.environ.get("REPRO_BENCH_OPS", "3000")) // 4


def steady_pair(alloc, size=64, pairs=PAIRS):
    for _ in range(8):
        held = [alloc.malloc(size)[0] for _ in range(4)]
        for p in held:
            alloc.sized_free(p, size)
    malloc_cy = free_cy = 0
    for _ in range(pairs):
        p, r1 = alloc.malloc(size)
        r2 = alloc.sized_free(p, size)
        malloc_cy += r1.cycles
        free_cy += r2.cycles
    return malloc_cy / pairs, free_cy / pairs


def steady_pair_hoard(alloc, size=64, pairs=PAIRS):
    for _ in range(8):
        held = [alloc.malloc(size)[0] for _ in range(4)]
        for p in held:
            alloc.free(p)
    malloc_cy = free_cy = 0
    for _ in range(pairs):
        p, c1 = alloc.malloc(size)
        c2 = alloc.free(p)
        malloc_cy += c1
        free_cy += c2
    return malloc_cy / pairs, free_cy / pairs


def test_generality_across_allocators(benchmark):
    def experiment():
        cfg = AllocatorConfig(release_rate=0)
        results = {}
        results["tcmalloc"] = steady_pair(TCMalloc(config=cfg))
        results["tcmalloc+mallacc"] = steady_pair(MallaccTCMalloc(config=cfg))
        results["jemalloc"] = steady_pair(Jemalloc(config=cfg))
        results["jemalloc+mallacc"] = steady_pair(make_mallacc_jemalloc(config=cfg))
        results["jemalloc+mallacc(raw keys)"] = steady_pair(
            make_mallacc_jemalloc(
                config=cfg, cache_config=MallocCacheConfig(index_keyed=False)
            )
        )
        results["hoard"] = steady_pair_hoard(HoardAllocator(config=cfg))
        results["hoard+mallacc"] = steady_pair_hoard(MallaccHoard(config=cfg))
        return results

    results = run_once(benchmark, experiment)
    rows = [
        [name, f"{m:.1f}", f"{f:.1f}"] for name, (m, f) in results.items()
    ]
    print()
    print(
        render_table(
            ["configuration", "malloc cy", "free cy"],
            rows,
            title="Generality — steady-state fast path across allocators",
        )
    )

    tc_base, _ = results["tcmalloc"]
    tc_accel, _ = results["tcmalloc+mallacc"]
    je_base, _ = results["jemalloc"]
    je_accel, _ = results["jemalloc+mallacc"]
    je_raw, _ = results["jemalloc+mallacc(raw keys)"]
    ho_base, _ = results["hoard"]
    ho_accel, _ = results["hoard+mallacc"]

    tc_gain = (tc_base - tc_accel) / tc_base
    je_gain = (je_base - je_accel) / je_base
    ho_gain = (ho_base - ho_accel) / ho_base
    print(f"\nmalloc speedup: tcmalloc {100 * tc_gain:.0f}%, "
          f"jemalloc {100 * je_gain:.0f}%, hoard {100 * ho_gain:.0f}%")

    # All three allocators gain from the identical hardware.  (Hoard's
    # steady single-class pair keeps its cached head perfectly valid and its
    # fast path is shorter to begin with, so its *ratio* here is large; its
    # churn-level pop hit rate is the lower one — see tests/alloc/test_hoard
    # TestMallaccHoard for that caveat.)
    assert tc_gain >= 0.2 and je_gain >= 0.2
    assert 0.03 <= ho_gain <= 0.7
    # Raw-size keying (no TCMalloc-specific hardware) still works.
    assert je_raw <= je_base

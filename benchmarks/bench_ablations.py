"""Design-choice ablations beyond the paper's own studies (DESIGN.md §5).

Four malloc-cache design knobs, each compared on the microbenchmarks most
sensitive to it:

* index-keyed vs raw-size-keyed ranges — the paper's one TCMalloc-specific
  optimization ("the cache can learn mappings faster, with fewer cold
  misses", at +1 cycle of lookup latency);
* prefetch blocking on vs off — the consistency mechanism that costs tp its
  tight-loop performance in Figure 17;
* LRU vs FIFO eviction;
* head+next caching vs head-only (the Next slot is what lets a pop return
  without any load).
"""

import os

from conftest import run_once

from repro.core.malloc_cache import MallocCacheConfig
from repro.harness.experiments import compare_workload
from repro.harness.figures import render_table
from repro.workloads import MICROBENCHMARKS

OPS = int(os.environ.get("REPRO_BENCH_OPS", "3000")) // 3


def _improvements(names, cache_config):
    return {
        name: compare_workload(
            MICROBENCHMARKS[name], num_ops=OPS, cache_config=cache_config
        ).malloc_improvement
        for name in names
    }


def test_ablation_index_keying(benchmark):
    names = ("tp", "gauss_free", "tp_small")

    # 32 entries so every class fits: isolates keying from capacity
    # effects (tp alone uses ~23 classes and would thrash a 16-entry cache,
    # which is Figure 17's capacity story, not a keying difference).
    def experiment():
        return (
            _improvements(names, MallocCacheConfig(num_entries=32, index_keyed=True)),
            _improvements(names, MallocCacheConfig(num_entries=32, index_keyed=False)),
        )

    keyed, raw = run_once(benchmark, experiment)
    rows = [[n, f"{keyed[n]:.1f}%", f"{raw[n]:.1f}%"] for n in names]
    print()
    print(render_table(["ubench", "index-keyed (+1cy)", "raw sizes"], rows,
                       title="Ablation — malloc-cache range keying (malloc speedup)"))
    # Both modes must help; the paper only claims raw mode has "slightly
    # higher miss rates", so we assert both are in the same ballpark.
    for n in names:
        assert keyed[n] > 0 and raw[n] > 0
        assert abs(keyed[n] - raw[n]) < 15


def test_ablation_prefetch_blocking(benchmark):
    names = ("tp", "tp_small", "gauss_free")

    def experiment():
        return (
            _improvements(names, MallocCacheConfig(num_entries=32, prefetch_blocking=True)),
            _improvements(names, MallocCacheConfig(num_entries=32, prefetch_blocking=False)),
        )

    blocking, free_running = run_once(benchmark, experiment)
    rows = [[n, f"{blocking[n]:.1f}%", f"{free_running[n]:.1f}%"] for n in names]
    print()
    print(render_table(["ubench", "blocking (consistent)", "non-blocking"], rows,
                       title="Ablation — prefetch blocking (malloc speedup)"))
    # Blocking can only cost performance; it never helps.
    for n in names:
        assert free_running[n] >= blocking[n] - 3


def test_ablation_eviction_policy(benchmark):
    names = ("tp", "gauss_free")

    def experiment():
        return (
            _improvements(names, MallocCacheConfig(num_entries=8, eviction="lru")),
            _improvements(names, MallocCacheConfig(num_entries=8, eviction="fifo")),
        )

    lru, fifo = run_once(benchmark, experiment)
    rows = [[n, f"{lru[n]:.1f}%", f"{fifo[n]:.1f}%"] for n in names]
    print()
    print(render_table(["ubench", "LRU (paper)", "FIFO"], rows,
                       title="Ablation — eviction policy at 8 entries (malloc speedup)"))
    # At 8 entries with ~23 live classes both policies thrash similarly;
    # with class locality LRU should not lose badly.
    for n in names:
        assert lru[n] >= fifo[n] - 8


def test_ablation_freelist_depth(benchmark):
    names = ("tp_small", "gauss_free")

    def experiment():
        return (
            _improvements(names, MallocCacheConfig(num_entries=32, cache_next=True)),
            _improvements(names, MallocCacheConfig(num_entries=32, cache_next=False)),
        )

    full, head_only = run_once(benchmark, experiment)
    rows = [[n, f"{full[n]:.1f}%", f"{head_only[n]:.1f}%"] for n in names]
    print()
    print(render_table(["ubench", "head+next (paper)", "head only"], rows,
                       title="Ablation — free-list caching depth (malloc speedup)"))
    # Caching the Next slot is what removes the dependent load chain; the
    # head-only variant must not beat the full design.
    for n in names:
        assert full[n] >= head_only[n] - 3

"""Figure 4: fast-path cycle breakdown for the six microbenchmarks.

Paper: removing the three main components (sampling, size-class computation,
free-list push/pop) together accounts for ≈50% of fast-path cycles; the
antagonist shows "a significant increase in Pop time".
"""

from conftest import BENCH_OPS, run_once

from repro.harness.ablation import fastpath_breakdown
from repro.harness.figures import render_table
from repro.workloads import MICROBENCHMARKS

ORDER = ["antagonist", "gauss", "gauss_free", "sized_deletes", "tp", "tp_small"]


def test_fig04_fastpath_breakdown(benchmark):
    def experiment():
        return {
            name: fastpath_breakdown(MICROBENCHMARKS[name], num_ops=BENCH_OPS // 2)
            for name in ORDER
        }

    breakdowns = run_once(benchmark, experiment)
    rows = []
    for name in ORDER:
        b = breakdowns[name]
        rows.append(
            [
                name,
                f"{b.baseline_cycles:.1f}",
                f"{b.component_cost('sampling'):.1f}",
                f"{b.component_cost('size_class'):.1f}",
                f"{b.component_cost('push_pop'):.1f}",
                f"{b.component_cost('combined'):.1f}",
                f"{100 * b.combined_fraction:.0f}%",
            ]
        )
    print()
    print(
        render_table(
            ["ubench", "baseline cy", "sampling", "size class", "push/pop", "combined", "comb %"],
            rows,
            title="Figure 4 — fast-path component costs (cycles removed by ablation)",
        )
    )
    print("paper: combined ≈ 50% of fast-path cycles; antagonist's pop cost grows")

    for name in ORDER:
        assert 0.30 <= breakdowns[name].combined_fraction <= 0.75
    assert (
        breakdowns["antagonist"].component_cost("push_pop")
        > breakdowns["tp_small"].component_cost("push_pop")
    )
    assert breakdowns["antagonist"].baseline_cycles > breakdowns["tp_small"].baseline_cycles

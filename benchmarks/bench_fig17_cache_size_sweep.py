"""Figure 17: effect of malloc cache size on malloc speedup.

Paper: "too small of a cache will result in slowdown rather than speedup ...
once the cache is large enough to capture the majority of allocation
requests, we quickly achieve speedup ... sized_deletes, tp, and tp_small use
8, 25, and 4 size classes, respectively, and the speedup inflection points
occur precisely at those malloc cache sizes."  (Class counts are those of
*our* generated table: tp_small 4, sized_deletes 8, tp ~23.)
"""

import os

from conftest import run_once

from repro.harness.figures import render_series
from repro.harness.sweeps import sweep_cache_sizes
from repro.workloads import MICROBENCHMARKS

SIZES = (2, 4, 6, 8, 12, 16, 24, 32)
SWEEP_OPS = int(os.environ.get("REPRO_BENCH_OPS", "3000")) // 3
ORDER = ["antagonist", "gauss", "gauss_free", "sized_deletes", "tp", "tp_small"]


def test_fig17_cache_size_sweep(benchmark):
    def experiment():
        return {
            name: sweep_cache_sizes(MICROBENCHMARKS[name], sizes=SIZES, num_ops=SWEEP_OPS)
            for name in ORDER
        }

    sweeps = run_once(benchmark, experiment)
    print()
    print(
        render_series(
            list(SIZES),
            {name: sweeps[name].malloc_speedups for name in ORDER},
            title="Figure 17 — malloc speedup (%) vs malloc cache entries",
            x_label="entries",
        )
    )
    print("limit study per ubench:",
          {n: round(sweeps[n].limit_speedup, 1) for n in ORDER})
    print("paper: tiny caches hurt; inflection at each ubench's class count; "
          "sufficient caches reach within 10-20% of the limit")

    for name in ORDER:
        s = sweeps[name]
        best = max(s.malloc_speedups)
        at_2 = s.malloc_speedups[0]
        at_32 = s.malloc_speedups[-1]
        # A 2-entry cache is far worse than a sufficient one.
        assert at_2 < best - 5 or best < 10
        # Full-size cache achieves most of the benefit.
        assert at_32 >= 0.6 * best

    # tp_small (4 classes) saturates by 4-6 entries; tp (~23 classes) needs
    # far more: its 4-entry point trails its 32-entry point badly.
    tp_small = sweeps["tp_small"].malloc_speedups
    tp = sweeps["tp"].malloc_speedups
    assert tp_small[SIZES.index(6)] >= 0.75 * max(tp_small)
    assert tp[SIZES.index(4)] < 0.6 * max(tp)

"""CI bench-regression guard.

Compares freshly generated ``BENCH_*.json`` artifacts at the repository
root against the committed floors in ``benchmarks/bench_floors.json`` and
exits non-zero when any benchmark's wall-clock ``speedup`` has regressed
by more than 20% (``fresh < 0.8 * floor``).

Artifacts are skipped (reported, not gated) when:

* no fresh copy exists — the corresponding smoke bench didn't run;
* the fresh payload carries ``"speedup_asserted": false`` — the bench
  itself decided its wall-clock ratio is unreliable in this environment
  (single-CPU runner, smoke-scale sampling protocol, ...).

Usage::

    python benchmarks/check_bench_regression.py [--root REPO_ROOT]
"""

import argparse
import json
import sys
from pathlib import Path

#: A fresh speedup below this fraction of the committed floor fails CI.
TOLERANCE = 0.8


def check(root: Path) -> int:
    floors_path = root / "benchmarks" / "bench_floors.json"
    floors = json.loads(floors_path.read_text())["floors"]
    failures = []
    for name, floor in sorted(floors.items()):
        path = root / name
        if not path.exists():
            print(f"SKIP {name}: no fresh artifact")
            continue
        payload = json.loads(path.read_text())
        speedup = payload.get("speedup")
        if speedup is None:
            failures.append(f"{name}: artifact has no 'speedup' field")
            continue
        gate = TOLERANCE * floor
        if payload.get("speedup_asserted") is False:
            cpus = payload.get("cpus_affinity", payload.get("cpus"))
            print(f"SKIP {name}: speedup {speedup:.2f}x not asserted by the "
                  f"bench (usable cpus={cpus}, "
                  f"ops={payload.get('ops_per_workload')})")
            continue
        verdict = "ok" if speedup >= gate else "REGRESSION"
        print(f"{verdict:<10} {name}: {speedup:.2f}x "
              f"(floor {floor:.2f}x, gate {gate:.2f}x)")
        if speedup < gate:
            failures.append(
                f"{name}: speedup {speedup:.2f}x is >20% below the "
                f"committed floor {floor:.2f}x (gate {gate:.2f}x)"
            )
    if failures:
        print()
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root holding the BENCH_*.json artifacts",
    )
    args = parser.parse_args()
    return check(args.root)


if __name__ == "__main__":
    raise SystemExit(main())

"""Sampled-simulation benchmark: exact vs sampled end-to-end wall clock.

Runs the Table 2 full-program protocol (all eight macro workloads) twice
per workload — once exact (``compare_workload``: every op in detailed
timing simulation) and once sampled (``compare_workload_sampled`` with the
default systematic plan: functional fast-forward between sampled
intervals) — and writes the numbers to ``BENCH_sampling.json`` at the
repository root.

Two things are measured and asserted:

* **speed** — wall-clock ratio exact/sampled over the whole set.  Passes
  are interleaved best-of-N in one process so frequency scaling and OS
  jitter hit both sides alike.
* **fidelity** — at full protocol scale the sampled 95% CI for program
  speedup must cover the exact value on *every* workload; the detailed
  subset must stay under 20% of the measured stream.

At smoke scale (``REPRO_BENCH_OPS`` below the 20k-op protocol) the default
stride-16 plan would degenerate to a handful of intervals, so a smaller
test-scale config is substituted and only internal consistency (point
inside its own CI) is asserted — the full coverage contract lives in
``tests/integration/test_sampled_differential.py`` and in the committed
``BENCH_sampling.json``.

Run via pytest (``pytest benchmarks/bench_sampling.py -m bench_smoke``)
or directly (``python benchmarks/bench_sampling.py``).
"""

import gc
import json
import os
import sys
import time
from contextlib import contextmanager
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.harness.experiments import compare_workload, compare_workload_sampled
from repro.sim.sampling import SamplingConfig
from repro.workloads import MACRO_WORKLOADS

#: Full tab02 set, paper order.
WORKLOADS = [
    "400.perlbench",
    "465.tonto",
    "471.omnetpp",
    "483.xalancbmk",
    "masstree.same",
    "masstree.wcol1",
    "xapian.abstracts",
    "xapian.pages",
]

#: The acceptance protocol: 20k ops, seed 7, default sampling config.
FULL_OPS = 20000
OPS = int(os.environ.get("REPRO_BENCH_OPS", str(FULL_OPS)))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
SEED = 7

FULL_PROTOCOL = OPS >= FULL_OPS

#: Conservative CI floor for the set-wide wall-clock ratio at full scale.
#: Locally measured ~4.8-5.1x with the default stride-16 plan (detail
#: fraction ~0.14); the floor absorbs starved shared runners without
#: letting a real regression (losing the flat fast-forward would drop the
#: ratio below 2x) slip through.
SPEEDUP_FLOOR = 3.0

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sampling.json"


def _sampling_config() -> SamplingConfig:
    if FULL_PROTOCOL:
        return SamplingConfig()
    # Test scale: keep enough sampled intervals for a meaningful bootstrap.
    return SamplingConfig(interval_ops=100, stride=4, warmup_ops=50)


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@contextmanager
def _gc_paused():
    """Cyclic GC off while timing (same rationale as bench_hot_path.py)."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _time_workload(name: str, sampling: SamplingConfig):
    """Interleaved best-of-REPEATS exact and sampled passes for one
    workload; returns (row_dict, best_exact_s, best_sampled_s)."""
    wl = MACRO_WORKLOADS[name]
    best_exact = best_sampled = float("inf")
    exact = sampled = None
    for _ in range(REPEATS):
        with _gc_paused():
            t0 = time.perf_counter()
            exact = compare_workload(wl, num_ops=OPS, seed=SEED)
            best_exact = min(best_exact, time.perf_counter() - t0)
        with _gc_paused():
            t0 = time.perf_counter()
            sampled = compare_workload_sampled(
                wl, num_ops=OPS, seed=SEED, sampling=sampling
            )
            best_sampled = min(best_sampled, time.perf_counter() - t0)
    point, lo, hi = sampled.estimate("program_speedup")
    row = {
        "exact_program_speedup": round(exact.program_speedup, 4),
        "sampled_point": round(point, 4),
        "ci_lo": round(lo, 4),
        "ci_hi": round(hi, 4),
        "ci_covers_exact": lo <= exact.program_speedup <= hi,
        "detail_fraction": round(sampled.baseline.plan.detail_fraction, 4),
        "intervals": sampled.baseline.plan.num_intervals,
        "intervals_sampled": len(sampled.baseline.plan.sampled),
        "seconds_exact": round(best_exact, 4),
        "seconds_sampled": round(best_sampled, 4),
        "speedup": round(best_exact / best_sampled, 2),
    }
    return row, best_exact, best_sampled


def main() -> dict:
    sampling = _sampling_config()
    per_workload = {}
    total_exact = total_sampled = 0.0
    for name in WORKLOADS:
        row, t_exact, t_sampled = _time_workload(name, sampling)
        per_workload[name] = row
        total_exact += t_exact
        total_sampled += t_sampled
    covered = sum(1 for r in per_workload.values() if r["ci_covers_exact"])
    payload = {
        "benchmark": "sampled_simulation",
        "workloads": WORKLOADS,
        "ops_per_workload": OPS,
        "seed": SEED,
        "repeats": REPEATS,
        "full_protocol": FULL_PROTOCOL,
        "sampler": sampling.sampler,
        "interval_ops": sampling.interval_ops,
        "stride": sampling.stride,
        "speedup": round(total_exact / total_sampled, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "cpus": _usable_cpus(),
        "speedup_asserted": FULL_PROTOCOL and _usable_cpus() >= 2,
        "ci_coverage": f"{covered}/{len(WORKLOADS)}",
        "seconds_exact": round(total_exact, 4),
        "seconds_sampled": round(total_sampled, 4),
        "per_workload": per_workload,
        "notes": (
            "exact = compare_workload (detailed timing simulation of every "
            "op); sampled = compare_workload_sampled with the default "
            "systematic plan (functional fast-forward + staggered cache "
            "warming between sampled intervals, paired stratified bootstrap "
            "CIs with Student-t small-sample widening).  Passes are "
            "interleaved best-of-N in one process.  ci_covers_exact checks "
            "the sampled 95% program-speedup CI against the exact value."
        ),
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


@pytest.mark.bench_smoke
def test_bench_sampling():
    payload = main()
    for name, row in payload["per_workload"].items():
        # The point estimate must always sit inside its own interval.
        # (At smoke scale a short stream may degenerate to fully sampled,
        # so only the full protocol bounds the detail fraction.)
        assert row["ci_lo"] <= row["sampled_point"] <= row["ci_hi"], name
        assert 0.0 < row["detail_fraction"] <= 1.0, name
        if payload["full_protocol"]:
            # The acceptance contract: every workload family covered, with
            # detailed simulation of well under 20% of the stream.
            assert row["ci_covers_exact"], (
                f"{name}: exact {row['exact_program_speedup']} outside "
                f"[{row['ci_lo']}, {row['ci_hi']}]"
            )
            assert row["detail_fraction"] < 0.2, name
    if payload["speedup_asserted"]:
        assert payload["speedup"] >= SPEEDUP_FLOOR
    print()
    print(f"end to end  : {payload['speedup']:.2f}x over {len(WORKLOADS)} workloads "
          f"({payload['seconds_exact']:.1f}s exact -> "
          f"{payload['seconds_sampled']:.1f}s sampled)")
    print(f"ci coverage : {payload['ci_coverage']}")
    for name, row in payload["per_workload"].items():
        mark = "ok" if row["ci_covers_exact"] else "MISS"
        print(f"  {name:<18}{row['speedup']:5.2f}x  exact {row['exact_program_speedup']:6.3f}%  "
              f"ci [{row['ci_lo']:6.3f}, {row['ci_hi']:6.3f}] {mark}  "
              f"detail {100 * row['detail_fraction']:.1f}%")
    print(f"written to  : {OUT_PATH}")


if __name__ == "__main__":
    test_bench_sampling()

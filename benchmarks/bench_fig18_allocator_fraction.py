"""Figure 18: fraction of time spent in the allocator.

Paper: SPEC workloads spend 1-5% in TCMalloc, xapian ~5-7%, the masstree
performance tests 13-18.6%, against the 6.9% Google fleet-wide figure from
Kanev et al. (ISCA'15).
"""

from conftest import WORKLOAD_ORDER, run_once

from repro.harness.figures import render_table

WSC_FRACTION = 6.9  # Kanev et al., "Profiling a warehouse-scale computer"


def test_fig18_allocator_fraction(benchmark, macro_comparisons):
    comparisons = run_once(benchmark, lambda: macro_comparisons)
    rows = []
    fractions = {}
    for name in WORKLOAD_ORDER:
        c = comparisons[name]
        fractions[name] = 100.0 * c.allocator_fraction
        paper = c.paper.get("fig18", float("nan"))
        rows.append([name, f"{fractions[name]:.2f}%", f"{paper:.2f}%"])
    rows.append(["WSC (Kanev et al.)", "-", f"{WSC_FRACTION:.2f}%"])
    print()
    print(
        render_table(
            ["workload", "measured", "paper"],
            rows,
            title="Figure 18 — fraction of time spent in the allocator",
        )
    )

    # Shape: masstree way above everything, tonto the smallest, SPEC in the
    # low single digits — each within ~2x of the paper's bar.
    for name in WORKLOAD_ORDER:
        paper = comparisons[name].paper["fig18"]
        assert 0.4 * paper <= fractions[name] <= 2.0 * paper, name
    assert fractions["masstree.wcol1"] == max(fractions.values())
    assert fractions["465.tonto"] == min(fractions.values())

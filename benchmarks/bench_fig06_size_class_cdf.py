"""Figure 6: CDF of size classes used per workload.

Paper: "for the benchmarks we surveyed, all but one use less than 5 size
classes on 90% of malloc calls.  In fact, masstree almost exclusively uses a
single size class.  xalancbmk has a much broader distribution" (~30 classes
for 90% coverage).
"""

from conftest import WORKLOAD_ORDER, run_once

from repro.harness.figures import render_table
from repro.harness.metrics import classes_for_coverage, size_class_cdf


def test_fig06_size_class_cdf(benchmark, macro_comparisons):
    comparisons = run_once(benchmark, lambda: macro_comparisons)
    rows = []
    coverage90 = {}
    for name in WORKLOAD_ORDER:
        records = comparisons[name].baseline.records
        cdf = size_class_cdf(records, max_classes=8)
        coverage90[name] = classes_for_coverage(records)
        rows.append(
            [name]
            + [f"{v:.0f}" for v in cdf[:6]]
            + [""] * (6 - min(6, len(cdf)))
            + [str(coverage90[name])]
        )
    print()
    print(
        render_table(
            ["workload", "top1%", "top2%", "top3%", "top4%", "top5%", "top6%", "cls@90%"],
            rows,
            title="Figure 6 — malloc-call coverage by most-used size classes",
        )
    )
    print("paper: all but xalancbmk need <5 classes for 90%; xalancbmk ~30; masstree ~1")

    assert coverage90["masstree.same"] <= 2
    assert coverage90["xapian.abstracts"] <= 5
    assert coverage90["483.xalancbmk"] >= 15
    non_outliers = [coverage90[n] for n in WORKLOAD_ORDER if n != "483.xalancbmk"]
    assert max(non_outliers) <= 9

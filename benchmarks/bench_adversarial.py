"""Mallacc's worst cases, on the record.

The paper shows the slowdown regime once (Figure 17's 2-entry points and
tp's prefetch blocking); these benches make the adversarial envelope a
permanent, regenerable result: what a capacity-thrashed malloc cache costs,
what the tightest loop loses to prefetch blocking, and that turning the
relevant mechanism off recovers the loss.
"""

import os

from conftest import run_once

from repro.core.malloc_cache import MallocCacheConfig
from repro.harness.experiments import compare_workload
from repro.harness.figures import render_table
from repro.workloads.adversarial import class_thrash, prefetch_trap

OPS = int(os.environ.get("REPRO_BENCH_OPS", "3000")) // 2


def test_class_thrash_worst_case(benchmark):
    """More live classes than entries: every size-class probe misses."""
    workload = class_thrash(num_classes=48)

    def experiment():
        small = compare_workload(
            workload, num_ops=OPS, cache_config=MallocCacheConfig(num_entries=8)
        )
        large = compare_workload(
            workload, num_ops=OPS, cache_config=MallocCacheConfig(num_entries=64)
        )
        return small, large

    small, large = run_once(benchmark, experiment)
    rows = [
        ["8 entries (thrashed)", f"{small.malloc_improvement:.1f}%"],
        ["64 entries (fits)", f"{large.malloc_improvement:.1f}%"],
    ]
    print()
    print(render_table(["malloc cache", "malloc speedup"], rows,
                       title="Adversarial — 48-class round-robin"))
    print("even with capacity, the round-robin caps gains: each class's list"
          "\nholds one object per visit, so pops cannot hit — size-class and"
          "\nsampling savings are all that remain")
    # Thrashed: zero or negative.  With capacity: modest but positive.
    assert small.malloc_improvement < 4
    assert large.malloc_improvement > 2
    assert large.malloc_improvement > small.malloc_improvement + 3


def test_prefetch_trap(benchmark):
    """The tightest same-class loop: blocking visibly costs; disabling the
    blocking (at the price of the consistency guarantee) recovers it."""
    workload = prefetch_trap()

    def experiment():
        blocking = compare_workload(
            workload, num_ops=OPS,
            cache_config=MallocCacheConfig(prefetch_blocking=True),
        )
        free_running = compare_workload(
            workload, num_ops=OPS,
            cache_config=MallocCacheConfig(prefetch_blocking=False),
        )
        return blocking, free_running

    blocking, free_running = run_once(benchmark, experiment)
    blocked_cycles = blocking.mallacc  # RunResult
    rows = [
        ["blocking (consistent)", f"{blocking.malloc_improvement:.1f}%"],
        ["non-blocking", f"{free_running.malloc_improvement:.1f}%"],
    ]
    print()
    print(render_table(["prefetch mode", "malloc speedup"], rows,
                       title="Adversarial — tight-loop prefetch trap"))
    del blocked_cycles
    assert free_running.malloc_improvement >= blocking.malloc_improvement - 2

"""Table 1: simulator validation on the malloc microbenchmarks.

Paper: XIOSim vs a real Haswell, mean cycle error 6.28% (antagonist omitted
because its eviction callback "does not run natively").  Our substitute
compares the detailed scheduler against an independent closed-form Haswell
model — see repro.harness.validation for the derivation.
"""

from conftest import BENCH_OPS, run_once

from repro.harness.figures import render_table
from repro.harness.validation import mean_error, validate

PAPER_ERRORS = {
    "gauss": 5.32,
    "gauss_free": 3.67,
    "tp": 12.3,
    "tp_small": 5.92,
    "sized_deletes": 4.21,
}
PAPER_MEAN = 6.28


def test_tab01_validation(benchmark):
    rows = run_once(benchmark, lambda: validate(num_ops=BENCH_OPS // 2))
    table = [
        [
            r.workload,
            f"{r.simulated_cycles:.1f}",
            f"{r.analytic_cycles:.1f}",
            f"{r.error_pct:.2f}%",
            f"{PAPER_ERRORS.get(r.workload, float('nan')):.2f}%",
        ]
        for r in rows
    ]
    measured_mean = mean_error(rows)
    table.append(["Average", "", "", f"{measured_mean:.2f}%", f"{PAPER_MEAN:.2f}%"])
    print()
    print(
        render_table(
            ["ubench", "simulated cy", "analytic cy", "error", "paper error"],
            table,
            title="Table 1 — simulator validation (cycle error %)",
        )
    )

    assert measured_mean < 15.0
    for r in rows:
        assert r.error_pct < 30.0

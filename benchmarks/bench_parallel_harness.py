"""Parallel-harness smoke benchmark: the sharded matrix vs the serial path.

Runs a smoke experiment matrix (four macro workloads × two malloc-cache
sizes) twice — serially in-process (``jobs=1``) and sharded across four
worker processes (``jobs=4``) — and writes ``BENCH_parallel_harness.json``
at the repository root with:

* wall-clock for both paths and the resulting speedup;
* the byte-identity verdict (the sharded payload must serialize to exactly
  the serial bytes);
* a resume check: after deleting two checkpoints, a ``resume=True`` rerun
  recomputes exactly those two cells and reproduces identical bytes;
* the pooled trace-cache hit rate across all cells.

The ≥2x speedup criterion is only meaningful with real parallelism
available; on starved CI containers (``cpus < 4``) the speedup is still
measured and recorded honestly, but the assertion degrades to
byte-identity + resume correctness (the ``speedup_asserted`` field says
which contract this run enforced).

Run via pytest (``pytest benchmarks/bench_parallel_harness.py -m
bench_smoke``) or directly (``python benchmarks/bench_parallel_harness.py``).
"""

import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.harness.parallel import (
    build_matrix,
    checkpoint_path,
    matrix_to_json,
    run_matrix,
)

SMOKE_WORKLOADS = ["400.perlbench", "483.xalancbmk", "masstree.same", "xapian.abstracts"]
SMOKE_SIZES = (8, 32)
SMOKE_OPS = int(os.environ.get("REPRO_BENCH_OPS", "800"))
SMOKE_JOBS = 4

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel_harness.json"


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed_matrix(cells, **kwargs):
    t0 = time.perf_counter()
    result = run_matrix(cells, **kwargs)
    return time.perf_counter() - t0, result


def main() -> dict:
    cells = build_matrix(
        SMOKE_WORKLOADS, cache_sizes=SMOKE_SIZES, num_ops=SMOKE_OPS, base_seed=1
    )

    seconds_serial, serial = _timed_matrix(cells, jobs=1)
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        seconds_sharded, sharded = _timed_matrix(
            cells, jobs=SMOKE_JOBS, checkpoint_dir=checkpoint_dir
        )
        serial_bytes = matrix_to_json(serial)
        sharded_bytes = matrix_to_json(sharded)

        # Resume: drop two checkpoints, rerun, and count recomputed cells.
        for cell in cells[:2]:
            checkpoint_path(checkpoint_dir, cell).unlink()
        resumed_result = run_matrix(
            cells, jobs=SMOKE_JOBS, checkpoint_dir=checkpoint_dir, resume=True
        )

    cpus = _usable_cpus()
    speedup = seconds_serial / seconds_sharded if seconds_sharded else 0.0
    payload = {
        "benchmark": "parallel_harness_smoke_matrix",
        "workloads": SMOKE_WORKLOADS,
        "cache_sizes": list(SMOKE_SIZES),
        "ops_per_cell": SMOKE_OPS,
        "cells": len(cells),
        "jobs": SMOKE_JOBS,
        "cpus": cpus,
        "seconds_serial": round(seconds_serial, 4),
        "seconds_sharded": round(seconds_sharded, 4),
        "speedup": round(speedup, 2),
        "speedup_asserted": cpus >= SMOKE_JOBS,
        "bit_identical": sharded_bytes == serial_bytes,
        "resume": {
            "resumed_cells": resumed_result.stats.cells_resumed,
            "recomputed_cells": resumed_result.stats.cells_done,
            "bit_identical": matrix_to_json(resumed_result) == serial_bytes,
        },
        "trace_cache_hit_rate": round(serial.stats.trace_cache["hit_rate"], 4),
        "quarantined": sorted(sharded.quarantined),
        "notes": (
            "serial is run_matrix(jobs=1) in-process; sharded is jobs=4 worker "
            "processes with per-cell checkpoints.  speedup_asserted=false means "
            "the host exposed fewer CPUs than workers, so the >=2x bar is "
            "recorded but not enforced (byte-identity and resume always are)."
        ),
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


@pytest.mark.bench_smoke
def test_bench_parallel_harness():
    payload = main()
    assert payload["bit_identical"], "sharded matrix diverged from serial bytes"
    assert not payload["quarantined"]
    assert payload["resume"]["resumed_cells"] == payload["cells"] - 2
    assert payload["resume"]["recomputed_cells"] == 2
    assert payload["resume"]["bit_identical"]
    if payload["speedup_asserted"]:
        assert payload["speedup"] >= 2.0, (
            f"expected >=2x with {payload['jobs']} workers on "
            f"{payload['cpus']} CPUs, measured {payload['speedup']}x"
        )
    print()
    print(f"matrix       : {payload['cells']} cells "
          f"({len(payload['workloads'])} workloads x {len(payload['cache_sizes'])} sizes)")
    print(f"serial       : {payload['seconds_serial']:.2f}s")
    print(f"sharded (x{payload['jobs']}) : {payload['seconds_sharded']:.2f}s "
          f"-> {payload['speedup']:.2f}x on {payload['cpus']} CPUs")
    print(f"resume       : skipped {payload['resume']['resumed_cells']}, "
          f"recomputed {payload['resume']['recomputed_cells']}")
    print(f"written to   : {OUT_PATH}")


if __name__ == "__main__":
    result = main()
    print(json.dumps(result, indent=2))

"""Parallel-harness smoke benchmark: the sharded matrix vs the serial path.

Runs a smoke experiment matrix (four macro workloads × two malloc-cache
sizes) twice — serially in-process (``jobs=1``) and sharded across four
fork-server worker processes (``jobs=4``, auto-sized cell batches, one
executor, prewarmed warm bank) — and writes ``BENCH_parallel_harness.json``
at the repository root with:

* wall-clock for both paths (best of ``REPRO_BENCH_REPEATS`` attempts,
  default 1) and the resulting speedup;
* the byte-identity verdict (the sharded payload must serialize to exactly
  the serial bytes);
* a resume check: after deleting two checkpoints, a ``resume=True`` rerun
  recomputes exactly those two cells and reproduces identical bytes;
* harness shape: resolved batch size, batches dispatched, pools created,
  and the warm-bank sizes/hit counters;
* the pooled trace-cache hit rate across all cells.

The speedup criterion is only meaningful with real parallelism available:

* ``cpus_affinity >= 4`` — the ≥1.5x floor is enforced
  (``speedup_asserted: true``; ``benchmarks/bench_floors.json`` holds the
  regression floor checked by ``check_bench_regression.py``);
* ``2 <= cpus_affinity < 4`` — speedup is measured and recorded honestly
  but not asserted;
* ``cpus_affinity < 2`` — the whole benchmark **skips** (visibly, via
  ``pytest.skip``, never a silent pass): a single-CPU container cannot
  measure parallelism at all.

Run via pytest (``pytest benchmarks/bench_parallel_harness.py -m
bench_smoke``) or directly (``python benchmarks/bench_parallel_harness.py``,
which always writes the artifact, skip rule or no).
"""

import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.harness.parallel import (
    build_matrix,
    checkpoint_path,
    matrix_to_json,
    run_matrix,
)

SMOKE_WORKLOADS = ["400.perlbench", "483.xalancbmk", "masstree.same", "xapian.abstracts"]
SMOKE_SIZES = (8, 32)
SMOKE_OPS = int(os.environ.get("REPRO_BENCH_OPS", "800"))
SMOKE_JOBS = 4
REPEATS = max(1, int(os.environ.get("REPRO_BENCH_REPEATS", "1")))

#: Enforced floor at jobs=4 on hosts with >= MIN_ASSERT_CPUS usable CPUs.
SPEEDUP_FLOOR = 1.5
MIN_ASSERT_CPUS = 4
MIN_MEASURE_CPUS = 2

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel_harness.json"


def _usable_cpus() -> int:
    """CPUs this process may actually run on (cgroup/affinity-aware) —
    ``os.cpu_count()`` reports the host, not the container's quota."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _best_of(repeats, run):
    """Best wall-clock over ``repeats`` attempts (keeps the last result —
    results are byte-identical across attempts by the harness contract)."""
    best_seconds, result = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run()
        seconds = time.perf_counter() - t0
        if best_seconds is None or seconds < best_seconds:
            best_seconds = seconds
    return best_seconds, result


def main() -> dict:
    cells = build_matrix(
        SMOKE_WORKLOADS, cache_sizes=SMOKE_SIZES, num_ops=SMOKE_OPS, base_seed=1
    )

    seconds_serial, serial = _best_of(REPEATS, lambda: run_matrix(cells, jobs=1))
    with tempfile.TemporaryDirectory() as checkpoint_dir:

        def _sharded():
            for path in Path(checkpoint_dir).glob("*.json"):
                path.unlink()
            return run_matrix(cells, jobs=SMOKE_JOBS, checkpoint_dir=checkpoint_dir)

        seconds_sharded, sharded = _best_of(REPEATS, _sharded)
        serial_bytes = matrix_to_json(serial)
        sharded_bytes = matrix_to_json(sharded)

        # Resume: drop two checkpoints, rerun, and count recomputed cells.
        for cell in cells[:2]:
            checkpoint_path(checkpoint_dir, cell).unlink()
        resumed_result = run_matrix(
            cells, jobs=SMOKE_JOBS, checkpoint_dir=checkpoint_dir, resume=True
        )

    cpus_affinity = _usable_cpus()
    cpus_logical = os.cpu_count() or 1
    speedup = seconds_serial / seconds_sharded if seconds_sharded else 0.0
    payload = {
        "benchmark": "parallel_harness_smoke_matrix",
        "workloads": SMOKE_WORKLOADS,
        "cache_sizes": list(SMOKE_SIZES),
        "ops_per_cell": SMOKE_OPS,
        "cells": len(cells),
        "jobs": SMOKE_JOBS,
        "repeats": REPEATS,
        "cpus": cpus_affinity,
        "cpus_affinity": cpus_affinity,
        "cpus_logical": cpus_logical,
        "seconds_serial": round(seconds_serial, 4),
        "seconds_sharded": round(seconds_sharded, 4),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_asserted": cpus_affinity >= MIN_ASSERT_CPUS,
        "bit_identical": sharded_bytes == serial_bytes,
        "batch_size": sharded.stats.batch_size,
        "batches": sharded.stats.batches,
        "pools_created": sharded.stats.pools_created,
        "warm": dict(sharded.stats.warm),
        "resume": {
            "resumed_cells": resumed_result.stats.cells_resumed,
            "recomputed_cells": resumed_result.stats.cells_done,
            "bit_identical": matrix_to_json(resumed_result) == serial_bytes,
        },
        "trace_cache_hit_rate": round(serial.stats.trace_cache["hit_rate"], 4),
        "quarantined": sorted(sharded.quarantined),
        "notes": (
            "serial is run_matrix(jobs=1) in-process; sharded is jobs=4 "
            "fork-server workers (auto-batched cells, one executor, prewarmed "
            "warm bank) with group-committed checkpoints.  cpus_affinity is "
            "sched_getaffinity (the container quota), cpus_logical is "
            "os.cpu_count().  speedup_asserted=false means the host exposed "
            "fewer than 4 usable CPUs, so the >=1.5x floor is recorded but "
            "not enforced (byte-identity and resume always are); under 2 "
            "usable CPUs the pytest entry point skips outright."
        ),
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


@pytest.mark.bench_smoke
def test_bench_parallel_harness():
    cpus = _usable_cpus()
    if cpus < MIN_MEASURE_CPUS:
        pytest.skip(
            f"parallel-harness bench needs >={MIN_MEASURE_CPUS} usable CPUs "
            f"to measure anything (sched_getaffinity reports {cpus}); "
            "run 'python benchmarks/bench_parallel_harness.py' to record "
            "single-CPU numbers anyway"
        )
    payload = main()
    assert payload["bit_identical"], "sharded matrix diverged from serial bytes"
    assert not payload["quarantined"]
    assert payload["pools_created"] == 1, "clean run should reuse one executor"
    assert payload["resume"]["resumed_cells"] == payload["cells"] - 2
    assert payload["resume"]["recomputed_cells"] == 2
    assert payload["resume"]["bit_identical"]
    if payload["speedup_asserted"]:
        assert payload["speedup"] >= SPEEDUP_FLOOR, (
            f"expected >={SPEEDUP_FLOOR}x with {payload['jobs']} workers on "
            f"{payload['cpus_affinity']} usable CPUs, measured "
            f"{payload['speedup']}x"
        )
    print()
    print(f"matrix       : {payload['cells']} cells "
          f"({len(payload['workloads'])} workloads x {len(payload['cache_sizes'])} sizes)")
    print(f"serial       : {payload['seconds_serial']:.2f}s")
    print(f"sharded (x{payload['jobs']}) : {payload['seconds_sharded']:.2f}s "
          f"-> {payload['speedup']:.2f}x on {payload['cpus_affinity']} usable CPUs "
          f"({payload['cpus_logical']} logical)")
    print(f"batches      : {payload['batches']} of ~{payload['batch_size']} cells, "
          f"{payload['pools_created']} pool(s)")
    print(f"resume       : skipped {payload['resume']['resumed_cells']}, "
          f"recomputed {payload['resume']['recomputed_cells']}")
    print(f"written to   : {OUT_PATH}")


if __name__ == "__main__":
    result = main()
    print(json.dumps(result, indent=2))

"""Section 6.4: silicon area of Mallacc and the Pollack's-rule comparison.

Paper: 16 entries -> 72-byte CAM + 234-byte SRAM; 873 + 346 + 265 um^2 ≈
under 1500 um^2 total; 0.006% of a 26.5 mm^2 Haswell core; the 0.43% mean
speedup beats the Pollack expectation by over 140x.
"""

from conftest import run_once

from repro.core.area import AreaModel
from repro.harness.figures import render_table


def test_area_model(benchmark):
    breakdowns = run_once(
        benchmark, lambda: {n: AreaModel.breakdown(n) for n in (8, 16, 32)}
    )
    rows = []
    for n, b in breakdowns.items():
        rows.append(
            [
                str(n),
                str(AreaModel.bits_per_entry(n)),
                f"{b.cam_bits // 8}B",
                f"{b.sram_bits // 8}B",
                f"{b.cam_area_um2:.0f}",
                f"{b.sram_area_um2:.0f}",
                f"{b.total_um2:.0f}",
                f"{100 * b.fraction_of_haswell_core:.4f}%",
            ]
        )
    print()
    print(
        render_table(
            ["entries", "bits/entry", "CAM", "SRAM", "CAM um2", "SRAM um2", "total um2", "% core"],
            rows,
            title="Section 6.4 — Mallacc area model (28 nm)",
        )
    )
    b16 = breakdowns[16]
    advantage = AreaModel.pollack_advantage(0.0043, num_entries=16)
    print(f"Pollack advantage at 0.43% speedup: {advantage:.0f}x (paper: >140x)")

    assert b16.total_um2 <= 1500
    assert b16.cam_bits // 8 == 72 and b16.sram_bits // 8 == 234
    assert 0.00005 <= b16.fraction_of_haswell_core <= 0.00007
    assert advantage > 140

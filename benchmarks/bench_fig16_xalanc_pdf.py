"""Figure 16: xalancbmk benefits from both latency reduction and cache
isolation.

Paper: "The next large spike, between 20 and 70 cycles includes fast path
calls that missed in L1 and L2 caches and had to go to L3 ... The malloc
cache is particularly beneficial in this region because of its cache
isolation properties.  Finally, note that Mallacc only improves fast-path
behavior without affecting slower calls."
"""

from conftest import run_once

from repro.harness.figures import render_histogram
from repro.harness.metrics import duration_histogram


def _time_share(records, lo, hi):
    total = sum(r.cycles for r in records)
    band = sum(r.cycles for r in records if lo <= r.cycles < hi)
    return 100.0 * band / total if total else 0.0


def test_fig16_xalancbmk_duration_pdf(benchmark, macro_comparisons):
    comparison = run_once(benchmark, lambda: macro_comparisons["483.xalancbmk"])
    base = [r for r in comparison.baseline.records if r.is_malloc]
    accel = [r for r in comparison.mallacc.records if r.is_malloc]

    print()
    print(render_histogram(duration_histogram(base, malloc_only=True),
                           title="Figure 16a — xalancbmk baseline malloc PDF"))
    print()
    print(render_histogram(duration_histogram(accel, malloc_only=True),
                           title="Figure 16b — xalancbmk Mallacc malloc PDF"))

    # The cache-antagonized band (calls that went to L2/L3) shrinks under
    # Mallacc thanks to the malloc cache's isolation.
    base_band = _time_share(base, 25, 150)
    accel_band = _time_share(accel, 25, 150)
    print(f"\ntime share in the 25-150cy antagonized band: baseline {base_band:.1f}% -> Mallacc {accel_band:.1f}%")

    assert base_band > 10  # the app pressure creates the L2/L3 spike
    assert accel_band < base_band

    # Slow calls are untouched: slow-path time roughly unchanged.
    base_slow = sum(r.cycles for r in base if r.cycles >= 1000)
    accel_slow = sum(r.cycles for r in accel if r.cycles >= 1000)
    if base_slow:
        assert 0.5 <= accel_slow / base_slow <= 1.5

"""Traffic-engine benchmark: exact vs request-sampled load replay.

Runs one open-loop poisson load test twice — once exact (every request
through the detailed timing model) and once with request-level sampling
(``sample_stride``: every stride-th measured request detailed, the rest
functionally fast-forwarded through the allocator) — and writes the
numbers to ``BENCH_traffic.json`` at the repository root.

Measured and asserted:

* **speed** — wall-clock ratio exact/sampled, interleaved best-of-N in
  one process so frequency scaling hits both sides alike;
* **fidelity** — the sampled bootstrap 95% CI for the whole-run measured
  allocator-cycle total must cover the exact run's total, and the sampled
  run's detailed subset must be well under half the measured requests;
* **determinism** — two sampled runs produce identical histograms.

At smoke scale (``REPRO_BENCH_OPS`` under the full protocol) only
internal consistency is asserted; the speedup is reported but not gated
(``speedup_asserted: false``), mirroring bench_sampling.py.

Run via pytest (``pytest benchmarks/bench_traffic.py -m bench_smoke``)
or directly (``python benchmarks/bench_traffic.py``).
"""

import gc
import json
import os
import sys
import time
from contextlib import contextmanager
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.traffic import TrafficConfig, build_sessions, run_traffic

WORKLOAD = "xapian.abstracts"
SEED = 7
CORES = 4
STRIDE = 8

#: The acceptance protocol mirrors bench_sampling's 20k-op scale; the env
#: knob REPRO_BENCH_OPS scales the request count for CI smoke runs.
FULL_OPS = 20000
OPS = int(os.environ.get("REPRO_BENCH_OPS", str(FULL_OPS)))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
FULL_PROTOCOL = OPS >= FULL_OPS

#: ~24 ops per request session: the op budget maps to a request budget.
REQUESTS = max(60, OPS // 8)
RPS = 200.0
DURATION_S = REQUESTS / RPS

#: Conservative floor for the exact/sampled wall-clock ratio at full
#: protocol scale.  Locally measured ~4-6x with stride 8 (detailed
#: fraction ~1/8); losing the functional fast-forward entirely would put
#: the ratio at 1x, far below the floor.
SPEEDUP_FLOOR = 2.0

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_traffic.json"


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@contextmanager
def _gc_paused():
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _config(stride=None) -> TrafficConfig:
    return TrafficConfig(
        workload=WORKLOAD, arrival="poisson", rps=RPS,
        duration_s=DURATION_S, cores=CORES, seed=SEED,
        sample_stride=stride,
    )


def main() -> dict:
    # One shared deterministic stream: both modes replay identical sessions.
    sessions, arrivals = build_sessions(_config())
    best_exact = best_sampled = float("inf")
    exact = sampled = None
    for _ in range(REPEATS):
        with _gc_paused():
            t0 = time.perf_counter()
            exact = run_traffic(_config(), sessions=sessions,
                                arrivals=arrivals)
            best_exact = min(best_exact, time.perf_counter() - t0)
        with _gc_paused():
            t0 = time.perf_counter()
            sampled = run_traffic(_config(stride=STRIDE), sessions=sessions,
                                  arrivals=arrivals)
            best_sampled = min(best_sampled, time.perf_counter() - t0)
    point, lo, hi = sampled.alloc_cycles_ci
    payload = {
        "benchmark": "traffic_sampling",
        "workload": WORKLOAD,
        "requests": exact.completed,
        "measured_requests": exact.measured_requests,
        "cores": CORES,
        "rps": RPS,
        "seed": SEED,
        "stride": STRIDE,
        "repeats": REPEATS,
        "full_protocol": FULL_PROTOCOL,
        "exact_alloc_cycles": exact.alloc_cycles,
        "sampled_point": round(point, 2),
        "ci_lo": round(lo, 2),
        "ci_hi": round(hi, 2),
        "ci_covers_exact": lo <= exact.alloc_cycles <= hi,
        "detailed_requests": sampled.detailed_requests,
        "skipped_requests": sampled.skipped_requests,
        "exact_p99": exact.alloc_hist.p99,
        "sampled_p99": sampled.alloc_hist.p99,
        "speedup": round(best_exact / best_sampled, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "cpus": _usable_cpus(),
        "speedup_asserted": FULL_PROTOCOL and _usable_cpus() >= 2,
        "seconds_exact": round(best_exact, 4),
        "seconds_sampled": round(best_sampled, 4),
        "notes": (
            "exact = every request through the detailed timing model; "
            "sampled = every stride-th measured request detailed, the rest "
            "functionally fast-forwarded (repro.traffic sample_stride).  "
            "Passes share one deterministic (sessions, arrivals) stream "
            "and run interleaved best-of-N in one process.  "
            "ci_covers_exact checks the sampled bootstrap 95% CI for the "
            "measured allocator-cycle total against the exact run."
        ),
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload, exact, sampled


@pytest.mark.bench_smoke
def test_bench_traffic():
    payload, exact, sampled = main()
    assert payload["ci_lo"] <= payload["sampled_point"] <= payload["ci_hi"]
    assert payload["skipped_requests"] > 0, "sampling must skip requests"
    assert (payload["detailed_requests"] + payload["skipped_requests"]
            == payload["measured_requests"])
    assert payload["ci_covers_exact"], (
        f"exact total {payload['exact_alloc_cycles']} outside sampled CI "
        f"[{payload['ci_lo']}, {payload['ci_hi']}]"
    )
    if payload["full_protocol"]:
        assert payload["detailed_requests"] < 0.5 * payload["measured_requests"]
    # determinism: a second sampled run reproduces the first exactly
    sessions, arrivals = build_sessions(_config())
    again = run_traffic(_config(stride=STRIDE), sessions=sessions,
                        arrivals=arrivals)
    assert again.alloc_hist == sampled.alloc_hist
    assert again.alloc_cycles_ci == sampled.alloc_cycles_ci
    if payload["speedup_asserted"]:
        assert payload["speedup"] >= SPEEDUP_FLOOR
    print()
    print(f"traffic     : {payload['requests']} requests on {CORES} cores, "
          f"stride {STRIDE}")
    print(f"end to end  : {payload['speedup']:.2f}x "
          f"({payload['seconds_exact']:.2f}s exact -> "
          f"{payload['seconds_sampled']:.2f}s sampled)")
    print(f"alloc total : exact {payload['exact_alloc_cycles']} vs "
          f"CI [{payload['ci_lo']:.0f}, {payload['ci_hi']:.0f}] "
          f"({'covered' if payload['ci_covers_exact'] else 'MISS'})")
    print(f"written to  : {OUT_PATH}")


if __name__ == "__main__":
    test_bench_traffic()

"""Energy per malloc: the accelerator's other cost axis.

The paper argues area (Section 6.4); datacenter deployments care equally
about energy.  Mallacc's trade is favourable there too: a fast-path hit
replaces two size-class table loads and two free-list loads (~10 pJ each at
L1, far more after the antagonist evicts them) with CAM probes costing a few
pJ.  The antagonist column shows the energy version of the cache-isolation
story: the baseline burns L2/L3 access energy on evicted allocator state;
Mallacc does not.
"""

import os

from conftest import run_once

from repro.alloc import TCMalloc
from repro.core import MallaccTCMalloc
from repro.core.energy import EnergyMeter
from repro.core.malloc_cache import MallocCacheConfig
from repro.harness.figures import render_table
from repro.harness.runner import run_workload
from repro.workloads import MICROBENCHMARKS

OPS = int(os.environ.get("REPRO_BENCH_OPS", "3000")) // 3
UBENCHES = ("tp_small", "gauss_free", "antagonist")


def energy_per_call(make_alloc, workload):
    # Plain allocators (no per-call ablation re-scheduling, which would be
    # double-counted by the meter).
    alloc = make_alloc()
    meter = EnergyMeter(alloc)
    run_workload(alloc, workload.ops(seed=1, num_ops=OPS))
    meter.detach()
    return meter.mean_pj_per_call


def test_energy_per_malloc(benchmark):
    def experiment():
        out = {}
        for name in UBENCHES:
            workload = MICROBENCHMARKS[name]
            base = energy_per_call(TCMalloc, workload)
            accel = energy_per_call(
                lambda: MallaccTCMalloc(
                    cache_config=MallocCacheConfig(num_entries=16)
                ),
                workload,
            )
            out[name] = (base, accel)
        return out

    results = run_once(benchmark, experiment)
    rows = [
        [name, f"{base:.0f}", f"{accel:.0f}", f"{100 * (base - accel) / base:.0f}%"]
        for name, (base, accel) in results.items()
    ]
    print()
    print(
        render_table(
            ["ubench", "baseline pJ/call", "Mallacc pJ/call", "saved"],
            rows,
            title="Energy per allocator call (28 nm event energies)",
        )
    )

    for name, (base, accel) in results.items():
        assert accel < base, name
    # The antagonist's absolute savings are the largest (L2/L3 energy).
    ant_saved = results["antagonist"][0] - results["antagonist"][1]
    tp_saved = results["tp_small"][0] - results["tp_small"][1]
    assert ant_saved > tp_saved

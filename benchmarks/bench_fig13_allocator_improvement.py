"""Figure 13: improvement of time spent in the allocator (malloc + free).

Paper: "Mallacc is able to achieve an average of 18% speedup, out of 28%
projected by the limit study", with masstree the lowest (~5%) and the
speedup "highly correlated with the fraction of time on the fast path".
"""

from conftest import WORKLOAD_ORDER, run_once

from repro.harness.experiments import geomean
from repro.harness.figures import render_table


def test_fig13_allocator_time_improvement(benchmark, macro_comparisons):
    comparisons = run_once(benchmark, lambda: macro_comparisons)
    rows = []
    improvements, limits = [], []
    for name in WORKLOAD_ORDER:
        c = comparisons[name]
        improvements.append(c.allocator_improvement)
        limits.append(c.allocator_limit_improvement)
        rows.append(
            [name, f"{c.allocator_improvement:.1f}%", f"{c.allocator_limit_improvement:.1f}%"]
        )
    g_impr, g_limit = geomean(improvements), geomean(limits)
    rows.append(["Geomean", f"{g_impr:.1f}%", f"{g_limit:.1f}%"])
    print()
    print(
        render_table(
            ["workload", "Mallacc", "limit study"],
            rows,
            title="Figure 13 — allocator (malloc+free) time improvement",
        )
    )
    print("paper: geomean 18% (limit 28%); masstree lowest ~5%")

    # Shape: everything improves, Mallacc stays under its own limit, the
    # geomean lands in the paper's neighbourhood, masstree is weakest.
    by_name = dict(zip(WORKLOAD_ORDER, improvements))
    assert all(v > 0 for v in improvements)
    for impr, lim in zip(improvements, limits):
        assert impr <= lim + 5
    assert 10 <= g_impr <= 35
    assert g_impr < g_limit
    masstree = min(by_name["masstree.same"], by_name["masstree.wcol1"])
    assert masstree <= min(by_name["483.xalancbmk"], by_name["xapian.abstracts"])

"""Sampling fidelity: the PMU counter must not degrade heap profiling.

Section 4.2 moves sampling from a fast-path countdown into a performance
counter.  The feature exists to "analyze memory usage and debug memory
leaks" in production, so the acceptance test is: heap profiles reconstructed
from the PMU's samples estimate true allocation volume as accurately as the
software sampler's — while the fast path sheds the countdown entirely.
"""

import random

from conftest import BENCH_OPS, run_once

from repro.alloc import AllocatorConfig, TCMalloc
from repro.alloc.heap_profile import fidelity
from repro.core import MallaccTCMalloc
from repro.harness.figures import render_table

PERIOD = 64 * 1024


def test_sampling_fidelity(benchmark):
    def experiment():
        out = {}
        for label, cls in (("software countdown", TCMalloc), ("Mallacc PMU", MallaccTCMalloc)):
            alloc = cls(config=AllocatorConfig(sample_parameter=PERIOD, release_rate=0))
            rng = random.Random(21)
            total = 0
            live = []
            for _ in range(BENCH_OPS):
                size = rng.choice([16, 32, 64, 256, 1024, 4096])
                p, _ = alloc.malloc(size)
                total += size
                live.append((p, size))
                if len(live) > 64:
                    alloc.sized_free(*live.pop(0))
            samples = (
                alloc.pmu.samples if isinstance(alloc, MallaccTCMalloc) else alloc.sampler.samples
            )
            out[label] = fidelity(samples, PERIOD, total)
        return out

    reports = run_once(benchmark, experiment)
    rows = [
        [
            label,
            str(r.samples),
            f"{r.true_bytes / 1024:.0f} KB",
            f"{r.estimated_bytes / 1024:.0f} KB",
            f"{100 * r.relative_error:.1f}%",
        ]
        for label, r in reports.items()
    ]
    print()
    print(
        render_table(
            ["sampler", "samples", "true alloc", "estimated", "error"],
            rows,
            title="Sampling fidelity — heap profile reconstruction",
        )
    )

    for label, r in reports.items():
        assert r.samples > 5, label
        assert r.relative_error < 0.5, label
    # Both samplers fire at statistically equal rates.
    sw, pmu = reports["software countdown"], reports["Mallacc PMU"]
    assert abs(sw.samples - pmu.samples) <= max(4, 0.5 * sw.samples)

"""Size-class density vs fragmentation: why TCMalloc carries ~88 classes.

Section 3.1: "TCMalloc currently has 88 size classes, a relatively large
number picked to keep memory fragmentation low", and Section 2: allocators
are judged on speed *and* fragmentation.  This bench sweeps table density —
from the buddy allocator's power-of-two extreme (≈19 classes) through
thinned TCMalloc tables to the full table — and prices each in rounding
waste over the macro workloads' size mixes.
"""

import random

from conftest import BENCH_OPS, run_once

from repro.alloc.buddy import BuddyAllocator
from repro.alloc.fragmentation import internal_fragmentation_of_table
from repro.alloc.size_classes import SizeClassTable
from repro.harness.figures import render_table
from repro.workloads.base import OpKind
from repro.workloads.macro import MACRO_WORKLOADS


class ThinnedTable:
    """The real table with only every k-th class kept (rounding upward)."""

    def __init__(self, table: SizeClassTable, keep_every: int) -> None:
        self.table = table
        self.kept = [
            cl
            for cl in range(1, table.num_classes)
            if (cl - 1) % keep_every == 0 or cl == table.num_classes - 1
        ]

    @property
    def num_classes(self) -> int:
        return len(self.kept)

    def size_class_of(self, size: int) -> int:
        for cl in self.kept:
            if self.table.alloc_size_of(cl) >= size:
                return cl
        return self.kept[-1]

    def alloc_size_of(self, cl: int) -> int:
        return self.table.alloc_size_of(cl)


class BuddyTable:
    """Power-of-two rounding as a degenerate size-class table."""

    def size_class_of(self, size: int) -> int:
        return BuddyAllocator.order_for(size)

    def alloc_size_of(self, order: int) -> int:
        return 1 << order


def workload_sizes(num_ops: int) -> list[int]:
    """Small-request sizes drawn from all macro models plus a uniform mix."""
    sizes: list[int] = []
    for workload in MACRO_WORKLOADS.values():
        for op in workload.ops(seed=2, num_ops=num_ops // 8):
            if op.kind is OpKind.MALLOC and op.size <= 256 * 1024:
                sizes.append(op.size)
    rng = random.Random(4)
    sizes.extend(rng.randint(17, 4000) for _ in range(num_ops // 4))
    return sizes


def test_class_density_vs_fragmentation(benchmark):
    def experiment():
        table = SizeClassTable.generate()
        sizes = workload_sizes(BENCH_OPS)
        configs = [
            ("full table", table, table.num_classes - 1),
            ("every 2nd class", ThinnedTable(table, 2), None),
            ("every 4th class", ThinnedTable(table, 4), None),
            ("power-of-two (buddy)", BuddyTable(), 19),
        ]
        rows = []
        for name, t, classes in configs:
            frag = internal_fragmentation_of_table(t, sizes)
            count = classes if classes is not None else t.num_classes
            rows.append((name, count, frag))
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        render_table(
            ["table", "classes", "internal fragmentation"],
            [[n, str(c), f"{100 * f:.1f}%"] for n, c, f in rows],
            title="Size-class density vs rounding waste (macro size mixes)",
        )
    )
    print("paper: the large class count exists 'to keep memory "
          "fragmentation low'; buddy rounding is the costly extreme")

    frags = [f for _, _, f in rows]
    # Monotone: fewer classes, more waste; full table under its design bound.
    assert frags[0] < frags[1] < frags[3]
    assert frags[0] < 0.15
    assert frags[3] > 2 * frags[0]

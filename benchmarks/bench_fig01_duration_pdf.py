"""Figure 1: PDF of time-in-calls vs malloc duration for 400.perlbench.

Paper: "The three major peaks correspond to hitting in a thread cache,
missing in a thread cache and hitting in the central free list, and grabbing
a span.  Missing in a thread cache has a cost at least three orders of
magnitude higher than that of a hit" — with our scaled-down OS allocation
granularity the page peak sits at ~10^3.5-10^4 rather than 10^4-10^5; the
three-pool structure and ordering are the reproduced shape.
"""

from conftest import BENCH_OPS, run_once

from repro.alloc.constants import AllocatorConfig
from repro.harness.experiments import make_baseline
from repro.harness.figures import render_histogram
from repro.harness.metrics import duration_histogram
from repro.harness.runner import run_workload
from repro.workloads import MACRO_WORKLOADS


def test_fig01_perlbench_duration_pdf(benchmark):
    def experiment():
        # release_rate=1 returns every freed span to the OS immediately.
        # Real TCMalloc amortizes this over millions of calls; our traces
        # are thousands of calls, so the aggressive setting reproduces the
        # same *rate* of OS-boundary events per simulated second.
        alloc = make_baseline(config=AllocatorConfig(release_rate=1))
        return run_workload(
            alloc,
            MACRO_WORKLOADS["400.perlbench"].ops(seed=1, num_ops=BENCH_OPS * 2),
            name="400.perlbench",
        )

    result = run_once(benchmark, experiment)
    hist = duration_histogram(result.records, malloc_only=True)
    print()
    print(render_histogram(hist, title="Figure 1 — 400.perlbench malloc duration PDF (time-weighted %)"))
    peaks = hist.peak_bins(min_share=4.0)
    print(f"peaks (lo, hi, share%): {[(round(l), round(h), round(w, 1)) for l, h, w in peaks]}")
    print("paper: three peaks at ~20 cy (fast), ~10^3 (central), ~10^4+ (page allocator)")

    # Shape assertions: a dominant fast peak and at least one slow peak two
    # or more orders of magnitude away.
    assert len(peaks) >= 2
    fast = peaks[0]
    assert fast[0] <= 32
    assert any(p[0] >= 100 * fast[0] for p in peaks[1:]) or any(
        w > 0 for e, w in zip(hist.bin_edges, hist.weights) if e >= 1000
    )

"""Table 2: full-program speedup with statistical significance.

Paper: mean program speedup 0.43% across the significant workloads, maximum
0.78% for perlbench; workloads failing a one-sided Student's t-test at 95%
are excluded.
"""

from conftest import BENCH_OPS, BENCH_TRIALS, WORKLOAD_ORDER, run_once

from repro.harness.figures import render_table
from repro.harness.stats import program_speedup_trials
from repro.workloads import MACRO_WORKLOADS

PAPER = {
    "400.perlbench": (0.78, 0.05, "<0.001"),
    "465.tonto": (0.35, 0.08, "0.025"),
    "483.xalancbmk": (0.27, 0.06, "0.043"),
    "masstree.same": (0.49, 0.05, "0.002"),
    "xapian.abstracts": (0.55, 0.05, "0.002"),
    "xapian.pages": (0.16, 0.02, "0.012"),
}


def test_tab02_program_speedup(benchmark):
    def experiment():
        return {
            name: program_speedup_trials(
                MACRO_WORKLOADS[name], trials=BENCH_TRIALS, num_ops=BENCH_OPS // 2
            )
            for name in WORKLOAD_ORDER
        }

    trials = run_once(benchmark, experiment)
    rows = []
    significant = []
    for name in WORKLOAD_ORDER:
        t = trials[name]
        paper = PAPER.get(name)
        rows.append(
            [
                name,
                f"{t.mean:.2f}%",
                f"{t.stddev:.2f}%",
                f"{t.p_value:.3f}",
                "yes" if t.significant else "no",
                f"{paper[0]:.2f}%" if paper else "(not reported)",
            ]
        )
        if t.significant:
            significant.append(t.mean)
    print()
    print(
        render_table(
            ["workload", "speedup", "stddev", "p-value", "significant", "paper"],
            rows,
            title="Table 2 — full program speedup (one-sided t-test, 95%)",
        )
    )
    if significant:
        mean_sig = sum(significant) / len(significant)
        print(f"mean over significant workloads: {mean_sig:.2f}% (paper: 0.43%)")

    # Shape: most workloads significant and positive; magnitudes sub-percent
    # to a few percent (our allocator fractions match Fig 18, and our
    # allocator improvements run slightly above the paper's).
    assert len(significant) >= 4
    assert all(0 < v < 6.0 for v in significant)

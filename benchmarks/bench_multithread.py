"""Multithreaded behaviour: contention, migration, and per-context Mallacc.

Section 2's design goals, measured: thread caches keep fast paths lock-free,
contention concentrates on the shared central lists, producer/consumer
memory migrates instead of blowing up, and Mallacc still pays off when every
hardware context has its own malloc cache — including the cost of flushing
it on context switches.
"""

import os
import random

from conftest import run_once

from repro.alloc.constants import AllocatorConfig
from repro.alloc.multithread import MultiThreadAllocator
from repro.harness.figures import render_table

OPS = int(os.environ.get("REPRO_BENCH_OPS", "3000")) // 2


def churn(mt, ops, seed=1):
    rng = random.Random(seed)
    live = []
    total = 0
    for _ in range(ops):
        tid = rng.randrange(mt.num_threads)
        if live and rng.random() < 0.5:
            total += mt.free(tid, live.pop(rng.randrange(len(live)))).cycles
        else:
            p, rec = mt.malloc(tid, rng.choice([32, 64, 128]))
            live.append(p)
            total += rec.cycles
    return total


def test_contention_scales_with_threads(benchmark):
    def experiment():
        out = {}
        for n in (1, 2, 4, 8):
            mt = MultiThreadAllocator(n, config=AllocatorConfig(release_rate=0))
            churn(mt, OPS, seed=3)
            out[n] = mt.contention_cycles()
        return out

    contention = run_once(benchmark, experiment)
    rows = [[str(n), str(c)] for n, c in contention.items()]
    print()
    print(render_table(["threads", "central-lock contention (cycles)"], rows,
                       title="Multithreading — shared-pool lock contention"))
    assert contention[1] == 0
    assert contention[8] >= contention[2]


def test_producer_consumer_memory_migrates(benchmark):
    def experiment():
        mt = MultiThreadAllocator(2, config=AllocatorConfig(release_rate=0))
        queue = []
        for _ in range(OPS):
            p, _ = mt.malloc(0, 64)
            queue.append(p)
            if len(queue) > 16:
                mt.free(1, queue.pop(0))
        return mt

    mt = run_once(benchmark, experiment)
    reserved_kb = mt.reserved_bytes() / 1024
    churned_kb = OPS * 64 / 1024
    print(f"\nproducer->consumer: churned {churned_kb:.0f} KB through a "
          f"16-object queue; footprint stayed at {reserved_kb:.0f} KB")
    print("(Section 2: 'memory can migrate from thread to thread to avoid "
          "memory blowup')")
    # One minimum-size OS grab suffices: no blowup despite the consumer
    # doing all the freeing.
    assert mt.shared.page_heap.stats.system_allocations == 1
    mt.check_conservation()


def test_mallacc_with_context_switches(benchmark):
    """Per-core malloc caches are flushed on every preemption; gains
    survive realistic quanta because the cache re-warms in a handful of
    calls.  An absurdly small quantum (flush every ~2k cycles) is also
    measured to show the worst case."""

    def experiment():
        rows = {}
        for label, accelerated, quantum in (
            ("baseline", False, 10**6),
            ("mallacc, 1M-cycle quantum", True, 10**6),
            ("mallacc, 20k-cycle quantum", True, 20_000),
            ("mallacc, 2k-cycle quantum", True, 2_000),
        ):
            mt = MultiThreadAllocator(
                2,
                config=AllocatorConfig(release_rate=0),
                accelerated=accelerated,
                switch_quantum_cycles=quantum,
            )
            rows[label] = churn(mt, OPS, seed=5)
        return rows

    totals = run_once(benchmark, experiment)
    rows = [[k, str(v)] for k, v in totals.items()]
    print()
    print(render_table(["configuration", "total allocator cycles"], rows,
                       title="Multithreading — Mallacc under context switches"))

    assert totals["mallacc, 1M-cycle quantum"] < totals["baseline"]
    assert totals["mallacc, 20k-cycle quantum"] < totals["baseline"]
    # More frequent flushing can only cost performance.
    assert (
        totals["mallacc, 2k-cycle quantum"]
        >= totals["mallacc, 1M-cycle quantum"] * 0.98
    )


def test_coherence_traffic_and_mallacc(benchmark):
    """Producer/consumer on separate cores: cross-thread frees ping-pong
    free-list lines between private caches.  The malloc cache's in-core
    copies dodge part of that traffic — cache isolation (Figure 16) again,
    now against coherence misses instead of capacity misses."""

    def run(accelerated):
        mt = MultiThreadAllocator(
            2,
            config=AllocatorConfig(release_rate=0),
            coherent=True,
            accelerated=accelerated,
        )
        queue = []
        cycles = 0
        for _ in range(OPS):
            p, rec = mt.malloc(0, 64)
            cycles += rec.cycles
            queue.append(p)
            if len(queue) > 16:
                cycles += mt.free(1, queue.pop(0)).cycles
        return cycles, mt.coherence_stats()

    def experiment():
        return run(False), run(True)

    (base_cycles, base_stats), (accel_cycles, accel_stats) = run_once(
        benchmark, experiment
    )
    rows = [
        ["baseline", str(base_cycles), str(base_stats.remote_transfers),
         str(base_stats.invalidations)],
        ["mallacc", str(accel_cycles), str(accel_stats.remote_transfers),
         str(accel_stats.invalidations)],
    ]
    print()
    print(render_table(
        ["configuration", "allocator cycles", "line transfers", "invalidations"],
        rows,
        title="Multicore coherence — producer/consumer free-list ping-pong",
    ))
    assert base_stats.remote_transfers > 0
    assert accel_cycles < base_cycles

"""Figure 2: CDF of malloc time by call duration across the macro suite.

Paper: "more than 60% of time is spent on calls that take less than 100
cycles" for the SPEC benchmarks; xapian even higher; masstree is the corner
case that still spends >20-30% on the fast path.
"""

from conftest import WORKLOAD_ORDER, run_once

from repro.harness.figures import render_table
from repro.harness.metrics import time_weighted_cdf


def test_fig02_duration_cdf(benchmark, macro_comparisons):
    comparisons = run_once(benchmark, lambda: macro_comparisons)
    thresholds = (20, 50, 100, 1000, 10000, 100000)
    rows = []
    fast100 = {}
    for name in WORKLOAD_ORDER:
        records = [r for r in comparisons[name].baseline.records if r.is_malloc]
        cdf = time_weighted_cdf(records, thresholds)
        fast100[name] = cdf[100]
        rows.append([name] + [f"{cdf[t]:.0f}" for t in thresholds])
    print()
    print(
        render_table(
            ["workload"] + [f"<{t}cy" for t in thresholds],
            rows,
            title="Figure 2 — cumulative % of malloc time below each duration",
        )
    )
    print("paper: SPEC >60% below 100cy; xapian higher; masstree lowest (>20-30%)")

    # Shape: xapian leads, masstree trails, SPEC in the majority-fast regime.
    assert fast100["xapian.abstracts"] > 80
    assert fast100["400.perlbench"] > 55
    assert fast100["masstree.same"] < fast100["400.perlbench"]
    assert fast100["masstree.same"] > 10

"""Figure 14: improvement in time spent on malloc() calls only.

Paper: "an average of nearly 30% speedup", with xapian and xalancbmk over
40% and masstree the lowest.
"""

from conftest import WORKLOAD_ORDER, run_once

from repro.harness.experiments import geomean
from repro.harness.figures import render_bar_chart


def test_fig14_malloc_time_improvement(benchmark, macro_comparisons):
    comparisons = run_once(benchmark, lambda: macro_comparisons)
    values = [comparisons[n].malloc_improvement for n in WORKLOAD_ORDER]
    g = geomean(values)
    print()
    print(
        render_bar_chart(
            WORKLOAD_ORDER + ["Geomean"],
            values + [g],
            title="Figure 14 — malloc() time improvement (fast + slow paths)",
        )
    )
    print("paper: average ~30%; xapian and xalancbmk >40%; masstree lowest")

    by_name = dict(zip(WORKLOAD_ORDER, values))
    assert 20 <= g <= 45
    assert by_name["483.xalancbmk"] >= 35
    assert max(by_name["xapian.abstracts"], by_name["xapian.pages"]) >= 33
    assert min(by_name["masstree.same"], by_name["masstree.wcol1"]) == min(values)

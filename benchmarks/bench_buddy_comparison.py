"""Section 2's argument, measured: buddy hardware vs software size classes.

"While buddy allocation ... easily maps to purely combinational logic ...
modern allocators have converged to simpler techniques in their highest-
level pools ... most likely due to buddy systems' reported high degrees of
fragmentation"; and "a typical malloc call takes only 20 CPU cycles ...
setting the bar high for potential hardware implementations."
"""

import random

from conftest import BENCH_OPS, run_once

from repro.alloc import TCMalloc
from repro.alloc.buddy import BuddyAllocator
from repro.alloc.fragmentation import internal_fragmentation_of_table
from repro.alloc.size_classes import SizeClassTable
from repro.harness.figures import render_table


def test_buddy_vs_tcmalloc(benchmark):
    def experiment():
        rng = random.Random(11)
        sizes = [rng.randint(17, 4000) for _ in range(BENCH_OPS)]

        table = SizeClassTable.generate()
        tc_frag = internal_fragmentation_of_table(table, sizes)
        buddy_frag = 1.0 - sum(sizes) / sum(
            1 << BuddyAllocator.order_for(s) for s in sizes
        )

        # Warm steady-state latencies.
        tc = TCMalloc()
        buddy = BuddyAllocator()
        for _ in range(60):
            p, _ = tc.malloc(64)
            tc.sized_free(p, 64)
            bp, _ = buddy.malloc(64)
            buddy.free(bp)
        tc_cycles = tc.malloc(64)[1].cycles
        buddy_cycles = buddy.malloc(64)[1]
        return tc_frag, buddy_frag, tc_cycles, buddy_cycles

    tc_frag, buddy_frag, tc_cycles, buddy_cycles = run_once(benchmark, experiment)
    print()
    print(
        render_table(
            ["allocator", "internal fragmentation", "warm malloc (cycles)"],
            [
                ["TCMalloc (84 size classes)", f"{100 * tc_frag:.1f}%", str(tc_cycles)],
                ["binary buddy (power-of-2)", f"{100 * buddy_frag:.1f}%", str(buddy_cycles)],
            ],
            title="Section 2 — why hardware buddy allocators lost to size classes",
        )
    )
    print("paper: buddy systems show 'high degrees of fragmentation'; the "
          "software fast path is already ~20 cycles")

    assert buddy_frag > 1.8 * tc_frag
    assert tc_frag < 0.15
    assert tc_cycles <= buddy_cycles + 5

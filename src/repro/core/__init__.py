"""Mallacc: the malloc accelerator (the paper's primary contribution).

A tiny in-core hardware block consisting of:

* the **malloc cache** (:mod:`repro.core.malloc_cache`) — a fully-associative
  structure of a handful of entries, each learning the mapping from a
  requested-size range to its size class *and* caching the first two elements
  of that class's free list (Figure 8);
* **five new instructions** (:mod:`repro.core.instructions`) —
  ``mcszlookup``/``mcszupdate`` for size-class computation and
  ``mchdpop``/``mchdpush``/``mcnxtprefetch`` for free-list manipulation
  (Figures 9-12);
* a **sampling performance counter** (:mod:`repro.core.sampling`) that
  replaces the fast-path byte-countdown branch;
* an **area model** (:mod:`repro.core.area`) reproducing the Section 6.4
  claim that the whole block fits in ~1500 μm², 0.006% of a Haswell core.

:class:`repro.core.accel_allocator.MallaccTCMalloc` is TCMalloc with its fast
path rewritten to use these instructions, exactly as Figures 10 and 12
integrate them.
"""

from repro.core.accel_allocator import MallaccTCMalloc
from repro.core.area import AreaModel
from repro.core.instructions import MallaccISA
from repro.core.malloc_cache import MallocCache, MallocCacheConfig
from repro.core.sampling import SamplingCounter

__all__ = [
    "AreaModel",
    "MallaccISA",
    "MallaccTCMalloc",
    "MallocCache",
    "MallocCacheConfig",
    "SamplingCounter",
]

"""The malloc cache: Mallacc's central hardware structure (Figure 8).

Each entry holds::

    Valid | Size range (index range) | Size class | Size | Head | Next

The *size-range* half accelerates size-class computation: an incoming
requested size is associatively checked against every entry's range; a hit
returns the size class and rounded allocation size without touching the
size-class tables in memory.  Ranges are keyed on **class indices** (the
Figure 5 ``(size+7)>>3`` space) rather than raw sizes — the paper's one
TCMalloc-specific optimization, which costs one extra cycle of latency but
"can learn mappings faster, with fewer cold misses".  Raw-size keying is
available behind ``index_keyed=False``, as in the paper's configuration
register.

The *free-list* half caches copies of the first two elements of the class's
free list so a pop can return immediately and the head-update store never
waits on a cache miss.  The consistency invariant is:

    **whenever Head and Next are both valid, Head equals the real list head
    and Next equals Head's successor.**

Entries with an outstanding prefetch block pushes and pops until the
prefetch returns (Section 4.1); the blocking time is surfaced to the timing
model by :class:`repro.core.accel_allocator.MallaccTCMalloc`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloc.size_classes import class_index
from repro.sim.memory import NULL


@dataclass(frozen=True)
class MallocCacheConfig:
    """Hardware configuration of the malloc cache."""

    num_entries: int = 16
    index_keyed: bool = True
    """Key ranges on class indices (True, +1 cycle) or raw sizes (False)."""
    eviction: str = "lru"
    """"lru" (the paper's policy) or "fifo" (ablation)."""
    cache_next: bool = True
    """Cache head+next (the design) or head only (ablation)."""
    prefetch_blocking: bool = True
    """Block ops on entries with outstanding prefetches (consistency)."""
    fill_rule: str = "adjacent"
    """Prefetch fill semantics.  "adjacent" (default): an empty entry
    learns (Head=head, Next=*head), preserving the Head->Next invariant and
    converging for allocation-only streams.  "paper": the literal Figure 11
    pseudocode — an empty entry's Head is set to the *value* the prefetch
    returns (one element early), which never converges to a hit for pure
    pop streams; kept as an ablation of the paper's underspecified rule."""
    base_lookup_latency: int = 2
    """Cycles for the associative range search."""
    list_op_latency: int = 1
    """Cycles for mchdpop/mchdpush/mcnxtprefetch issue."""

    def __post_init__(self) -> None:
        if self.num_entries < 1:
            raise ValueError("cache needs at least one entry")
        if self.eviction not in ("lru", "fifo"):
            raise ValueError(f"unknown eviction policy {self.eviction!r}")
        if self.fill_rule not in ("adjacent", "paper"):
            raise ValueError(f"unknown fill rule {self.fill_rule!r}")

    @property
    def lookup_latency(self) -> int:
        """mcszlookup latency; index keying adds the dedicated index-compute
        hardware's extra cycle (Section 4.1)."""
        return self.base_lookup_latency + (1 if self.index_keyed else 0)


@dataclass
class CacheEntry:
    """One malloc cache entry (152 bits of state in hardware)."""

    valid: bool = False
    lo: int = 0
    hi: int = 0
    size_class: int = 0
    alloc_size: int = 0
    head: int = NULL
    next: int = NULL
    last_use: int = 0
    inserted_at: int = 0
    prefetch_ready: int = 0
    """Absolute machine cycle when an outstanding prefetch lands (0 = none)."""
    head_unconfirmed: bool = False
    """Set when the 'paper' fill rule wrote Head one element early; such a
    Head must not be trusted by pushes or pops (taking the literal Figure 11
    pseudocode at face value would otherwise corrupt the list — see
    DESIGN.md, Substitutions)."""

    def covers(self, key: int) -> bool:
        return self.valid and self.lo <= key <= self.hi


@dataclass
class MallocCacheStats:
    sz_hits: int = 0
    sz_misses: int = 0
    sz_updates: int = 0
    pop_hits: int = 0
    pop_misses: int = 0
    pushes: int = 0
    prefetches: int = 0
    evictions: int = 0
    blocked_cycles: int = 0
    flushes: int = 0


class MallocCache:
    """Functional model of the malloc cache."""

    def __init__(self, config: MallocCacheConfig | None = None) -> None:
        self.config = config or MallocCacheConfig()
        self.entries = [CacheEntry() for _ in range(self.config.num_entries)]
        self.stats = MallocCacheStats()
        self._tick = 0
        self._insert_seq = 0

    # -- keying ---------------------------------------------------------------
    def _key_of(self, size: int) -> int:
        return class_index(size) if self.config.index_keyed else size

    def _touch(self, entry: CacheEntry) -> None:
        self._tick += 1
        entry.last_use = self._tick

    def _find_class(self, size_class: int) -> CacheEntry | None:
        for entry in self.entries:
            if entry.valid and entry.size_class == size_class:
                return entry
        return None

    def _victim(self) -> CacheEntry:
        invalid = [e for e in self.entries if not e.valid]
        if invalid:
            return invalid[0]
        self.stats.evictions += 1
        if self.config.eviction == "lru":
            return min(self.entries, key=lambda e: e.last_use)
        return min(self.entries, key=lambda e: e.inserted_at)

    # -- size-class half (Figure 9) --------------------------------------------
    def szlookup(self, size: int) -> CacheEntry | None:
        """mcszlookup: associative range search; returns the entry on a hit
        (caller reads size class + alloc size), None on a miss (ZF clear)."""
        key = self._key_of(size)
        for entry in self.entries:
            if entry.covers(key):
                self.stats.sz_hits += 1
                self._touch(entry)
                return entry
        self.stats.sz_misses += 1
        return None

    def szupdate(self, size: int, alloc_size: int, size_class: int) -> CacheEntry:
        """mcszupdate: learn (requested size, alloc size, class) — either
        widen the existing entry's range or insert a fresh entry."""
        self.stats.sz_updates += 1
        key = self._key_of(size)
        entry = self._find_class(size_class)
        if entry is not None:
            if key < entry.lo:
                entry.lo = key
            if key > entry.hi:
                entry.hi = key
            self._touch(entry)
            return entry
        entry = self._victim()
        upper = self._key_of(alloc_size)
        entry.valid = True
        entry.lo = min(key, upper)
        entry.hi = max(key, upper)
        entry.size_class = size_class
        entry.alloc_size = alloc_size
        entry.head = NULL
        entry.next = NULL
        entry.prefetch_ready = 0
        self._insert_seq += 1
        entry.inserted_at = self._insert_seq
        self._touch(entry)
        return entry

    # -- free-list half (Figure 11) ----------------------------------------------
    def hdpop(self, size_class: int, now: int) -> tuple[CacheEntry | None, int, int, int]:
        """mchdpop: returns ``(entry_or_None, head, next, stall_cycles)``.

        A hit requires the entry to exist with both Head and Next valid; on a
        miss with a partially-valid entry the remaining element is
        invalidated (the hardware cannot prove it still matches the list).
        ``stall_cycles`` is nonzero when the entry blocked on an outstanding
        prefetch.
        """
        entry = self._find_class(size_class)
        if entry is None:
            self.stats.pop_misses += 1
            return None, NULL, NULL, 0
        stall = self._block_until(entry, now)
        if entry.head_unconfirmed:
            # A speculative (one-early) Head is never a hit.
            entry.head = NULL
            entry.next = NULL
            entry.head_unconfirmed = False
            self.stats.pop_misses += 1
            self._touch(entry)
            return None, NULL, NULL, stall
        if entry.head != NULL and (entry.next != NULL or not self.config.cache_next):
            # Head-only mode (cache_next=False) hits on Head alone and leaves
            # the successor load to software.
            head, nxt = entry.head, entry.next
            entry.head = nxt  # NULL in head-only mode; refilled by prefetch
            entry.next = NULL
            self.stats.pop_hits += 1
            self._touch(entry)
            return entry, head, nxt, stall
        # Miss: invalidate whichever half was present.
        entry.head = NULL
        entry.next = NULL
        self.stats.pop_misses += 1
        self._touch(entry)
        return None, NULL, NULL, stall

    def hdpush(self, size_class: int, new_head: int, now: int) -> tuple[bool, int, int]:
        """mchdpush: returns ``(hit, old_head, stall_cycles)``.

        Figure 11: the cached head always shifts into the Next slot and
        ``new_head`` takes its place — even when Head was invalid (then Next
        becomes invalid, but Head now tracks the real head, so the *next*
        push or a prefetch completes the pair).  The operation is a *hit*
        (software may skip the head load) only when the old Head was valid.
        """
        entry = self._find_class(size_class)
        if entry is None:
            return False, NULL, 0
        stall = self._block_until(entry, now)
        self.stats.pushes += 1
        old_head = NULL if entry.head_unconfirmed else entry.head
        if self.config.cache_next:
            entry.next = old_head
        entry.head = new_head
        entry.head_unconfirmed = False
        self._touch(entry)
        if old_head == NULL:
            return False, NULL, stall
        return True, old_head, stall

    def nxtprefetch(self, size_class: int, head_addr: int, head_next: int, ready_at: int) -> bool:
        """mcnxtprefetch: an asynchronous line fetch of the current list head
        feeds the cache.

        ``head_addr`` is the real list head (register operand); ``head_next``
        is the word the returning line contains (``*head_addr``).  Fill rule
        (slightly stronger than the paper's Figure 11 — see DESIGN.md,
        *Substitutions*): if the entry's Head equals ``head_addr`` and Next
        is empty, fill Next; if Head is empty, fill Head *and* Next, making
        the entry immediately poppable.  Both arms preserve the Head→Next
        adjacency invariant.  Returns True if a prefetch was issued.
        """
        entry = self._find_class(size_class)
        if entry is None:
            return False
        self.stats.prefetches += 1
        if entry.head == head_addr and entry.next == NULL and head_addr != NULL:
            # Head matches the real head: fill Next with its successor.
            # (Identical under both fill rules: Figure 11's first arm.)
            if self.config.cache_next:
                entry.next = head_next
                if self.config.prefetch_blocking:
                    entry.prefetch_ready = max(entry.prefetch_ready, ready_at)
            self._touch(entry)
            return True
        if entry.head == NULL and head_addr != NULL:
            if self.config.fill_rule == "paper":
                # Literal Figure 11: SetHead(NewNext) — the entry learns the
                # head's *successor*, one element early.  A later pop still
                # misses (Next invalid), and the miss invalidates this Head,
                # so pop-only streams never reach a hit under this rule.
                entry.head = head_next
                entry.head_unconfirmed = True
            else:
                # Adjacent rule: learn (head, head->next) so the entry is
                # immediately consistent and poppable.
                entry.head = head_addr
                if self.config.cache_next:
                    entry.next = head_next
            if self.config.prefetch_blocking:
                entry.prefetch_ready = max(entry.prefetch_ready, ready_at)
            self._touch(entry)
            return True
        return False

    def invalidate_class(self, size_class: int) -> None:
        """Drop the list half of an entry (used when software manipulates a
        list without going through the instructions)."""
        entry = self._find_class(size_class)
        if entry is not None:
            entry.head = NULL
            entry.next = NULL
            entry.head_unconfirmed = False

    def _block_until(self, entry: CacheEntry, now: int) -> int:
        if not self.config.prefetch_blocking or entry.prefetch_ready == 0:
            return 0
        stall = max(0, entry.prefetch_ready - now)
        if stall:
            self.stats.blocked_cycles += stall
        entry.prefetch_ready = 0
        return stall

    # -- maintenance ---------------------------------------------------------
    def flush(self) -> None:
        """Context switch / interrupt: drop everything (no writebacks needed
        because all contents are copies — Section 4.1, core integration)."""
        for entry in self.entries:
            entry.valid = False
            entry.head = NULL
            entry.next = NULL
            entry.head_unconfirmed = False
            entry.prefetch_ready = 0
        self.stats.flushes += 1

    def check_invariants(self, memory) -> None:
        """Test hook: every valid entry with Head+Next must satisfy
        ``memory[Head] == Next`` (the adjacency invariant) and ranges of
        distinct entries must not overlap."""
        ranges: list[tuple[int, int]] = []
        for entry in self.entries:
            if not entry.valid:
                continue
            for lo, hi in ranges:
                if entry.lo <= hi and lo <= entry.hi:
                    raise AssertionError("overlapping size ranges in malloc cache")
            ranges.append((entry.lo, entry.hi))
            if entry.head != NULL and entry.next != NULL:
                if memory.read_word(entry.head) != entry.next:
                    raise AssertionError(
                        f"entry class {entry.size_class}: Head->next != Next"
                    )

    @property
    def sz_hit_rate(self) -> float:
        total = self.stats.sz_hits + self.stats.sz_misses
        return self.stats.sz_hits / total if total else 0.0

    @property
    def pop_hit_rate(self) -> float:
        total = self.stats.pop_hits + self.stats.pop_misses
        return self.stats.pop_hits / total if total else 0.0

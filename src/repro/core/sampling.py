"""The Mallacc sampling performance counter.

Section 4.2: "The operation performed by the sampler — accumulate a value and
capture a stack trace at a threshold — is precisely what a performance
counter does ... We propose dedicating a hardware performance counter for
sampling allocation sizes, which entirely removes a conditional branch on the
fast path."

The counter increments by the requested allocation size (a register value —
the one unusual requirement versus ordinary PMU counters) and raises an
interrupt at the threshold, at which point the ``perf_events``-style handler
captures the stack trace off the fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloc.constants import AllocatorConfig
from repro.alloc.context import Emitter
from repro.alloc.sampler import SampleRecord
from repro.sim.uop import Tag


@dataclass
class SamplingCounter:
    """One dedicated 64-bit PMU counter per hardware thread."""

    config: AllocatorConfig = field(default_factory=AllocatorConfig)
    accumulated: int = 0
    interrupts: int = 0
    samples: list[SampleRecord] = field(default_factory=list)

    @property
    def threshold(self) -> int:
        return self.config.sample_parameter

    def count(self, size: int) -> bool:
        """Accumulate a request's size; True when the threshold fires.
        Deliberately emits *no* micro-ops: the accumulation rides the PMU,
        off the instruction stream."""
        if not self.config.sampling_enabled:
            return False
        self.accumulated += size
        if self.accumulated >= self.threshold:
            self.accumulated -= self.threshold
            self.interrupts += 1
            return True
        return False

    def service_interrupt(self, em: Emitter, size: int, clock: int) -> None:
        """The PMU interrupt: handler entry plus stack-trace capture.  Costly
        but rare — and crucially off the common fast path."""
        em.fixed(self.config.costs.pmu_interrupt, tag=Tag.SLOW_PATH)
        em.fixed(self.config.costs.stack_trace_capture, tag=Tag.SLOW_PATH)
        self.samples.append(SampleRecord(size=size, clock=clock))

    @property
    def num_samples(self) -> int:
        return len(self.samples)

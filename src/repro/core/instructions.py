"""The five Mallacc instructions as an ISA layer over the malloc cache.

This module couples the functional :class:`~repro.core.malloc_cache.MallocCache`
to the timing model: each instruction emits a ``MALLACC`` micro-op with the
configured latency, threads register dependences the way the assembly of
Figures 10 and 12 does, and models the implicit ordering among the three
linked-list instructions ("an implicit read-write register dependency through
an architecturally-invisible register", Section 4.1).

Timing notes:

* ``mcszlookup`` costs the associative-search latency (+1 cycle when ranges
  are keyed on class indices, for the dedicated index-compute hardware);
* ``mchdpop``/``mchdpush`` cost one cycle, plus any blocking stall while the
  entry has an outstanding prefetch;
* ``mcnxtprefetch`` commits immediately (senior-store-queue style) and its
  line fetch completes asynchronously in the cache hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloc.context import Emitter
from repro.core.malloc_cache import MallocCache, MallocCacheConfig
from repro.sim.memory import NULL


@dataclass
class SzLookupOutcome:
    hit: bool
    size_class: int
    alloc_size: int
    uop: int
    """The uop producing the size class / ZF (consumers depend on it)."""


@dataclass
class HdPopOutcome:
    hit: bool
    head: int
    next_ptr: int
    uop: int
    stall: int


@dataclass
class PendingPrefetch:
    """A prefetch issued this call, awaiting its arrival-time resolution."""

    size_class: int
    head_addr: int
    head_next: int
    uop: int
    mem_latency: int


@dataclass
class MallaccISA:
    """Executes Mallacc instructions against one malloc cache instance."""

    cache: MallocCache = field(default_factory=lambda: MallocCache(MallocCacheConfig()))
    pending: list[PendingPrefetch] = field(default_factory=list)
    _order_uop: int | None = field(default=None, init=False)
    """Last linked-list instruction's uop: the architecturally-invisible
    ordering register the three list instructions serialize through."""

    def begin_call(self) -> None:
        """Reset per-call state (the ordering register spans one call's
        trace; cross-call ordering is implied by the global clock)."""
        self._order_uop = None
        self.pending = []

    def _ordered(self, deps: tuple[int, ...]) -> tuple[int, ...]:
        if self._order_uop is not None:
            return tuple(dict.fromkeys(deps + (self._order_uop,)))
        return deps

    # -- size-class instructions (Figure 9/10) -------------------------------
    def mcszlookup(self, em: Emitter, size: int, deps: tuple[int, ...] = ()) -> SzLookupOutcome:
        entry = self.cache.szlookup(size)
        uop = em.mallacc(self.cache.config.lookup_latency, deps=deps)
        em.branch("mcsz_hit", taken=entry is None, deps=(uop,))
        if entry is None:
            return SzLookupOutcome(hit=False, size_class=0, alloc_size=0, uop=uop)
        return SzLookupOutcome(
            hit=True, size_class=entry.size_class, alloc_size=entry.alloc_size, uop=uop
        )

    def mcszupdate(self, em: Emitter, size: int, alloc_size: int, size_class: int, deps: tuple[int, ...] = ()) -> int:
        self.cache.szupdate(size, alloc_size, size_class)
        return em.mallacc(1, deps=deps)

    # -- linked-list instructions (Figure 11/12) ------------------------------
    def mchdpop(self, em: Emitter, size_class: int, deps: tuple[int, ...] = ()) -> HdPopOutcome:
        entry, head, nxt, stall = self.cache.hdpop(size_class, em.machine.clock)
        latency = self.cache.config.list_op_latency + stall
        uop = em.mallacc(latency, deps=self._ordered(deps))
        self._order_uop = uop
        em.branch("mchd_hit", taken=entry is None, deps=(uop,))
        return HdPopOutcome(hit=entry is not None, head=head, next_ptr=nxt, uop=uop, stall=stall)

    def mchdpush(self, em: Emitter, size_class: int, new_head: int, deps: tuple[int, ...] = ()) -> tuple[bool, int, int]:
        """Returns ``(hit, old_head, uop)``."""
        hit, old_head, stall = self.cache.hdpush(size_class, new_head, em.machine.clock)
        latency = self.cache.config.list_op_latency + stall
        uop = em.mallacc(latency, deps=self._ordered(deps))
        self._order_uop = uop
        return hit, old_head, uop

    def mcnxtprefetch(self, em: Emitter, size_class: int, head_addr: int, deps: tuple[int, ...] = ()) -> int | None:
        """Issue the asynchronous head-line prefetch; returns its uop index
        (None when there is nothing to prefetch).

        The cache fill is applied *immediately* in program order — a later
        push or pop in the same call must observe it, exactly as the
        returning line would be merged before a younger list instruction is
        allowed to proceed (entries with an outstanding prefetch block).
        The arrival cycle is estimated from the trace position (issue slots
        consumed so far / issue width) plus the memory latency the line
        fetch was charged.
        """
        if head_addr == NULL:
            return None
        head_next = em.machine.memory.read_word(head_addr)
        uop, mem_latency = em.prefetch_line(head_addr)
        self._order_uop = uop
        issue_estimate = uop // em.machine.timing.config.issue_width
        ready_at = em.machine.clock + issue_estimate + mem_latency
        filled = self.cache.nxtprefetch(size_class, head_addr, head_next, ready_at)
        self.pending.append(
            PendingPrefetch(
                size_class=size_class,
                head_addr=head_addr,
                head_next=head_next,
                uop=uop,
                mem_latency=mem_latency,
            )
        )
        del filled
        return uop

"""Allocators with the Mallacc fast path (Figures 10 and 12).

:class:`MallaccFastPathMixin` contains the three fast-path overrides; mixing
it over any allocator built on :class:`repro.alloc.allocator.TCMalloc`'s
hook points yields its accelerated variant — the paper's central claim that
Mallacc "is designed not for a specific allocator implementation".  Two
instantiations ship here and in :mod:`repro.alloc.jemalloc`:

* ``MallaccTCMalloc``  — TCMalloc with the accelerated fast path;
* ``MallaccJemalloc``  — the jemalloc-style allocator, same instructions.

The overrides are exactly the three fast-path components:

* **size-class lookup** — ``mcszlookup`` first; on a miss the ordinary
  Figure 5 software path runs, followed by ``mcszupdate``;
* **sampling** — the byte countdown moves into the dedicated PMU counter;
* **free-list pops/pushes** — ``mchdpop``/``mchdpush`` with software
  fallback, plus ``mcnxtprefetch`` of the new head after every pop.

All thread-cache list traffic — including slow-path batch transfers — is
routed through the instructions (:class:`MallaccListOps`), which keeps the
cached Head/Next copies coherent with the real lists;
:meth:`repro.alloc.freelist.FreeList.pop_cached` raises if a cached value
ever diverges.
"""

from __future__ import annotations

from repro.alloc.allocator import Path, TCMalloc
from repro.alloc.constants import AllocatorConfig
from repro.alloc.context import Emitter, Machine
from repro.alloc.freelist import FreeList, PopResult
from repro.alloc.size_classes import LookupResult, class_index
from repro.core.instructions import MallaccISA
from repro.core.malloc_cache import MallocCache, MallocCacheConfig
from repro.core.sampling import SamplingCounter
from repro.sim.memory import NULL
from repro.sim.uop import Tag


class MallaccListOps:
    """Free-list strategy routing every push/pop through the malloc cache."""

    def __init__(self, isa: MallaccISA, owner: "MallaccFastPathMixin") -> None:
        self.isa = isa
        self.owner = owner

    def pop(self, em: Emitter, flist: FreeList, cl: int, addr_dep: tuple[int, ...]) -> PopResult:
        outcome = self.isa.mchdpop(em, cl, deps=addr_dep)
        if outcome.hit:
            next_ptr = outcome.next_ptr
            result_uop = outcome.uop
            head_only = next_ptr == NULL and flist.length > 1
            # No branch uop marks the head-only fallback load; token it so
            # the intern template distinguishes the two shapes.
            em.note(("mchd_head_only", head_only))
            if head_only:
                # Head-only ablation: software still loads the successor.
                next_ptr, result_uop = em.load_word(
                    outcome.head, deps=(outcome.uop,), tag=Tag.PUSH_POP
                )
            flist.pop_cached(em, outcome.head, next_ptr, deps=(result_uop,))
            popped = PopResult(ptr=outcome.head, next_ptr=next_ptr, uop=outcome.uop)
        else:
            popped = flist.emit_pop(em, addr_dep=(outcome.uop,) + addr_dep)
        # Figure 12, malloc_ret: prefetch the new head into the cache.
        # Its presence depends on list state, not on a branch — token it.
        new_head = flist.head
        em.note(("nxtprefetch", new_head != NULL))
        if new_head != NULL:
            self.isa.mcnxtprefetch(em, cl, new_head, deps=(popped.uop,))
        return popped

    def push(self, em: Emitter, flist: FreeList, cl: int, ptr: int, addr_dep: tuple[int, ...]) -> int:
        hit, old_head, uop = self.isa.mchdpush(em, cl, ptr, deps=addr_dep)
        # mchdpush emits no hit branch; the hit/miss shapes differ (cached
        # push drops the head load), so the decision must be a token.
        em.note(("mchdpush_hit", hit))
        if hit:
            flist.push_cached(em, ptr, old_head, deps=(uop,))
        else:
            flist.emit_push(em, ptr, addr_dep=(uop,) + addr_dep)
        return uop


class MallaccFastPathMixin:
    """The accelerated fast path, mixable over any TCMalloc-family allocator.

    Subclasses must call :meth:`_attach_mallacc` once their pools exist.
    """

    isa: MallaccISA
    pmu: SamplingCounter

    def _attach_mallacc(self, cache_config: MallocCacheConfig | None = None) -> None:
        self.isa = MallaccISA(cache=MallocCache(cache_config or MallocCacheConfig()))
        self.pmu = SamplingCounter(config=self.config)
        self.thread_cache.list_ops = MallaccListOps(self.isa, self)

    @property
    def malloc_cache(self) -> MallocCache:
        return self.isa.cache

    # -- overridden fast-path components -------------------------------------
    def _emit_prologue(self, em: Emitter) -> None:
        self.isa.begin_call()
        super()._emit_prologue(em)

    def _emit_sampling_check(self, em: Emitter, size: int) -> bool:
        """Sampling rides the PMU: no fast-path micro-ops at all."""
        return self.pmu.count(size)

    def _record_sample(self, em: Emitter, size: int) -> None:
        self.pmu.service_interrupt(em, size, self.machine.clock)

    def _emit_size_class_lookup(self, em: Emitter, size: int) -> LookupResult:
        outcome = self.isa.mcszlookup(em, size)
        if outcome.hit:
            return LookupResult(
                size_class=outcome.size_class,
                alloc_size=outcome.alloc_size,
                cls_uop=outcome.uop,
                size_uop=outcome.uop,
            )
        # Fallback: the ordinary software computation, then teach the cache.
        lookup = super()._emit_size_class_lookup(em, size)
        self.isa.mcszupdate(
            em, size, lookup.alloc_size, lookup.size_class, deps=(lookup.size_uop,)
        )
        return lookup

    def _post_schedule(self, trace, result) -> None:
        """Prefetch fills were applied at emission time; nothing to resolve.
        The pending list is kept for introspection/tests and cleared here."""
        self.isa.pending = []

    # -- functional fast-forward ----------------------------------------------
    def fast_forward_malloc(self, size: int) -> tuple[int, int, str] | None:
        """Flat skip-mode malloc for the accelerated fast path: the same
        :class:`~repro.core.malloc_cache.MallocCache` transitions
        (szlookup/szupdate, hdpop, nxtprefetch) and predictor sites the
        generic functional replay performs, fused into one frame.  Falls
        back (``None``) on large requests, PMU sampling triggers, and empty
        lists, with no state touched before the first mutation point."""
        if size <= 0 or size > self.config.max_size:
            return None
        pmu = self.pmu
        sampling = self.config.sampling_enabled
        if sampling and pmu.accumulated + size >= pmu.threshold:
            return None
        cl = self.table.class_array[class_index(size)]
        flist = self.thread_cache.lists[cl]
        if flist.length == 0:
            return None
        machine = self.machine
        mem = machine.memory
        predict = machine.predictor.predict
        cache = self.isa.cache
        if sampling:
            pmu.accumulated += size
        predict("malloc_is_small", True)
        # mcszlookup; a miss runs the software lookup and teaches the cache.
        entry = cache.szlookup(size)
        predict("mcsz_hit", entry is None)
        if entry is None:
            cache.szupdate(size, self.table.class_to_size[cl], cl)
        predict("tc_list_empty", False)
        # mchdpop -> pop_cached on a hit, the software Figure 7 pop on a miss.
        header = flist.header_addr
        pentry, head, next_ptr, _stall = cache.hdpop(cl, machine.clock)
        predict("mchd_hit", pentry is None)
        if pentry is not None:
            if next_ptr == NULL and flist.length > 1:
                # Head-only ablation: software still loads the successor.
                next_ptr = mem.read_word(head)
            real_head = mem.read_word(header)
            if real_head != head:
                raise AssertionError(
                    f"malloc cache head {head:#x} diverged from list head {real_head:#x}"
                )
            if mem.read_word(head) != next_ptr:
                raise AssertionError("malloc cache next diverged from list")
            mem.write_word(header, next_ptr)
        else:
            head = mem.read_word(header)
            next_ptr = mem.read_word(head)
            mem.write_word(header, next_ptr)
        flist._contents.discard(head)
        length = flist.length - 1
        flist.length = length
        if length < flist.low_water:
            flist.low_water = length
        # mcnxtprefetch of the new head.  Functional ready-time matches
        # FunctionalEmitter.prefetch_line: clock + nominal L1 latency.
        if next_ptr != NULL:
            cache.nxtprefetch(
                cl,
                next_ptr,
                mem.read_word(next_ptr),
                machine.clock + machine.hierarchy.config.l1.latency,
            )
        mem.write_word(header + 8, length)
        tc = self.thread_cache
        mem.write_word(tc.lists[0].header_addr + 16, max(tc.size_bytes, 0))
        tc.size_bytes -= self.table.class_to_size[cl]
        live = self.live
        if head in live:
            raise AssertionError(f"allocator returned live pointer {head:#x}")
        live[head] = (size, cl)
        return head, cl, Path.FAST.value

    def fast_forward_free(
        self, ptr: int, sized_hint: int | None = None
    ) -> tuple[int, str] | None:
        """Flat skip-mode free routing the push through mchdpush — and, for
        sized frees, the class lookup through mcszlookup — matching the
        generic functional replay's malloc-cache transitions."""
        entry = self.live.get(ptr)
        if entry is None:
            raise ValueError(f"free of unallocated pointer {ptr:#x}")
        cl = entry[1]
        if cl == 0:
            return None
        tc = self.thread_cache
        flist = tc.lists[cl]
        if flist.length >= flist.max_length:
            return None
        alloc_size = self.table.class_to_size[cl]
        if tc.size_bytes + alloc_size >= self.config.max_thread_cache_size:
            return None
        del self.live[ptr]
        machine = self.machine
        mem = machine.memory
        predict = machine.predictor.predict
        if sized_hint is not None:
            # Sized deallocation runs the Figure 5 lookup through the cache
            # (non-sized frees use the pagemap — no cache traffic).
            cache = self.isa.cache
            sentry = cache.szlookup(sized_hint)
            predict("mcsz_hit", sentry is None)
            if sentry is None:
                cache.szupdate(sized_hint, alloc_size, cl)
            elif sentry.size_class != cl:
                raise AssertionError("sized free hint maps to wrong class")
        contents = flist._contents
        if ptr in contents:
            raise ValueError(f"double free of {ptr:#x}")
        header = flist.header_addr
        hit, old_head, _stall = self.isa.cache.hdpush(cl, ptr, machine.clock)
        if hit:
            real_head = mem.read_word(header)
            if real_head != old_head:
                raise AssertionError(
                    f"malloc cache head {old_head:#x} diverged from list head {real_head:#x}"
                )
        else:
            old_head = mem.read_word(header)
        mem.write_word(header, ptr)
        mem.write_word(ptr, old_head)
        contents.add(ptr)
        length = flist.length + 1
        flist.length = length
        mem.write_word(header + 8, length)
        tc.size_bytes += alloc_size
        machine.predictor.predict("tc_list_too_long", False)
        return cl, Path.FREE_FAST.value

    def _sampling_counter_addr(self) -> int | None:
        """The countdown lives in the PMU register — no memory line to keep
        warm (Section 4.3)."""
        return None

    # -- events ----------------------------------------------------------------
    def context_switch(self) -> None:
        """Flush the malloc cache: safe at any time because it holds copies
        only (Section 4.1)."""
        self.isa.cache.flush()


class MallaccTCMalloc(MallaccFastPathMixin, TCMalloc):
    """TCMalloc running on a Mallacc-equipped core."""

    def __init__(
        self,
        machine: Machine | None = None,
        config: AllocatorConfig | None = None,
        cache_config: MallocCacheConfig | None = None,
        ablations=None,
        memoize_traces: bool | None = None,
        intern_traces: bool | None = None,
    ) -> None:
        super().__init__(
            machine=machine,
            config=config,
            ablations=ablations,
            memoize_traces=memoize_traces,
            intern_traces=intern_traces,
        )
        self._attach_mallacc(cache_config)


# Columnar-engine fused twins for the exact MallaccTCMalloc type (subclasses
# overriding emission hooks must register their own — see repro.alloc.fastpath).
from repro.alloc.fastpath import MallaccFastPath, register_fastpath  # noqa: E402
from repro.alloc.slowpath import MallaccSlowPath, register_slowpath  # noqa: E402

register_fastpath(MallaccTCMalloc, MallaccFastPath)
register_slowpath(MallaccTCMalloc, MallaccSlowPath)

"""Silicon area model for Mallacc (Section 6.4).

Reproduces the paper's bit-level accounting and area arithmetic:

* 152 bits of storage per malloc-cache entry;
* three CAM arrays (index ranges: 24 b/entry, size class: 8 b/entry,
  LRU: log2(n) b/entry) plus one SRAM array (two 48-bit pointers, a 20-bit
  allocated size, a valid bit = 117 b/entry);
* at 16 entries: 72-byte CAM + 234-byte SRAM;
* CACTI-style area at 28 nm: 873 μm² (CAMs) + 346 μm² (SRAM) + 265 μm²
  (shifters/adders for the index computation) ≈ 1484 μm² total;
* Haswell core = 26.5 mm² → Mallacc ≈ 0.006% of core area, and the measured
  0.43% mean speedup beats Pollack's-rule expectation (sqrt of the area
  increase) by >140×.

We back-solve per-bit area densities from the paper's published numbers so
the model extrapolates sensibly to other entry counts, instead of pretending
to re-run CACTI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# Paper-published reference points (16 entries, 28 nm).
_REF_ENTRIES = 16
_REF_CAM_AREA_UM2 = 873.0
_REF_SRAM_AREA_UM2 = 346.0
_INDEX_LOGIC_AREA_UM2 = 265.0
HASWELL_CORE_AREA_MM2 = 26.5

# Bit widths (Section 6.4).
INDEX_CAM_BITS_PER_ENTRY = 24  # two 12-bit class indices
CLASS_CAM_BITS_PER_ENTRY = 8
POINTER_BITS = 48  # x86 uses the lower 48 bits of 64-bit addresses
ALLOC_SIZE_BITS = 20
VALID_BITS = 1


@dataclass(frozen=True)
class AreaBreakdown:
    """Area of one malloc-cache configuration."""

    num_entries: int
    cam_bits: int
    sram_bits: int
    cam_area_um2: float
    sram_area_um2: float
    logic_area_um2: float

    @property
    def total_um2(self) -> float:
        return self.cam_area_um2 + self.sram_area_um2 + self.logic_area_um2

    @property
    def fraction_of_haswell_core(self) -> float:
        return self.total_um2 / (HASWELL_CORE_AREA_MM2 * 1e6)


class AreaModel:
    """Bit counts and area estimates for arbitrary entry counts."""

    @staticmethod
    def lru_bits_per_entry(num_entries: int) -> int:
        return max(1, math.ceil(math.log2(num_entries)))

    @classmethod
    def bits_per_entry(cls, num_entries: int = _REF_ENTRIES) -> int:
        """Total storage bits per entry.

        At 16 entries this sums to 153 (24 index + 8 class + 4 LRU + 117
        data); the paper quotes "152 bits" for the same inventory -- a
        one-bit accounting difference we preserve rather than fudge."""
        return (
            INDEX_CAM_BITS_PER_ENTRY
            + CLASS_CAM_BITS_PER_ENTRY
            + cls.lru_bits_per_entry(num_entries)
            + cls.sram_bits_per_entry()
        )

    @staticmethod
    def sram_bits_per_entry() -> int:
        """Data bits: two pointers + allocated size + valid = 117."""
        return 2 * POINTER_BITS + ALLOC_SIZE_BITS + VALID_BITS

    @classmethod
    def cam_bits_per_entry(cls, num_entries: int) -> int:
        return (
            INDEX_CAM_BITS_PER_ENTRY
            + CLASS_CAM_BITS_PER_ENTRY
            + cls.lru_bits_per_entry(num_entries)
        )

    @classmethod
    def breakdown(cls, num_entries: int = _REF_ENTRIES) -> AreaBreakdown:
        """Area for ``num_entries``, scaling the published densities."""
        cam_bits = cls.cam_bits_per_entry(num_entries) * num_entries
        sram_bits = cls.sram_bits_per_entry() * num_entries
        ref_cam_bits = cls.cam_bits_per_entry(_REF_ENTRIES) * _REF_ENTRIES
        ref_sram_bits = cls.sram_bits_per_entry() * _REF_ENTRIES
        return AreaBreakdown(
            num_entries=num_entries,
            cam_bits=cam_bits,
            sram_bits=sram_bits,
            cam_area_um2=_REF_CAM_AREA_UM2 * cam_bits / ref_cam_bits,
            sram_area_um2=_REF_SRAM_AREA_UM2 * sram_bits / ref_sram_bits,
            logic_area_um2=_INDEX_LOGIC_AREA_UM2,
        )

    @staticmethod
    def pollack_expected_speedup(area_fraction: float) -> float:
        """Pollack's rule: performance ∝ sqrt(complexity).  For a small area
        increase a, expected speedup ≈ sqrt(1+a) - 1 ≈ a/2."""
        return math.sqrt(1.0 + area_fraction) - 1.0

    @classmethod
    def pollack_advantage(cls, measured_speedup: float, num_entries: int = _REF_ENTRIES) -> float:
        """How many times the measured speedup beats the Pollack expectation
        (the paper reports >140× for 0.43% mean program speedup)."""
        frac = cls.breakdown(num_entries).fraction_of_haswell_core
        return measured_speedup / cls.pollack_expected_speedup(frac)

"""Energy model: what Mallacc does to the energy of a malloc call.

The paper's cost argument is area (Section 6.4); datacenter accelerators are
equally judged on energy, and the same McPAT/CACTI literature the paper
cites supplies per-event energies.  This model prices each scheduled
micro-op with standard 28 nm figures:

* integer ALU op / branch: ~0.5 pJ
* L1 hit: ~10 pJ;  L2: ~25 pJ;  L3: ~100 pJ;  DRAM access: ~1 nJ
* store (L1 write-allocate): ~12 pJ
* malloc-cache CAM search: entries × match-line energy (~5 fJ/bit, a
  conservative TCAM figure) — a ~580-bit search at 16 entries costs a few
  pJ, well under an L1 hit, which is the
  whole trade: Mallacc swaps two L1 (or worse) loads for one tiny CAM probe.

Absolute joules are indicative; the *ratio* between baseline and Mallacc
calls is the result (see ``benchmarks/bench_energy.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.malloc_cache import MallocCacheConfig
from repro.core.area import AreaModel
from repro.sim.uop import Trace, UopKind

# Per-event energies in picojoules (28 nm, CACTI/McPAT-order figures).
ALU_PJ = 0.5
BRANCH_PJ = 0.5
L1_HIT_PJ = 10.0
L2_HIT_PJ = 25.0
L3_HIT_PJ = 100.0
DRAM_PJ = 1000.0
STORE_PJ = 12.0
CAM_SEARCH_PJ_PER_BIT = 0.005
FIXED_BLOCK_PJ_PER_CYCLE = 2.0
"""Locks/syscalls etc.: charge by their modeled latency (core active power)."""


def _load_energy(latency: int) -> float:
    """Map a load's charged latency back to the level that served it."""
    if latency < 12:
        return L1_HIT_PJ
    if latency < 34:
        return L2_HIT_PJ
    if latency < 200:
        return L3_HIT_PJ
    return DRAM_PJ


def cam_search_energy(config: MallocCacheConfig) -> float:
    """One associative probe of the malloc cache."""
    bits = AreaModel.cam_bits_per_entry(config.num_entries) * config.num_entries
    return bits * CAM_SEARCH_PJ_PER_BIT


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one call, by micro-op class (picojoules)."""

    compute_pj: float
    load_pj: float
    store_pj: float
    mallacc_pj: float
    fixed_pj: float

    @property
    def total_pj(self) -> float:
        return (
            self.compute_pj
            + self.load_pj
            + self.store_pj
            + self.mallacc_pj
            + self.fixed_pj
        )


def trace_energy(trace: Trace, cache_config: MallocCacheConfig | None = None) -> EnergyBreakdown:
    """Price every micro-op in a call's trace."""
    cache_config = cache_config or MallocCacheConfig()
    compute = load = store = mallacc = fixed = 0.0
    cam = cam_search_energy(cache_config)
    for uop in trace:
        if uop.kind is UopKind.ALU:
            compute += ALU_PJ
        elif uop.kind is UopKind.BRANCH:
            compute += BRANCH_PJ
        elif uop.kind is UopKind.LOAD:
            load += _load_energy(uop.latency)
        elif uop.kind is UopKind.PREFETCH:
            load += L1_HIT_PJ  # the fill itself is priced as the line move
        elif uop.kind is UopKind.STORE:
            store += STORE_PJ
        elif uop.kind is UopKind.MALLACC:
            mallacc += cam
        elif uop.kind is UopKind.FIXED:
            fixed += uop.latency * FIXED_BLOCK_PJ_PER_CYCLE
    return EnergyBreakdown(
        compute_pj=compute,
        load_pj=load,
        store_pj=store,
        mallacc_pj=mallacc,
        fixed_pj=fixed,
    )


class EnergyMeter:
    """Attach to an allocator to accumulate per-call energy.

    Wraps the machine's timing model so every scheduled trace is priced;
    read ``total_pj``/``calls`` afterwards.
    """

    def __init__(self, allocator, cache_config: MallocCacheConfig | None = None) -> None:
        self.allocator = allocator
        if cache_config is None:
            isa = getattr(allocator, "isa", None)
            cache_config = isa.cache.config if isa is not None else MallocCacheConfig()
        self.cache_config = cache_config
        self.total_pj = 0.0
        self.calls = 0
        self._original = allocator.machine.timing.run
        allocator.machine.timing.run = self._spy

    def _spy(self, trace):
        result = self._original(trace)
        self.total_pj += trace_energy(trace, self.cache_config).total_pj
        self.calls += 1
        return result

    def detach(self) -> None:
        self.allocator.machine.timing.run = self._original

    @property
    def mean_pj_per_call(self) -> float:
        return self.total_pj / self.calls if self.calls else 0.0

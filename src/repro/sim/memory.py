"""Simulated 64-bit memory and virtual address space.

The allocator under test manages *simulated* addresses, not Python objects.
Free-list ``next`` pointers live at the address of the free block itself (the
TCMalloc space-saving trick described in Section 3.3 of the paper), so the
functional state of every free list is stored here, word by word.

:class:`VirtualAddressSpace` plays the role of the operating system's virtual
memory interface: it hands out contiguous page runs (an ``sbrk``/``mmap``
model) to the page heap and tracks what has been reserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

WORD_SIZE = 8
"""Bytes per machine word; all pointer loads/stores are word-sized."""

NULL = 0
"""The simulated null pointer."""


class MemoryError_(Exception):
    """Raised on wild reads/writes in simulated memory (analog of a fault)."""


class SimulatedMemory:
    """A sparse 64-bit word-addressable memory.

    Only words that were explicitly written exist; reading an unwritten word
    returns zero, matching demand-zeroed pages.  Addresses must be word
    aligned: the allocator always manipulates aligned pointers, so a
    misaligned access indicates a bug in the allocator model and raises.
    """

    def __init__(self) -> None:
        self._words: dict[int, int] = {}

    def read_word(self, addr: int) -> int:
        """Return the 64-bit word at ``addr`` (0 if never written)."""
        self._check_aligned(addr)
        return self._words.get(addr, 0)

    def write_word(self, addr: int, value: int) -> None:
        """Store a 64-bit word at ``addr``."""
        self._check_aligned(addr)
        if value == 0:
            # Keep the dict sparse: zero is the default.
            self._words.pop(addr, None)
        else:
            self._words[addr] = value & 0xFFFF_FFFF_FFFF_FFFF

    def words_written(self) -> int:
        """Number of non-zero words currently stored (for tests/stats)."""
        return len(self._words)

    @staticmethod
    def _check_aligned(addr: int) -> None:
        if addr <= 0 or addr % WORD_SIZE != 0:
            raise MemoryError_(f"unaligned or null access at {addr:#x}")


@dataclass
class Reservation:
    """A contiguous range of reserved address space."""

    start: int
    length: int

    @property
    def end(self) -> int:
        return self.start + self.length


@dataclass
class VirtualAddressSpace:
    """An ``sbrk``-style growing address space for the page heap.

    The heap base is deliberately far from the metadata region used for
    allocator-internal structures (free-list headers, size-class tables) so
    that cache sets are exercised realistically and so tests can tell the two
    apart.
    """

    heap_base: int = 0x0000_2000_0000_0000
    metadata_base: int = 0x0000_1000_0000_0000
    page_size: int = 8192
    _brk: int = field(default=0, init=False)
    _metadata_brk: int = field(default=0, init=False)
    reservations: list[Reservation] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        self._brk = self.heap_base
        self._metadata_brk = self.metadata_base

    def reserve_pages(self, num_pages: int) -> Reservation:
        """Reserve ``num_pages`` contiguous pages from the OS (sbrk model)."""
        if num_pages <= 0:
            raise ValueError("num_pages must be positive")
        length = num_pages * self.page_size
        reservation = Reservation(start=self._brk, length=length)
        self._brk += length
        self.reservations.append(reservation)
        return reservation

    def reserve_metadata(self, length: int, align: int = 64) -> int:
        """Reserve allocator-metadata space (tables, free-list headers)."""
        if length <= 0:
            raise ValueError("length must be positive")
        if align & (align - 1):
            raise ValueError("align must be a power of two")
        self._metadata_brk = (self._metadata_brk + align - 1) & ~(align - 1)
        start = self._metadata_brk
        self._metadata_brk += length
        return start

    @property
    def heap_bytes_reserved(self) -> int:
        """Total bytes handed out to the page heap so far."""
        return self._brk - self.heap_base

    def owns_heap_address(self, addr: int) -> bool:
        """True if ``addr`` lies in space reserved from the OS heap."""
        return self.heap_base <= addr < self._brk

"""Arena-slab simulated memory — the columnar engine's memory model.

:class:`~repro.sim.memory.SimulatedMemory` stores every written word in one
sparse dict, which costs a hash probe per load/store and one dict entry per
live word.  The columnar engine replaces it with :class:`ArenaMemory`: the
address space is carved into fixed 64 KiB slabs, each a zero-filled
``bytearray`` viewed as a ``memoryview('Q')``, committed the first time a
nonzero word lands in its window.  A word access is then one shift to find
the slab and one masked index into a flat word array — offset arithmetic,
no per-word dict entries.  Slabs are zero-filled, which *is* the demand-zero
semantics of the sparse model: reading a never-written word returns 0 in
both, and a zero write to an uncommitted window commits nothing.

Observational equivalence with ``SimulatedMemory`` is exact and covered by
unit tests: same alignment/null faults, same demand-zero reads, and the same
:meth:`words_written` accounting (a nonzero-word census, maintained
incrementally here).
"""

from __future__ import annotations

from zlib import crc32

from repro.sim.memory import MemoryError_

_MASK64 = 0xFFFF_FFFF_FFFF_FFFF

#: log2 of the slab window in bytes: 64 KiB slabs, 8192 words each.
SLAB_SHIFT = 16
SLAB_BYTES = 1 << SLAB_SHIFT
_WORD_MASK = (SLAB_BYTES >> 3) - 1


class _Slab:
    """One committed 64 KiB window: a zero-filled bytearray of 64-bit words."""

    __slots__ = ("buf", "words")

    def __init__(self) -> None:
        self.buf = bytearray(SLAB_BYTES)
        self.words = memoryview(self.buf).cast("Q")

    def __repr__(self) -> str:
        # Value-based: state-parity tests compare machines via repr(vars()).
        # Trailing zeros are semantically absent words, so strip them first.
        data = bytes(self.buf).rstrip(b"\x00")
        return f"_Slab(crc={crc32(data):#010x})"


class ArenaMemory:
    """Drop-in :class:`~repro.sim.memory.SimulatedMemory` on arena slabs."""

    def __init__(self) -> None:
        self._slabs: dict[int, _Slab] = {}
        self._nonzero = 0

    def read_word(self, addr: int) -> int:
        """Return the 64-bit word at ``addr`` (0 if never written)."""
        if addr <= 0 or addr & 7:  # WORD_SIZE == 8
            raise MemoryError_(f"unaligned or null access at {addr:#x}")
        slab = self._slabs.get(addr >> SLAB_SHIFT)
        if slab is None:
            return 0
        return slab.words[(addr >> 3) & _WORD_MASK]

    def write_word(self, addr: int, value: int) -> None:
        """Store a 64-bit word at ``addr``."""
        if addr <= 0 or addr & 7:  # WORD_SIZE == 8
            raise MemoryError_(f"unaligned or null access at {addr:#x}")
        value &= _MASK64
        slab = self._slabs.get(addr >> SLAB_SHIFT)
        if slab is None:
            if value == 0:
                return  # demand-zero: nothing to commit
            slab = self._slabs[addr >> SLAB_SHIFT] = _Slab()
        i = (addr >> 3) & _WORD_MASK
        words = slab.words
        old = words[i]
        if old != value:
            if old == 0:
                self._nonzero += 1
            elif value == 0:
                self._nonzero -= 1
            words[i] = value

    def words_written(self) -> int:
        """Number of non-zero words currently stored (for tests/stats)."""
        return self._nonzero

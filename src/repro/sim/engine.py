"""Replay-engine selection: ``columnar`` (default) vs ``reference``.

The simulator has two executable implementations of its hot loops:

* ``columnar`` — interned trace templates are compiled once into flat
  parallel ``array`` columns (:mod:`repro.sim.columns`), scheduling walks
  primitive arrays instead of per-uop objects, application ring traffic is
  applied lazily per cache set (:mod:`repro.sim.lazyhier`), simulated memory
  is bump-pointer arena slabs (:mod:`repro.sim.arena`), and the allocator
  fast paths run as fused priced twins (:mod:`repro.alloc.fastpath`).
* ``reference`` — the original per-uop/per-line/per-word object model, kept
  byte-for-byte as the executable specification.

Both engines are *observationally identical*: every cycle count, counter,
stat dict and pooled metric must match bit-for-bit, which the differential
suite (``tests/integration/test_hot_path_differential.py`` and friends)
enforces across the full workload grid.  ``REPRO_ENGINE=reference`` selects
the reference engine process-wide; anything else — including unset —
selects columnar.  The variable is read at machine/model *construction*
time (like ``REPRO_CACHE_IMPL``), so tests can flip engines per machine
without re-importing.
"""

from __future__ import annotations

import os

ENGINE_COLUMNAR = "columnar"
ENGINE_REFERENCE = "reference"


def engine_name() -> str:
    """The engine selected by ``REPRO_ENGINE`` right now."""
    flag = os.environ.get("REPRO_ENGINE", "").strip().lower()
    if flag in ("reference", "ref", "object"):
        return ENGINE_REFERENCE
    return ENGINE_COLUMNAR


def is_columnar() -> bool:
    return engine_name() == ENGINE_COLUMNAR

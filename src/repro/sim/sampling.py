"""Sampled simulation: interval plans, samplers, and bootstrap estimators.

Detailed (cycle-accurate) replay of every operation is the dominant
wall-clock cost of the harness.  This module implements the standard
architecture-community fix: split the measured op stream into fixed-length
*intervals*, run only a sampled subset through the detailed timing model,
fast-forward the rest *functionally* (allocator state advances, nothing is
priced), and reconstruct full-program totals with confidence intervals.

Two samplers share one plan representation:

* **systematic** (SMARTS-style) — every ``stride``-th interval is detailed,
  with a warmup *slack* of cache-exact functional ops re-warming the
  microarchitectural state before each detailed interval;
* **phase** (SimPoint-style) — intervals are clustered by k-means over
  feature vectors (size-class / path histograms collected during a cheap
  functional profiling pass) and each cluster is represented by the members
  closest to its centroid, weighted by cluster population.

Everything here is deterministic: seeded ``random.Random`` for k-means and
bootstrap resampling, stable tie-breaking, no ``hash()``/``set`` iteration
on the result path — sampled estimates are byte-identical across processes
and ``PYTHONHASHSEED`` values (the PR 2 determinism contract).

This module deliberately imports nothing from ``repro`` (the harness and
allocator layers import *it*), so it stays cycle-free and usable from both.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace

#: Per-op execution modes of a sampled replay.
MODE_SKIP = 0
"""Pure functional fast-forward: allocator/malloc-cache/predictor state
advances, but no cache-hierarchy or TLB accesses happen (microarchitectural
state is intentionally stale and will be re-warmed by the slack)."""
MODE_WARM = 1
"""Cache-exact functional warming: same state updates as MODE_SKIP plus
every demand access / TLB walk / app-traffic line, so L1/L2/TLB contents
match an exact replay.  Used for the warmup slack before detailed
intervals (and everywhere when ``cache_warming='always'``)."""
MODE_DETAIL = 2
"""Full detailed simulation: uop emission, trace scheduling, cycle
accounting — identical to an exact replay of the same op."""


@dataclass(frozen=True)
class SamplingConfig:
    """Everything that defines one sampled replay (declarative, hashable)."""

    interval_ops: int = 200
    """Measured (non-warmup) allocator calls per interval; the stream tail
    that doesn't fill a whole interval is folded into the last one."""
    sampler: str = "systematic"
    """``"systematic"`` (SMARTS) or ``"phase"`` (SimPoint k-means)."""
    stride: int = 16
    """Systematic: every ``stride``-th interval is simulated in detail."""
    offset: int = 0
    """Systematic: index of the first detailed interval (mod ``stride``)."""
    num_clusters: int = 6
    """Phase: k-means cluster count (clamped to the interval count)."""
    samples_per_cluster: int = 2
    """Phase: detailed intervals per cluster (closest to the centroid).
    Two or more keeps within-stratum variance estimable."""
    warmup_ops: int = 100
    """Cache-exact warming slack: measured ops re-warmed (MODE_WARM) before
    each detailed interval when ``cache_warming='slack'``."""
    cache_warming: str = "slack"
    """``"slack"`` (default: warm only before detailed intervals) or
    ``"always"`` (every unsampled op is cache-exact — slower, near-zero
    microarchitectural drift; with ``stride=1`` this degenerates to an
    exact replay and is bit-identical to :func:`~repro.harness.runner
    .run_workload`)."""
    confidence: float = 0.95
    resamples: int = 400
    """Bootstrap resamples per confidence interval."""
    seed: int = 0
    """Seeds k-means and the bootstrap (combined with a crc32 of the metric
    name, never ``hash()``)."""
    target_ci: float | None = None
    """Error budget, as a percentage (``1.0`` = "1%").  For a single run:
    relative half-width of the allocator-cycles CI.  For a comparison:
    absolute half-width of the program-speedup CI in percentage points.
    ``None`` disables adaptive refinement."""
    max_rounds: int = 4
    """Adaptive mode: maximum refinement rounds (each round re-runs with a
    denser plan until the CI meets ``target_ci``)."""

    def __post_init__(self) -> None:
        if self.interval_ops <= 0:
            raise ValueError("interval_ops must be positive")
        if self.sampler not in ("systematic", "phase"):
            raise ValueError(f"unknown sampler {self.sampler!r}")
        if self.cache_warming not in ("slack", "always"):
            raise ValueError(f"unknown cache_warming {self.cache_warming!r}")
        if self.stride <= 0 or self.num_clusters <= 0 or self.samples_per_cluster <= 0:
            raise ValueError("stride, num_clusters and samples_per_cluster must be positive")

    def escalated(self) -> "SamplingConfig | None":
        """The next denser configuration for adaptive refinement, or
        ``None`` when the plan can get no denser (systematic ``stride`` 1,
        i.e. everything already detailed)."""
        if self.sampler == "systematic":
            if self.stride <= 1:
                return None
            return replace(self, stride=max(1, self.stride // 2))
        return replace(self, samples_per_cluster=self.samples_per_cluster + 1)


@dataclass(frozen=True)
class Stratum:
    """One sampling stratum: ``population`` intervals represented by the
    detailed members in ``sampled`` (each weighted ``population/len(sampled)``
    in the Horvitz-Thompson total)."""

    population: int
    sampled: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.sampled:
            raise ValueError("stratum must sample at least one interval")
        if self.population < len(self.sampled):
            raise ValueError("stratum population smaller than its sample")


@dataclass(frozen=True)
class SamplePlan:
    """Which intervals run detailed, and how they extrapolate to the whole
    stream.  Systematic plans have one stratum; phase plans one per cluster."""

    num_intervals: int
    strata: tuple[Stratum, ...]

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for stratum in self.strata:
            for i in stratum.sampled:
                if not 0 <= i < self.num_intervals:
                    raise ValueError(f"sampled interval {i} out of range")
                if i in seen:
                    raise ValueError(f"interval {i} sampled by two strata")
                seen.add(i)
        if sum(s.population for s in self.strata) != self.num_intervals:
            raise ValueError("strata populations must partition the intervals")

    @property
    def sampled(self) -> tuple[int, ...]:
        """All detailed interval indices, ascending."""
        return tuple(sorted(i for s in self.strata for i in s.sampled))

    def weights(self) -> dict[int, float]:
        """Extrapolation weight per sampled interval (sums to
        ``num_intervals``)."""
        out: dict[int, float] = {}
        for stratum in self.strata:
            w = stratum.population / len(stratum.sampled)
            for i in stratum.sampled:
                out[i] = w
        return out

    @property
    def detail_fraction(self) -> float:
        """Fraction of intervals simulated in detail."""
        return len(self.sampled) / self.num_intervals if self.num_intervals else 0.0


def plan_systematic(num_intervals: int, stride: int, offset: int = 0) -> SamplePlan:
    """SMARTS-style plan: every ``stride``-th interval starting at
    ``offset % stride``.  Always samples at least two intervals when two
    exist, so the bootstrap has within-stratum variability to resample."""
    if num_intervals <= 0:
        raise ValueError("need at least one interval")
    stride = max(1, min(stride, num_intervals))
    sampled = list(range(offset % stride, num_intervals, stride))
    if not sampled:  # pragma: no cover - offset%stride < stride <= n
        sampled = [0]
    if len(sampled) == 1 and num_intervals > 1:
        extra = num_intervals - 1 if sampled[0] != num_intervals - 1 else 0
        sampled.append(extra)
    return SamplePlan(
        num_intervals=num_intervals,
        strata=(Stratum(population=num_intervals, sampled=tuple(sorted(sampled))),),
    )


# ---------------------------------------------------------------------------
# Phase-aware (SimPoint-style) planning
# ---------------------------------------------------------------------------
class IntervalFeatures:
    """Per-interval behaviour histogram: size-class and execution-path
    counts, accumulated record-by-record during any replay mode (functional
    records carry path/class even at zero cycles)."""

    __slots__ = ("size_classes", "paths", "ops")

    def __init__(self) -> None:
        self.size_classes: dict[int, int] = {}
        self.paths: dict[str, int] = {}
        self.ops = 0

    def add(self, size_class: int, path: str) -> None:
        self.ops += 1
        self.size_classes[size_class] = self.size_classes.get(size_class, 0) + 1
        self.paths[path] = self.paths.get(path, 0) + 1


def feature_vectors(features: list[IntervalFeatures]) -> list[tuple[float, ...]]:
    """Fixed-dimension vectors over the union of observed size classes and
    paths, normalized per interval (fractions, so the folded longer last
    interval doesn't dominate the geometry).  Key order is sorted — stable
    across processes."""
    class_keys = sorted({cl for f in features for cl in f.size_classes})
    path_keys = sorted({p for f in features for p in f.paths})
    vectors = []
    for f in features:
        n = f.ops or 1
        vec = [f.size_classes.get(cl, 0) / n for cl in class_keys]
        vec.extend(f.paths.get(p, 0) / n for p in path_keys)
        vectors.append(tuple(vec))
    return vectors


def _sq_dist(a: tuple[float, ...], b: tuple[float, ...]) -> float:
    return sum((x - y) * (x - y) for x, y in zip(a, b))


def kmeans(
    vectors: list[tuple[float, ...]], k: int, seed: int = 0, iters: int = 30
) -> list[int]:
    """Deterministic Lloyd k-means with k-means++ seeding.

    Ties (equal distances) break toward the lower centroid index, empty
    clusters re-seed to the farthest point — every decision is a pure
    function of ``(vectors, k, seed)``, so assignments are identical across
    processes and ``PYTHONHASHSEED`` values.
    """
    n = len(vectors)
    if n == 0:
        raise ValueError("cannot cluster zero vectors")
    k = max(1, min(k, n))
    rng = random.Random(seed)

    # k-means++ seeding: first centroid uniform, then D^2-weighted.
    centroids = [vectors[rng.randrange(n)]]
    dists = [_sq_dist(v, centroids[0]) for v in vectors]
    while len(centroids) < k:
        total = sum(dists)
        if total <= 0.0:
            # All remaining points coincide with a centroid; spread over
            # the first unused distinct points (deterministic order).
            chosen = {tuple(c) for c in centroids}
            for v in vectors:
                if tuple(v) not in chosen:
                    centroids.append(v)
                    chosen.add(tuple(v))
                    if len(centroids) == k:
                        break
            else:
                centroids.append(centroids[0])
            dists = [
                min(_sq_dist(v, c) for c in centroids) for v in vectors
            ]
            continue
        r = rng.random() * total
        acc = 0.0
        pick = n - 1
        for i, d in enumerate(dists):
            acc += d
            if acc >= r:
                pick = i
                break
        centroids.append(vectors[pick])
        dists = [min(d, _sq_dist(v, centroids[-1])) for v, d in zip(vectors, dists)]

    assignments = [0] * n
    for _ in range(iters):
        changed = False
        # Assign: nearest centroid, ties to the lowest index.
        for i, v in enumerate(vectors):
            best, best_d = 0, _sq_dist(v, centroids[0])
            for c in range(1, len(centroids)):
                d = _sq_dist(v, centroids[c])
                if d < best_d:
                    best, best_d = c, d
            if assignments[i] != best:
                assignments[i] = best
                changed = True
        # Update: mean of members; empty cluster takes the farthest point.
        new_centroids = []
        for c in range(len(centroids)):
            members = [vectors[i] for i in range(n) if assignments[i] == c]
            if members:
                dim = len(members[0])
                new_centroids.append(
                    tuple(sum(m[d] for m in members) / len(members) for d in range(dim))
                )
            else:
                far = max(
                    range(n), key=lambda i: (_sq_dist(vectors[i], centroids[assignments[i]]), -i)
                )
                new_centroids.append(vectors[far])
        if not changed and new_centroids == centroids:
            break
        centroids = new_centroids
    return assignments


def plan_phase(
    vectors: list[tuple[float, ...]],
    num_clusters: int,
    samples_per_cluster: int = 2,
    seed: int = 0,
) -> SamplePlan:
    """SimPoint-style plan: k-means over interval feature vectors; each
    cluster becomes a stratum sampled by its members closest to the
    centroid (ties break on interval index)."""
    n = len(vectors)
    if n == 0:
        raise ValueError("need at least one interval")
    assignments = kmeans(vectors, num_clusters, seed=seed)
    strata = []
    for c in sorted(set(assignments)):
        members = [i for i in range(n) if assignments[i] == c]
        dim = len(vectors[members[0]])
        centroid = tuple(
            sum(vectors[i][d] for i in members) / len(members) for d in range(dim)
        )
        take = min(samples_per_cluster, len(members))
        closest = sorted(members, key=lambda i: (_sq_dist(vectors[i], centroid), i))[:take]
        strata.append(Stratum(population=len(members), sampled=tuple(sorted(closest))))
    return SamplePlan(num_intervals=n, strata=tuple(strata))


def plan_op_modes(
    plan: SamplePlan,
    interval_ops: int,
    num_measured: int,
    warmup_ops: int,
    cache_warming: str = "slack",
) -> list[int]:
    """Per-measured-op execution mode for one sampled replay.

    Measured op ``m`` belongs to interval ``min(m // interval_ops,
    num_intervals - 1)`` (tail folded into the last interval).  Ops of
    sampled intervals run :data:`MODE_DETAIL`; a warming slack of measured
    ops immediately before each detailed interval runs :data:`MODE_WARM`
    (the SMARTS warming slack); everything else runs :data:`MODE_SKIP` —
    or :data:`MODE_WARM` throughout when ``cache_warming='always'``.

    The slack depth is *staggered* per interval over ``[warmup_ops,
    2*warmup_ops)`` with a fixed Weyl sequence: the residual state error at
    a detail-interval boundary depends on the warming depth, so pinning one
    depth turns that residual into a shared systematic offset across every
    interval.  Varying the depth decorrelates the boundary error between
    intervals — it shows up as inter-interval variance the bootstrap CI can
    see instead of a bias it cannot.  The stagger depends only on the
    interval index, so paired replays (and re-runs under any seed) get
    identical mode maps.
    """
    base = MODE_WARM if cache_warming == "always" else MODE_SKIP
    modes = [base] * num_measured
    last = plan.num_intervals - 1
    for j in plan.sampled:
        start = j * interval_ops
        end = num_measured if j == last else min(num_measured, start + interval_ops)
        if base == MODE_SKIP and warmup_ops > 0:
            depth = warmup_ops + (j * 2654435761) % warmup_ops
            for m in range(max(0, start - depth), start):
                if modes[m] == MODE_SKIP:
                    modes[m] = MODE_WARM
        for m in range(start, end):
            modes[m] = MODE_DETAIL
    return modes


# ---------------------------------------------------------------------------
# Student-t machinery (pure python: the harness must work without scipy)
# ---------------------------------------------------------------------------
def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the regularized incomplete beta (Lentz)."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return h


def betainc_regularized(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if not 0.0 <= x <= 1.0:
        raise ValueError("x must be in [0, 1]")
    if x == 0.0 or x == 1.0:
        return x
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_cdf(t: float, df: float) -> float:
    """CDF of Student's t with ``df`` degrees of freedom."""
    if df <= 0:
        raise ValueError("df must be positive")
    if t == 0.0:
        return 0.5
    tail = 0.5 * betainc_regularized(df / 2.0, 0.5, df / (df + t * t))
    return 1.0 - tail if t > 0 else tail


def student_t_sf2(t: float, df: float) -> float:
    """Two-sided survival ``P(|T| >= |t|)`` — the t-test p-value."""
    if df <= 0:
        raise ValueError("df must be positive")
    return betainc_regularized(df / 2.0, 0.5, df / (df + t * t))


def student_t_quantile(p: float, df: float) -> float:
    """Inverse CDF by bisection (monotone, ~50 iterations to 1e-10)."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    if p == 0.5:
        return 0.0
    lo, hi = -1.0, 1.0
    while student_t_cdf(lo, df) > p:
        lo *= 2.0
    while student_t_cdf(hi, df) < p:
        hi *= 2.0
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if student_t_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-10:
            break
    return 0.5 * (lo + hi)


def normal_quantile(p: float) -> float:
    """Standard-normal inverse CDF by bisection on ``erf``."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    if p == 0.5:
        return 0.0
    lo, hi = -1.0, 1.0
    cdf = lambda x: 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))
    while cdf(lo) > p:
        lo *= 2.0
    while cdf(hi) < p:
        hi *= 2.0
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if cdf(mid) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-10:
            break
    return 0.5 * (lo + hi)


def small_sample_width_factor(n: int, confidence: float) -> float:
    """CI widening factor for a bootstrap over ``n`` sampled intervals.

    The percentile bootstrap under-covers at SMARTS-scale sample counts
    (5-15 detailed intervals): its quantiles approximate the *normal*
    sampling distribution, while the honest small-sample interval is
    Student-t with ``n - 1`` degrees of freedom.  Scaling the percentile
    half-widths by ``t_{n-1} / z`` restores nominal coverage and converges
    to 1 as ``n`` grows.
    """
    if n < 2:
        return 1.0
    q = 1.0 - (1.0 - confidence) / 2.0
    return student_t_quantile(q, n - 1) / normal_quantile(q)


# ---------------------------------------------------------------------------
# Estimation
# ---------------------------------------------------------------------------
def percentile_rank_indices(resamples: int, confidence: float) -> tuple[int, int]:
    """Rank-order indices (0-based, into a sorted resample list) bracketing
    a two-sided percentile interval.

    The q-th percentile of n ordered values is the ``ceil(q*n)``-th order
    statistic, i.e. index ``ceil(q*n) - 1``; truncating with ``int()``
    instead overshoots the upper index by one whenever ``q*n`` is integral
    (the classic off-by-one this replaces — at ``resamples=2000``,
    ``confidence=0.95`` the old upper index 1950 sits *above* the 97.5th
    percentile order statistic 1949)."""
    if resamples <= 0:
        raise ValueError("need at least one resample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    alpha = (1.0 - confidence) / 2.0
    lo = max(0, _ceil_tolerant(alpha * resamples) - 1)
    hi = min(resamples - 1, _ceil_tolerant((1.0 - alpha) * resamples) - 1)
    return lo, hi


def _ceil_tolerant(x: float) -> int:
    """``ceil`` that forgives float noise: ``(1 - 0.95)/2 * 2000`` computes
    to ``50.00000000000004``, and a naive ceil would overshoot the order
    statistic by one for exactly the round quantiles people request."""
    nearest = round(x)
    if abs(x - nearest) < 1e-9 * max(1.0, abs(x)):
        return int(nearest)
    return math.ceil(x)


def horvitz_thompson_total(plan: SamplePlan, values: dict[int, float]) -> float:
    """Point estimate of the whole-stream total from per-sampled-interval
    values: each stratum's sample mean scaled by its population."""
    total = 0.0
    for stratum in plan.strata:
        w = stratum.population / len(stratum.sampled)
        total += w * sum(values[i] for i in stratum.sampled)
    return total


def bootstrap_metric_ci(
    plan: SamplePlan,
    values: dict[int, tuple[float, ...]],
    metric,
    resamples: int = 400,
    confidence: float = 0.95,
    seed: int = 0,
) -> tuple[float, float, float]:
    """Stratified-bootstrap interval for a metric of extrapolated totals.

    ``values[i]`` holds the per-interval measurements of interval ``i`` as
    a tuple of components (e.g. ``(baseline_cycles, mallacc_cycles)`` —
    *paired*: both sides measured on the same interval, so interval-to-
    interval variation cancels in ratio metrics).  Each bootstrap round
    resamples intervals with replacement *within each stratum*, extrapolates
    component totals with the stratum weights, and applies
    ``metric(totals)``; the returned triple is ``(point, lo, hi)`` with the
    point estimate computed on the real sample and the interval from
    :func:`percentile_rank_indices`, its two half-widths widened by
    :func:`small_sample_width_factor` (the percentile bootstrap under-covers
    at the 5-15 sampled intervals typical of SMARTS-scale plans).
    Deterministic given ``seed``.
    """
    ncomp = len(next(iter(values.values())))
    point_totals = [0.0] * ncomp
    strata_data = []  # (weight, [component tuples])
    for stratum in plan.strata:
        w = stratum.population / len(stratum.sampled)
        rows = [values[i] for i in stratum.sampled]
        strata_data.append((w, rows))
        for row in rows:
            for c in range(ncomp):
                point_totals[c] += w * row[c]
    point = metric(tuple(point_totals))

    rng = random.Random(seed)
    outcomes = []
    for _ in range(resamples):
        totals = [0.0] * ncomp
        for w, rows in strata_data:
            n = len(rows)
            for _ in range(n):
                row = rows[rng.randrange(n)]
                for c in range(ncomp):
                    totals[c] += w * row[c]
        outcomes.append(metric(tuple(totals)))
    outcomes.sort()
    lo_i, hi_i = percentile_rank_indices(resamples, confidence)
    factor = small_sample_width_factor(len(values), confidence)
    lo = point - max(0.0, point - outcomes[lo_i]) * factor
    hi = point + max(0.0, outcomes[hi_i] - point) * factor
    return point, lo, hi


def bootstrap_total_ci(
    plan: SamplePlan,
    values: dict[int, float],
    resamples: int = 400,
    confidence: float = 0.95,
    seed: int = 0,
) -> tuple[float, float, float]:
    """Single-component convenience wrapper over
    :func:`bootstrap_metric_ci`: ``(point, lo, hi)`` for a plain total."""
    return bootstrap_metric_ci(
        plan,
        {i: (v,) for i, v in values.items()},
        lambda t: t[0],
        resamples=resamples,
        confidence=confidence,
        seed=seed,
    )

"""Multi-core cache coherence: private L1/L2 per core, shared L3.

Section 2 names "false cache sharing" among the problems multithreaded
allocators were redesigned around, and cross-thread frees physically move
cache lines between cores.  This module supplies the substrate:

* each core owns a private L1/L2 (a :class:`CoherentHierarchy`);
* all cores share one L3 (the same :class:`SetAssociativeCache` instance);
* a :class:`CoherenceDirectory` tracks each line's last writer — a write
  invalidates every other core's private copies (MESI's M-state upgrade),
  and a read of a remotely-dirty line pays a cache-to-cache transfer
  penalty before the line becomes shared.

The model is deliberately MESI-shaped rather than MESI-complete: enough to
price producer→consumer free-list traffic and allocator-metadata ping-pong,
which is what the multithreaded experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.cache import SetAssociativeCache, cache_class_from_env
from repro.sim.hierarchy import CacheHierarchy, HierarchyConfig
from repro.sim.memory import SimulatedMemory, VirtualAddressSpace


def _default_memory() -> SimulatedMemory:
    # Engine-selected shared memory (multicore hierarchies themselves stay
    # on the coherent eager model under both engines).
    from repro.sim.arena import ArenaMemory
    from repro.sim.engine import is_columnar

    return ArenaMemory() if is_columnar() else SimulatedMemory()
from repro.sim.timing import CoreConfig, TimingModel


@dataclass
class CoherenceStats:
    invalidations: int = 0
    remote_transfers: int = 0
    transfer_cycles: int = 0


class CoherenceDirectory:
    """Shared state: line ownership and the L3 every core fills."""

    def __init__(self, transfer_penalty: int = 40) -> None:
        self.cores: list["CoherentHierarchy"] = []
        self.last_writer: dict[int, int] = {}
        self.transfer_penalty = transfer_penalty
        self.stats = CoherenceStats()

    def register(self, core: "CoherentHierarchy") -> None:
        self.cores.append(core)

    def on_write(self, core_id: int, addr: int) -> int:
        """Record ownership; invalidate all other private copies.  Returns
        the extra cycles the writing core pays (ownership upgrade)."""
        line = addr >> 6
        penalty = 0
        previous = self.last_writer.get(line)
        if previous is not None and previous != core_id:
            penalty = self.transfer_penalty
            self.stats.remote_transfers += 1
            self.stats.transfer_cycles += penalty
        for other in self.cores:
            if other.core_id != core_id:
                if other.l1.invalidate(addr):
                    self.stats.invalidations += 1
                if other.l2.invalidate(addr):
                    self.stats.invalidations += 1
        self.last_writer[line] = core_id
        return penalty

    def on_read(self, core_id: int, addr: int, local_hit: bool) -> int:
        """A read of a line another core dirtied pays a cache-to-cache
        transfer; the line then becomes shared (no writer)."""
        line = addr >> 6
        writer = self.last_writer.get(line)
        if writer is None or writer == core_id or local_hit:
            return 0
        self.last_writer.pop(line, None)
        self.stats.remote_transfers += 1
        self.stats.transfer_cycles += self.transfer_penalty
        return self.transfer_penalty


class CoherentHierarchy(CacheHierarchy):
    """One core's view: private L1/L2, shared L3, directory coherence."""

    def __init__(
        self,
        directory: CoherenceDirectory,
        core_id: int,
        shared_l3: SetAssociativeCache,
        config: HierarchyConfig | None = None,
    ) -> None:
        super().__init__(config)
        self.directory = directory
        self.core_id = core_id
        self.l3 = shared_l3  # all cores fill and hit the same L3
        self._refresh_fast_path()  # l3 changed class identity; re-gate
        directory.register(self)

    def _back_invalidate_l3_victim(self, victim: int) -> None:
        # The L3 is shared and inclusive of *every* core's private levels,
        # so its eviction must be broadcast, not applied locally.
        for core in self.directory.cores:
            core.l2.invalidate(victim)
            core.l1.invalidate(victim)

    def access(self, addr: int, write: bool = False) -> int:
        local_hit = self.l1.contains(addr) or self.l2.contains(addr)
        latency = super().access(addr, write)
        if write:
            latency += self.directory.on_write(self.core_id, addr)
        else:
            latency += self.directory.on_read(self.core_id, addr, local_hit)
        return latency


@dataclass
class SharedSubstrate:
    """The pieces every core of one simulated machine shares."""

    memory: SimulatedMemory = field(default_factory=lambda: _default_memory())
    address_space: VirtualAddressSpace = field(default_factory=VirtualAddressSpace)
    directory: CoherenceDirectory = field(default_factory=CoherenceDirectory)
    l3: SetAssociativeCache | None = None

    def __post_init__(self) -> None:
        if self.l3 is None:
            self.l3 = cache_class_from_env()(HierarchyConfig().l3)


def build_core_machines(num_cores: int, substrate: SharedSubstrate | None = None):
    """Construct ``num_cores`` Machines sharing memory, address space, and
    L3, each with private L1/L2/TLB and its own predictor.

    Returns ``(machines, substrate)``.  Callers that interleave cores on one
    global timeline should keep the machines' clocks synchronized (see
    ``MultiThreadAllocator._sync_clocks``).
    """
    from repro.alloc.context import Machine

    substrate = substrate or SharedSubstrate()
    machines = []
    for core_id in range(num_cores):
        hierarchy = CoherentHierarchy(substrate.directory, core_id, substrate.l3)
        machines.append(
            Machine(
                memory=substrate.memory,
                address_space=substrate.address_space,
                hierarchy=hierarchy,
                timing=TimingModel(CoreConfig()),
            )
        )
    return machines, substrate

"""Memoized trace scheduling: the simulator-side analogue of the paper.

Mallacc works because malloc fast paths are short, highly repetitive
instruction sequences; the same property makes the *simulation* of those
paths repetitive.  :meth:`repro.sim.timing.TimingModel.run` is a pure
function of a trace's structure — per micro-op, exactly ``(kind, latency,
deps)`` (plus ``tag`` for the ablation variants) and the core configuration —
so scheduling a structurally identical trace twice is wasted work.  During a
macro-workload replay the same few dozen fast-path shapes recur hundreds of
thousands of times.

:class:`TraceCache` memoizes scheduling results keyed by a canonical trace
fingerprint (:meth:`repro.sim.uop.Trace.fingerprint`), with LRU bounding and
hit/miss/eviction statistics.  Correctness rests on two guarantees:

* **purity** — the scheduler reads nothing but the fingerprinted fields and
  the (immutable) :class:`~repro.sim.timing.CoreConfig`; each
  :class:`~repro.sim.timing.TimingModel` owns its cache, so configs never
  mix;
* **immutability** — cached :class:`~repro.sim.timing.TimingResult` objects
  are shared between hits and must not be mutated by callers (nothing in the
  repository does; the differential sweep in
  ``tests/integration/test_trace_cache_differential.py`` would catch it).

Disable with ``CoreConfig(trace_cache_entries=0)``,
``TCMalloc(memoize_traces=False)``, or ``--no-trace-cache`` on the CLI when
debugging the scheduler itself.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

#: Default LRU capacity.  A macro replay produces a few hundred distinct
#: fingerprints; 4096 keeps even adversarial class-thrashing sweeps resident
#: while bounding memory to a few MB of small TimingResult objects.
DEFAULT_TRACE_CACHE_ENTRIES = 4096


@dataclass
class TraceCacheStats:
    """Hit/miss/eviction counters for one :class:`TraceCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> tuple[int, int]:
        """(hits, misses) — subtract two snapshots to scope stats to a run."""
        return (self.hits, self.misses)

    def as_dict(self) -> dict[str, float]:
        """JSON-ready counters (consumed by
        :func:`repro.obs.bridges.stats_registry` and reports)."""
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "hit_rate": self.hit_rate,
        }


class TraceCache:
    """LRU map from trace fingerprint to a scheduling result.

    The cache is deliberately generic over the key: full runs are keyed by
    the fingerprint alone, ablated runs by ``(fingerprint, frozenset(tags))``
    — the two key shapes cannot collide.
    """

    def __init__(self, max_entries: int = DEFAULT_TRACE_CACHE_ENTRIES) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive; use no cache to disable")
        self.max_entries = max_entries
        self.stats = TraceCacheStats()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Any | None:
        """Look up ``key``; counts a hit (refreshing LRU order) or a miss."""
        result = self._entries.get(key)
        if result is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return result

    def put(self, key: Hashable, result: Any) -> None:
        entries = self._entries
        entries[key] = result
        if len(entries) > self.max_entries:
            entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop all entries (stats are kept; they describe the lifetime)."""
        self._entries.clear()

    def export_entries(self) -> dict[Hashable, Any]:
        """A shallow copy of the live entries, for harvesting into a
        :class:`repro.sim.warm.WarmBank`.  Values are the shared immutable
        ``TimingResult`` objects — safe to hand to other caches."""
        return dict(self._entries)

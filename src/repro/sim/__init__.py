"""Hardware simulation substrate.

The paper evaluates Mallacc with XIOSim, a cycle-level x86 simulator, running
real TCMalloc binaries.  This package is the Python substitute: a trace-driven
micro-op timing model over a real set-associative cache hierarchy.  The
allocator (``repro.alloc``) *emits* the loads, stores, and ALU operations its
x86 counterpart would execute; :class:`~repro.sim.timing.TimingModel` prices
them with dependency-graph scheduling on a Haswell-like core model.

The mechanisms the paper's results hinge on are all reproduced:

* dependent load chains serialize (size-class table lookups, free-list pops),
* loads that miss in L1/L2/L3 stall dependents by the real miss latency,
* stores are buffered and stay off the critical path,
* an antagonist can evict allocator state from L1/L2 between calls,
* prefetches complete asynchronously and can block a consumer that arrives
  too early (the senior-store-queue semantics of ``mcnxtprefetch``).
"""

from repro.sim.cache import CacheConfig, SetAssociativeCache
from repro.sim.hierarchy import CacheHierarchy, HierarchyConfig
from repro.sim.memory import SimulatedMemory, VirtualAddressSpace
from repro.sim.timing import CoreConfig, TimingModel, TimingResult
from repro.sim.tlb import TLB, TLBConfig
from repro.sim.trace_cache import TraceCache, TraceCacheStats
from repro.sim.uop import Tag, Trace, TraceBuilder, Uop, UopKind

__all__ = [
    "CacheConfig",
    "CacheHierarchy",
    "CoreConfig",
    "HierarchyConfig",
    "SetAssociativeCache",
    "SimulatedMemory",
    "Tag",
    "TimingModel",
    "TimingResult",
    "TLB",
    "TLBConfig",
    "Trace",
    "TraceCache",
    "TraceCacheStats",
    "TraceBuilder",
    "Uop",
    "UopKind",
    "VirtualAddressSpace",
]

"""Branch prediction model.

The malloc fast path "contains a few conditional branches that are easy to
predict and no loops" (Section 3.3), so in steady state branches cost one
cycle.  This module still models the warmup: a per-site two-bit saturating
counter charges a mispredict penalty while a branch's bias is being learned,
which matters for cold-start microbenchmark fidelity and gives failure-
injection tests something real to exercise.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BranchConfig:
    mispredict_penalty: int = 14
    """Pipeline refill cost on a Haswell-class core."""


class BranchPredictor:
    """Per-site two-bit saturating counters (0..3; taken if >= 2)."""

    def __init__(self, config: BranchConfig | None = None) -> None:
        self.config = config or BranchConfig()
        self._counters: dict[str, int] = {}
        self.predictions = 0
        self.mispredicts = 0

    def predict(self, site: str, taken: bool) -> int:
        """Record the outcome of branch ``site``; returns the penalty in
        cycles (0 if predicted correctly)."""
        counter = self._counters.get(site, 2)
        predicted_taken = counter >= 2
        self.predictions += 1
        if taken:
            counter = min(3, counter + 1)
        else:
            counter = max(0, counter - 1)
        self._counters[site] = counter
        if predicted_taken != taken:
            self.mispredicts += 1
            return self.config.mispredict_penalty
        return 0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.predictions if self.predictions else 0.0

    def reset(self) -> None:
        self._counters.clear()
        self.predictions = 0
        self.mispredicts = 0

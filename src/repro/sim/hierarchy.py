"""Three-level inclusive cache hierarchy with Haswell-like latencies.

Latencies follow the paper's anchors: the text quotes 34 cycles for an L3 hit
on Haswell (Section 6.1, discussion of Figure 16); L1/L2 use the well-known
4/12 cycle figures for the same microarchitecture, and main memory is modeled
at 200 cycles.

``access`` returns the load-to-use latency for an address and updates the
resident state of every level (fills propagate toward L1).  ``prefetch``
returns the same latency without charging it to the critical path — the
caller decides when the prefetched value is usable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.cache import CacheConfig, SetAssociativeCache, cache_class_from_env


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry of the full data-side hierarchy."""

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 32 * 1024, 8, latency=4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 256 * 1024, 8, latency=12)
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig("L3", 8 * 1024 * 1024, 16, latency=34)
    )
    dram_latency: int = 200


class CacheHierarchy:
    """L1D/L2/L3 + DRAM with inclusive fills and antagonist hooks."""

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self.config = config or HierarchyConfig()
        cache_cls = cache_class_from_env()
        self.l1 = cache_cls(self.config.l1)
        self.l2 = cache_cls(self.config.l2)
        self.l3 = cache_cls(self.config.l3)
        self.dram_accesses = 0
        self._refresh_fast_path()

    def _refresh_fast_path(self) -> None:
        """Enable the inlined dict-walk in :meth:`access` only when every
        level is the stock O(1) cache with a common line size.  Subclasses
        that swap levels (shared L3) must call this again.

        ``demand_access`` is the pre-dispatched bound method emitters should
        call for ordinary loads/stores: the inlined walk when it applies,
        plain :meth:`access` otherwise (including any subclass override —
        ``CoherentHierarchy`` wraps access with directory coherence, so its
        instances always resolve to the wrapper here)."""
        self._fast = (
            type(self.l1) is SetAssociativeCache
            and type(self.l2) is SetAssociativeCache
            and type(self.l3) is SetAssociativeCache
            and self.l1._line_shift == self.l2._line_shift == self.l3._line_shift
        )
        if self._fast:
            # Hoisted geometry/latency constants for the inlined walk.
            self._shift = self.l1._line_shift
            self._sets1, self._n1, self._a1 = self.l1._sets, self.l1._num_sets, self.l1._assoc
            self._sets2, self._n2, self._a2 = self.l2._sets, self.l2._num_sets, self.l2._assoc
            self._sets3, self._n3, self._a3 = self.l3._sets, self.l3._num_sets, self.l3._assoc
            self._lat1 = self.config.l1.latency
            self._lat2 = self.config.l2.latency
            self._lat3 = self.config.l3.latency
            self._lat_dram = self.config.dram_latency
        self._fast_demand = self._fast and type(self) is CacheHierarchy
        if self._fast:
            # Plain hierarchies inline even the back-invalidations; anything
            # with a _back_invalidate_l3_victim override keeps the hook.
            self._access_inner = (
                self._access_fast_plain if self._fast_demand else self._access_fast
            )
        if self._fast_demand:
            self.demand_access = self._access_inner
        else:
            self.demand_access = self.access

    @property
    def levels(self) -> tuple[SetAssociativeCache, ...]:
        return (self.l1, self.l2, self.l3)

    def access(self, addr: int, write: bool = False) -> int:
        """Perform a demand access; returns load-to-use latency in cycles.

        Writes are write-allocate: they fill the line like a read.  Their
        *latency* contribution is decided by the timing model (stores commit
        through the store buffer and normally stay off the critical path),
        but the line movement is identical.
        """
        del write  # line movement is identical for loads and stores
        if self._fast:
            return self._access_inner(addr)
        if self.l1.lookup(addr):
            return self.config.l1.latency
        if self.l2.lookup(addr):
            self.l1.insert(addr)
            return self.config.l2.latency
        if self.l3.lookup(addr):
            self._fill_inner(addr)
            return self.config.l3.latency
        self.dram_accesses += 1
        victim = self.l3.insert(addr)
        if victim is not None:
            self._back_invalidate_l3_victim(victim)
        self._fill_inner(addr)
        return self.config.dram_latency

    def _access_fast_plain(self, addr: int) -> int:
        """:meth:`_access_fast` with the fills and back-invalidations inlined
        too — valid only for plain hierarchies (``_fast_demand``), where the
        L3 back-invalidation targets this instance's own L1/L2.

        Two structural shortcuts relative to the generic path, both
        behavior-preserving: the inner-level fills skip the ``insert``
        refresh-if-present check (the line just *missed* that level and
        nothing re-inserts it in between), and victims are picked with a
        ``for…break`` first-key read instead of ``next(iter(…))``."""
        line = addr >> self._shift
        ways1 = self._sets1[line % self._n1]
        if line in ways1:
            self.l1.hits += 1
            del ways1[line]
            ways1[line] = None
            return self._lat1
        self.l1.misses += 1
        ways2 = self._sets2[line % self._n2]
        if line in ways2:
            self.l2.hits += 1
            del ways2[line]
            ways2[line] = None
            if len(ways1) >= self._a1:
                for v1 in ways1:
                    break
                del ways1[v1]
            ways1[line] = None
            return self._lat2
        self.l2.misses += 1
        ways3 = self._sets3[line % self._n3]
        if line in ways3:
            self.l3.hits += 1
            del ways3[line]
            ways3[line] = None
            latency = self._lat3
        else:
            self.l3.misses += 1
            self.dram_accesses += 1
            if len(ways3) >= self._a3:
                for v3 in ways3:
                    break
                del ways3[v3]
                # Inclusive back-invalidation of this core's inner levels.
                vset = self._sets2[v3 % self._n2]
                if v3 in vset:
                    del vset[v3]
                vset = self._sets1[v3 % self._n1]
                if v3 in vset:
                    del vset[v3]
            ways3[line] = None
            latency = self._lat_dram
        # Fill L2 (back-invalidating its victim from L1), then L1.
        if len(ways2) >= self._a2:
            for v2 in ways2:
                break
            del ways2[v2]
            vset = self._sets1[v2 % self._n1]
            if v2 in vset:
                del vset[v2]
        ways2[line] = None
        if len(ways1) >= self._a1:
            for v1 in ways1:
                break
            del ways1[v1]
        ways1[line] = None
        return latency

    def _access_fast(self, addr: int) -> int:
        """Inlined equivalent of the generic probe chain above, walking the
        per-set dicts of :class:`SetAssociativeCache` directly with hoisted
        geometry (see :meth:`_refresh_fast_path`).  Semantics — LRU order,
        counters, inclusion back-invalidations — are identical; the sim unit
        tests and the hot-path differential suite compare it against the
        reference implementation byte-for-byte."""
        line = addr >> self._shift
        ways1 = self._sets1[line % self._n1]
        if line in ways1:
            self.l1.hits += 1
            del ways1[line]
            ways1[line] = None
            return self._lat1
        self.l1.misses += 1
        ways2 = self._sets2[line % self._n2]
        if line in ways2:
            self.l2.hits += 1
            del ways2[line]
            ways2[line] = None
            self._fill_fast(line, ways1, ways2, fill_l2=False)
            return self._lat2
        self.l2.misses += 1
        ways3 = self._sets3[line % self._n3]
        if line in ways3:
            self.l3.hits += 1
            del ways3[line]
            ways3[line] = None
            self._fill_fast(line, ways1, ways2, fill_l2=True)
            return self._lat3
        self.l3.misses += 1
        self.dram_accesses += 1
        if len(ways3) >= self._a3:
            victim = next(iter(ways3))
            del ways3[victim]
            self._back_invalidate_l3_victim(victim << self._shift)
        ways3[line] = None
        self._fill_fast(line, ways1, ways2, fill_l2=True)
        return self._lat_dram

    def _fill_fast(self, line, ways1, ways2, fill_l2) -> None:
        """Dict-walk twin of :meth:`_fill_inner` (insert semantics: refresh
        if present, else evict the true-LRU victim; L2 victims are
        back-invalidated from L1)."""
        if fill_l2:
            if line in ways2:
                del ways2[line]
                ways2[line] = None
            else:
                if len(ways2) >= self._a2:
                    victim = next(iter(ways2))
                    del ways2[victim]
                    vset = self._sets1[victim % self._n1]
                    if victim in vset:
                        del vset[victim]
                ways2[line] = None
        if line in ways1:
            del ways1[line]
            ways1[line] = None
        else:
            if len(ways1) >= self._a1:
                del ways1[next(iter(ways1))]
            ways1[line] = None

    def _fill_inner(self, addr: int) -> None:
        """Fill L2 then L1, honoring inclusion: an L2 victim may still be
        live in L1 and must be back-invalidated there."""
        victim = self.l2.insert(addr)
        if victim is not None:
            self.l1.invalidate(victim)
        self.l1.insert(addr)

    def _back_invalidate_l3_victim(self, victim: int) -> None:
        """An L3 eviction must purge the line from every inner level the L3
        backs (inclusive hierarchy).  Single-core: this hierarchy's L1/L2;
        :class:`repro.sim.multicore.CoherentHierarchy` overrides this to
        broadcast across all cores sharing the L3."""
        self.l2.invalidate(victim)
        self.l1.invalidate(victim)

    def _access_write(self, addr: int) -> int:
        """``access(addr, write=True)`` as a single bound callable, for
        emitters that pre-bind their store path."""
        return self.access(addr, True)

    def prefetch(self, addr: int) -> int:
        """Fill ``addr`` and report when the data arrives (same latency as a
        demand access, but the caller treats it as asynchronous)."""
        return self.access(addr)

    def probe_latency(self, addr: int) -> int:
        """Latency a load to ``addr`` *would* see right now, without moving
        any lines.  Used by tests and the analytic validation model."""
        if self.l1.contains(addr):
            return self.config.l1.latency
        if self.l2.contains(addr):
            return self.config.l2.latency
        if self.l3.contains(addr):
            return self.config.l3.latency
        return self.config.dram_latency

    def antagonize(self) -> int:
        """Evict the less-used half of each L1 and L2 set (paper Section 5)."""
        return self.l1.evict_less_used_half() + self.l2.evict_less_used_half()

    def touch_lines(self, base: int, num_lines: int, stride: int = 64) -> None:
        """Model application memory traffic between allocator calls by
        touching ``num_lines`` lines starting at ``base``.

        On plain fast-path hierarchies the whole stream runs in one loop
        with hoisted locals and hit/miss counters accumulated at the end —
        line movement and final counter values are identical to calling
        :meth:`access` per line (nothing can observe the counters
        mid-stream), and the differential suite holds it to that."""
        if not self._fast_demand:
            access = self.demand_access
            for i in range(num_lines):
                access(base + i * stride)
            return
        shift = self._shift
        sets1, n1, a1 = self._sets1, self._n1, self._a1
        sets2, n2, a2 = self._sets2, self._n2, self._a2
        sets3, n3, a3 = self._sets3, self._n3, self._a3
        if stride >= (1 << shift) and stride % (1 << shift) == 0:
            # Whole-line strides never carry into the line number, so the
            # touched lines are an exact arithmetic range (C-level iteration).
            step = stride >> shift
            start = base >> shift
            lines = range(start, start + num_lines * step, step)
        else:
            lines = [(base + i * stride) >> shift for i in range(num_lines)]
        h1 = m1 = h2 = m2 = h3 = m3 = dram = 0
        _len = len  # local bind: ~3 calls per missing line, below
        for line in lines:
            ways1 = sets1[line % n1]
            if line in ways1:
                h1 += 1
                del ways1[line]
                ways1[line] = None
                continue
            m1 += 1
            ways2 = sets2[line % n2]
            if line in ways2:
                h2 += 1
                del ways2[line]
                ways2[line] = None
                if _len(ways1) >= a1:
                    for v1 in ways1:
                        break
                    del ways1[v1]
                ways1[line] = None
                continue
            m2 += 1
            ways3 = sets3[line % n3]
            if line in ways3:
                h3 += 1
                del ways3[line]
                ways3[line] = None
            else:
                m3 += 1
                dram += 1
                if _len(ways3) >= a3:
                    for v3 in ways3:
                        break
                    del ways3[v3]
                    vset = sets2[v3 % n2]
                    if v3 in vset:
                        del vset[v3]
                    vset = sets1[v3 % n1]
                    if v3 in vset:
                        del vset[v3]
                ways3[line] = None
            if _len(ways2) >= a2:
                for v2 in ways2:
                    break
                del ways2[v2]
                vset = sets1[v2 % n1]
                if v2 in vset:
                    del vset[v2]
            ways2[line] = None
            if _len(ways1) >= a1:
                for v1 in ways1:
                    break
                del ways1[v1]
            ways1[line] = None
        self.l1.hits += h1
        self.l1.misses += m1
        self.l2.hits += h2
        self.l2.misses += m2
        self.l3.hits += h3
        self.l3.misses += m3
        self.dram_accesses += dram

    def touch_line_window(self, ranges: list[tuple[int, int]]) -> None:
        """Replay a window of *distinct* whole lines — ``ranges`` is a list of
        ``(base_addr, num_lines)`` runs of consecutive 64-byte lines, oldest
        first — aging only the L3 for all but the trailing
        ``l2_assoc * l2_sets`` lines.

        The sampled runner's deferred app-traffic flush is the intended
        caller: its window never repeats a line and is long enough that the
        head lines are fully shadowed in L1/L2 by the tail, so skipping their
        inner-level fills leaves the final hierarchy state the same as
        :meth:`touch_lines` over the full window (when the tail spans a ring
        wrap the per-set fill counts can be off by one, retaining at most one
        stale way — sampled replay is approximate there anyway).  Counters
        stay exact for the same reason: a head line was last touched a full
        window earlier, long since evicted from L1/L2.

        Non-fast hierarchies (reference cache impl, subclasses with swapped
        levels) have no bulk geometry to skip with, so they apply the full
        window per line — the exact semantics the head-skip approximates,
        matching it everywhere except the documented ring-wrap off-by-one.
        """
        if not self._fast_demand:
            for base, n in ranges:
                if n:
                    self.touch_lines(base, n)
            return
        head_left = sum(n for _, n in ranges) - self._a2 * self._n2
        if head_left <= 0:
            for base, n in ranges:
                if n:
                    self.touch_lines(base, n)
            return
        shift = self._shift
        sets1, n1 = self._sets1, self._n1
        sets2, n2 = self._sets2, self._n2
        sets3, n3, a3 = self._sets3, self._n3, self._a3
        h3 = m3 = bulk = 0
        _len = len
        for base, n in ranges:
            if not n:
                continue
            if head_left <= 0:
                self.touch_lines(base, n)
                continue
            k = n if n <= head_left else head_left
            head_left -= k
            bulk += k
            start = base >> shift
            for line in range(start, start + k):
                ways3 = sets3[line % n3]
                if line in ways3:
                    h3 += 1
                    del ways3[line]
                    ways3[line] = None
                    continue
                m3 += 1
                if _len(ways3) >= a3:
                    for v3 in ways3:
                        break
                    del ways3[v3]
                    vset = sets2[v3 % n2]
                    if v3 in vset:
                        del vset[v3]
                    vset = sets1[v3 % n1]
                    if v3 in vset:
                        del vset[v3]
                ways3[line] = None
            if n - k:
                self.touch_lines(base + k * 64, n - k)
        self.l1.misses += bulk
        self.l2.misses += bulk
        self.l3.hits += h3
        self.l3.misses += m3
        self.dram_accesses += m3

    def flush_all(self) -> None:
        for level in self.levels:
            level.flush()

    def stats(self) -> dict[str, float]:
        return {
            "l1_miss_rate": self.l1.miss_rate,
            "l2_miss_rate": self.l2.miss_rate,
            "l3_miss_rate": self.l3.miss_rate,
            "dram_accesses": float(self.dram_accesses),
        }

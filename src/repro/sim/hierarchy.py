"""Three-level inclusive cache hierarchy with Haswell-like latencies.

Latencies follow the paper's anchors: the text quotes 34 cycles for an L3 hit
on Haswell (Section 6.1, discussion of Figure 16); L1/L2 use the well-known
4/12 cycle figures for the same microarchitecture, and main memory is modeled
at 200 cycles.

``access`` returns the load-to-use latency for an address and updates the
resident state of every level (fills propagate toward L1).  ``prefetch``
returns the same latency without charging it to the critical path — the
caller decides when the prefetched value is usable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.cache import CacheConfig, SetAssociativeCache


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry of the full data-side hierarchy."""

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 32 * 1024, 8, latency=4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 256 * 1024, 8, latency=12)
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig("L3", 8 * 1024 * 1024, 16, latency=34)
    )
    dram_latency: int = 200


class CacheHierarchy:
    """L1D/L2/L3 + DRAM with inclusive fills and antagonist hooks."""

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self.config = config or HierarchyConfig()
        self.l1 = SetAssociativeCache(self.config.l1)
        self.l2 = SetAssociativeCache(self.config.l2)
        self.l3 = SetAssociativeCache(self.config.l3)
        self.dram_accesses = 0

    @property
    def levels(self) -> tuple[SetAssociativeCache, ...]:
        return (self.l1, self.l2, self.l3)

    def access(self, addr: int, write: bool = False) -> int:
        """Perform a demand access; returns load-to-use latency in cycles.

        Writes are write-allocate: they fill the line like a read.  Their
        *latency* contribution is decided by the timing model (stores commit
        through the store buffer and normally stay off the critical path),
        but the line movement is identical.
        """
        del write  # line movement is identical for loads and stores
        if self.l1.lookup(addr):
            return self.config.l1.latency
        if self.l2.lookup(addr):
            self.l1.insert(addr)
            return self.config.l2.latency
        if self.l3.lookup(addr):
            self.l2.insert(addr)
            self.l1.insert(addr)
            return self.config.l3.latency
        self.dram_accesses += 1
        self.l3.insert(addr)
        self.l2.insert(addr)
        self.l1.insert(addr)
        return self.config.dram_latency

    def prefetch(self, addr: int) -> int:
        """Fill ``addr`` and report when the data arrives (same latency as a
        demand access, but the caller treats it as asynchronous)."""
        return self.access(addr)

    def probe_latency(self, addr: int) -> int:
        """Latency a load to ``addr`` *would* see right now, without moving
        any lines.  Used by tests and the analytic validation model."""
        if self.l1.contains(addr):
            return self.config.l1.latency
        if self.l2.contains(addr):
            return self.config.l2.latency
        if self.l3.contains(addr):
            return self.config.l3.latency
        return self.config.dram_latency

    def antagonize(self) -> int:
        """Evict the less-used half of each L1 and L2 set (paper Section 5)."""
        return self.l1.evict_less_used_half() + self.l2.evict_less_used_half()

    def touch_lines(self, base: int, num_lines: int, stride: int = 64) -> None:
        """Model application memory traffic between allocator calls by
        touching ``num_lines`` lines starting at ``base``."""
        for i in range(num_lines):
            self.access(base + i * stride)

    def flush_all(self) -> None:
        for level in self.levels:
            level.flush()

    def stats(self) -> dict[str, float]:
        return {
            "l1_miss_rate": self.l1.miss_rate,
            "l2_miss_rate": self.l2.miss_rate,
            "l3_miss_rate": self.l3.miss_rate,
            "dram_accesses": float(self.dram_accesses),
        }

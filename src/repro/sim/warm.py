"""Fork-server warm state for parallel matrix workers.

The parallel harness (:mod:`repro.harness.parallel`) replays every cell on
*fresh* machines — that hermeticity is what makes sharded results
byte-identical to serial ones.  The price is that every cell re-pays the
same cold-start work: materializing the handful of interned fast-path
templates, scheduling the same few hundred trace fingerprints, and
generating the same deterministic op streams.  On the small cells that
sampling-style methodologies deliberately produce, that cold start is most
of the cell.

A :class:`WarmBank` lets a pool of fork-server workers share that work
**without perturbing a single counter**:

* **telemetry neutrality** — the bank is consulted only *after* a per-cell
  cache has already recorded its miss.  A bank hit replaces the *work* of
  the miss (the ``materialize()`` call, the dependency-graph schedule, the
  stream generation), never the hit/miss accounting.  Per-cell
  ``trace_cache_hits``/``intern_hits`` — which feed the byte-compared
  figure payload and the pooled :class:`~repro.obs.metrics.MetricsRegistry`
  — are identical with and without a bank installed
  (``tests/integration/test_batching_differential.py`` enforces this);
* **determinism** — banked values are produced by the same pure functions
  they replace (``TimingModel._schedule`` is a pure function of the
  fingerprint; an interned trace is fully determined by
  ``(site, tokens, latencies)``; op streams are seed-deterministic), so a
  bank hit returns a value bit-equal to what the cold path would compute;
* **picklability** — a bank built in the parent is shipped to pool workers
  through the executor ``initializer``.  Under the default ``fork`` start
  method it is inherited for free; under ``spawn`` it is pickled, which is
  why :class:`~repro.sim.uop.FingerprintKey` re-derives its cached hash on
  unpickle (string hashes are per-process under ``PYTHONHASHSEED``).

The bank is process-global and installed at most once per worker
(:func:`install_bank` from the pool initializer).  The serial ``jobs=1``
path never installs one, keeping the differential baseline cold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

#: Worker-side cap on lazily memoized op streams.  With locality-aware
#: batching a worker sees a handful of workload families; the cap only
#: matters on giant heterogeneous matrices, where evicting the oldest
#: stream costs one regeneration, not correctness.
MAX_WORKER_STREAMS = 16

#: Streams longer than this are not pre-generated parent-side (memory), only
#: memoized lazily in whichever worker first replays them.
STREAM_PREWARM_MAX_OPS = 20_000


@dataclass
class WarmBank:
    """Read-mostly warm state shared by every worker forked from one pool.

    ``schedules``/``templates`` are harvested from throwaway warm replays
    (:func:`harvest_machine`) and treated as read-only; ``streams`` also
    grows worker-side as cells generate streams the parent didn't pre-build
    (bounded by :data:`MAX_WORKER_STREAMS`).  The ``*_hits`` counters are
    per-process bank effectiveness telemetry — they never feed cell results.
    """

    schedules: dict[Any, Any] = field(default_factory=dict)
    """Trace-cache key (fingerprint key, or ``(key, frozenset(tags))`` for
    ablation variants) → shared immutable ``TimingResult``."""
    templates: dict[tuple, Any] = field(default_factory=dict)
    """``(site, tokens, latencies)`` → shared fingerprinted ``Trace``."""
    streams: dict[tuple, tuple] = field(default_factory=dict)
    """``(workload, seed, num_ops)`` → read-only tuple of ``Op``."""
    schedule_hits: int = 0
    template_hits: int = 0
    stream_hits: int = 0

    def summary(self) -> dict[str, int]:
        """JSON-ready bank sizes and hit counters (for progress streams and
        :func:`repro.obs.bridges.warm_registry` — kept out of cell metrics)."""
        return {
            "schedules": len(self.schedules),
            "templates": len(self.templates),
            "streams": len(self.streams),
            "schedule_hits": self.schedule_hits,
            "template_hits": self.template_hits,
            "stream_hits": self.stream_hits,
        }

    def counters(self) -> tuple[int, int, int]:
        return (self.schedule_hits, self.template_hits, self.stream_hits)


_ACTIVE: WarmBank | None = None


def install_bank(bank: WarmBank | None) -> None:
    """Install ``bank`` as this process's warm bank (pool-initializer hook)."""
    global _ACTIVE
    _ACTIVE = bank


def active_bank() -> WarmBank | None:
    return _ACTIVE


def clear_bank() -> None:
    install_bank(None)


# ---------------------------------------------------------------------------
# Miss-path lookups (called by the sim cache layer, never on hits)
# ---------------------------------------------------------------------------
def lookup_schedule(key: Any) -> Any | None:
    """A banked ``TimingResult`` for a trace-cache key, or ``None``.

    Called by :meth:`repro.sim.timing.TimingModel.run`/``run_ablated`` only
    after the per-model cache recorded a miss, so hit/miss telemetry is
    untouched either way."""
    bank = _ACTIVE
    if bank is None:
        return None
    result = bank.schedules.get(key)
    if result is not None:
        bank.schedule_hits += 1
    return result


def lookup_template(site: str, tokens: tuple, latencies: tuple) -> Any | None:
    """A banked interned ``Trace``, or ``None`` (same miss-only discipline)."""
    bank = _ACTIVE
    if bank is None:
        return None
    trace = bank.templates.get((site, tokens, latencies))
    if trace is not None:
        bank.template_hits += 1
    return trace


def stream_for(
    name: str, seed: int, num_ops: int, generate: Callable[[], Any]
) -> Any:
    """The read-only op stream for ``(name, seed, num_ops)``.

    With no bank installed this is just ``generate()`` (the cold path, used
    by serial runs).  With a bank, streams are memoized per worker — the
    generated stream is deterministic, so reuse is invisible to results."""
    bank = _ACTIVE
    if bank is None:
        return generate()
    key = (name, seed, num_ops)
    ops = bank.streams.get(key)
    if ops is not None:
        bank.stream_hits += 1
        return ops
    ops = tuple(generate())
    bank.streams[key] = ops
    while len(bank.streams) > MAX_WORKER_STREAMS:
        bank.streams.pop(next(iter(bank.streams)))
    return ops


# ---------------------------------------------------------------------------
# Harvest
# ---------------------------------------------------------------------------
def harvest_machine(bank: WarmBank, machine: Any) -> None:
    """Fold one machine's caches into ``bank`` after a warm replay.

    Duck-typed: anything with a ``timing.cache`` exporting entries and/or an
    ``interner`` exporting templates contributes; first-seen values win
    (they are all bit-equal by determinism, so the choice is cosmetic)."""
    cache = getattr(getattr(machine, "timing", None), "cache", None)
    if cache is not None:
        for key, result in cache.export_entries().items():
            bank.schedules.setdefault(key, result)
    interner = getattr(machine, "interner", None)
    if interner is not None:
        for key, trace in interner.export_templates().items():
            bank.templates.setdefault(key, trace)

"""Dependency-graph timing model of an aggressive out-of-order core.

The model answers one question per allocator call: *how many cycles does this
trace take on a Haswell-class core?*  It schedules micro-ops out of order,
constrained by

* data dependences (a uop issues only after all its sources are ready),
* issue width (at most ``issue_width`` uops begin execution per cycle),
* latencies: ALU/branch 1 cycle, loads whatever the cache hierarchy charged
  at emission time, stores 1 cycle (they drain from the store buffer and stay
  off the critical path, matching the paper's observation that "stores misses
  are less likely to stall the execution or commit of younger instructions").

This deliberately omits fetch/decode/rename detail: for 40-instruction,
loop-free, well-predicted code (the malloc fast path, Section 3.3), the
critical path through dependent loads plus the issue-width bound *are* the
cycle count, which is why the paper's own microbenchmark validation (Table 1)
is reproducible with this model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import warm as _warm
from repro.sim.columns import (
    compile_trace,
    materialize_struct_columns,
    struct_columns_cached,
    removed_tag_mask,
    schedule_columns,
    schedule_columns_ablated,
)
from repro.sim.engine import is_columnar
from repro.sim.trace_cache import DEFAULT_TRACE_CACHE_ENTRIES, TraceCache, TraceCacheStats
from repro.sim.uop import Tag, Trace, UopKind


#: Process-wide memo of columnar schedule results.  A schedule is a pure
#: function of (trace fingerprint, ablation mask, core config) — frozen
#: hashable keys — so results are bit-equal wherever they are recomputed;
#: sharing them across machine instances skips the array walk without
#: touching any per-machine telemetry.  Cleared wholesale at the cap (a
#: safety valve for very long processes; fingerprint cardinality is small
#: in practice).
_COLUMNAR_SCHEDULES: dict[tuple, "TimingResult"] = {}
_SCHEDULE_MEMO_CAP = 1 << 16


@dataclass(frozen=True)
class CoreConfig:
    """Core parameters (defaults model Intel Haswell, as in the paper)."""

    issue_width: int = 4
    load_ports: int = 2
    """Loads that can begin per cycle (Haswell has two load AGUs)."""
    store_ports: int = 1
    rob_size: int = 192
    """Reorder-buffer entries (Haswell).  A micro-op cannot issue until the
    op ``rob_size`` positions older has retired (in-order retirement), which
    caps how much latency a long dependent slow-path loop can hide."""
    pipeline_overhead: int = 2
    """Front-end cycles charged once per call (call/return, fetch redirect)."""
    trace_cache_entries: int = DEFAULT_TRACE_CACHE_ENTRIES
    """LRU capacity of the trace-scheduling memoization cache; 0 disables
    memoization (every trace is scheduled from scratch)."""


@dataclass
class TimingResult:
    """Outcome of scheduling one trace.

    Results coming out of :meth:`TimingModel.run` are memoized and *shared*
    between trace-cache hits, so the per-uop time vectors are tuples: a
    caller mutating a list here would silently corrupt every later hit on
    the same fingerprint."""

    cycles: int
    issue_times: tuple[int, ...] = ()
    ready_times: tuple[int, ...] = ()

    @property
    def num_uops(self) -> int:
        return len(self.issue_times)

    @property
    def ipc(self) -> float:
        return self.num_uops / self.cycles if self.cycles else 0.0


class TimingModel:
    """Schedules traces; the only state beyond configuration is the
    memoization cache, which by construction never changes an answer."""

    def __init__(self, config: CoreConfig | None = None, columnar: bool | None = None) -> None:
        self.config = config or CoreConfig()
        self.cache: TraceCache | None = (
            TraceCache(self.config.trace_cache_entries)
            if self.config.trace_cache_entries > 0
            else None
        )
        #: Engine choice, resolved at construction (``REPRO_ENGINE``) like
        #: the cache implementation.  Columnar scheduling compiles traces to
        #: flat columns (repro.sim.columns) and walks primitive arrays;
        #: results are bit-identical to :meth:`_schedule`.
        self.columnar = is_columnar() if columnar is None else columnar
        self._run_schedule = self._schedule_columnar if self.columnar else self._schedule
        #: Template-compilation telemetry (columnar engine only; surfaced by
        #: the hot-path profiler as ``columnar_templates_compiled`` /
        #: ``columnar_uops_compiled``).
        self.columnar_compiles = 0
        self.columnar_compiled_uops = 0
        #: Optional duck-typed profiler (set alongside ``machine.profiler``);
        #: when present, compile time is recorded as the ``columnar_compile``
        #: stage, nested inside the allocator's ``schedule`` span.
        self.profiler = None
        self._ablate_masks: dict[frozenset, int] = {}
        #: Fused-twin structures this model has used, keyed by structure id
        #: (each entry pins the structure tuple, so the id stays valid).
        #: The static arrays themselves are shared process-wide; this map
        #: exists so compile telemetry is deterministic per machine rather
        #: than depending on process history.
        self._struct_columns: dict[int, tuple] = {}

    # ------------------------------------------------------------ memoization
    def set_memoization(self, enabled: bool) -> None:
        """Toggle trace-cache memoization on this model.

        Enabling starts from an empty cache; disabling drops the cache (its
        stats with it), so a later enable measures fresh."""
        if enabled and self.cache is None:
            entries = self.config.trace_cache_entries or DEFAULT_TRACE_CACHE_ENTRIES
            self.cache = TraceCache(entries)
        elif not enabled:
            self.cache = None

    @property
    def cache_stats(self) -> TraceCacheStats | None:
        """Lifetime hit/miss/eviction stats, or ``None`` when disabled."""
        return self.cache.stats if self.cache is not None else None

    def run(self, trace: Trace) -> TimingResult:
        """Schedule ``trace`` and return its cycle count.

        The returned ``cycles`` includes a small fixed pipeline overhead so
        an empty trace still costs a call/return.  Results are memoized by
        the trace's canonical fingerprint and may be shared objects — treat
        them as immutable.
        """
        cache = self.cache
        if cache is None:
            return self._run_schedule(trace)
        key = trace.fingerprint_key()
        result = cache.get(key)
        if result is None:
            # The miss is recorded; a fork-server warm bank (repro.sim.warm)
            # may still supply the shared result — _schedule is a pure
            # function of the fingerprint, so banked and fresh results are
            # bit-equal and telemetry is untouched.
            result = _warm.lookup_schedule(key)
            if result is None:
                result = self._run_schedule(trace)
            cache.put(key, result)
        return result

    def run_ablated(self, trace: Trace, tags: frozenset[Tag] | set[Tag]) -> TimingResult:
        """Schedule ``trace`` with all ops carrying ``tags`` removed.

        Memoized on ``(fingerprint, tags)`` so a hit skips both the
        :meth:`~repro.sim.uop.Trace.without_tags` rewrite and the schedule —
        this is what keeps the limit-study ablation from doubling a
        baseline replay's cost."""
        tags = frozenset(tags)
        cache = self.cache
        if cache is None:
            if self.columnar:
                return self._schedule_ablated_columnar(trace, tags)
            return self._schedule(trace.without_tags(tags))
        key = (trace.fingerprint_key(), tags)
        result = cache.get(key)
        if result is None:
            result = _warm.lookup_schedule(key)
            if result is None:
                if self.columnar:
                    result = self._schedule_ablated_columnar(trace, tags)
                else:
                    result = self._schedule(trace.without_tags(tags))
            cache.put(key, result)
        return result

    # ----------------------------------------------------- columnar schedule
    def _compile(self, trace: Trace):
        """Compile ``trace`` to columns (cached on the instance), counting
        the compilation and attributing its wall time to the
        ``columnar_compile`` profiler stage when a profiler is attached."""
        profiler = self.profiler
        if profiler is not None:
            with profiler.timed("columnar_compile"):
                cols = compile_trace(trace)
        else:
            cols = compile_trace(trace)
        self.columnar_compiles += 1
        self.columnar_compiled_uops += cols.n
        return cols

    def materialize_columnar(self, struct: tuple, addrs, lats) -> Trace:
        """Materialize a fused-twin intern miss straight to columns.

        Static column templates are pure functions of the structure, so the
        compiled arrays are shared process-wide (``struct_columns_cached``);
        every miss of a known shape then only fills the per-call latency and
        cache-line columns — neither ``Uop`` objects nor an object-walk
        first schedule are ever constructed for twin-served calls.  Compile
        telemetry (counters and the ``columnar_compile`` profiler stage) is
        credited on each model's *first use* of a shape, so it stays
        deterministic per machine instead of depending on process history."""
        entry = self._struct_columns.get(id(struct))
        if entry is None:
            profiler = self.profiler
            if profiler is not None:
                with profiler.timed("columnar_compile"):
                    static = struct_columns_cached(struct)
            else:
                static = struct_columns_cached(struct)
            entry = self._struct_columns[id(struct)] = (struct, static)
            self.columnar_compiles += 1
            self.columnar_compiled_uops += static[0]
        return materialize_struct_columns(entry[1], struct, addrs, lats)

    def _schedule_columnar(self, trace: Trace) -> TimingResult:
        cols = getattr(trace, "_columns", None)
        if cols is None:
            # Compile lazily, on the *second* schedule of a template.  Under
            # memoization every distinct fingerprint is scheduled exactly once
            # and then served from the trace cache, so building columns up
            # front would pay array construction for a single walk — strictly
            # worse than one interpretive pass.  A template that comes back
            # (cache eviction, memoization off, ablation variants) compiles
            # then, and every later schedule walks the arrays.
            if getattr(trace, "_sched_once", False):
                cols = self._compile(trace)
            else:
                trace._sched_once = True
                return self._schedule(trace)
        fp = getattr(trace, "_fingerprint", None)
        if fp is None:
            completion, issue_times, ready_times = schedule_columns(cols, self.config)
            return TimingResult(
                cycles=completion + self.config.pipeline_overhead,
                issue_times=tuple(issue_times),
                ready_times=tuple(ready_times),
            )
        # Schedules are pure in (fingerprint, config), so results are shared
        # process-wide across machine instances (fresh machines per GRID
        # cell / benchmark repeat re-derive identical results otherwise).
        # Telemetry is untouched: trace-cache hit/miss and compile counters
        # are all recorded before this point.
        key = (fp, self.config)
        result = _COLUMNAR_SCHEDULES.get(key)
        if result is None:
            if len(_COLUMNAR_SCHEDULES) >= _SCHEDULE_MEMO_CAP:
                _COLUMNAR_SCHEDULES.clear()
            completion, issue_times, ready_times = schedule_columns(cols, self.config)
            result = _COLUMNAR_SCHEDULES[key] = TimingResult(
                cycles=completion + self.config.pipeline_overhead,
                issue_times=tuple(issue_times),
                ready_times=tuple(ready_times),
            )
        return result

    def _schedule_ablated_columnar(self, trace: Trace, tags: frozenset) -> TimingResult:
        cols = getattr(trace, "_columns", None)
        if cols is None:
            cols = self._compile(trace)
        mask = self._ablate_masks.get(tags)
        if mask is None:
            mask = self._ablate_masks[tags] = removed_tag_mask(tags)
        fp = getattr(trace, "_fingerprint", None)
        key = None
        if fp is not None:
            key = (fp, mask, self.config)
            result = _COLUMNAR_SCHEDULES.get(key)
            if result is not None:
                return result
        if cols.tag_mask & mask:
            completion, issue_times, ready_times = schedule_columns_ablated(
                cols, mask, self.config
            )
        else:
            # No uop carries a removed tag: the ablated trace is the trace.
            completion, issue_times, ready_times = schedule_columns(cols, self.config)
        result = TimingResult(
            cycles=completion + self.config.pipeline_overhead,
            issue_times=tuple(issue_times),
            ready_times=tuple(ready_times),
        )
        if key is not None:
            if len(_COLUMNAR_SCHEDULES) >= _SCHEDULE_MEMO_CAP:
                _COLUMNAR_SCHEDULES.clear()
            _COLUMNAR_SCHEDULES[key] = result
        return result

    # --------------------------------------------------------------- schedule
    def _schedule(self, trace: Trace) -> TimingResult:
        # Hot loop: every name used per-uop is a local (attribute chains and
        # enum lookups hoisted), with behavior identical to the obvious
        # spelling — memoization makes this the cost of every cache *miss*.
        config = self.config
        width = config.issue_width
        load_ports = config.load_ports
        store_ports = config.store_ports
        rob_size = config.rob_size
        kind_load, kind_prefetch, kind_store = UopKind.LOAD, UopKind.PREFETCH, UopKind.STORE
        issue_times: list[int] = []
        ready_times: list[int] = []
        slots: dict[int, int] = {}
        load_slots: dict[int, int] = {}
        store_slots: dict[int, int] = {}
        slots_get = slots.get
        load_get = load_slots.get
        store_get = store_slots.get
        issue_append = issue_times.append
        ready_append = ready_times.append

        completion = 0
        retire_times: list[int] = []
        retire_append = retire_times.append
        retire_frontier = 0
        for i, uop in enumerate(trace):
            cycle = 0
            for dep in uop.deps:
                if ready_times[dep] > cycle:
                    cycle = ready_times[dep]
            if i >= rob_size:
                # The ROB slot frees when the op rob_size older retires.
                oldest_retire = retire_times[i - rob_size]
                if oldest_retire > cycle:
                    cycle = oldest_retire
            kind = uop.kind
            is_load = kind is kind_load or kind is kind_prefetch
            is_store = kind is kind_store
            while (
                slots_get(cycle, 0) >= width
                or (is_load and load_get(cycle, 0) >= load_ports)
                or (is_store and store_get(cycle, 0) >= store_ports)
            ):
                cycle += 1
            slots[cycle] = slots_get(cycle, 0) + 1
            if is_load:
                load_slots[cycle] = load_get(cycle, 0) + 1
            elif is_store:
                store_slots[cycle] = store_get(cycle, 0) + 1
            issue_append(cycle)

            ready = cycle + uop.latency
            ready_append(ready)

            if is_store or kind is kind_prefetch:
                # Buffered: occupies a slot, retires without stalling.
                on_path = cycle + 1
            else:
                on_path = ready
            # In-order retirement: an op retires no earlier than its elders.
            if on_path > retire_frontier:
                retire_frontier = on_path
            retire_append(retire_frontier)
            if on_path > completion:
                completion = on_path

        cycles = completion + self.config.pipeline_overhead
        return TimingResult(
            cycles=cycles,
            issue_times=tuple(issue_times),
            ready_times=tuple(ready_times),
        )

    def critical_path(self, trace: Trace) -> int:
        """Latency-only lower bound: the longest dependence chain, ignoring
        issue-width.  Used by the analytic validation model (Table 1)."""
        ready: list[int] = []
        longest = 0
        for uop in trace:
            dep_ready = max((ready[d] for d in uop.deps), default=0)
            if uop.kind is UopKind.STORE or uop.kind is UopKind.PREFETCH:
                done = dep_ready + 1
            else:
                done = dep_ready + uop.latency
            ready.append(done)
            if done > longest:
                longest = done
        return longest

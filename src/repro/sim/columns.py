"""Flat-array ("columnar") compilation of uop traces.

A :class:`~repro.sim.uop.Trace` is a list of ``Uop`` dataclasses; scheduling
one means chasing Python attributes and enum identities per uop.  The
columnar engine compiles each trace *once* into :class:`TraceColumns` — a
set of parallel stdlib ``array`` columns (kind code, latency, CSR-encoded
dependence indices, tag code, cache-line index) cached on the trace object —
so :class:`~repro.sim.timing.TimingModel` can schedule by walking primitive
arrays.  Interned templates are shared ``Trace`` instances, so one
compilation serves every replay hit of that variant, and the columns pickle
with the trace into :class:`repro.sim.warm.WarmBank`.

The dependence columns use CSR encoding: ``dep_indices[dep_indptr[i] :
dep_indptr[i + 1]]`` are the source uop indices of uop ``i``.  Ablation
(:func:`schedule_columns_ablated`) never materializes the tag-stripped
trace: removed uops become zero-latency pass-throughs whose effective ready
time is the max of their sources — provably the same value the reference
engine computes by transitively rewiring dependences in
:meth:`~repro.sim.uop.Trace.without_tags` and rescheduling.

Everything here is observationally equivalent to the reference scheduler;
the differential suite holds both engines to bit-identical
:class:`~repro.sim.timing.TimingResult` contents.
"""

from __future__ import annotations

from array import array

from repro.sim.uop import Tag, Trace, UopKind

#: Kind codes, index == position in the column.  Order is part of the
#: compiled representation (warm banks pickle columns), so append only.
KIND_ORDER = (
    UopKind.ALU,
    UopKind.LOAD,
    UopKind.STORE,
    UopKind.BRANCH,
    UopKind.MALLACC,
    UopKind.PREFETCH,
    UopKind.FIXED,
)
KIND_CODE = {kind: code for code, kind in enumerate(KIND_ORDER)}

TAG_ORDER = (
    Tag.SIZE_CLASS,
    Tag.SAMPLING,
    Tag.PUSH_POP,
    Tag.CALL_OVERHEAD,
    Tag.ADDRESSING,
    Tag.METADATA,
    Tag.SLOW_PATH,
    Tag.MALLACC,
)
TAG_CODE = {tag: code for code, tag in enumerate(TAG_ORDER)}

_CODE_LOAD = KIND_CODE[UopKind.LOAD]
_CODE_STORE = KIND_CODE[UopKind.STORE]
_CODE_PREFETCH = KIND_CODE[UopKind.PREFETCH]

#: Per-uop scheduling flags (derived column, so the scheduler tests one int
#: instead of comparing kind codes twice per uop).
FLAG_LOAD_PORT = 1  # competes for a load port (LOAD and PREFETCH)
FLAG_STORE_PORT = 2  # competes for the store port (STORE)
FLAG_BUFFERED = 4  # drains off the critical path (STORE and PREFETCH)


class TraceColumns:
    """Parallel primitive columns for one trace (see module docstring)."""

    __slots__ = (
        "n",
        "kinds",
        "flags",
        "lats",
        "dep_indptr",
        "dep_indices",
        "tags",
        "lines",
        "tag_mask",
    )

    def __init__(self, n, kinds, flags, lats, dep_indptr, dep_indices, tags, lines, tag_mask):
        self.n = n
        self.kinds = kinds
        self.flags = flags
        self.lats = lats
        self.dep_indptr = dep_indptr
        self.dep_indices = dep_indices
        self.tags = tags
        self.lines = lines
        #: OR of ``1 << tag_code`` over all uops — lets ablation skip the
        #: per-uop walk when no removed tag is present at all.
        self.tag_mask = tag_mask

    def __reduce__(self):
        # Explicit reduce keeps pickles (warm banks) stable against slot
        # reordering.
        return (
            TraceColumns,
            (
                self.n,
                self.kinds,
                self.flags,
                self.lats,
                self.dep_indptr,
                self.dep_indices,
                self.tags,
                self.lines,
                self.tag_mask,
            ),
        )


def compile_trace(trace: Trace) -> TraceColumns:
    """Compile ``trace`` into columns and cache them on the instance."""
    kind_code = KIND_CODE
    tag_code = TAG_CODE
    n = len(trace.uops)
    kinds = array("b", bytes(n))
    flags = array("b", bytes(n))
    lats = array("q", bytes(8 * n))
    tags = array("b", bytes(n))
    lines = array("q", bytes(8 * n))
    dep_indptr = array("i", bytes(4 * (n + 1)))
    dep_indices = array("i")
    tag_mask = 0
    total = 0
    for i, uop in enumerate(trace.uops):
        code = kind_code[uop.kind]
        kinds[i] = code
        flag = 0
        if code == _CODE_LOAD:
            flag = FLAG_LOAD_PORT
        elif code == _CODE_PREFETCH:
            flag = FLAG_LOAD_PORT | FLAG_BUFFERED
        elif code == _CODE_STORE:
            flag = FLAG_STORE_PORT | FLAG_BUFFERED
        flags[i] = flag
        lats[i] = uop.latency
        tcode = tag_code[uop.tag]
        tags[i] = tcode
        tag_mask |= 1 << tcode
        lines[i] = -1 if uop.addr is None else uop.addr >> 6
        deps = uop.deps
        if deps:
            dep_indices.extend(deps)
            total += len(deps)
        dep_indptr[i + 1] = total
    cols = TraceColumns(n, kinds, flags, lats, dep_indptr, dep_indices, tags, lines, tag_mask)
    trace._columns = cols
    return cols


def columns_of(trace: Trace) -> TraceColumns:
    """The cached columns for ``trace``, compiling on first sight.

    Returns the columns without counting a compilation when already cached;
    callers that track compile counters should test ``trace._columns``
    themselves first.
    """
    cols = getattr(trace, "_columns", None)
    if cols is None:
        cols = compile_trace(trace)
    return cols


def schedule_columns(cols: TraceColumns, config):
    """Columnar twin of ``TimingModel._schedule``: identical semantics,
    primitive-array walk.  Returns ``(cycles, issue_times, ready_times)``
    with the tuples in reference order."""
    width = config.issue_width
    load_ports = config.load_ports
    store_ports = config.store_ports
    rob_size = config.rob_size
    n = cols.n
    flags = cols.flags
    lats = cols.lats
    indptr = cols.dep_indptr
    indices = cols.dep_indices

    issue_times: list[int] = []
    ready_times: list[int] = []
    slots: dict[int, int] = {}
    load_slots: dict[int, int] = {}
    store_slots: dict[int, int] = {}
    slots_get = slots.get
    load_get = load_slots.get
    store_get = store_slots.get
    issue_append = issue_times.append
    ready_append = ready_times.append

    completion = 0
    retire_times: list[int] = []
    retire_append = retire_times.append
    retire_frontier = 0
    lo = indptr[0]
    for i in range(n):
        cycle = 0
        hi = indptr[i + 1]
        while lo < hi:
            r = ready_times[indices[lo]]
            if r > cycle:
                cycle = r
            lo += 1
        if i >= rob_size:
            oldest_retire = retire_times[i - rob_size]
            if oldest_retire > cycle:
                cycle = oldest_retire
        flag = flags[i]
        is_load = flag & 1  # FLAG_LOAD_PORT
        is_store = flag & 2  # FLAG_STORE_PORT
        while (
            slots_get(cycle, 0) >= width
            or (is_load and load_get(cycle, 0) >= load_ports)
            or (is_store and store_get(cycle, 0) >= store_ports)
        ):
            cycle += 1
        slots[cycle] = slots_get(cycle, 0) + 1
        if is_load:
            load_slots[cycle] = load_get(cycle, 0) + 1
        elif is_store:
            store_slots[cycle] = store_get(cycle, 0) + 1
        issue_append(cycle)

        ready = cycle + lats[i]
        ready_append(ready)

        if flag & 4:  # FLAG_BUFFERED: store/prefetch retire without stalling
            on_path = cycle + 1
        else:
            on_path = ready
        if on_path > retire_frontier:
            retire_frontier = on_path
        retire_append(retire_frontier)
        if on_path > completion:
            completion = on_path

    return completion, issue_times, ready_times


def schedule_columns_ablated(cols: TraceColumns, removed_mask: int, config):
    """Schedule ``cols`` with all uops whose tag code is set in
    ``removed_mask`` (bitmask of ``1 << TAG_CODE[tag]``) removed.

    Removed uops become zero-cost pass-throughs: their effective ready time
    is the max of their sources' effective ready times, which equals the max
    over the surviving transitive dependences that
    :meth:`~repro.sim.uop.Trace.without_tags` would rewire to.  Kept uops
    are renumbered implicitly (ROB indexing counts kept uops only), so the
    issue schedule is identical to reference-scheduling the rewired trace.
    Returns ``(cycles, issue_times, ready_times)`` for the kept uops.
    """
    width = config.issue_width
    load_ports = config.load_ports
    store_ports = config.store_ports
    rob_size = config.rob_size
    n = cols.n
    flags = cols.flags
    lats = cols.lats
    tags = cols.tags
    indptr = cols.dep_indptr
    indices = cols.dep_indices

    # effective ready per *original* index (pass-through for removed uops)
    eff_ready: list[int] = []
    eff_append = eff_ready.append
    issue_times: list[int] = []
    ready_times: list[int] = []
    slots: dict[int, int] = {}
    load_slots: dict[int, int] = {}
    store_slots: dict[int, int] = {}
    slots_get = slots.get
    load_get = load_slots.get
    store_get = store_slots.get

    completion = 0
    retire_times: list[int] = []
    retire_frontier = 0
    kept = 0
    lo = indptr[0]
    for i in range(n):
        cycle = 0
        hi = indptr[i + 1]
        while lo < hi:
            r = eff_ready[indices[lo]]
            if r > cycle:
                cycle = r
            lo += 1
        if removed_mask >> tags[i] & 1:
            eff_append(cycle)
            continue
        if kept >= rob_size:
            oldest_retire = retire_times[kept - rob_size]
            if oldest_retire > cycle:
                cycle = oldest_retire
        flag = flags[i]
        is_load = flag & 1
        is_store = flag & 2
        while (
            slots_get(cycle, 0) >= width
            or (is_load and load_get(cycle, 0) >= load_ports)
            or (is_store and store_get(cycle, 0) >= store_ports)
        ):
            cycle += 1
        slots[cycle] = slots_get(cycle, 0) + 1
        if is_load:
            load_slots[cycle] = load_get(cycle, 0) + 1
        elif is_store:
            store_slots[cycle] = store_get(cycle, 0) + 1
        issue_times.append(cycle)

        ready = cycle + lats[i]
        ready_times.append(ready)
        eff_append(ready)

        if flag & 4:
            on_path = cycle + 1
        else:
            on_path = ready
        if on_path > retire_frontier:
            retire_frontier = on_path
        retire_times.append(retire_frontier)
        if on_path > completion:
            completion = on_path
        kept += 1

    return completion, issue_times, ready_times


def removed_tag_mask(tags) -> int:
    """Bitmask of tag codes for an ablation tag set."""
    mask = 0
    tag_code = TAG_CODE
    for tag in tags:
        mask |= 1 << tag_code[tag]
    return mask

"""Flat-array ("columnar") compilation of uop traces.

A :class:`~repro.sim.uop.Trace` is a list of ``Uop`` dataclasses; scheduling
one means chasing Python attributes and enum identities per uop.  The
columnar engine compiles each trace *once* into :class:`TraceColumns` — a
set of parallel stdlib ``array`` columns (kind code, latency, CSR-encoded
dependence indices, tag code, cache-line index) cached on the trace object —
so :class:`~repro.sim.timing.TimingModel` can schedule by walking primitive
arrays.  Interned templates are shared ``Trace`` instances, so one
compilation serves every replay hit of that variant, and the columns pickle
with the trace into :class:`repro.sim.warm.WarmBank`.

The dependence columns use CSR encoding: ``dep_indices[dep_indptr[i] :
dep_indptr[i + 1]]`` are the source uop indices of uop ``i``.  Ablation
(:func:`schedule_columns_ablated`) never materializes the tag-stripped
trace: removed uops become zero-latency pass-throughs whose effective ready
time is the max of their sources — provably the same value the reference
engine computes by transitively rewiring dependences in
:meth:`~repro.sim.uop.Trace.without_tags` and rescheduling.

Everything here is observationally equivalent to the reference scheduler;
the differential suite holds both engines to bit-identical
:class:`~repro.sim.timing.TimingResult` contents.
"""

from __future__ import annotations

from array import array

from repro.sim.uop import Tag, Trace, Uop, UopKind

#: Kind codes, index == position in the column.  Order is part of the
#: compiled representation (warm banks pickle columns), so append only.
KIND_ORDER = (
    UopKind.ALU,
    UopKind.LOAD,
    UopKind.STORE,
    UopKind.BRANCH,
    UopKind.MALLACC,
    UopKind.PREFETCH,
    UopKind.FIXED,
)
KIND_CODE = {kind: code for code, kind in enumerate(KIND_ORDER)}

TAG_ORDER = (
    Tag.SIZE_CLASS,
    Tag.SAMPLING,
    Tag.PUSH_POP,
    Tag.CALL_OVERHEAD,
    Tag.ADDRESSING,
    Tag.METADATA,
    Tag.SLOW_PATH,
    Tag.MALLACC,
)
TAG_CODE = {tag: code for code, tag in enumerate(TAG_ORDER)}

_CODE_LOAD = KIND_CODE[UopKind.LOAD]
_CODE_STORE = KIND_CODE[UopKind.STORE]
_CODE_PREFETCH = KIND_CODE[UopKind.PREFETCH]

#: Per-uop scheduling flags (derived column, so the scheduler tests one int
#: instead of comparing kind codes twice per uop).
FLAG_LOAD_PORT = 1  # competes for a load port (LOAD and PREFETCH)
FLAG_STORE_PORT = 2  # competes for the store port (STORE)
FLAG_BUFFERED = 4  # drains off the critical path (STORE and PREFETCH)


class TraceColumns:
    """Parallel primitive columns for one trace (see module docstring)."""

    __slots__ = (
        "n",
        "kinds",
        "flags",
        "lats",
        "dep_indptr",
        "dep_indices",
        "tags",
        "lines",
        "tag_mask",
    )

    def __init__(self, n, kinds, flags, lats, dep_indptr, dep_indices, tags, lines, tag_mask):
        self.n = n
        self.kinds = kinds
        self.flags = flags
        self.lats = lats
        self.dep_indptr = dep_indptr
        self.dep_indices = dep_indices
        self.tags = tags
        self.lines = lines
        #: OR of ``1 << tag_code`` over all uops — lets ablation skip the
        #: per-uop walk when no removed tag is present at all.
        self.tag_mask = tag_mask

    def __reduce__(self):
        # Explicit reduce keeps pickles (warm banks) stable against slot
        # reordering.
        return (
            TraceColumns,
            (
                self.n,
                self.kinds,
                self.flags,
                self.lats,
                self.dep_indptr,
                self.dep_indices,
                self.tags,
                self.lines,
                self.tag_mask,
            ),
        )


def compile_trace(trace: Trace) -> TraceColumns:
    """Compile ``trace`` into columns and cache them on the instance."""
    kind_code = KIND_CODE
    tag_code = TAG_CODE
    n = len(trace.uops)
    kinds = array("b", bytes(n))
    flags = array("b", bytes(n))
    lats = array("q", bytes(8 * n))
    tags = array("b", bytes(n))
    lines = array("q", bytes(8 * n))
    dep_indptr = array("i", bytes(4 * (n + 1)))
    dep_indices = array("i")
    tag_mask = 0
    total = 0
    for i, uop in enumerate(trace.uops):
        code = kind_code[uop.kind]
        kinds[i] = code
        flag = 0
        if code == _CODE_LOAD:
            flag = FLAG_LOAD_PORT
        elif code == _CODE_PREFETCH:
            flag = FLAG_LOAD_PORT | FLAG_BUFFERED
        elif code == _CODE_STORE:
            flag = FLAG_STORE_PORT | FLAG_BUFFERED
        flags[i] = flag
        lats[i] = uop.latency
        tcode = tag_code[uop.tag]
        tags[i] = tcode
        tag_mask |= 1 << tcode
        lines[i] = -1 if uop.addr is None else uop.addr >> 6
        deps = uop.deps
        if deps:
            dep_indices.extend(deps)
            total += len(deps)
        dep_indptr[i + 1] = total
    cols = TraceColumns(n, kinds, flags, lats, dep_indptr, dep_indices, tags, lines, tag_mask)
    trace._columns = cols
    return cols


def columns_of(trace: Trace) -> TraceColumns:
    """The cached columns for ``trace``, compiling on first sight.

    Returns the columns without counting a compilation when already cached;
    callers that track compile counters should test ``trace._columns``
    themselves first.
    """
    cols = getattr(trace, "_columns", None)
    if cols is None:
        cols = compile_trace(trace)
    return cols


def schedule_columns(cols: TraceColumns, config):
    """Columnar twin of ``TimingModel._schedule``: identical semantics,
    primitive-array walk.  Returns ``(cycles, issue_times, ready_times)``
    with the tuples in reference order."""
    width = config.issue_width
    load_ports = config.load_ports
    store_ports = config.store_ports
    rob_size = config.rob_size
    n = cols.n
    flags = cols.flags
    lats = cols.lats
    indptr = cols.dep_indptr
    indices = cols.dep_indices

    issue_times: list[int] = []
    ready_times: list[int] = []
    # Per-cycle port counters as flat lists (cycle-indexed) — the schedule
    # probes them once or twice per uop, and list indexing beats dict
    # hashing there.  Grown geometrically as the frontier advances.
    cap = 256
    slots = [0] * cap
    load_slots = [0] * cap
    store_slots = [0] * cap
    issue_append = issue_times.append
    ready_append = ready_times.append

    completion = 0
    retire_times: list[int] = []
    retire_append = retire_times.append
    retire_frontier = 0
    lo = indptr[0]
    for i in range(n):
        cycle = 0
        hi = indptr[i + 1]
        while lo < hi:
            r = ready_times[indices[lo]]
            if r > cycle:
                cycle = r
            lo += 1
        if i >= rob_size:
            oldest_retire = retire_times[i - rob_size]
            if oldest_retire > cycle:
                cycle = oldest_retire
        flag = flags[i]
        is_load = flag & 1  # FLAG_LOAD_PORT
        is_store = flag & 2  # FLAG_STORE_PORT
        if cycle >= cap:
            ext = cycle + 256 - cap
            slots.extend([0] * ext)
            load_slots.extend([0] * ext)
            store_slots.extend([0] * ext)
            cap += ext
        while (
            slots[cycle] >= width
            or (is_load and load_slots[cycle] >= load_ports)
            or (is_store and store_slots[cycle] >= store_ports)
        ):
            cycle += 1
            if cycle >= cap:
                slots.extend([0] * 256)
                load_slots.extend([0] * 256)
                store_slots.extend([0] * 256)
                cap += 256
        slots[cycle] += 1
        if is_load:
            load_slots[cycle] += 1
        elif is_store:
            store_slots[cycle] += 1
        issue_append(cycle)

        ready = cycle + lats[i]
        ready_append(ready)

        if flag & 4:  # FLAG_BUFFERED: store/prefetch retire without stalling
            on_path = cycle + 1
        else:
            on_path = ready
        if on_path > retire_frontier:
            retire_frontier = on_path
        retire_append(retire_frontier)
        if on_path > completion:
            completion = on_path

    return completion, issue_times, ready_times


def schedule_columns_ablated(cols: TraceColumns, removed_mask: int, config):
    """Schedule ``cols`` with all uops whose tag code is set in
    ``removed_mask`` (bitmask of ``1 << TAG_CODE[tag]``) removed.

    Removed uops become zero-cost pass-throughs: their effective ready time
    is the max of their sources' effective ready times, which equals the max
    over the surviving transitive dependences that
    :meth:`~repro.sim.uop.Trace.without_tags` would rewire to.  Kept uops
    are renumbered implicitly (ROB indexing counts kept uops only), so the
    issue schedule is identical to reference-scheduling the rewired trace.
    Returns ``(cycles, issue_times, ready_times)`` for the kept uops.
    """
    width = config.issue_width
    load_ports = config.load_ports
    store_ports = config.store_ports
    rob_size = config.rob_size
    n = cols.n
    flags = cols.flags
    lats = cols.lats
    tags = cols.tags
    indptr = cols.dep_indptr
    indices = cols.dep_indices

    # effective ready per *original* index (pass-through for removed uops)
    eff_ready: list[int] = []
    eff_append = eff_ready.append
    issue_times: list[int] = []
    ready_times: list[int] = []
    cap = 256
    slots = [0] * cap
    load_slots = [0] * cap
    store_slots = [0] * cap

    completion = 0
    retire_times: list[int] = []
    retire_frontier = 0
    kept = 0
    lo = indptr[0]
    for i in range(n):
        cycle = 0
        hi = indptr[i + 1]
        while lo < hi:
            r = eff_ready[indices[lo]]
            if r > cycle:
                cycle = r
            lo += 1
        if removed_mask >> tags[i] & 1:
            eff_append(cycle)
            continue
        if kept >= rob_size:
            oldest_retire = retire_times[kept - rob_size]
            if oldest_retire > cycle:
                cycle = oldest_retire
        flag = flags[i]
        is_load = flag & 1
        is_store = flag & 2
        if cycle >= cap:
            ext = cycle + 256 - cap
            slots.extend([0] * ext)
            load_slots.extend([0] * ext)
            store_slots.extend([0] * ext)
            cap += ext
        while (
            slots[cycle] >= width
            or (is_load and load_slots[cycle] >= load_ports)
            or (is_store and store_slots[cycle] >= store_ports)
        ):
            cycle += 1
            if cycle >= cap:
                slots.extend([0] * 256)
                load_slots.extend([0] * 256)
                store_slots.extend([0] * 256)
                cap += 256
        slots[cycle] += 1
        if is_load:
            load_slots[cycle] += 1
        elif is_store:
            store_slots[cycle] += 1
        issue_times.append(cycle)

        ready = cycle + lats[i]
        ready_times.append(ready)
        eff_append(ready)

        if flag & 4:
            on_path = cycle + 1
        else:
            on_path = ready
        if on_path > retire_frontier:
            retire_frontier = on_path
        retire_times.append(retire_frontier)
        if on_path > completion:
            completion = on_path
        kept += 1

    return completion, issue_times, ready_times


def removed_tag_mask(tags) -> int:
    """Bitmask of tag codes for an ablation tag set."""
    mask = 0
    tag_code = TAG_CODE
    for tag in tags:
        mask |= 1 << tag_code[tag]
    return mask


# --------------------------------------------------------------------------
# Structure tables: the static half of a fused-twin trace.
#
# The priced twins (repro.alloc.fastpath, repro.alloc.slowpath) execute an
# allocator call as straight-line code and intern the result; a *structure*
# is everything about the trace except its latencies and concrete addresses —
# a tuple of (kind, deps, addr_slot, tag) records, where ``addr_slot``
# indexes the per-call address tuple the twin assembles (None for uops
# without an address).  One structure serves every call of that shape;
# together with a latency tuple it materializes into a Trace with the same
# fingerprint the TraceBuilder would have produced.


class StructBuilder:
    """Mirror of the TraceBuilder call surface recording structure only."""

    def __init__(self) -> None:
        self.rec: list[tuple] = []

    def _add(self, kind, deps, slot, tag) -> int:
        self.rec.append((kind, deps, slot, tag))
        return len(self.rec) - 1

    def alu(self, deps=(), tag=Tag.ADDRESSING) -> int:
        return self._add(UopKind.ALU, deps, None, tag)

    def load(self, slot, deps=(), tag=Tag.ADDRESSING) -> int:
        return self._add(UopKind.LOAD, deps, slot, tag)

    def store(self, slot, deps=(), tag=Tag.ADDRESSING) -> int:
        return self._add(UopKind.STORE, deps, slot, tag)

    def branch(self, deps=(), tag=Tag.ADDRESSING) -> int:
        return self._add(UopKind.BRANCH, deps, None, tag)

    def mallacc(self, deps=()) -> int:
        return self._add(UopKind.MALLACC, deps, None, Tag.MALLACC)

    def prefetch(self, slot, deps=()) -> int:
        return self._add(UopKind.PREFETCH, deps, slot, Tag.MALLACC)

    def fixed(self, deps=(), tag=Tag.SLOW_PATH) -> int:
        return self._add(UopKind.FIXED, deps, None, tag)

    def done(self) -> tuple:
        return tuple(self.rec)


def materialize_struct(struct: tuple, addrs, lats) -> Trace:
    """Rebuild the full Trace for an intern miss (or validate mode)."""
    uops = [
        Uop(kind, deps, None if slot is None else addrs[slot], lats[i], tag)
        for i, (kind, deps, slot, tag) in enumerate(struct)
    ]
    trace = Trace(uops=uops)
    trace._fingerprint = tuple(
        [
            (rec[0]._value_, lats[i], rec[1], rec[3]._value_)
            for i, rec in enumerate(struct)
        ]
    )
    return trace


class StructTrace(Trace):
    """A twin-materialized trace: columns and fingerprint are precomputed
    straight from the structure, and the ``Uop`` objects are rebuilt only if
    something actually walks them (ablation rewrites, debugging, a warm bank
    loaded by reference-engine code).  The columnar scheduler never does —
    it reads ``_columns`` — so the common case skips object construction
    entirely."""

    def __init__(self, struct, addrs, lats):
        self._struct = struct
        self._addrs = addrs
        self._lats = lats

    @property
    def uops(self):
        uops = self.__dict__.get("_uops")
        if uops is None:
            addrs = self._addrs
            lats = self._lats
            uops = self._uops = [
                Uop(kind, deps, None if slot is None else addrs[slot], lats[i], tag)
                for i, (kind, deps, slot, tag) in enumerate(self._struct)
            ]
        return uops

    def __len__(self) -> int:
        return len(self._struct)


def compile_struct_columns(struct: tuple) -> tuple:
    """The static half of :class:`TraceColumns` for one structure.

    Everything except the per-call latencies and cache-line indices is a
    pure function of the structure, so it is compiled once and shared (the
    arrays are never mutated) by every materialization of that shape:
    ``(n, kinds, flags, tags, tag_mask, dep_indptr, dep_indices,
    slot_pairs, fp_parts, lines0)``.  ``slot_pairs`` lists the
    ``(uop_index, addr_slot)`` pairs to patch into a copy of the all--1
    ``lines0`` template; ``fp_parts`` holds the ``(kind, deps, tag)``
    fingerprint records the per-call latencies splice into."""
    kind_code = KIND_CODE
    tag_code = TAG_CODE
    n = len(struct)
    kinds = array("b", bytes(n))
    flags = array("b", bytes(n))
    tags = array("b", bytes(n))
    dep_indptr = array("i", bytes(4 * (n + 1)))
    dep_indices = array("i")
    lines0 = array("q", [-1]) * n
    tag_mask = 0
    total = 0
    slot_pairs = []
    fp_parts = []
    for i, (kind, deps, slot, tag) in enumerate(struct):
        code = kind_code[kind]
        kinds[i] = code
        flag = 0
        if code == _CODE_LOAD:
            flag = FLAG_LOAD_PORT
        elif code == _CODE_PREFETCH:
            flag = FLAG_LOAD_PORT | FLAG_BUFFERED
        elif code == _CODE_STORE:
            flag = FLAG_STORE_PORT | FLAG_BUFFERED
        flags[i] = flag
        tcode = tag_code[tag]
        tags[i] = tcode
        tag_mask |= 1 << tcode
        if slot is not None:
            slot_pairs.append((i, slot))
        if deps:
            dep_indices.extend(deps)
            total += len(deps)
        dep_indptr[i + 1] = total
        fp_parts.append((kind._value_, deps, tag._value_))
    return (
        n,
        kinds,
        flags,
        tags,
        tag_mask,
        dep_indptr,
        dep_indices,
        tuple(slot_pairs),
        tuple(fp_parts),
        lines0,
    )


#: Process-wide static column templates, keyed by structure id.  Structures
#: are immortal (fast-path module constants and the process-wide
#: :class:`StructStore` never evict), and each entry pins its structure
#: tuple anyway, so ids stay valid.
_STRUCT_STATIC: dict[int, tuple] = {}


def struct_columns_cached(struct: tuple) -> tuple:
    """The shared static column template for ``struct`` (compiling once per
    process — the arrays are read-only, so every machine can use them)."""
    entry = _STRUCT_STATIC.get(id(struct))
    if entry is None:
        entry = _STRUCT_STATIC[id(struct)] = (struct, compile_struct_columns(struct))
    return entry[1]


def materialize_struct_columns(static: tuple, struct, addrs, lats) -> Trace:
    """Materialize an intern miss directly to scheduled-ready columns.

    The trace carries ``_columns`` from birth, so the first ``run`` walks
    primitive arrays instead of object-walking fresh ``Uop`` instances —
    the reference path every miss used to pay."""
    (n, kinds, flags, tags, tag_mask, indptr, indices, slot_pairs, fp_parts, lines0) = static
    lines = array("q", lines0)
    for i, slot in slot_pairs:
        lines[i] = addrs[slot] >> 6
    trace = StructTrace(struct, addrs, lats)
    trace._columns = TraceColumns(
        n, kinds, flags, array("q", lats), indptr, indices, tags, lines, tag_mask
    )
    trace._fingerprint = tuple(
        [(part[0], lat, part[1], part[2]) for part, lat in zip(fp_parts, lats)]
    )
    return trace


class StructStore:
    """Compiled structures for *parameterized* (variable-length) shapes.

    Fast-path shapes are enumerable, so :mod:`repro.alloc.fastpath` builds
    its structures eagerly.  Refill shapes are parameterized by size class
    and data-dependent counts (batch moves, span carving, free-list probes);
    every such parameter is a structural token, so the template is keyed by
    the instance-independent ``(site, tokens)`` pair — the counts and the
    size class are *inside* the tokens — and compiled from the token stream
    on first sight by a site-specific compiler.  Structures are pure
    functions of the key, so one process-wide store serves every machine,
    and the compiled columns of the materialized traces ship across
    processes in the warm bank exactly like fast-path templates do.
    """

    __slots__ = ("_structs", "compiled")

    def __init__(self) -> None:
        self._structs: dict[tuple, tuple] = {}
        self.compiled = 0

    def get_or_compile(self, site: str, tokens: tuple, compiler) -> tuple:
        key = (site, tokens)
        struct = self._structs.get(key)
        if struct is None:
            struct = compiler(site, tokens)
            self._structs[key] = struct
            self.compiled += 1
        return struct

"""A small data TLB model.

The paper notes (Section 3.3) that non-sized ``free()`` must map the freed
address back to a size class through a pagemap lookup that "tends to cache
poorly, especially in the TLB, leading to expensive losses".  This module
supplies that effect: a fully-associative LRU DTLB whose misses add a page
walk penalty to the load that caused them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TLBConfig:
    entries: int = 64
    page_size: int = 4096
    miss_penalty: int = 30
    """Page-walk cost in cycles added to the triggering access."""


class TLB:
    """Fully-associative, LRU-replaced translation lookaside buffer."""

    def __init__(self, config: TLBConfig | None = None) -> None:
        self.config = config or TLBConfig()
        # Plain insertion-ordered dict, LRU first: refresh is delete +
        # reinsert, the victim is ``next(iter(...))`` — same trick as the
        # cache sets, and measurably cheaper than an OrderedDict here.
        self._entries: dict[int, None] = {}
        self._page_size = self.config.page_size
        size = self.config.page_size
        self._page_shift = size.bit_length() - 1 if size & (size - 1) == 0 else None
        self._capacity = self.config.entries
        self._penalty = self.config.miss_penalty
        self.hits = 0
        self.misses = 0

    def _page_of(self, addr: int) -> int:
        return addr // self._page_size

    def access(self, addr: int) -> int:
        """Translate ``addr``; returns the added penalty (0 on a TLB hit)."""
        shift = self._page_shift
        page = addr >> shift if shift is not None else addr // self._page_size
        entries = self._entries
        if page in entries:
            del entries[page]
            entries[page] = None
            self.hits += 1
            return 0
        self.misses += 1
        if len(entries) >= self._capacity:
            del entries[next(iter(entries))]
        entries[page] = None
        return self._penalty

    def contains(self, addr: int) -> bool:
        return self._page_of(addr) in self._entries

    def flush(self) -> None:
        self._entries.clear()

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

"""A small data TLB model.

The paper notes (Section 3.3) that non-sized ``free()`` must map the freed
address back to a size class through a pagemap lookup that "tends to cache
poorly, especially in the TLB, leading to expensive losses".  This module
supplies that effect: a fully-associative LRU DTLB whose misses add a page
walk penalty to the load that caused them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True)
class TLBConfig:
    entries: int = 64
    page_size: int = 4096
    miss_penalty: int = 30
    """Page-walk cost in cycles added to the triggering access."""


class TLB:
    """Fully-associative, LRU-replaced translation lookaside buffer."""

    def __init__(self, config: TLBConfig | None = None) -> None:
        self.config = config or TLBConfig()
        self._entries: OrderedDict[int, None] = OrderedDict()
        self._page_size = self.config.page_size
        self._capacity = self.config.entries
        self._penalty = self.config.miss_penalty
        self.hits = 0
        self.misses = 0

    def _page_of(self, addr: int) -> int:
        return addr // self._page_size

    def access(self, addr: int) -> int:
        """Translate ``addr``; returns the added penalty (0 on a TLB hit)."""
        page = addr // self._page_size
        entries = self._entries
        if page in entries:
            entries.move_to_end(page)
            self.hits += 1
            return 0
        self.misses += 1
        if len(entries) >= self._capacity:
            entries.popitem(last=False)
        entries[page] = None
        return self._penalty

    def contains(self, addr: int) -> bool:
        return self._page_of(addr) in self._entries

    def flush(self) -> None:
        self._entries.clear()

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

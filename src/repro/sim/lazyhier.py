"""Lazy ring-aware cache hierarchy — the columnar engine's cache model.

The dominant simulator cost after interning and memoization is application
ring traffic: every op streams tens to hundreds of consecutive cache lines
through a 2 MB ring (:data:`RING_BASE`), and the reference hierarchy pays
~12 dict operations per line keeping three levels of LRU sets current.
Almost all of that state is overwritten by later ring lines before anything
observes it.  :class:`LazyRingHierarchy` exploits that: ring bursts are
*logged*, not applied, and a cache set is materialized — its pending ring
fills replayed — only when an allocator access (or an escape hatch like
``antagonize``) actually looks at it.

The model is exact, not approximate.  Three structural facts make lazy
replay equal the reference walk bit-for-bit:

* **Counters are closed-form.**  A ring line's re-touch can never hit L1 or
  L2: between touches of the same line a set receives at least one net
  associativity's worth of younger distinct fills (each back-invalidation
  removal is paired with an earlier insert into the same set), so every
  burst contributes exactly ``n`` L1 misses and ``n`` L2 misses, and L3
  hits/misses follow from the high-water mark of touched ring positions.
  :meth:`_engage` checks the geometry margin this argument needs.
* **Set indices nest.**  The set counts are nested powers of two
  (``n1 | n2 | n3``), so an L2 or L3 victim always maps to the *same*
  inner-level set as the line whose fill evicted it.  Every eager
  back-invalidation therefore lands on a set the current walk has already
  materialized — no event queues, no cross-set deferral.
* **Stamps order everything else.**  A global monotone stamp ``G`` (one per
  ring line, one per allocator walk) timestamps every insert.  Lazily
  discovered L2 evictions are applied to L1 with a stamp guard (remove only
  copies older than the eviction), which is provably the reference outcome;
  the rare interleavings the guard cannot reconstruct (an overflowing L1
  merge whose old entries might have undiscovered L2 evictions) *pull* the
  relevant L2 sets current first.

L3 is always eager for allocator lines (per-set ``{line: stamp}`` dicts);
ring residency is the interval ``[0, hwm)`` of touched positions minus a
(normally empty) ``absent`` set of back-invalidated positions, so a warm
burst is O(1).  Anything the representation cannot express exactly — a
non-cursor-shaped touch into the ring window, an allocator access landing
inside the ring, a flush — first materializes everything and then degrades
permanently to the plain eager hierarchy, which this class inherits.

``REPRO_ENGINE=reference`` never constructs this class; the differential
suite replays every workload family on both engines and demands identical
counters, stats, latencies, and set contents.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.sim.hierarchy import CacheHierarchy, HierarchyConfig

RING_BASE = 0x0000_7000_0000_0000
RING_BYTES = 2 * 1024 * 1024
RING_LINES = RING_BYTES // 64
_RING_BASE_LINE = RING_BASE >> 6
#: Ring positions representable before the exact per-line fallback kicks in
#: (one full ring plus overflow slack for bursts that run past the end).
_MAX_POS = RING_LINES + 16384

#: Bursts below this many lines are applied to L1/L2 immediately (still
#: logged for stamps, still interval-tracked in L3).  Small per-op bursts
#: cost less to apply than the per-access merge bookkeeping they would
#: otherwise induce; big bursts (heavy antagonists, window-flush tails)
#: amortize the log and win by never materializing overwritten state.
_EAGER_MAX = 256


class LazyRingHierarchy(CacheHierarchy):
    """Drop-in :class:`CacheHierarchy` with lazy ring-burst application."""

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self._lazy = False  # read by _refresh_fast_path during super().__init__
        super().__init__(config)
        self._engage()

    # ------------------------------------------------------------------ setup
    def _engage(self) -> None:
        """Switch on lazy operation if the geometry supports it."""
        if not self._fast:
            return
        n1, n2, n3 = self._n1, self._n2, self._n3
        a1, a2 = self._a1, self._a2
        if n2 % n1 or n3 % n2 or self._shift != 6:
            return  # victim/set alignment or line-size assumption broken
        # Margin for the closed-form burst counters: one ring lap must churn
        # every inner set by at least 2x its associativity.
        if RING_LINES < 2 * a1 * n1 or RING_LINES < 2 * a2 * n2:
            return
        if self._a3 <= -(-_MAX_POS // n3):
            return  # the ring alone could fill an L3 set: bulk path unsound
        self._lazy = True
        self._G = 0
        self._burst_G = 0
        # Burst log: parallel lists, stamps of entry j are
        # (G[j], G[j] + n[j]].  inner=False entries (window heads) age only
        # the L3 and are invisible to L1/L2 pending walks.
        self._log_first: list[int] = []
        self._log_n: list[int] = []
        self._log_G: list[int] = []
        self._log_inner: list[bool] = []
        # Inner-only mirror of the log: gathers walk this one, so the scan
        # never pays for window-head (outer) entries, which can dominate
        # windowed workloads' logs but never contribute pending L1/L2 fills.
        self._ilog_first: list[int] = []
        self._ilog_n: list[int] = []
        self._ilog_G: list[int] = []
        # Runs: maximal chains of line-contiguous inner entries.  Each value
        # is the ilog index where a run starts; gathers walk runs (stepping
        # candidate lines by ``mod``) instead of individual entries.
        self._irun_j0: list[int] = []
        # Prefix sums over the log (entry j covered by [j], [j+1]): inner
        # ring lines and inner entry counts, for the O(log n) survival bound
        # in :meth:`_l2_survives`.
        self._cin_lines: list[int] = [0]
        self._cin_cnt: list[int] = [0]
        # Materialization horizons (G units) per set, plus a global floor:
        # every log entry ending at or below ``_floor`` is already applied
        # to L1/L2 (eager small bursts), so merges start from
        # ``max(M[set], _floor)``.  ``_pending`` flips on the first lazy
        # (logged-but-unapplied) burst; it never clears short of a degrade,
        # because applying a newer burst eagerly over older pending fills
        # would break per-set LRU insertion order.
        self._M1 = [0] * n1
        self._M2 = [0] * n2
        self._floor = 0
        self._pending = False
        # L1/L2 sets are reused as {line: stamp}, insertion order == LRU.
        # L3 per-set dicts hold *allocator* lines only; ring residency is
        # [0, hwm) minus `absent` (position -> None).
        self._hwm = 0
        self._absent: dict[int, None] = {}
        self._cursor = 0  # expected position of the next ring burst
        # L3 sets whose allocator occupancy could make a cold/absent ring
        # insert evict: len(dict) >= assoc - max ring lines per set.
        self._ring_cap = -(-_MAX_POS // n3)  # ceil
        self._risk_len = self._a3 - self._ring_cap
        self._risk3: dict[int, None] = {}
        self._m1_ctx: tuple[int, dict, dict] | None = None
        self._refresh_fast_path()

    def _refresh_fast_path(self) -> None:
        super()._refresh_fast_path()
        if getattr(self, "_lazy", False):
            # Present as a fast-demand hierarchy so emitters bind the direct
            # walk; writes and reads take the same path, as in the plain one.
            self._fast_demand = True
            self._access_inner = self._lazy_access
            self.demand_access = self._lazy_access
        elif self._fast and type(self) is LazyRingHierarchy:
            # Degraded (or not yet engaged): behave exactly like the plain
            # hierarchy — our back-invalidation is the inherited one, so the
            # fully inlined walk is valid.
            self._fast_demand = True
            self._access_inner = self._access_fast_plain
            self.demand_access = self._access_inner

    # ------------------------------------------------------------ degradation
    def _degrade(self) -> None:
        """Materialize every set exactly, then run eager forever."""
        if not self._lazy:
            return
        self._materialize_inner()
        # Rebuild L3 sets: merge ring residents (stamped from the log) into
        # the allocator dicts in global LRU (stamp) order.
        ring_stamp: dict[int, int] = {}
        for j in range(len(self._log_first) - 1, -1, -1):
            first, n, g0 = self._log_first[j], self._log_n[j], self._log_G[j]
            for line in range(first, first + n):
                if line not in ring_stamp:
                    ring_stamp[line] = g0 + (line - first) + 1
        base = _RING_BASE_LINE
        absent = self._absent
        n3 = self._n3
        sets3 = self._sets3
        merged: list[dict[int, int]] = [dict(d) for d in sets3]
        for p in range(self._hwm):
            if p in absent:
                continue
            line = base + p
            merged[line % n3][line] = ring_stamp[line]
        for sigma, d in enumerate(merged):
            sets3[sigma] = dict(sorted(d.items(), key=lambda kv: kv[1]))
        self.l3._sets = sets3  # same list object; keep the alias honest
        self._lazy = False
        self._log_first = self._log_n = self._log_G = self._log_inner = []  # type: ignore[assignment]
        self._ilog_first = self._ilog_n = self._ilog_G = []  # type: ignore[assignment]
        self._irun_j0 = []
        self._cin_lines = [0]
        self._cin_cnt = [0]
        self._refresh_fast_path()

    def _materialize_inner(self) -> None:
        """Bring every L1/L2 set current (exact contents, exact order)."""
        for sigma in range(self._n1):
            self._merge_l1(sigma)
        for sigma in range(self._n2):
            self._merge_l2(sigma)

    # ------------------------------------------------------------ burst log
    def _gather(self, sigma: int, mod: int, horizon: int, upto: int, assoc: int):
        """Pending ring fills for set ``sigma`` with stamps in
        ``(horizon, upto]``: ``(pending, wiped)`` where ``pending`` maps
        line -> newest stamp, in ascending stamp order (so merges replay it
        directly, no sort).  Stops early once ``assoc`` distinct lines are
        found newest-first (``wiped``): older pending can no longer matter.

        Walks *runs* (``_irun_j0``: maximal line-contiguous entry chains)
        newest-first, stepping candidate lines by ``mod`` instead of
        visiting every log entry — for large ``mod`` (the L2 walk) most
        entries hold no line for ``sigma`` and are skipped wholesale.
        """
        ilf, iln, ilG = self._ilog_first, self._ilog_n, self._ilog_G
        runs = self._irun_j0
        out: list[tuple[int, int]] = []  # (line, stamp), stamps descending
        out_append = out.append
        seen: set[int] | None = None  # built lazily for cross-run dedup
        j1 = len(ilf)
        for r in range(len(runs) - 1, -1, -1):
            j0 = runs[r]
            jlast = j1 - 1
            if ilG[jlast] + iln[jlast] <= horizon:
                break  # this run and everything older is consumed
            if ilG[j0] >= upto:
                j1 = j0
                continue
            # Clip the stamp window (horizon, upto] to a line interval
            # [lo, hi]: within a run stamps rise strictly with the line
            # (entries are line-contiguous; gaps are stamp-only).
            if upto > ilG[jlast] + iln[jlast]:
                j = jlast
                hi = ilf[jlast] + iln[jlast] - 1
            else:
                j = bisect_right(ilG, upto, j0, j1) - 1
                d = upto - ilG[j]
                n_j = iln[j]
                hi = ilf[j] + (d if d < n_j else n_j) - 1
            if horizon <= ilG[j0]:
                lo = ilf[j0]
            else:
                jlo = bisect_right(ilG, horizon, j0, j1) - 1
                d = horizon - ilG[jlo]
                n_j = iln[jlo]
                lo = ilf[jlo] + (d if d < n_j else n_j)
            j1 = j0
            # Newest line >= lo matching sigma (mod), walking descending;
            # stamp == g0 + (line - first) + 1 off the covering entry.
            last = hi - ((hi - sigma) % mod)
            if last < lo:
                continue
            if out and seen is None:
                seen = {ln for ln, _ in out}
            need = assoc - len(out)
            fj = ilf[j]
            base = ilG[j] - fj + 1  # stamp of line == base + line, entry j
            if seen is None:
                # Common case: the whole request resolves in the newest run
                # (lines within a run are distinct — no membership tests).
                for line in range(last, lo - 1, -mod):
                    if fj > line:
                        while fj > line:
                            j -= 1
                            fj = ilf[j]
                        base = ilG[j] - fj + 1
                    out_append((line, base + line))
                    need -= 1
                    if not need:
                        out.reverse()
                        return dict(out), True
            else:
                for line in range(last, lo - 1, -mod):
                    if fj > line:
                        while fj > line:
                            j -= 1
                            fj = ilf[j]
                        base = ilG[j] - fj + 1
                    if line in seen:
                        continue
                    seen.add(line)
                    out_append((line, base + line))
                    need -= 1
                    if not need:
                        out.reverse()
                        return dict(out), True
        out.reverse()
        return dict(out), False

    def _ring_stamp(self, line: int) -> int:
        """Last-touch stamp of a resident ring line (newest log entry
        covering it)."""
        log_first, log_n, log_G = self._log_first, self._log_n, self._log_G
        for j in range(len(log_first) - 1, -1, -1):
            first = log_first[j]
            if first <= line < first + log_n[j]:
                return log_G[j] + (line - first) + 1
        raise AssertionError(f"ring line {line:#x} not in burst log")

    # ------------------------------------------------------------------ merge
    def _apply_removal_l1(self, victim: int, stamp: int) -> None:
        """A lazily discovered L2 eviction back-invalidates ``victim`` from
        L1 *as of* ``stamp``: only copies older than the eviction die — a
        newer copy means the line was re-filled afterwards and survives."""
        ctx = self._m1_ctx
        sigma = victim % self._n1
        if ctx is not None and ctx[0] == sigma:
            _, old, pending = ctx
            if victim in old and old[victim] < stamp:
                del old[victim]
            if victim in pending and pending[victim] < stamp:
                del pending[victim]
            return
        ways = self._sets1[sigma]
        if victim in ways and ways[victim] < stamp:
            del ways[victim]

    def _l2_survives(self, line: int, sigma: int) -> bool:
        """Cheap sufficient condition that ``line``'s L2 copy survives every
        pending ring fill for set ``sigma`` — in which case the inclusion
        guard holds without merging (horizons stay put; the eventual merge
        replays the same fills with the same outcome).

        Replayed in stamp order, pending fills — all distinct ring lines,
        all younger than every dict entry — evict oldest-first, so ``line``
        (rank ``r`` above the oldest entry, set size ``m``, associativity
        ``a``) is evicted only after more than ``r + (a - m)`` insertions.
        Pending fills for one set are at most ``inner_lines // n2`` plus one
        slack line per inner log entry, both read off prefix sums, so the
        bound costs one bisect instead of a log walk.
        """
        ways = self._sets2[sigma]
        r = 0
        for k in ways:
            if k == line:
                break
            r += 1
        else:
            return False  # no L2 copy in the merged state: must merge
        horizon = self._M2[sigma]
        if horizon < self._floor:
            horizon = self._floor
        # Oldest log entry with stamps past the horizon (entry ends are the
        # next entry's g0, so both columns are strictly increasing).
        j0 = bisect_right(self._log_G, horizon) - 1
        if j0 < 0:
            j0 = 0
        fills = (self._cin_lines[-1] - self._cin_lines[j0]) // self._n2 + (
            self._cin_cnt[-1] - self._cin_cnt[j0]
        )
        return fills <= self._a2 - len(ways) + r

    def _merge_l2(self, sigma: int, upto: int | None = None) -> None:
        T = self._burst_G if upto is None else upto
        horizon = self._M2[sigma]
        if horizon < self._floor:
            horizon = self._floor
        if horizon >= T:
            return
        a2 = self._a2
        pending, wiped = self._gather(sigma, self._n2, horizon, T, a2)
        ways = self._sets2[sigma]
        self._M2[sigma] = T
        if not pending:
            return
        if wiped:
            # Every old entry not refreshed by the surviving pending fills
            # was evicted at some stamp <= T with its L1 copy unrefreshed
            # since (fills touch both levels together), so the guard with
            # stamp T is exact.  _apply_removal_l1's common (no-ctx) path is
            # inlined: this loop dominates the merge's call count.
            ctx = self._m1_ctx
            n1 = self._n1
            sets1 = self._sets1
            if ctx is None:
                for v in ways:
                    if v not in pending:
                        ways1 = sets1[v % n1]
                        if v in ways1 and ways1[v] < T:
                            del ways1[v]
            else:
                for v in ways:
                    if v not in pending:
                        self._apply_removal_l1(v, T)
            ways.clear()
            ways.update(pending)  # _gather yields ascending stamps
            return
        for line, s in pending.items():  # ascending stamps from _gather
            if line in ways:
                del ways[line]
            elif len(ways) >= a2:
                for v in ways:
                    break
                del ways[v]
                self._apply_removal_l1(v, s)
            ways[line] = s

    def _merge_l1(self, sigma: int, upto: int | None = None) -> None:
        T = self._burst_G if upto is None else upto
        horizon = self._M1[sigma]
        if horizon < self._floor:
            horizon = self._floor
        if horizon >= T:
            return
        a1 = self._a1
        pending, wiped = self._gather(sigma, self._n1, horizon, T, a1)
        ways = self._sets1[sigma]
        self._M1[sigma] = T
        if not pending:
            return
        if wiped:
            ways.clear()
            ways.update(pending)  # _gather yields ascending stamps
            return
        if ways and len(ways) + len(pending) > a1:
            # An eviction may occur, so every old allocator entry must have
            # its (possibly stale) L2 set pulled current first: an
            # undiscovered L2 eviction of an old entry would change which
            # lines survive.  Old *ring* entries cannot be affected — an
            # undiscovered L2 eviction of a ring line needs a2 pending fills
            # in its L2 set, all of which are pending here too, forcing the
            # wipe branch instead.
            base, limit = _RING_BASE_LINE, _RING_BASE_LINE + _MAX_POS
            n2 = self._n2
            burst_G = self._burst_G
            self._m1_ctx = (sigma, ways, pending)
            try:
                for x in list(ways):
                    if base <= x < limit:
                        continue
                    if self._M2[x % n2] < burst_G:
                        self._merge_l2(x % n2)
            finally:
                self._m1_ctx = None
            if not pending:
                return
        for line, s in pending.items():  # ascending stamps from _gather
            if line in ways:
                del ways[line]
            elif len(ways) >= a1:
                for v in ways:
                    break
                del ways[v]
            ways[line] = s

    # ------------------------------------------------------------ ring bursts
    def _ring_burst(self, first_line: int, n: int, inner: bool) -> None:
        """Apply one contiguous ring burst lazily (see module docstring)."""
        g0 = self._G
        self._log_first.append(first_line)
        self._log_n.append(n)
        self._log_G.append(g0)
        self._log_inner.append(inner)
        cl = self._cin_lines
        cc = self._cin_cnt
        if inner:
            # Coalesce with the previous inner entry when both lines and
            # stamps are contiguous: the merged entry keeps the closed form
            # stamp == g0 + (line - first) + 1 exactly, and ``_gather`` is
            # the inner log's only consumer.  Line-contiguous entries with a
            # stamp gap (demand accesses consumed stamps in between) stay
            # separate entries but extend the current *run*; a line gap or
            # ring wrap starts a new run.
            ilf = self._ilog_first
            iln = self._ilog_n
            if iln and ilf[-1] + iln[-1] == first_line:
                if self._ilog_G[-1] + iln[-1] == g0:
                    iln[-1] += n
                else:
                    ilf.append(first_line)
                    iln.append(n)
                    self._ilog_G.append(g0)
            else:
                self._irun_j0.append(len(ilf))
                ilf.append(first_line)
                iln.append(n)
                self._ilog_G.append(g0)
            cl.append(cl[-1] + n)
            cc.append(cc[-1] + 1)
        else:
            cl.append(cl[-1])
            cc.append(cc[-1])
        self._G = g0 + n
        self._burst_G = self._G
        self.l1.misses += n
        self.l2.misses += n
        p0 = first_line - _RING_BASE_LINE
        end = p0 + n
        hwm = self._hwm
        warm_end = end if end < hwm else hwm
        absent_hit: list[int] = []  # re-touched back-invalidated positions
        if self._absent and p0 < warm_end:
            absent_hit = [p for p in self._absent if p0 <= p < warm_end]
        warm_hits = (warm_end - p0 if warm_end > p0 else 0) - len(absent_hit)
        cold = end - hwm if end > hwm else 0
        self.l3.hits += warm_hits
        misses = cold + len(absent_hit)
        self.l3.misses += misses
        self.dram_accesses += misses
        # Positions whose L3 insert may evict run the exact per-line path,
        # in stamp order (merge horizons per inner set must be monotone).
        exceptions = absent_hit
        if cold and self._risk3:
            n3 = self._n3
            lo_line = _RING_BASE_LINE + hwm
            for sigma in list(self._risk3):
                off = (sigma - lo_line) % n3
                for line in range(lo_line + off, _RING_BASE_LINE + end, n3):
                    exceptions.append(line - _RING_BASE_LINE)
        if inner and not self._pending and n < _EAGER_MAX:
            # Eager route: apply the burst's L1/L2 fills now, interleaved
            # with the exceptional L3 inserts in reference (position) order,
            # then advance the floor so merges skip this entry.
            prev = p0
            for p in sorted(exceptions):
                if p > prev:
                    self._apply_inner_segment(
                        first_line + (prev - p0), p - prev, g0 + (prev - p0)
                    )
                self._ring_insert_exception(p, g0 + (p - p0) + 1)
                self._absent.pop(p, None)
                prev = p
            if end > prev:
                self._apply_inner_segment(
                    first_line + (prev - p0), end - prev, g0 + (prev - p0)
                )
            if cold:
                self._hwm = end
            self._floor = self._G
            return
        if inner:
            self._pending = True
        elif not self._pending:
            # Window heads never enter L1/L2; with nothing pending the floor
            # can ride over them so later merges skip the entry outright.
            self._floor = self._G
        for p in sorted(exceptions):
            self._ring_insert_exception(p, g0 + (p - p0) + 1)
            self._absent.pop(p, None)
        if cold:
            self._hwm = end

    def _apply_inner_segment(self, first: int, n: int, g0: int) -> None:
        """Eagerly fill L1/L2 for burst lines ``[first, first + n)`` with
        stamps ``g0+1 .. g0+n`` — exactly what a merge would replay, applied
        at once.  Relies on the closed-form counter invariant: a ring line's
        re-touch never hits L1/L2, so every line is a plain miss-fill."""
        n1, n2 = self._n1, self._n2
        a1, a2 = self._a1, self._a2
        sets1, sets2 = self._sets1, self._sets2
        stamp = g0
        for line in range(first, first + n):
            stamp += 1
            ways2 = sets2[line % n2]
            if len(ways2) >= a2:
                for v2 in ways2:
                    break
                del ways2[v2]
                vset = sets1[v2 % n1]
                if v2 in vset:
                    del vset[v2]
            ways2[line] = stamp
            ways1 = sets1[line % n1]
            if len(ways1) >= a1:
                for v1 in ways1:
                    break
                del ways1[v1]
            ways1[line] = stamp

    def _ring_insert_exception(self, p: int, stamp: int) -> None:
        """Exact mid-burst L3 insert for a position that may evict: the set
        is (or may be) full, so the reference walk's victim choice and
        back-invalidations must run now, against state materialized up to
        the instant before this line's fill."""
        line = _RING_BASE_LINE + p
        n3 = self._n3
        sigma3 = line % n3
        d3 = self._sets3[sigma3]
        # Exact occupancy: allocator lines plus resident ring positions of
        # this set — [0, hwm) minus absent, plus any cold lines earlier in
        # the current burst (hwm is only advanced once the burst is logged).
        r3 = (sigma3 - _RING_BASE_LINE) % n3
        hwm = self._hwm if self._hwm > p else p
        candidates = []
        for q in range(r3, hwm, n3):
            if q == p or q in self._absent:
                continue
            candidates.append((self._ring_stamp(_RING_BASE_LINE + q), q))
        if len(d3) + len(candidates) >= self._a3:
            # Victim: globally least-recent among allocator and ring lines.
            v_line, v_stamp = None, None
            for cand, s in d3.items():
                if v_stamp is None or s < v_stamp:
                    v_line, v_stamp = cand, s
            for s, q in candidates:
                if v_stamp is None or s < v_stamp:
                    v_line, v_stamp = _RING_BASE_LINE + q, s
            if v_line is not None:
                if v_line in d3:
                    del d3[v_line]
                    if len(d3) < self._risk_len:
                        self._risk3.pop(sigma3, None)
                else:
                    self._absent[v_line - _RING_BASE_LINE] = None
                # Back-invalidate, exactly ordered: materialize the (shared,
                # by set nesting) inner sets to just before this fill.
                s1, s2 = line % self._n1, line % self._n2
                self._merge_l1(s1, stamp - 1)
                self._merge_l2(s2, stamp - 1)
                ways = self._sets2[s2]
                if v_line in ways:
                    del ways[v_line]
                ways = self._sets1[s1]
                if v_line in ways:
                    del ways[v_line]

    # ----------------------------------------------------------- public API
    def touch_lines(self, base: int, num_lines: int, stride: int = 64) -> None:
        if not self._lazy:
            super().touch_lines(base, num_lines, stride)
            return
        if num_lines <= 0:
            return
        ring_lo = RING_BASE
        ring_hi = RING_BASE + _MAX_POS * 64
        if stride != 64 or base % 64:
            span_end = base + (num_lines - 1) * stride
            if base >= ring_hi or span_end < ring_lo:
                access = self._lazy_access
                for i in range(num_lines):
                    access(base + i * stride)
            else:
                self._degrade()
                super().touch_lines(base, num_lines, stride)
            return
        first = base >> 6
        if base >= ring_hi or base + num_lines * 64 <= ring_lo:
            access = self._lazy_access
            for line in range(first, first + num_lines):
                access(line << 6)
            return
        p0 = first - _RING_BASE_LINE
        if p0 == self._cursor and base >= ring_lo and p0 + num_lines <= _MAX_POS:
            self._ring_burst(first, num_lines, True)
            self._cursor = (p0 + num_lines) % RING_LINES
            return
        self._degrade()
        super().touch_lines(base, num_lines, stride)

    def touch_line_window(self, ranges: list[tuple[int, int]]) -> None:
        if not self._lazy:
            super().touch_line_window(ranges)
            return
        total = 0
        pos = None
        ok = True
        for rbase, rn in ranges:
            if not rn:
                continue
            if rbase % 64 or rbase < RING_BASE:
                ok = False
                break
            rp = (rbase >> 6) - _RING_BASE_LINE
            if rp + rn > _MAX_POS or (pos is not None and rp != pos % RING_LINES):
                ok = False
                break
            if pos is None and rp > self._hwm:
                ok = False  # gap below the window: interval L3 can't express
                break
            pos = rp + rn
            total += rn
        if not ok:
            self._degrade()
            super().touch_line_window(ranges)
            return
        inner = self._a2 * self._n2
        head_left = total - inner
        for rbase, rn in ranges:
            if not rn:
                continue
            first = rbase >> 6
            k = 0
            if head_left > 0:
                k = rn if rn <= head_left else head_left
                head_left -= k
                self._ring_burst(first, k, False)
            if rn - k:
                self._ring_burst(first + k, rn - k, True)
        if pos is not None:
            self._cursor = pos % RING_LINES

    def access(self, addr: int, write: bool = False) -> int:
        if self._lazy:
            return self._lazy_access(addr)
        return super().access(addr, write)

    def _lazy_access(self, addr: int) -> int:
        line = addr >> 6
        if RING_BASE <= addr < RING_BASE + _MAX_POS * 64:
            # Out-of-band access into the ring window: the interval
            # representation of L3 residency cannot express it.
            self._degrade()
            return self.demand_access(addr)
        s1 = line % self._n1
        pending = self._pending
        if pending:
            burst_G = self._burst_G
            if self._M1[s1] < burst_G:
                self._merge_l1(s1)
        ways1 = self._sets1[s1]
        stamp = self._G + 1
        self._G = stamp
        hit1 = line in ways1
        if hit1 and pending:
            s2 = line % self._n2
            if self._M2[s2] < burst_G and not self._l2_survives(line, s2):
                # Inclusion guard: pending L2 churn may have evicted this
                # line's L2 copy, whose back-invalidation must land before
                # the hit is honored.
                self._merge_l2(s2)
                hit1 = line in ways1
        if hit1:
            self.l1.hits += 1
            del ways1[line]
            ways1[line] = stamp
            return self._lat1
        self.l1.misses += 1
        s2 = line % self._n2
        if pending and self._M2[s2] < burst_G:
            self._merge_l2(s2)
        ways2 = self._sets2[s2]
        if line in ways2:
            self.l2.hits += 1
            del ways2[line]
            ways2[line] = stamp
            if len(ways1) >= self._a1:
                for v1 in ways1:
                    break
                del ways1[v1]
            ways1[line] = stamp
            return self._lat2
        self.l2.misses += 1
        d3 = self._sets3[line % self._n3]
        if line in d3:
            self.l3.hits += 1
            del d3[line]
            d3[line] = stamp
            latency = self._lat3
        else:
            self.l3.misses += 1
            self.dram_accesses += 1
            self._alloc_l3_insert(line, stamp, d3)
            latency = self._lat_dram
        if len(ways2) >= self._a2:
            for v2 in ways2:
                break
            del ways2[v2]
            vset = self._sets1[v2 % self._n1]
            if v2 in vset:
                del vset[v2]
        ways2[line] = stamp
        if len(ways1) >= self._a1:
            for v1 in ways1:
                break
            del ways1[v1]
        ways1[line] = stamp
        return latency

    def _alloc_l3_insert(self, line: int, stamp: int, d3: dict[int, int]) -> None:
        """DRAM-missing allocator fill of L3, with exact victim choice over
        the hybrid (dict + ring interval) set representation."""
        n3 = self._n3
        sigma3 = line % n3
        r3 = (sigma3 - _RING_BASE_LINE) % n3
        candidates = []
        for q in range(r3, self._hwm, n3):
            if q not in self._absent:
                candidates.append(q)
        if len(d3) + len(candidates) >= self._a3:
            v_line, v_stamp = None, None
            for cand, s in d3.items():
                if v_stamp is None or s < v_stamp:
                    v_line, v_stamp = cand, s
            for q in candidates:
                s = self._ring_stamp(_RING_BASE_LINE + q)
                if v_stamp is None or s < v_stamp:
                    v_line, v_stamp = _RING_BASE_LINE + q, s
            if v_line is not None:
                if v_line in d3:
                    del d3[v_line]
                else:
                    self._absent[v_line - _RING_BASE_LINE] = None
                # By set nesting the victim lives in the very L1/L2 sets the
                # current walk just materialized: eager, ordered removal.
                vset = self._sets2[v_line % self._n2]
                if v_line in vset:
                    del vset[v_line]
                vset = self._sets1[v_line % self._n1]
                if v_line in vset:
                    del vset[v_line]
        d3[line] = stamp
        if len(d3) >= self._risk_len:
            self._risk3[sigma3] = None

    def prefetch(self, addr: int) -> int:
        if self._lazy:
            return self._lazy_access(addr)
        return super().prefetch(addr)

    def probe_latency(self, addr: int) -> int:
        if not self._lazy:
            return super().probe_latency(addr)
        line = addr >> 6
        s1 = line % self._n1
        s2 = line % self._n2
        # Non-mutating for observable state: materialization only replays
        # history the reference hierarchy would already have applied.
        self._merge_l1(s1)
        self._merge_l2(s2)
        if line in self._sets1[s1]:
            return self.config.l1.latency
        if line in self._sets2[s2]:
            return self.config.l2.latency
        if RING_BASE <= addr < RING_BASE + _MAX_POS * 64:
            p = line - _RING_BASE_LINE
            if p < self._hwm and p not in self._absent:
                return self.config.l3.latency
            return self.config.dram_latency
        if line in self._sets3[line % self._n3]:
            return self.config.l3.latency
        return self.config.dram_latency

    def antagonize(self) -> int:
        if not self._lazy:
            return super().antagonize()
        self._materialize_inner()
        return self.l1.evict_less_used_half() + self.l2.evict_less_used_half()

    @property
    def levels(self):
        # Handing out the raw level objects exposes ``_sets`` contents
        # (differential state snapshots, flushes), which the lazy
        # representation keeps partially pending.  Materialize exactly first;
        # counters and latencies are unaffected.
        if self._lazy:
            self._degrade()
        return (self.l1, self.l2, self.l3)

    def flush_all(self) -> None:
        if self._lazy:
            # A flush empties everything, so there is nothing worth keeping
            # lazy state for — and the interval L3 representation cannot
            # express "touched but flushed".  Degrade to eager.
            self._lazy = False
            self._log_first = self._log_n = self._log_G = self._log_inner = []  # type: ignore[assignment]
            self._cin_lines = [0]
            self._cin_cnt = [0]
            self._refresh_fast_path()
        super().flush_all()

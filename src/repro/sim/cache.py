"""Set-associative cache model with true LRU replacement.

Each cache tracks which line addresses are resident per set and the LRU order
within the set.  Timing is owned by :class:`repro.sim.hierarchy.CacheHierarchy`;
this module is purely about hit/miss state and replacement.

The ``evict_less_used_half`` operation implements the paper's *antagonist*
microbenchmark hook: "after every allocation, invokes a simulator callback
which evicts the less used half of each set of the L1 and L2 data caches"
(Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    assoc: int
    line_size: int = 64
    latency: int = 4
    """Total load-to-use latency in cycles for a hit at this level."""

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.line_size):
            raise ValueError(f"{self.name}: size must divide into sets evenly")
        if self.line_size & (self.line_size - 1):
            raise ValueError("line_size must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_size)


class SetAssociativeCache:
    """One level of cache: per-set LRU lists of resident line addresses."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._line_shift = config.line_size.bit_length() - 1
        self._num_sets = config.num_sets
        # Each set is a list of line numbers, most recently used last.
        self._sets: list[list[int]] = [[] for _ in range(self._num_sets)]
        self.hits = 0
        self.misses = 0

    def _line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def _set_of(self, line: int) -> int:
        return line % self._num_sets

    def lookup(self, addr: int, update_lru: bool = True) -> bool:
        """Probe for ``addr``; returns True on hit and refreshes LRU."""
        line = self._line_of(addr)
        ways = self._sets[self._set_of(line)]
        if line in ways:
            self.hits += 1
            if update_lru:
                ways.remove(line)
                ways.append(line)
            return True
        self.misses += 1
        return False

    def contains(self, addr: int) -> bool:
        """Non-mutating residence check (no LRU update, no stats)."""
        line = self._line_of(addr)
        return line in self._sets[self._set_of(line)]

    def insert(self, addr: int) -> int | None:
        """Fill the line holding ``addr``; returns the evicted line address
        (first byte) if a victim was chosen, else None."""
        line = self._line_of(addr)
        ways = self._sets[self._set_of(line)]
        if line in ways:
            ways.remove(line)
            ways.append(line)
            return None
        victim = None
        if len(ways) >= self.config.assoc:
            victim = ways.pop(0) << self._line_shift
        ways.append(line)
        return victim

    def invalidate(self, addr: int) -> bool:
        """Drop the line holding ``addr`` if resident."""
        line = self._line_of(addr)
        ways = self._sets[self._set_of(line)]
        if line in ways:
            ways.remove(line)
            return True
        return False

    def evict_less_used_half(self) -> int:
        """Evict the LRU half of every set; returns lines evicted.

        This is the antagonist callback from the paper's methodology: it
        emulates an application striding through a large working set without
        simulating the millions of instructions the stride would take.
        """
        evicted = 0
        for ways in self._sets:
            keep = len(ways) - len(ways) // 2
            evicted += len(ways) - keep
            del ways[: len(ways) - keep]
        return evicted

    def flush(self) -> None:
        """Empty the cache (context-switch model)."""
        for ways in self._sets:
            ways.clear()

    @property
    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

"""Set-associative cache model with true LRU replacement.

Each cache tracks which line addresses are resident per set and the LRU order
within the set.  Timing is owned by :class:`repro.sim.hierarchy.CacheHierarchy`;
this module is purely about hit/miss state and replacement.

Two interchangeable implementations live here:

* :class:`SetAssociativeCache` — the default.  Each set is a Python ``dict``
  used as an ordered set (insertion order == LRU order, least recent first),
  so ``lookup``/``insert``/``invalidate`` are O(1) amortized instead of the
  O(assoc) list scans and shuffles of the original model.  On the simulator
  hot path every load probes up to three levels, so this is one of the three
  legs of the emission-side fast-forward.
* :class:`ReferenceSetAssociativeCache` — the original per-set ``list``
  model, kept verbatim as the executable specification.  The differential
  suite (``tests/integration/test_hot_path_differential.py``) replays every
  workload family against it and demands byte-identical results; set
  ``REPRO_CACHE_IMPL=reference`` to run the whole simulator on it.

Both implement *exact* true LRU with identical victim choice, so they are
observationally equivalent — not just statistically similar.

The ``evict_less_used_half`` operation implements the paper's *antagonist*
microbenchmark hook: "after every allocation, invokes a simulator callback
which evicts the less used half of each set of the L1 and L2 data caches"
(Section 5).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from itertools import islice


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    assoc: int
    line_size: int = 64
    latency: int = 4
    """Total load-to-use latency in cycles for a hit at this level."""

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.line_size):
            raise ValueError(f"{self.name}: size must divide into sets evenly")
        if self.line_size & (self.line_size - 1):
            raise ValueError("line_size must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_size)


class SetAssociativeCache:
    """One level of cache: per-set LRU dicts of resident line addresses.

    Each set is a ``dict[int, None]`` ordered least-recently-used first:
    an LRU refresh is delete + reinsert (both O(1)), the victim is
    ``next(iter(set))``.  Replacement decisions match
    :class:`ReferenceSetAssociativeCache` exactly.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._line_shift = config.line_size.bit_length() - 1
        self._num_sets = config.num_sets
        self._assoc = config.assoc
        # Each set maps line number -> None, least recently used first.
        self._sets: list[dict[int, None]] = [{} for _ in range(self._num_sets)]
        self.hits = 0
        self.misses = 0

    def _line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def _set_of(self, line: int) -> int:
        return line % self._num_sets

    def lookup(self, addr: int, update_lru: bool = True) -> bool:
        """Probe for ``addr``; returns True on hit and refreshes LRU."""
        line = addr >> self._line_shift
        ways = self._sets[line % self._num_sets]
        if line in ways:
            self.hits += 1
            if update_lru:
                del ways[line]
                ways[line] = None
            return True
        self.misses += 1
        return False

    def contains(self, addr: int) -> bool:
        """Non-mutating residence check (no LRU update, no stats)."""
        line = addr >> self._line_shift
        return line in self._sets[line % self._num_sets]

    def insert(self, addr: int) -> int | None:
        """Fill the line holding ``addr``; returns the evicted line address
        (first byte) if a victim was chosen, else None."""
        line = addr >> self._line_shift
        ways = self._sets[line % self._num_sets]
        if line in ways:
            del ways[line]
            ways[line] = None
            return None
        victim = None
        if len(ways) >= self._assoc:
            victim_line = next(iter(ways))
            del ways[victim_line]
            victim = victim_line << self._line_shift
        ways[line] = None
        return victim

    def invalidate(self, addr: int) -> bool:
        """Drop the line holding ``addr`` if resident."""
        line = addr >> self._line_shift
        ways = self._sets[line % self._num_sets]
        if line in ways:
            del ways[line]
            return True
        return False

    def evict_less_used_half(self) -> int:
        """Evict the LRU half of every set; returns lines evicted.

        This is the antagonist callback from the paper's methodology: it
        emulates an application striding through a large working set without
        simulating the millions of instructions the stride would take.
        """
        evicted = 0
        for ways in self._sets:
            drop = len(ways) // 2
            if drop:
                for line in list(islice(ways, drop)):
                    del ways[line]
                evicted += drop
        return evicted

    def flush(self) -> None:
        """Empty the cache (context-switch model)."""
        for ways in self._sets:
            ways.clear()

    @property
    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


class ReferenceSetAssociativeCache(SetAssociativeCache):
    """The original per-set-``list`` model (most recently used last).

    O(assoc) per operation; kept as the executable specification the O(1)
    model is differentially tested against.
    """

    def __init__(self, config: CacheConfig) -> None:
        super().__init__(config)
        # Each set is a list of line numbers, most recently used last.
        self._sets: list[list[int]] = [[] for _ in range(self._num_sets)]  # type: ignore[assignment]

    def lookup(self, addr: int, update_lru: bool = True) -> bool:
        line = self._line_of(addr)
        ways = self._sets[self._set_of(line)]
        if line in ways:
            self.hits += 1
            if update_lru:
                ways.remove(line)
                ways.append(line)
            return True
        self.misses += 1
        return False

    def contains(self, addr: int) -> bool:
        line = self._line_of(addr)
        return line in self._sets[self._set_of(line)]

    def insert(self, addr: int) -> int | None:
        line = self._line_of(addr)
        ways = self._sets[self._set_of(line)]
        if line in ways:
            ways.remove(line)
            ways.append(line)
            return None
        victim = None
        if len(ways) >= self.config.assoc:
            victim = ways.pop(0) << self._line_shift
        ways.append(line)
        return victim

    def invalidate(self, addr: int) -> bool:
        line = self._line_of(addr)
        ways = self._sets[self._set_of(line)]
        if line in ways:
            ways.remove(line)
            return True
        return False

    def evict_less_used_half(self) -> int:
        evicted = 0
        for ways in self._sets:
            keep = len(ways) - len(ways) // 2
            evicted += len(ways) - keep
            del ways[: len(ways) - keep]
        return evicted

    def flush(self) -> None:
        for ways in self._sets:
            ways.clear()


def cache_class_from_env() -> type[SetAssociativeCache]:
    """The cache implementation selected by ``REPRO_CACHE_IMPL``.

    ``reference`` (or ``list``) selects :class:`ReferenceSetAssociativeCache`;
    anything else — including unset — selects the O(1) default.  Read at
    hierarchy construction time so tests and the differential benchmark can
    switch implementations per machine without rebuilding the process.
    """
    impl = os.environ.get("REPRO_CACHE_IMPL", "").strip().lower()
    if impl in ("reference", "list"):
        return ReferenceSetAssociativeCache
    return SetAssociativeCache

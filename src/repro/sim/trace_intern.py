"""Interned trace templates: memoizing the *emission* side of the simulator.

PR 1's :class:`~repro.sim.trace_cache.TraceCache` made scheduling nearly
free, but every allocator call still paid full price to construct the trace
it then skipped scheduling: ~40 :class:`~repro.sim.uop.Uop` dataclass
constructions, a :class:`~repro.sim.uop.Trace`, and a fingerprint tuple.
The paper's own thesis — malloc fast paths are a handful of highly
repetitive instruction shapes — applies to emission just as much as to
scheduling: for a loop-free fast path, the trace's *structure* (uop kinds,
dependence edges, tags) is a pure function of the emission site and the
control-path decisions taken, and only the per-uop latencies (resolved
against live cache/TLB/predictor state) vary between calls.

:class:`TraceInterner` exploits that with a two-level table:

* **templates** — ``(site, decision_tokens) -> template_id``.  The site is a
  short label naming the emission code path (e.g. ``"malloc:fast"``); the
  tokens are every branch outcome plus every :meth:`~repro.sim.uop
  .TraceBuilder.note`-d structural decision along the way.
* **variants** — ``(template_id, latency_tuple) -> Trace``.  The latency
  tuple has exactly one entry per uop, so its length alone pins the uop
  count; combined with the template identity it determines the full
  canonical fingerprint.

An intern hit therefore returns the *same shared* :class:`Trace` object —
fingerprint precomputed — in two dict lookups, without materializing a
single ``Uop``.  Downstream, :meth:`~repro.sim.timing.TimingModel.run` sees
the identical fingerprint sequence it would have seen without interning, so
trace-cache statistics and every scheduling result are byte-identical
(enforced by ``tests/integration/test_hot_path_differential.py``).

Two sharp edges, both deliberate:

* **Shared traces carry representative addresses.**  ``Uop.addr`` is
  excluded from the fingerprint (it priced the load at emission time and
  does not influence scheduling), so an interned trace holds the addresses
  of whichever call first materialized the variant.  Nothing in the timing
  model reads them; the differential suite would catch a regression that
  started to.
* **Loops intern through count tokens.**  Central-cache refills and
  scavenges contain data-dependent loops; every loop count and mid-flight
  shape decision is recorded as a structural token (``("carve", n)``,
  ``("pm_probes", n)``, ...), so a refill's whole variable-length shape is
  one template key.  Workload refill shapes repeat heavily (same size
  class → same batch/carve counts), giving the slow-path sites real hit
  rates; only the rare LARGE/FREE_LARGE span traffic still falls back to
  plain :meth:`~repro.sim.uop.TraceBuilder.build` (see
  ``repro.alloc.allocator._INTERN_SITES``).

``REPRO_TRACE_INTERN=0`` disables interning process-wide (for differential
runs); ``REPRO_INTERN_VALIDATE=1`` rebuilds every hit from scratch and
asserts fingerprint equality — the tripwire for an emission site that
forgot to ``note()`` a structural decision.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.sim import warm as _warm
from repro.sim.uop import FingerprintKey, Trace

#: Bound on cached variants.  A macro replay generates a few hundred distinct
#: (template, latency) combinations; antagonist sweeps a few thousand.  FIFO
#: eviction (not LRU) keeps the hit path to two dict reads.
DEFAULT_INTERN_VARIANTS = 1 << 16


@dataclass
class TraceInternStats:
    """Counters for one :class:`TraceInterner`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    validations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> tuple[int, int]:
        """(hits, misses) — subtract two snapshots to scope stats to a run."""
        return (self.hits, self.misses)

    def as_dict(self) -> dict[str, float]:
        """JSON-ready counters (consumed by
        :func:`repro.obs.bridges.stats_registry` and reports)."""
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "validations": float(self.validations),
            "hit_rate": self.hit_rate,
        }


class TraceInterner:
    """Two-level intern table mapping emission sites to shared traces."""

    def __init__(
        self,
        max_variants: int = DEFAULT_INTERN_VARIANTS,
        validate: bool | None = None,
    ) -> None:
        if max_variants <= 0:
            raise ValueError("max_variants must be positive")
        self.max_variants = max_variants
        if validate is None:
            validate = os.environ.get("REPRO_INTERN_VALIDATE", "") not in ("", "0")
        self.validate = validate
        self.stats = TraceInternStats()
        self._template_ids: dict[tuple, int] = {}
        self._variants: OrderedDict[tuple, Trace] = OrderedDict()

    @property
    def num_templates(self) -> int:
        return len(self._template_ids)

    @property
    def num_variants(self) -> int:
        return len(self._variants)

    def intern(
        self,
        site: str,
        tokens: tuple,
        latencies: tuple[int, ...],
        materialize: Callable[[], Trace],
    ) -> Trace:
        """Return the shared trace for ``(site, tokens, latencies)``,
        materializing (and caching) it on first sight."""
        template_ids = self._template_ids
        template_key = (site, tokens)
        template_id = template_ids.get(template_key)
        if template_id is None:
            template_id = len(template_ids)
            template_ids[template_key] = template_id
        variant_key = (template_id, latencies)
        trace = self._variants.get(variant_key)
        if trace is not None:
            self.stats.hits += 1
            if self.validate:
                self._check(trace, materialize, site)
            return trace
        self.stats.misses += 1
        # A fork-server warm bank (repro.sim.warm) can satisfy the miss
        # without materializing: the trace is fully determined by
        # (site, tokens, latencies), so a banked instance is bit-equal to a
        # fresh one.  The miss above is already counted — bank hits are
        # telemetry-neutral.  Validate mode always materializes.
        trace = None if self.validate else _warm.lookup_template(site, tokens, latencies)
        if trace is None:
            trace = materialize()
            # Shared traces are trace-cache keys on every subsequent hit;
            # cache the fingerprint hash once so lookups stop re-hashing
            # the tuple.
            trace._fp_key = FingerprintKey(trace._fingerprint)
            if len(trace) != len(latencies):
                raise AssertionError(
                    f"intern site {site!r}: latency tuple has {len(latencies)} "
                    f"entries for a {len(trace)}-uop trace"
                )
        self._variants[variant_key] = trace
        if len(self._variants) > self.max_variants:
            self._variants.popitem(last=False)
            self.stats.evictions += 1
        return trace

    def _check(self, cached: Trace, materialize: Callable[[], Trace], site: str) -> None:
        """Validate mode: the freshly built trace must fingerprint-match the
        shared one, or an emission site failed to token a structural
        decision."""
        self.stats.validations += 1
        fresh = materialize()
        if fresh.fingerprint() != cached.fingerprint():
            raise AssertionError(
                f"intern collision at site {site!r}: a structural decision "
                "is not captured by the template tokens"
            )

    def clear(self) -> None:
        """Drop all templates and variants (stats describe the lifetime)."""
        self._template_ids.clear()
        self._variants.clear()

    def export_templates(self) -> dict[tuple, Trace]:
        """Live variants re-keyed by the instance-independent
        ``(site, tokens, latencies)`` triple, for harvesting into a
        :class:`repro.sim.warm.WarmBank` (per-instance template ids do not
        travel between interners)."""
        inverse = {tid: key for key, tid in self._template_ids.items()}
        out: dict[tuple, Trace] = {}
        for (template_id, latencies), trace in self._variants.items():
            site, tokens = inverse[template_id]
            out[(site, tokens, latencies)] = trace
        return out


def interner_from_env() -> TraceInterner | None:
    """Default per-machine interner: on unless ``REPRO_TRACE_INTERN`` is
    ``0``/``off``/``false``."""
    flag = os.environ.get("REPRO_TRACE_INTERN", "").strip().lower()
    if flag in ("0", "off", "false", "no"):
        return None
    return TraceInterner()

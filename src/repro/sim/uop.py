"""Micro-op traces and the builder the allocator uses to emit them.

Every allocator call (``malloc``/``free``) produces one :class:`Trace`: the
sequence of micro-ops the equivalent compiled x86 code would execute, with
explicit data dependences.  Ops carry a :class:`Tag` naming the fast-path
component they belong to — this is what makes the paper's limit study
(Section 5: "instructions comprising the three steps ... are simply ignored
by performance simulation") a one-line operation: drop all ops with the
tagged components and reschedule.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class UopKind(enum.Enum):
    """The micro-op classes the timing model distinguishes."""

    ALU = "alu"  # single-cycle integer op
    LOAD = "load"  # latency from the cache hierarchy
    STORE = "store"  # buffered; off the critical path
    BRANCH = "branch"  # predicted; single cycle unless mispredicted
    MALLACC = "mallacc"  # one of the five new instructions
    PREFETCH = "prefetch"  # commits immediately, data arrives later
    FIXED = "fixed"  # modeled block (lock, syscall) with preset latency


class Tag(enum.Enum):
    """Fast-path component labels (Figure 3's colored boxes, plus bookkeeping).

    ``SIZE_CLASS``, ``SAMPLING`` and ``PUSH_POP`` are the three components the
    paper ablates in Figure 4; the rest cover "function call overhead,
    addressing calculations, and updates to metadata fields" (Section 3.3)
    and the slow paths.
    """

    SIZE_CLASS = "size_class"
    SAMPLING = "sampling"
    PUSH_POP = "push_pop"
    CALL_OVERHEAD = "call_overhead"
    ADDRESSING = "addressing"
    METADATA = "metadata"
    SLOW_PATH = "slow_path"
    MALLACC = "mallacc"


#: The three components removed together in the paper's limit study.
LIMIT_STUDY_TAGS = frozenset({Tag.SIZE_CLASS, Tag.SAMPLING, Tag.PUSH_POP})


@dataclass(slots=True)
class Uop:
    """One micro-op: kind, source dependences (trace indices), and timing
    inputs resolved at emission time.

    ``slots=True``: hundreds of thousands of these materialize per replay
    (intern misses and every slow-path call), and the scheduler reads their
    fields per uop — slots skip the per-instance ``__dict__``."""

    kind: UopKind
    deps: tuple[int, ...] = ()
    addr: int | None = None
    latency: int = 1
    tag: Tag = Tag.ADDRESSING

    def __post_init__(self) -> None:
        if self.kind in (UopKind.LOAD, UopKind.STORE, UopKind.PREFETCH):
            if self.addr is None:
                raise ValueError(f"{self.kind} requires an address")


class FingerprintKey:
    """A trace fingerprint with its hash computed once.

    Hash- and equality-compatible with the underlying fingerprint tuple in
    both directions, so dict entries stored under either form find each
    other.  Interned traces are looked up in the trace cache on every
    allocator call; without this, each lookup re-hashes a ~40-element tuple
    of tuples."""

    __slots__ = ("fp", "_hash")

    def __init__(self, fp: tuple) -> None:
        self.fp = fp
        self._hash = hash(fp)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if isinstance(other, FingerprintKey):
            return self.fp == other.fp
        return self.fp == other

    def __reduce__(self):
        # Re-derive the cached hash on unpickle: fingerprints contain
        # strings, whose hashes are per-process under PYTHONHASHSEED, so a
        # key shipped to a spawn-started worker (warm banks,
        # repro.sim.warm) must not carry the parent's hash into the child's
        # dicts.
        return (FingerprintKey, (self.fp,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FingerprintKey({self.fp!r})"


@dataclass
class Trace:
    """An ordered list of micro-ops for one allocator call.

    Traces are immutable once built (the builder hands over its list); the
    canonical fingerprint is computed lazily and cached on the instance.
    """

    uops: list[Uop] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.uops)

    def __iter__(self):
        return iter(self.uops)

    def fingerprint_key(self):
        """The fingerprint as a memoization key.

        For traces with a precomputed fingerprint (interned templates), the
        key is a :class:`FingerprintKey` wrapper whose hash is computed once
        and cached — hash- and equality-compatible with the plain tuple, so
        it indexes the same :class:`~repro.sim.trace_cache.TraceCache`
        entries and leaves hit/miss accounting untouched.  Ad-hoc traces
        return the plain tuple (computing a wrapper per throwaway trace
        would cost exactly the hash it tries to save)."""
        key = getattr(self, "_fp_key", None)
        return key if key is not None else self.fingerprint()

    def fingerprint(self) -> tuple:
        """Canonical scheduling identity: ``(kind, latency, deps, tag)`` per
        micro-op.

        :meth:`repro.sim.timing.TimingModel.run` reads exactly ``kind``,
        ``latency`` and ``deps``; ``tag`` is included so the same key also
        identifies every :meth:`without_tags` ablation variant.  Addresses
        are deliberately excluded — they priced the load at emission time
        and do not influence scheduling.
        """
        fp = getattr(self, "_fingerprint", None)
        if fp is None:
            # _value_ avoids the DynamicClassAttribute descriptor on .value,
            # and the listcomp beats a genexpr — fingerprinting sits on the
            # memoization hit path and must stay an order of magnitude
            # cheaper than scheduling.
            fp = tuple(
                [(u.kind._value_, u.latency, u.deps, u.tag._value_) for u in self.uops]
            )
            self._fingerprint = fp
        return fp

    def count(self, kind: UopKind) -> int:
        return sum(1 for u in self.uops if u.kind is kind)

    def tags_present(self) -> set[Tag]:
        return {u.tag for u in self.uops}

    def without_tags(self, tags: frozenset[Tag] | set[Tag]) -> "Trace":
        """Return a copy with all ops carrying ``tags`` removed.

        Dependences on removed ops are rewired transitively to the removed
        op's own dependences, so surviving chains keep their ordering — this
        mirrors deleting instructions from a compiled binary where the
        registers they fed are rematerialized for free.
        """
        keep_index: dict[int, int] = {}
        # For removed ops, the set of surviving ops they transitively depend on.
        forwarded: dict[int, tuple[int, ...]] = {}
        new_uops: list[Uop] = []
        for i, uop in enumerate(self.uops):
            resolved: list[int] = []
            for dep in uop.deps:
                if dep in keep_index:
                    resolved.append(keep_index[dep])
                else:
                    resolved.extend(forwarded.get(dep, ()))
            deps = tuple(dict.fromkeys(resolved))
            if uop.tag in tags:
                forwarded[i] = deps
            else:
                keep_index[i] = len(new_uops)
                new_uops.append(
                    Uop(
                        kind=uop.kind,
                        deps=deps,
                        addr=uop.addr,
                        latency=uop.latency,
                        tag=uop.tag,
                    )
                )
        return Trace(uops=new_uops)


class TraceBuilder:
    """Incrementally builds a :class:`Trace` during a functional allocator run.

    Methods return the index of the emitted uop so callers can thread data
    dependences: ``idx = tb.load(addr, deps=(base,))``.  A ``latency`` on
    loads is resolved by the caller (the allocator consults the cache
    hierarchy at emission time, because hit/miss depends on the live cache
    state at that point in the run).

    Construction is *deferred*: emission records ``(kind, deps, addr, tag)``
    structure tuples plus a parallel latency list, and the :class:`Uop`
    objects only materialize in :meth:`build`.  This is what makes
    :meth:`build_interned` cheap — on an intern hit (the allocator fast
    paths, i.e. almost every call of a replay) no ``Uop`` and no ``Trace``
    are ever constructed; the shared, fingerprinted instance comes straight
    out of the :class:`~repro.sim.trace_intern.TraceInterner`.

    Decision *tokens* (:meth:`note`, and every branch outcome recorded by
    :meth:`~repro.alloc.context.Emitter.branch`) name the control path taken
    through the emission site; together with the site label they key the
    intern template.  Any structural decision that is not visible as a
    branch token **must** be noted, or two different shapes would collide on
    one template (the interner's validate mode exists to catch exactly
    that).
    """

    def __init__(self) -> None:
        # Parallel arrays: structure (static per control path) and latencies
        # (dynamic, resolved against live cache/TLB/predictor state).  The
        # appends are pre-bound: recording runs once per uop per allocator
        # call, intern hit or not.
        self._records: list[tuple] = []  # (kind, deps, addr, tag)
        self._latencies: list[int] = []
        self._tokens: list = []
        self._rec = self._records.append
        self._lat = self._latencies.append

    def note(self, token) -> None:
        """Record a control-path decision that has no branch uop (e.g. a
        Mallacc push hit, the presence of a head prefetch)."""
        self._tokens.append(token)

    def alu(self, deps: tuple[int, ...] = (), tag: Tag = Tag.ADDRESSING, latency: int = 1) -> int:
        self._rec((UopKind.ALU, deps, None, tag))
        self._lat(latency)
        return len(self._latencies) - 1

    def load(self, addr: int, latency: int, deps: tuple[int, ...] = (), tag: Tag = Tag.ADDRESSING) -> int:
        self._rec((UopKind.LOAD, deps, addr, tag))
        self._lat(latency)
        return len(self._latencies) - 1

    def store(self, addr: int, deps: tuple[int, ...] = (), tag: Tag = Tag.ADDRESSING) -> int:
        self._rec((UopKind.STORE, deps, addr, tag))
        self._lat(1)
        return len(self._latencies) - 1

    def branch(self, deps: tuple[int, ...] = (), tag: Tag = Tag.ADDRESSING, mispredict_penalty: int = 0) -> int:
        self._rec((UopKind.BRANCH, deps, None, tag))
        self._lat(1 + mispredict_penalty)
        return len(self._latencies) - 1

    def mallacc(self, latency: int, deps: tuple[int, ...] = (), tag: Tag = Tag.MALLACC) -> int:
        self._rec((UopKind.MALLACC, deps, None, tag))
        self._lat(latency)
        return len(self._latencies) - 1

    def prefetch(self, addr: int, deps: tuple[int, ...] = (), tag: Tag = Tag.MALLACC) -> int:
        self._rec((UopKind.PREFETCH, deps, addr, tag))
        self._lat(1)
        return len(self._latencies) - 1

    def fixed(self, latency: int, deps: tuple[int, ...] = (), tag: Tag = Tag.SLOW_PATH) -> int:
        """A modeled block (lock acquire, system call) with a preset cost."""
        self._rec((UopKind.FIXED, deps, None, tag))
        self._lat(latency)
        return len(self._latencies) - 1

    def last_index(self) -> int:
        if not self._latencies:
            raise IndexError("trace is empty")
        return len(self._latencies) - 1

    def _materialize(self) -> Trace:
        """Construct the Uops and Trace, fingerprint precomputed."""
        latencies = self._latencies
        uops = [
            Uop(kind, deps, addr, latencies[i], tag)
            for i, (kind, deps, addr, tag) in enumerate(self._records)
        ]
        trace = Trace(uops=uops)
        trace._fingerprint = tuple(
            [
                (rec[0]._value_, latencies[i], rec[1], rec[3]._value_)
                for i, rec in enumerate(self._records)
            ]
        )
        return trace

    def build(self) -> Trace:
        return self._materialize()

    def build_interned(self, interner, site: str) -> Trace:
        """Build through ``interner``: identical ``(site, tokens,
        latencies)`` calls return the same shared :class:`Trace` object
        without materializing anything."""
        return interner.intern(
            site, tuple(self._tokens), tuple(self._latencies), self._materialize
        )


class NullTraceBuilder:
    """A :class:`TraceBuilder` stand-in that absorbs emission and records
    nothing — the skippable-emission half of functional fast-forward.

    The :class:`~repro.alloc.context.FunctionalEmitter` implements the hot
    emitter methods directly, but exposes one of these as ``em.tb`` so any
    code that reaches for the builder duck-type (``em.tb.note(...)``) keeps
    working in functional mode instead of emitting into a trace that will
    never be scheduled.  :meth:`build` raises: a functional step has no
    timing identity, and silently scheduling an empty trace would corrupt
    cycle accounting.
    """

    __slots__ = ()

    def note(self, token) -> None:
        pass

    def alu(self, deps=(), tag=Tag.ADDRESSING, latency=1) -> int:
        return 0

    def load(self, addr, latency, deps=(), tag=Tag.ADDRESSING) -> int:
        return 0

    def store(self, addr, deps=(), tag=Tag.ADDRESSING) -> int:
        return 0

    def branch(self, deps=(), tag=Tag.ADDRESSING, mispredict_penalty=0) -> int:
        return 0

    def mallacc(self, latency, deps=(), tag=Tag.MALLACC) -> int:
        return 0

    def prefetch(self, addr, deps=(), tag=Tag.MALLACC) -> int:
        return 0

    def fixed(self, latency, deps=(), tag=Tag.SLOW_PATH) -> int:
        return 0

    def last_index(self) -> int:
        return 0

    def build(self) -> Trace:
        raise RuntimeError("functional fast-forward has no trace to build")

    def build_interned(self, interner, site: str) -> Trace:
        raise RuntimeError("functional fast-forward has no trace to build")


#: Shared stateless instance (NullTraceBuilder keeps nothing per call).
NULL_TRACE_BUILDER = NullTraceBuilder()

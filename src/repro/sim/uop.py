"""Micro-op traces and the builder the allocator uses to emit them.

Every allocator call (``malloc``/``free``) produces one :class:`Trace`: the
sequence of micro-ops the equivalent compiled x86 code would execute, with
explicit data dependences.  Ops carry a :class:`Tag` naming the fast-path
component they belong to — this is what makes the paper's limit study
(Section 5: "instructions comprising the three steps ... are simply ignored
by performance simulation") a one-line operation: drop all ops with the
tagged components and reschedule.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class UopKind(enum.Enum):
    """The micro-op classes the timing model distinguishes."""

    ALU = "alu"  # single-cycle integer op
    LOAD = "load"  # latency from the cache hierarchy
    STORE = "store"  # buffered; off the critical path
    BRANCH = "branch"  # predicted; single cycle unless mispredicted
    MALLACC = "mallacc"  # one of the five new instructions
    PREFETCH = "prefetch"  # commits immediately, data arrives later
    FIXED = "fixed"  # modeled block (lock, syscall) with preset latency


class Tag(enum.Enum):
    """Fast-path component labels (Figure 3's colored boxes, plus bookkeeping).

    ``SIZE_CLASS``, ``SAMPLING`` and ``PUSH_POP`` are the three components the
    paper ablates in Figure 4; the rest cover "function call overhead,
    addressing calculations, and updates to metadata fields" (Section 3.3)
    and the slow paths.
    """

    SIZE_CLASS = "size_class"
    SAMPLING = "sampling"
    PUSH_POP = "push_pop"
    CALL_OVERHEAD = "call_overhead"
    ADDRESSING = "addressing"
    METADATA = "metadata"
    SLOW_PATH = "slow_path"
    MALLACC = "mallacc"


#: The three components removed together in the paper's limit study.
LIMIT_STUDY_TAGS = frozenset({Tag.SIZE_CLASS, Tag.SAMPLING, Tag.PUSH_POP})


@dataclass
class Uop:
    """One micro-op: kind, source dependences (trace indices), and timing
    inputs resolved at emission time."""

    kind: UopKind
    deps: tuple[int, ...] = ()
    addr: int | None = None
    latency: int = 1
    tag: Tag = Tag.ADDRESSING

    def __post_init__(self) -> None:
        if self.kind in (UopKind.LOAD, UopKind.STORE, UopKind.PREFETCH):
            if self.addr is None:
                raise ValueError(f"{self.kind} requires an address")


@dataclass
class Trace:
    """An ordered list of micro-ops for one allocator call.

    Traces are immutable once built (the builder hands over its list); the
    canonical fingerprint is computed lazily and cached on the instance.
    """

    uops: list[Uop] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.uops)

    def __iter__(self):
        return iter(self.uops)

    def fingerprint(self) -> tuple:
        """Canonical scheduling identity: ``(kind, latency, deps, tag)`` per
        micro-op.

        :meth:`repro.sim.timing.TimingModel.run` reads exactly ``kind``,
        ``latency`` and ``deps``; ``tag`` is included so the same key also
        identifies every :meth:`without_tags` ablation variant.  Addresses
        are deliberately excluded — they priced the load at emission time
        and do not influence scheduling.
        """
        fp = getattr(self, "_fingerprint", None)
        if fp is None:
            # _value_ avoids the DynamicClassAttribute descriptor on .value,
            # and the listcomp beats a genexpr — fingerprinting sits on the
            # memoization hit path and must stay an order of magnitude
            # cheaper than scheduling.
            fp = tuple(
                [(u.kind._value_, u.latency, u.deps, u.tag._value_) for u in self.uops]
            )
            self._fingerprint = fp
        return fp

    def count(self, kind: UopKind) -> int:
        return sum(1 for u in self.uops if u.kind is kind)

    def tags_present(self) -> set[Tag]:
        return {u.tag for u in self.uops}

    def without_tags(self, tags: frozenset[Tag] | set[Tag]) -> "Trace":
        """Return a copy with all ops carrying ``tags`` removed.

        Dependences on removed ops are rewired transitively to the removed
        op's own dependences, so surviving chains keep their ordering — this
        mirrors deleting instructions from a compiled binary where the
        registers they fed are rematerialized for free.
        """
        keep_index: dict[int, int] = {}
        # For removed ops, the set of surviving ops they transitively depend on.
        forwarded: dict[int, tuple[int, ...]] = {}
        new_uops: list[Uop] = []
        for i, uop in enumerate(self.uops):
            resolved: list[int] = []
            for dep in uop.deps:
                if dep in keep_index:
                    resolved.append(keep_index[dep])
                else:
                    resolved.extend(forwarded.get(dep, ()))
            deps = tuple(dict.fromkeys(resolved))
            if uop.tag in tags:
                forwarded[i] = deps
            else:
                keep_index[i] = len(new_uops)
                new_uops.append(
                    Uop(
                        kind=uop.kind,
                        deps=deps,
                        addr=uop.addr,
                        latency=uop.latency,
                        tag=uop.tag,
                    )
                )
        return Trace(uops=new_uops)


class TraceBuilder:
    """Incrementally builds a :class:`Trace` during a functional allocator run.

    Methods return the index of the emitted uop so callers can thread data
    dependences: ``idx = tb.load(addr, deps=(base,))``.  A ``latency`` on
    loads is resolved by the caller (the allocator consults the cache
    hierarchy at emission time, because hit/miss depends on the live cache
    state at that point in the run).
    """

    def __init__(self) -> None:
        self._uops: list[Uop] = []
        self._keys: list[tuple] = []

    def _emit(self, uop: Uop) -> int:
        self._uops.append(uop)
        # Accumulate the scheduling fingerprint as ops are emitted: the
        # fields are in hand here, which makes Trace.fingerprint() O(1) on
        # the memoization hit path (see repro.sim.trace_cache).
        self._keys.append((uop.kind._value_, uop.latency, uop.deps, uop.tag._value_))
        return len(self._uops) - 1

    def alu(self, deps: tuple[int, ...] = (), tag: Tag = Tag.ADDRESSING, latency: int = 1) -> int:
        return self._emit(Uop(UopKind.ALU, deps=deps, latency=latency, tag=tag))

    def load(self, addr: int, latency: int, deps: tuple[int, ...] = (), tag: Tag = Tag.ADDRESSING) -> int:
        return self._emit(Uop(UopKind.LOAD, deps=deps, addr=addr, latency=latency, tag=tag))

    def store(self, addr: int, deps: tuple[int, ...] = (), tag: Tag = Tag.ADDRESSING) -> int:
        return self._emit(Uop(UopKind.STORE, deps=deps, addr=addr, latency=1, tag=tag))

    def branch(self, deps: tuple[int, ...] = (), tag: Tag = Tag.ADDRESSING, mispredict_penalty: int = 0) -> int:
        return self._emit(
            Uop(UopKind.BRANCH, deps=deps, latency=1 + mispredict_penalty, tag=tag)
        )

    def mallacc(self, latency: int, deps: tuple[int, ...] = (), tag: Tag = Tag.MALLACC) -> int:
        return self._emit(Uop(UopKind.MALLACC, deps=deps, latency=latency, tag=tag))

    def prefetch(self, addr: int, deps: tuple[int, ...] = (), tag: Tag = Tag.MALLACC) -> int:
        return self._emit(Uop(UopKind.PREFETCH, deps=deps, addr=addr, latency=1, tag=tag))

    def fixed(self, latency: int, deps: tuple[int, ...] = (), tag: Tag = Tag.SLOW_PATH) -> int:
        """A modeled block (lock acquire, system call) with a preset cost."""
        return self._emit(Uop(UopKind.FIXED, deps=deps, latency=latency, tag=tag))

    def last_index(self) -> int:
        if not self._uops:
            raise IndexError("trace is empty")
        return len(self._uops) - 1

    def build(self) -> Trace:
        trace = Trace(uops=self._uops)
        trace._fingerprint = tuple(self._keys)
        return trace

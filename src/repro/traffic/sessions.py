"""Per-request allocation sessions drawn from the workload families.

A *session* is the allocation work of one request: a short op stream
(mallocs, frees, application gaps) that the scheduler executes on one
simulated core.  Two sources:

* :func:`independent_sessions` — every request draws a fresh stream from
  the workload family with a crc32-derived per-request seed.  Slots are
  remapped into a globally unique range so thousands of concurrent
  sessions can share one slot table, warmup flags are rewritten at the
  session level (the family's own warmup prefix would swallow a whole
  32-op request), and leftover live objects are freed at teardown (the
  request-scoped arena idiom) unless the profile leaks by design.
* :func:`stream_sessions` — consecutive chunks of ONE continuous
  ``workload.ops`` stream, no remapping, no teardown.  Chunks carry
  cross-session slot dependencies, so this mode is only valid for
  sequential single-core execution — it exists to make the engine's
  degenerate case (1 core, constant arrivals) bit-identical to
  :func:`repro.harness.runner.run_workload` on the same stream.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace

from repro.workloads.base import Op, OpKind, Workload


@dataclass(frozen=True)
class Session:
    """One request's op stream, scheduling metadata attached later."""

    index: int
    ops: tuple[Op, ...]
    warmup: bool = False
    """Warmup sessions execute fully (they train caches and pools) but are
    excluded from the latency histograms and measured totals."""


def request_seed(workload_name: str, base_seed: int, index: int) -> int:
    """Deterministic per-request seed (crc32, never ``hash()``)."""
    key = f"{workload_name}/req{index}".encode()
    return (base_seed + zlib.crc32(key)) % (2**31 - 1)


def independent_sessions(
    workload: Workload,
    num_requests: int,
    ops_per_request: int,
    seed: int,
    warmup_requests: int = 0,
    teardown_free: bool = True,
) -> list[Session]:
    """Self-contained per-request sessions (see module docstring)."""
    if num_requests < 0:
        raise ValueError("num_requests cannot be negative")
    if ops_per_request < 1:
        raise ValueError("need at least one op per request")
    sessions: list[Session] = []
    next_slot_base = 0
    for i in range(num_requests):
        warm = i < warmup_requests
        raw = workload.ops(
            seed=request_seed(workload.name, seed, i), num_ops=ops_per_request
        )
        ops: list[Op] = []
        live: dict[int, int] = {}  # global slot -> size, insertion order
        max_local = -1
        for op in raw:
            if op.kind is OpKind.ANTAGONIZE:
                ops.append(replace(op, warmup=warm))
                continue
            gslot = next_slot_base + op.slot
            ops.append(replace(op, slot=gslot, warmup=warm, tid=0))
            if op.kind is OpKind.MALLOC:
                live[gslot] = op.size
                if op.slot > max_local:
                    max_local = op.slot
            else:
                live.pop(gslot, None)
        if teardown_free:
            # Request teardown: release whatever the request left live, in
            # allocation order (dict preserves insertion order — no hash
            # iteration, so teardown is PYTHONHASHSEED-stable).
            for gslot, size in live.items():
                ops.append(
                    Op(OpKind.FREE, size=size, slot=gslot, warmup=warm)
                )
        next_slot_base += max_local + 1
        sessions.append(Session(index=i, ops=tuple(ops), warmup=warm))
    return sessions


def stream_sessions(
    workload: Workload,
    total_ops: int,
    ops_per_request: int,
    seed: int,
) -> list[Session]:
    """Chunk one continuous stream into sessions (degenerate mode)."""
    if ops_per_request < 1:
        raise ValueError("need at least one op per request")
    raw = list(workload.ops(seed=seed, num_ops=total_ops))
    sessions = []
    for i, start in enumerate(range(0, len(raw), ops_per_request)):
        chunk = tuple(raw[start:start + ops_per_request])
        sessions.append(
            Session(
                index=i,
                ops=chunk,
                warmup=any(op.warmup for op in chunk),
            )
        )
    return sessions

"""Service-scale traffic engine: open-loop load over the machine model.

The paper's setting is warehouse-scale request serving — malloc latency
matters because it sits on the critical path of millions of requests per
second.  This package models that setting directly: arrival processes
(:mod:`~repro.traffic.arrivals`) timestamp requests, each request is an
allocation session drawn from a workload family
(:mod:`~repro.traffic.sessions`), a deterministic scheduler multiplexes
the sessions onto N simulated cores sharing central free lists
(:mod:`~repro.traffic.engine`), and per-request allocation latency lands
in mergeable fixed-bucket histograms (:mod:`~repro.traffic.latency`) with
p50/p95/p99/p99.9 and throughput-vs-offered-load curves as the first-class
outputs.  See docs/traffic.md.
"""

from repro.traffic.arrivals import (
    ARRIVAL_MODELS,
    OPEN_LOOP_MODELS,
    arrival_times,
    dispersion_index,
    interarrival_stats,
)
from repro.traffic.engine import (
    RequestRecord,
    TrafficCell,
    TrafficComparison,
    TrafficConfig,
    TrafficResult,
    build_load_matrix,
    build_sessions,
    compare_traffic,
    estimate_capacity_rps,
    run_traffic,
    run_traffic_cell,
    traffic_load_curve,
    traffic_summary,
)
from repro.traffic.latency import DEFAULT_LATENCY_BOUNDS, LatencyHistogram
from repro.traffic.sessions import (
    Session,
    independent_sessions,
    request_seed,
    stream_sessions,
)

__all__ = [
    "ARRIVAL_MODELS",
    "DEFAULT_LATENCY_BOUNDS",
    "LatencyHistogram",
    "OPEN_LOOP_MODELS",
    "RequestRecord",
    "Session",
    "TrafficCell",
    "TrafficComparison",
    "TrafficConfig",
    "TrafficResult",
    "arrival_times",
    "build_load_matrix",
    "build_sessions",
    "compare_traffic",
    "dispersion_index",
    "estimate_capacity_rps",
    "independent_sessions",
    "interarrival_stats",
    "request_seed",
    "run_traffic",
    "run_traffic_cell",
    "stream_sessions",
    "traffic_load_curve",
    "traffic_summary",
]

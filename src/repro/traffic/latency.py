"""Fixed-bucket latency histograms with exact-merge percentiles.

Tail latency is the traffic engine's first-class output, so the histogram
is built for two properties the ad-hoc percentile-of-a-list approach lacks:

* **merge exactness** — bucket counts add, and a percentile is a pure
  function of the summed counts, so the percentiles of a merged (sharded)
  histogram equal the serial histogram *exactly* — not approximately —
  which is what lets offered-load sweep cells run in worker processes;
* **bounded memory** — a two-minute simulated load test records hundreds
  of thousands of requests into ~130 integers.

Bucket bounds are sixteenth-decade geometric steps (10 cycles to 10⁹,
~15.5% resolution — fine enough that the malloc cache's ~20% latency cut
moves quantiles across buckets), fixed at construction; merging histograms
with different bounds is a hard error, mirroring
:class:`repro.obs.metrics.Histogram`.  A percentile reports the upper edge
of the bucket containing the ``ceil(q·n)``-th order statistic — a
conservative (never under-reported) tail estimate.
"""

from __future__ import annotations

from bisect import bisect_left

#: Sixteenth-decade geometric bounds, 10 cycles … 1e9 cycles.
DEFAULT_LATENCY_BOUNDS: tuple[int, ...] = tuple(
    sorted({int(round(10 ** (k / 16.0))) for k in range(16, 145)})
)


def _ceil_rank(q: float, count: int) -> int:
    """1-based rank of the q-th percentile order statistic."""
    rank = int(q * count)
    if rank < q * count:
        rank += 1
    return max(1, rank)


class LatencyHistogram:
    """Fixed-bucket latency histogram: ``counts[i]`` holds observations
    ``<= bounds[i]``, with one overflow bucket at the end."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds=DEFAULT_LATENCY_BOUNDS) -> None:
        bounds = tuple(int(b) for b in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram bounds must be sorted and distinct")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0
        self.count = 0

    def observe(self, value: int) -> None:
        if value < 0:
            raise ValueError("latency cannot be negative")
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram in place (returns self).
        Associative and commutative; bounds must match exactly."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds[:3]}... vs {other.bounds[:3]}..."
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.sum += other.sum
        self.count += other.count
        return self

    def percentile(self, q: float) -> float:
        """The upper bucket edge containing the ``ceil(q·n)``-th order
        statistic; ``inf`` when it lands in the overflow bucket, 0 when
        the histogram is empty."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if not self.count:
            return 0.0
        rank = _ceil_rank(q, self.count)
        acc = 0
        for i, n in enumerate(self.counts):
            acc += n
            if acc >= rank:
                return float(self.bounds[i]) if i < len(self.bounds) else float("inf")
        return float("inf")  # pragma: no cover - counts always sum to count

    # -- the headline quantiles --------------------------------------------
    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    @property
    def p999(self) -> float:
        return self.percentile(0.999)

    def percentiles(self) -> dict[str, float]:
        """The tail-latency table row: p50/p95/p99/p99.9."""
        return {"p50": self.p50, "p95": self.p95, "p99": self.p99,
                "p999": self.p999}

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LatencyHistogram":
        hist = cls(payload["bounds"])
        counts = [int(c) for c in payload["counts"]]
        if len(counts) != len(hist.counts):
            raise ValueError("count vector does not match bounds")
        hist.counts = counts
        hist.count = int(payload["count"])
        hist.sum = int(payload["sum"])
        return hist

    def to_registry(self, registry, name: str, **labels) -> None:
        """Fold into a :class:`repro.obs.metrics.MetricsRegistry` histogram
        series (same bucket layout: per-bound counts + overflow)."""
        metric = registry.histogram(name, buckets=self.bounds, **labels)
        metric.counts = [a + b for a, b in zip(metric.counts, self.counts)]
        metric.sum += float(self.sum)
        metric.count += self.count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LatencyHistogram(count={self.count}, p50={self.p50:.0f}, "
                f"p99={self.p99:.0f})")

"""Open-loop traffic engine: arrivals × sessions × the multicore machine.

``run_traffic`` models a fleet of request-serving processes: an arrival
process (:mod:`repro.traffic.arrivals`) timestamps requests, each request
is an allocation session (:mod:`repro.traffic.sessions`) drawn from a
workload family, and a session scheduler multiplexes them onto ``cores``
simulated cores sharing one :class:`~repro.alloc.multithread.
MultiThreadAllocator` — so concurrent sessions contend on the central free
lists exactly like threads of one heavy process.  Per-request *allocation
latency* lands in fixed-bucket histograms (:mod:`repro.traffic.latency`)
with p50/p95/p99/p99.9 as first-class outputs.

The scheduler is a deterministic multi-server queue simulation whose
service times are revealed *during* execution (an allocator call's cost
depends on the cache state every previous call left behind):

* each core keeps a virtual clock ``vclock[c]`` and a FIFO queue;
* an arriving request joins the shortest queue (ties to the lowest core);
* ops execute one at a time on the busy core with the smallest virtual
  clock, so sessions interleave at op granularity and their contention
  windows overlap on the shared pools;
* a session's allocation latency is the sum of its calls' cycles; its
  sojourn is completion minus arrival (queue wait included).

Arrivals are never gated on completions — the open-loop property: past
saturation the queues grow and the tail explodes, which is the behaviour
closed-loop replay cannot show (see docs/traffic.md).

Long horizons use request-level sampling (``sample_stride``): every
stride-th measured request runs through the detailed timing model, the
rest fast-forward functionally through the allocator
(:meth:`~repro.alloc.allocator.TCMalloc.fast_forward_malloc`), and the
whole-run allocator-cycle total is extrapolated with the same
:func:`~repro.sim.sampling.plan_systematic` /
:func:`~repro.sim.sampling.bootstrap_total_ci` machinery as the sampled
runner.  Offered-load sweeps shard through the parallel matrix harness
(:func:`~repro.harness.parallel.run_matrix` with
``cell_fn=run_traffic_cell``).
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass, field, replace
from time import perf_counter

from repro.alloc.allocator import TCMalloc
from repro.alloc.multithread import MultiThreadAllocator
from repro.core.accel_allocator import MallaccTCMalloc
from repro.core.malloc_cache import MallocCacheConfig
from repro.harness.runner import AppTraffic, dispatch_call, dispatch_call_mt
from repro.obs.manifest import RunManifest, collect_manifest
from repro.obs.tracer import get_tracer
from repro.sim.sampling import SamplePlan, bootstrap_total_ci, plan_systematic
from repro.traffic.arrivals import arrival_times
from repro.traffic.latency import LatencyHistogram
from repro.traffic.sessions import (
    Session,
    independent_sessions,
    stream_sessions,
)
from repro.workloads import MACRO_WORKLOADS, MICROBENCHMARKS
from repro.workloads.base import OpKind


@dataclass(frozen=True)
class TrafficConfig:
    """One traffic experiment, fully declarative and picklable."""

    workload: str
    arrival: str = "poisson"
    rps: float = 200.0
    """Offered load, requests per second of simulated time."""
    duration_s: float = 1.0
    clock_hz: float = 1_000_000.0
    """Simulated cycles per second.  The default (1 MHz) keeps human-scale
    rps numbers meaningful against session service times of ~10k cycles."""
    cores: int = 4
    ops_per_request: int = 24
    seed: int = 1
    session_mode: str = "independent"
    """``independent`` (self-contained per-request sessions) or ``stream``
    (chunks of one continuous op stream; single-core only — the degenerate
    differential mode)."""
    total_ops: int | None = None
    """Stream mode: length of the continuous stream to chunk."""
    warmup_requests: int | None = None
    """Requests excluded from measurement (default ``max(4, n // 20)``)."""
    sample_stride: int | None = None
    """Detail every stride-th measured request; fast-forward the rest."""
    teardown_free: bool = True

    def __post_init__(self) -> None:
        if self.session_mode not in ("independent", "stream"):
            raise ValueError(f"unknown session mode {self.session_mode!r}")
        if self.session_mode == "stream":
            if self.cores != 1:
                raise ValueError(
                    "stream sessions carry cross-session slot dependencies; "
                    "they require cores=1"
                )
            if self.total_ops is None:
                raise ValueError("stream mode requires total_ops")
        if self.sample_stride is not None:
            if self.sample_stride < 1:
                raise ValueError("sample_stride must be positive")
            if self.session_mode != "independent":
                raise ValueError(
                    "request sampling requires independent sessions "
                    "(fast-forwarded state must stay session-local)"
                )
        if self.cores < 1:
            raise ValueError("need at least one core")


@dataclass
class RequestRecord:
    """One request's scheduling and latency outcome (cycles)."""

    index: int
    core: int
    arrival: int
    start: int
    completion: int
    alloc_cycles: int
    """Sum of this request's allocator-call cycles (the allocation
    latency); an extrapolated estimate when ``detailed`` is False."""
    calls: int
    warmup: bool = False
    detailed: bool = True

    @property
    def queue_wait(self) -> int:
        return self.start - self.arrival

    @property
    def sojourn(self) -> int:
        return self.completion - self.arrival


@dataclass
class TrafficResult:
    """Everything one traffic run measured."""

    workload: str
    flavor: str
    config: TrafficConfig
    requests: list[RequestRecord] = field(default_factory=list)
    alloc_hist: LatencyHistogram = field(default_factory=LatencyHistogram)
    sojourn_hist: LatencyHistogram = field(default_factory=LatencyHistogram)
    call_cycles: list[int] = field(default_factory=list)
    """Measured (non-warmup, detailed) per-call cycles in execution order —
    the differential test compares these against the reference runner's
    records one-to-one."""
    app_cycles: int = 0
    warmup_calls: int = 0
    warmup_cycles: int = 0
    warmup_requests: int = 0
    detailed_requests: int = 0
    """Measured requests through the detailed timing model (equals the
    histogram count; all measured requests unless sampling is on)."""
    skipped_requests: int = 0
    contention_cycles: int = 0
    context_switches: int = 0
    plan: SamplePlan | None = None
    alloc_cycles_ci: tuple[float, float, float] | None = None
    """Sampled mode: (point, lo, hi) bootstrap estimate of the whole-run
    measured allocator-cycle total."""
    manifest: RunManifest | None = field(default=None, repr=False, compare=False)

    # -- aggregates ---------------------------------------------------------
    @property
    def completed(self) -> int:
        return len(self.requests)

    @property
    def measured_requests(self) -> int:
        return self.completed - self.warmup_requests

    @property
    def alloc_cycles(self) -> int:
        return sum(self.call_cycles)

    @property
    def calls(self) -> int:
        return len(self.call_cycles)

    @property
    def makespan_cycles(self) -> int:
        return max((r.completion for r in self.requests), default=0)

    @property
    def offered_rps(self) -> float:
        return self.config.rps

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of simulated time, first arrival
        to last completion.  Saturates at capacity under overload while
        offered load keeps growing — the load-curve x/y axes."""
        span = self.makespan_cycles
        if span <= 0:
            return 0.0
        return self.completed / (span / self.config.clock_hz)

    def percentiles(self) -> dict[str, float]:
        return self.alloc_hist.percentiles()

    def check_conservation(self) -> None:
        """Requests in == requests recorded, histograms consistent."""
        measured_detailed = sum(
            1 for r in self.requests if not r.warmup and r.detailed
        )
        if self.alloc_hist.count != measured_detailed:
            raise AssertionError(
                f"histogram holds {self.alloc_hist.count} requests, "
                f"{measured_detailed} were measured in detail"
            )
        if self.sojourn_hist.count != measured_detailed:
            raise AssertionError("sojourn histogram out of sync")
        if self.warmup_requests + self.detailed_requests + self.skipped_requests \
                != self.completed:
            raise AssertionError("request accounting does not partition")


# ---------------------------------------------------------------------------
# Engine internals
# ---------------------------------------------------------------------------
@dataclass
class _ActiveSession:
    session: Session
    arrival: int
    start: int
    detailed: bool
    pos: int = 0
    alloc_cycles: int = 0
    gap_cycles: int = 0
    calls: int = 0


def _workload_for(config: TrafficConfig):
    registry = {**MICROBENCHMARKS, **MACRO_WORKLOADS}
    if config.workload not in registry:
        raise ValueError(f"unknown workload {config.workload!r}")
    return registry[config.workload]


def build_sessions(config: TrafficConfig) -> tuple[list[Session], list[int]]:
    """The deterministic (sessions, arrival cycles) pair for a config.
    Shared by both allocator flavors of a comparison so the only difference
    between them is the allocator."""
    workload = _workload_for(config)
    if config.session_mode == "stream":
        sessions = stream_sessions(
            workload, config.total_ops, config.ops_per_request, config.seed
        )
        arrivals = arrival_times(
            config.arrival, config.rps, config.duration_s, config.clock_hz,
            seed=config.seed, num_requests=len(sessions),
        )
        return sessions, arrivals
    arrivals = arrival_times(
        config.arrival, config.rps, config.duration_s, config.clock_hz,
        seed=config.seed,
    )
    n = len(arrivals)
    warmup = config.warmup_requests
    if warmup is None:
        warmup = max(4, n // 20) if n else 0
    warmup = min(warmup, n)
    sessions = independent_sessions(
        workload, n, config.ops_per_request, config.seed,
        warmup_requests=warmup, teardown_free=config.teardown_free,
    )
    return sessions, arrivals


def _make_allocators(config: TrafficConfig, accelerated: bool, cache_entries: int):
    """(dispatch target, per-core machines, thread views, mt or None)."""
    if config.cores == 1:
        if accelerated:
            alloc = MallaccTCMalloc(
                cache_config=MallocCacheConfig(num_entries=cache_entries)
            )
        else:
            alloc = TCMalloc()
        alloc.keep_records = False
        return alloc, [alloc.machine], [alloc], None
    mt = MultiThreadAllocator(
        config.cores,
        accelerated=accelerated,
        cache_config=MallocCacheConfig(num_entries=cache_entries),
    )
    return mt, list(mt.core_machines), list(mt.threads), mt


def _ff_dispatch(view, op, slots: dict[int, int]) -> None:
    """Functional fast-forward of one op on a thread view: allocator and
    slot state advance, no timing.  Falls back to the view's full call when
    the functional path cannot handle the op (rare slow-path conditions);
    the fallback's cycles are deliberately discarded — this session is not
    part of the detailed sample."""
    if op.kind is OpKind.MALLOC:
        if op.slot in slots:
            raise ValueError(f"workload reused live slot {op.slot}")
        ff = view.fast_forward_malloc(op.size)
        ptr = ff[0] if ff is not None else view.malloc(op.size)[0]
        slots[op.slot] = ptr
    elif op.kind is OpKind.FREE or op.kind is OpKind.FREE_SIZED:
        if op.slot not in slots:
            raise ValueError(f"workload freed unknown or dead slot {op.slot}")
        ptr = slots.pop(op.slot)
        sized = op.size if op.kind is OpKind.FREE_SIZED else None
        if view.fast_forward_free(ptr, sized) is None:
            if sized is None:
                view.free(ptr)
            else:
                view.sized_free(ptr, sized)
    elif op.kind is not OpKind.ANTAGONIZE:  # pragma: no cover - exhaustive
        raise ValueError(f"unknown op kind {op.kind}")


def _sampling_plan(
    sessions: list[Session], stride: int | None
) -> tuple[SamplePlan | None, set[int]]:
    """The request-level systematic plan: measured sessions are the
    sampling intervals.  Returns (plan, detailed measured indices)."""
    if stride is None or stride <= 1:
        return None, set()
    num_measured = sum(1 for s in sessions if not s.warmup)
    if num_measured < 2:
        return None, set()
    plan = plan_systematic(num_measured, stride)
    return plan, set(plan.sampled)


def run_traffic(
    config: TrafficConfig,
    accelerated: bool = False,
    cache_entries: int = 32,
    sessions: list[Session] | None = None,
    arrivals: list[int] | None = None,
) -> TrafficResult:
    """Run one open-loop traffic experiment (see module docstring).

    ``sessions``/``arrivals`` may be passed in to share one deterministic
    stream between allocator flavors; both or neither.
    """
    if (sessions is None) != (arrivals is None):
        raise ValueError("pass both sessions and arrivals, or neither")
    if sessions is None:
        sessions, arrivals = build_sessions(config)
    if len(sessions) != len(arrivals):
        raise ValueError("one arrival time per session required")
    flavor = "mallacc" if accelerated else "baseline"
    manifest = collect_manifest(
        {"entry": "run_traffic", "workload": config.workload,
         "arrival": config.arrival, "rps": config.rps,
         "duration_s": config.duration_s, "cores": config.cores,
         "ops_per_request": config.ops_per_request,
         "session_mode": config.session_mode, "flavor": flavor,
         "cache_entries": cache_entries if accelerated else 0,
         "sample_stride": config.sample_stride},
        seed=config.seed,
        requests=len(sessions),
    )
    tracer = get_tracer()
    trace_t0 = tracer.now_us() if tracer.enabled else 0
    wall_t0 = perf_counter()

    target, machines, views, mt = _make_allocators(
        config, accelerated, cache_entries
    )
    cores = config.cores
    plan, detailed_measured = _sampling_plan(sessions, config.sample_stride)
    result = TrafficResult(
        workload=config.workload, flavor=flavor, config=config, plan=plan
    )
    app = AppTraffic()
    slots: dict[int, int] = {}
    vclock = [0] * cores
    queues: list[deque] = [deque() for _ in range(cores)]
    active: list[_ActiveSession | None] = [None] * cores
    pending: deque = deque(zip(arrivals, sessions))
    interval_values: dict[int, int] = {}
    measured_seen = 0
    detail_cycle_sum = 0
    detail_call_count = 0

    def _admit(now: int) -> None:
        while pending and pending[0][0] <= now:
            arrival, sess = pending.popleft()
            c = min(
                range(cores),
                key=lambda i: (len(queues[i]) + (active[i] is not None), i),
            )
            queues[c].append((arrival, sess))

    measured_index_of: dict[int, int] = {}

    def _start_ready() -> None:
        nonlocal measured_seen
        for c in range(cores):
            if active[c] is None and queues[c]:
                arrival, sess = queues[c].popleft()
                start = arrival if arrival > vclock[c] else vclock[c]
                vclock[c] = start
                if sess.warmup:
                    detailed = True
                elif plan is None:
                    detailed = True
                else:
                    detailed = measured_seen in detailed_measured
                    measured_index_of[sess.index] = measured_seen
                if not sess.warmup:
                    measured_seen += 1
                active[c] = _ActiveSession(
                    session=sess, arrival=arrival, start=start,
                    detailed=detailed,
                )

    def _finish(c: int) -> None:
        a = active[c]
        active[c] = None
        sess = a.session
        if not a.detailed:
            # Queueing needs a service time for skipped sessions: the
            # running mean of detailed calls so far (gaps were exact).
            est = 0
            if detail_call_count:
                est = int(round(a.calls * detail_cycle_sum / detail_call_count))
            a.alloc_cycles = est
            vclock[c] += est
        completion = vclock[c]
        record = RequestRecord(
            index=sess.index, core=c, arrival=a.arrival, start=a.start,
            completion=completion, alloc_cycles=a.alloc_cycles,
            calls=a.calls, warmup=sess.warmup, detailed=a.detailed,
        )
        result.requests.append(record)
        if sess.warmup:
            result.warmup_requests += 1
        elif a.detailed:
            result.detailed_requests += 1
            result.alloc_hist.observe(a.alloc_cycles)
            result.sojourn_hist.observe(record.sojourn)
            if plan is not None:
                interval_values[measured_index_of[sess.index]] = a.alloc_cycles
        else:
            result.skipped_requests += 1

    while True:
        busy = [c for c in range(cores) if active[c] is not None]
        if not busy:
            if not pending:
                break
            _admit(pending[0][0])
            _start_ready()
            continue
        c = min(busy, key=lambda i: (vclock[i], i))
        a = active[c]
        op = a.session.ops[a.pos]
        a.pos += 1
        if op.kind is OpKind.ANTAGONIZE:
            if mt is not None:
                mt.antagonize()
            else:
                machines[0].hierarchy.antagonize()
        elif a.detailed:
            if op.gap_cycles:
                (mt.machine if mt is not None else machines[0]).advance(
                    op.gap_cycles
                )
                if not op.warmup:
                    result.app_cycles += op.gap_cycles
            if op.app_lines:
                core_machine = machines[c] if c < len(machines) else machines[0]
                app.touch(core_machine.hierarchy, op.app_lines)
            if mt is not None:
                record = dispatch_call_mt(mt, op, slots, tid=c)
            else:
                record = dispatch_call(target, op, slots)
            if op.warmup:
                result.warmup_calls += 1
                result.warmup_cycles += record.cycles
            else:
                a.alloc_cycles += record.cycles
                a.calls += 1
                result.call_cycles.append(record.cycles)
                detail_cycle_sum += record.cycles
                detail_call_count += 1
            vclock[c] += op.gap_cycles + record.cycles
        else:
            # Skipped session: functional fast-forward, exact gaps, no
            # timing model (the machine clock does not advance).
            _ff_dispatch(views[c if c < len(views) else 0], op, slots)
            if op.kind is not OpKind.ANTAGONIZE:
                a.calls += 1
                a.gap_cycles += op.gap_cycles
                vclock[c] += op.gap_cycles
        if a.pos == len(a.session.ops):
            _finish(c)
        floor = min(vclock[i] for i in range(cores) if active[i] is not None) \
            if any(s is not None for s in active) else vclock[c]
        _admit(floor)
        _start_ready()

    if plan is not None and interval_values:
        result.alloc_cycles_ci = bootstrap_total_ci(
            plan,
            {i: float(v) for i, v in interval_values.items()},
            seed=(config.seed + zlib.crc32(b"traffic_alloc")) % (2**31 - 1),
        )
    if mt is not None:
        result.contention_cycles = mt.contention_cycles()
        result.context_switches = mt.context_switches
    result.check_conservation()
    result.manifest = manifest.finished(perf_counter() - wall_t0)
    if tracer.enabled:
        tracer.complete(
            "run_traffic", trace_t0, tracer.now_us() - trace_t0,
            workload=config.workload, arrival=config.arrival,
            requests=result.completed, flavor=flavor,
        )
    return result


# ---------------------------------------------------------------------------
# Comparison and load curves
# ---------------------------------------------------------------------------
@dataclass
class TrafficComparison:
    """Baseline vs malloc-cache under one identical traffic stream."""

    config: TrafficConfig
    baseline: TrafficResult
    mallacc: TrafficResult

    def improvement(self, quantile: str) -> float:
        """Percent reduction of a latency quantile (p50/p95/p99/p999)."""
        base = self.baseline.percentiles()[quantile]
        accel = self.mallacc.percentiles()[quantile]
        if not base or base != base or base == float("inf"):
            return 0.0
        return 100.0 * (base - accel) / base

    @property
    def p99_improvement(self) -> float:
        return self.improvement("p99")


def compare_traffic(
    config: TrafficConfig, cache_entries: int = 32
) -> TrafficComparison:
    """Run both allocator flavors on one identical (sessions, arrivals)
    stream — the only difference between the runs is the allocator."""
    sessions, arrivals = build_sessions(config)
    baseline = run_traffic(
        config, accelerated=False, sessions=sessions, arrivals=arrivals
    )
    mallacc = run_traffic(
        config, accelerated=True, cache_entries=cache_entries,
        sessions=sessions, arrivals=arrivals,
    )
    return TrafficComparison(config=config, baseline=baseline, mallacc=mallacc)


def estimate_capacity_rps(config: TrafficConfig, probe_requests: int = 24) -> float:
    """Calibrate the machine's service capacity: replay a few sessions
    back-to-back on one baseline core and scale to ``cores``.  Offered-load
    sweeps express load as a fraction of this value, so "load 1.0" means
    the knee of the curve regardless of family or clock."""
    workload = _workload_for(config)
    probes = independent_sessions(
        workload, probe_requests, config.ops_per_request,
        config.seed ^ 0x5BD1, warmup_requests=max(2, probe_requests // 8),
        teardown_free=config.teardown_free,
    )
    alloc = TCMalloc()
    alloc.keep_records = False
    slots: dict[int, int] = {}
    service = 0
    measured = 0
    for sess in probes:
        for op in sess.ops:
            if op.kind is OpKind.ANTAGONIZE:
                alloc.machine.hierarchy.antagonize()
                continue
            if op.gap_cycles:
                alloc.machine.advance(op.gap_cycles)
            record = dispatch_call(alloc, op, slots)
            if not sess.warmup:
                service += op.gap_cycles + record.cycles
        if not sess.warmup:
            measured += 1
    if not measured or not service:
        raise ValueError("capacity probe measured nothing")
    mean_service = service / measured
    return config.cores * config.clock_hz / mean_service


@dataclass(frozen=True)
class TrafficCell:
    """One offered-load sweep point: a traffic comparison at one (arrival
    model, load multiplier).  Declarative and picklable — runs through
    :func:`repro.harness.parallel.run_matrix` with
    ``cell_fn=run_traffic_cell``."""

    workload: str
    arrival: str
    load: float
    rps: float
    duration_s: float
    clock_hz: float
    cores: int
    ops_per_request: int
    seed: int
    cache_entries: int = 32
    sample_stride: int | None = None

    @property
    def cell_id(self) -> str:
        stride = f"-k{self.sample_stride}" if self.sample_stride else ""
        return (
            f"traffic-{self.workload}-{self.arrival}-x{self.load:g}"
            f"-c{self.cores}-p{self.ops_per_request}"
            f"-e{self.cache_entries}-s{self.seed}{stride}"
        )

    def config(self) -> TrafficConfig:
        return TrafficConfig(
            workload=self.workload, arrival=self.arrival, rps=self.rps,
            duration_s=self.duration_s, clock_hz=self.clock_hz,
            cores=self.cores, ops_per_request=self.ops_per_request,
            seed=self.seed, sample_stride=self.sample_stride,
        )


def _quantile_cell(value: float) -> float | None:
    return None if value == float("inf") else value


def traffic_summary(comparison: TrafficComparison) -> dict:
    """The scalar science payload of one traffic comparison (sorted keys
    via the JSON writer; no wall times, no manifests)."""
    out: dict = {
        "offered_rps": comparison.config.rps,
        "requests": comparison.baseline.completed,
        "measured_requests": comparison.baseline.measured_requests,
        "warmup_requests": comparison.baseline.warmup_requests,
    }
    for flavor, res in (("baseline", comparison.baseline),
                        ("mallacc", comparison.mallacc)):
        pct = res.percentiles()
        out[f"{flavor}_throughput_rps"] = round(res.throughput_rps, 4)
        out[f"{flavor}_alloc_cycles"] = res.alloc_cycles
        out[f"{flavor}_mean_alloc_cycles"] = round(res.alloc_hist.mean, 4)
        out[f"{flavor}_contention_cycles"] = res.contention_cycles
        for key, value in pct.items():
            out[f"{flavor}_{key}"] = _quantile_cell(value)
    for q in ("p50", "p95", "p99", "p999"):
        out[f"{q}_improvement_pct"] = round(comparison.improvement(q), 4)
    return out


def run_traffic_cell(cell: TrafficCell):
    """Worker-side entry point for offered-load sweep cells (module-level:
    picklable for ``jobs > 1``)."""
    from repro.harness.parallel import CellResult
    from repro.obs.bridges import traffic_registry

    config = cell.config()
    manifest = collect_manifest(
        {"entry": "run_traffic_cell", "cell_id": cell.cell_id,
         "load": cell.load}, seed=cell.seed,
    )
    comparison = compare_traffic(config, cache_entries=cell.cache_entries)
    summary = traffic_summary(comparison)
    summary["load"] = cell.load
    metrics = traffic_registry(comparison.baseline, alloc="baseline")
    traffic_registry(comparison.mallacc, metrics, alloc="mallacc")
    metrics.counter("cells_done").inc()
    return CellResult(
        cell_id=cell.cell_id,
        workload=cell.workload,
        cache_entries=cell.cache_entries,
        num_ops=comparison.baseline.completed * cell.ops_per_request,
        seed=cell.seed,
        summary=summary,
        metrics=metrics.to_dict(),
        manifest=manifest.to_dict(),
    )


def build_load_matrix(
    config: TrafficConfig,
    loads: tuple[float, ...] = (0.2, 0.5, 0.8, 1.1),
    arrivals: tuple[str, ...] | None = None,
    cache_entries: int = 32,
    capacity_rps: float | None = None,
) -> list[TrafficCell]:
    """Enumerate offered-load sweep cells: ``loads`` fractions of the
    calibrated capacity × the requested arrival models."""
    if capacity_rps is None:
        capacity_rps = estimate_capacity_rps(config)
    models = arrivals if arrivals is not None else (config.arrival,)
    return [
        TrafficCell(
            workload=config.workload, arrival=model, load=load,
            rps=round(load * capacity_rps, 6), duration_s=config.duration_s,
            clock_hz=config.clock_hz, cores=config.cores,
            ops_per_request=config.ops_per_request, seed=config.seed,
            cache_entries=cache_entries, sample_stride=config.sample_stride,
        )
        for model in models
        for load in loads
    ]


def traffic_load_curve(
    config: TrafficConfig,
    loads: tuple[float, ...] = (0.2, 0.5, 0.8, 1.1),
    arrivals: tuple[str, ...] | None = None,
    cache_entries: int = 32,
    jobs: int = 1,
    checkpoint_dir=None,
    resume: bool = False,
    progress=None,
    batch_size: int | None = None,
) -> dict:
    """Throughput-vs-offered-load curve, sharded through the parallel
    matrix harness.  Returns ``{"capacity_rps": ..., "points": [...]}``
    with one point dict per (arrival, load) in matrix order."""
    from repro.harness.parallel import run_matrix

    capacity = estimate_capacity_rps(config)
    cells = build_load_matrix(
        config, loads=loads, arrivals=arrivals,
        cache_entries=cache_entries, capacity_rps=capacity,
    )
    matrix = run_matrix(
        cells, jobs=jobs, checkpoint_dir=checkpoint_dir, resume=resume,
        progress=progress, cell_fn=run_traffic_cell, batch_size=batch_size,
    )
    if matrix.quarantined:
        raise RuntimeError(
            f"load-curve cells failed: {sorted(matrix.quarantined)}"
        )
    points = []
    for cell in cells:
        res = matrix.results[cell.cell_id]
        point = {"arrival": cell.arrival, "load": cell.load,
                 "cell_id": cell.cell_id}
        point.update(dict(sorted(res.summary.items())))
        points.append(point)
    return {"capacity_rps": round(capacity, 4), "points": points}

"""Mallacc: Accelerating Memory Allocation — full-system Python reproduction.

This package reproduces Kanev, Xi, Wei & Brooks, *Mallacc: Accelerating
Memory Allocation* (ASPLOS 2017) end to end:

* :mod:`repro.sim` — the hardware substrate: simulated memory, a Haswell-like
  cache hierarchy/TLB/branch model, and a dependency-graph out-of-order
  timing model (the XIOSim substitute);
* :mod:`repro.alloc` — a from-scratch TCMalloc: 88-ish size classes, thread
  caches, central free lists, span-based page heap, allocation sampling;
* :mod:`repro.core` — Mallacc itself: the malloc cache, the five new
  instructions, the sampling PMU counter, the area model, and
  :class:`~repro.core.MallaccTCMalloc`, TCMalloc with the accelerated fast
  path;
* :mod:`repro.workloads` — the paper's six microbenchmarks and synthetic
  models of its eight macro workloads;
* :mod:`repro.harness` — runners and renderers for every table and figure in
  the evaluation.

Quickstart::

    from repro import compare_workload, MICRO, MACRO

    result = compare_workload(MICRO["tp_small"], num_ops=2000)
    print(f"malloc sped up {result.malloc_improvement:.0f}%")
"""

from repro.alloc import (
    AllocatorConfig,
    BuddyAllocator,
    CallRecord,
    Jemalloc,
    Machine,
    Path,
    TCMalloc,
    make_mallacc_jemalloc,
)
from repro.alloc.multithread import MultiThreadAllocator
from repro.core import (
    AreaModel,
    MallaccTCMalloc,
    MallocCache,
    MallocCacheConfig,
    SamplingCounter,
)
from repro.harness import RunResult, WorkloadComparison, compare_workload, run_workload
from repro.workloads import MACRO_WORKLOADS as MACRO
from repro.workloads import MICROBENCHMARKS as MICRO
from repro.workloads import Workload

__version__ = "1.0.0"

__all__ = [
    "AllocatorConfig",
    "AreaModel",
    "BuddyAllocator",
    "CallRecord",
    "Jemalloc",
    "MultiThreadAllocator",
    "make_mallacc_jemalloc",
    "MACRO",
    "MICRO",
    "Machine",
    "MallaccTCMalloc",
    "MallocCache",
    "MallocCacheConfig",
    "Path",
    "RunResult",
    "SamplingCounter",
    "TCMalloc",
    "Workload",
    "WorkloadComparison",
    "compare_workload",
    "run_workload",
]

"""Allocation-trace files: record and replay op streams.

A plain-text, line-oriented format so real applications' malloc traces (or
generated ones) can be replayed through the simulator and the comparison
harness:

.. code-block:: text

    # repro-trace v1
    m <slot> <size> [gap] [app_lines] [w]   # malloc
    f <slot> <size> [gap] [app_lines] [w]   # free (size informational)
    F <slot> <size> [gap] [app_lines] [w]   # sized free
    A                                       # antagonist eviction

``gap`` is application cycles since the previous call, ``app_lines`` cache
lines the application touched, and a trailing ``w`` marks warmup ops
(excluded from measurement).  Comments (``#``) and blank lines are ignored.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from repro.workloads.base import Op, OpKind, Workload

HEADER = "# repro-trace v1"

_KIND_TO_CODE = {
    OpKind.MALLOC: "m",
    OpKind.FREE: "f",
    OpKind.FREE_SIZED: "F",
    OpKind.ANTAGONIZE: "A",
}
_CODE_TO_KIND = {v: k for k, v in _KIND_TO_CODE.items()}


class TraceFormatError(ValueError):
    """Raised on malformed trace files, with the offending line number."""


def dump_ops(ops: Iterable[Op], path: str | Path) -> int:
    """Write an op stream; returns the number of ops written."""
    count = 0
    with open(path, "w") as fh:
        fh.write(HEADER + "\n")
        for op in ops:
            fh.write(format_op(op) + "\n")
            count += 1
    return count


def format_op(op: Op) -> str:
    code = _KIND_TO_CODE[op.kind]
    if op.kind is OpKind.ANTAGONIZE:
        return code
    fields = [code, str(op.slot), str(op.size)]
    fields.append(str(op.gap_cycles))
    fields.append(str(op.app_lines))
    if op.warmup:
        fields.append("w")
    return " ".join(fields)


def parse_line(line: str, lineno: int = 0) -> Op | None:
    """Parse one line; returns None for comments/blanks."""
    text = line.strip()
    if not text or text.startswith("#"):
        return None
    parts = text.split()
    code = parts[0]
    if code not in _CODE_TO_KIND:
        raise TraceFormatError(f"line {lineno}: unknown op code {code!r}")
    kind = _CODE_TO_KIND[code]
    if kind is OpKind.ANTAGONIZE:
        return Op(OpKind.ANTAGONIZE)
    try:
        warmup = parts[-1] == "w"
        numeric = [int(x) for x in (parts[1:-1] if warmup else parts[1:])]
    except ValueError as exc:
        raise TraceFormatError(f"line {lineno}: bad integer field") from exc

    if len(numeric) < 2:
        raise TraceFormatError(f"line {lineno}: too few fields for {code!r}")
    slot = numeric[0]
    size = numeric[1]
    rest = numeric[2:]
    gap = rest[0] if len(rest) > 0 else 0
    app_lines = rest[1] if len(rest) > 1 else 0
    return Op(
        kind=kind, size=size, slot=slot, gap_cycles=gap, app_lines=app_lines, warmup=warmup
    )


def load_ops(path: str | Path) -> list[Op]:
    """Read a trace file into an op list (validating slot discipline)."""
    ops: list[Op] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            op = parse_line(line, lineno)
            if op is not None:
                ops.append(op)
    _validate(ops)
    return ops


def _validate(ops: list[Op]) -> None:
    live: set[int] = set()
    for i, op in enumerate(ops):
        if op.kind is OpKind.MALLOC:
            if op.slot in live:
                raise TraceFormatError(f"op {i}: slot {op.slot} already live")
            if op.size <= 0:
                raise TraceFormatError(f"op {i}: malloc of size {op.size}")
            live.add(op.slot)
        elif op.kind in (OpKind.FREE, OpKind.FREE_SIZED):
            if op.slot not in live:
                raise TraceFormatError(f"op {i}: free of dead slot {op.slot}")
            live.discard(op.slot)


def trace_workload(path: str | Path, name: str | None = None) -> Workload:
    """Wrap a trace file as a :class:`Workload` (re-read per run)."""
    path = Path(path)

    def generator(seed: int, num_ops: int) -> Iterator[Op]:
        del seed  # recorded traces are literal
        ops = load_ops(path)
        return iter(ops[:num_ops] if num_ops else ops)

    loaded = load_ops(path)
    return Workload(
        name=name or path.stem,
        generator=generator,
        default_ops=len(loaded),
        description=f"recorded trace ({len(loaded)} ops) from {path}",
    )

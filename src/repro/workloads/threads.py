"""Multithreaded workload generators.

Three patterns covering the behaviours Section 2 says modern allocators were
redesigned for, each emitting ops tagged with the issuing thread:

* :func:`balanced_churn` — every thread allocates and frees its own objects
  (the friendly case: thread caches absorb everything);
* :func:`producer_consumer` — dedicated producers allocate, dedicated
  consumers free (the blowup/migration stressor);
* :func:`request_fanout` — a dispatcher thread allocates request objects
  that random worker threads free after a service time (the RPC-server
  shape from the datacenter-tax motivation).

Run them with :func:`repro.harness.runner.run_multithreaded`.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.workloads.base import Op, OpKind, Workload

_SIZES = [24, 48, 64, 128, 256]


def balanced_churn(num_threads: int, default_ops: int = 3000) -> Workload:
    """Each thread churns its own allocations (free_prob 0.5, own objects)."""

    def generator(seed: int, num_ops: int) -> Iterator[Op]:
        rng = random.Random(seed)
        live: list[list[tuple[int, int]]] = [[] for _ in range(num_threads)]
        slot = 0
        for i in range(num_ops):
            tid = rng.randrange(num_threads)
            mine = live[tid]
            if mine and rng.random() < 0.5:
                vslot, vsize = mine.pop(rng.randrange(len(mine)))
                yield Op(OpKind.FREE_SIZED, size=vsize, slot=vslot,
                         gap_cycles=rng.randint(20, 200), tid=tid, warmup=i < num_ops // 20)
            else:
                size = rng.choice(_SIZES)
                yield Op(OpKind.MALLOC, size=size, slot=slot,
                         gap_cycles=rng.randint(20, 200), tid=tid, warmup=i < num_ops // 20)
                mine.append((slot, size))
                slot += 1

    return Workload(
        name=f"balanced_churn[{num_threads}]",
        generator=generator,
        default_ops=default_ops,
        description=f"{num_threads} threads churning their own allocations",
    )


def producer_consumer(
    num_producers: int = 1,
    num_consumers: int = 1,
    queue_depth: int = 16,
    default_ops: int = 3000,
) -> Workload:
    """Producers allocate, consumers free: the migration stressor."""
    num_threads = num_producers + num_consumers

    def generator(seed: int, num_ops: int) -> Iterator[Op]:
        rng = random.Random(seed)
        queue: list[tuple[int, int]] = []
        slot = 0
        emitted = 0
        while emitted < num_ops:
            producer = rng.randrange(num_producers)
            size = rng.choice(_SIZES)
            yield Op(OpKind.MALLOC, size=size, slot=slot,
                     gap_cycles=rng.randint(20, 120), tid=producer,
                     warmup=emitted < num_ops // 20)
            queue.append((slot, size))
            slot += 1
            emitted += 1
            if len(queue) > queue_depth:
                consumer = num_producers + rng.randrange(num_consumers)
                vslot, vsize = queue.pop(0)
                yield Op(OpKind.FREE, size=vsize, slot=vslot,
                         gap_cycles=rng.randint(20, 120), tid=consumer,
                         warmup=emitted < num_ops // 20)
                emitted += 1

    return Workload(
        name=f"producer_consumer[{num_producers}p{num_consumers}c]",
        generator=generator,
        default_ops=default_ops,
        description=f"{num_producers} producers feeding {num_consumers} consumers "
        f"through a {queue_depth}-deep queue",
    )


def request_fanout(
    num_workers: int = 3, service_ops: int = 6, default_ops: int = 3000
) -> Workload:
    """Thread 0 dispatches request objects; workers free them later."""
    num_threads = 1 + num_workers

    def generator(seed: int, num_ops: int) -> Iterator[Op]:
        rng = random.Random(seed)
        in_service: list[tuple[int, int, int, int]] = []  # (done_at, slot, size, worker)
        slot = 0
        emitted = 0
        step = 0
        while emitted < num_ops:
            step += 1
            while in_service and in_service[0][0] <= step:
                _, vslot, vsize, worker = in_service.pop(0)
                yield Op(OpKind.FREE_SIZED, size=vsize, slot=vslot,
                         gap_cycles=rng.randint(30, 150), tid=worker,
                         warmup=emitted < num_ops // 20)
                emitted += 1
                if emitted >= num_ops:
                    return
            size = rng.choice(_SIZES)
            worker = 1 + rng.randrange(num_workers)
            yield Op(OpKind.MALLOC, size=size, slot=slot,
                     gap_cycles=rng.randint(30, 150), tid=0,
                     warmup=emitted < num_ops // 20)
            in_service.append((step + rng.randint(1, service_ops), slot, size, worker))
            slot += 1
            emitted += 1

    return Workload(
        name=f"request_fanout[{num_workers}w]",
        generator=generator,
        default_ops=default_ops,
        description=f"dispatcher thread fanning requests to {num_workers} workers",
    )

"""Adversarial workloads: where the accelerator should *not* look good.

A credible hardware evaluation needs its worst cases on the table.  Three
streams designed against Mallacc's mechanisms:

* :func:`class_thrash` — round-robin through more size classes than the
  malloc cache has entries: every ``mcszlookup`` misses, every call pays the
  lookup + update for nothing (the Figure 17 "too small of a cache will
  result in slowdown" regime, made permanent);
* :func:`prefetch_trap` — the tp pathology distilled: a single class hit in
  the tightest possible loop, so every pop's prefetch is still outstanding
  when the next operation arrives (blocking stalls);
* :func:`fragmentation_bomb` — allocate a large population, free every
  other object: the classic pattern that pins spans with half-dead objects
  (no Mallacc angle — it stresses the *allocator's* fragmentation story and
  keeps the fragmentation report honest).
"""

from __future__ import annotations

from typing import Iterator

from repro.alloc.size_classes import SizeClassTable
from repro.workloads.base import Op, OpKind, Workload

_GAP = 1
_TABLE = SizeClassTable.generate()


def class_thrash(num_classes: int = 48, default_ops: int = 3000) -> Workload:
    """Stride through ``num_classes`` distinct size classes round-robin.

    Sizes are the table's own class sizes, so every request lands in its own
    class by construction."""
    sizes = [s for s in _TABLE.class_to_size[1:] if s >= 16][:num_classes]

    def generator(seed: int, num_ops: int) -> Iterator[Op]:
        del seed
        slot = 0
        emitted = 0
        while emitted < num_ops:
            size = sizes[slot % len(sizes)]
            warm = emitted < num_ops // 20
            yield Op(OpKind.MALLOC, size=size, slot=slot, gap_cycles=_GAP, warmup=warm)
            yield Op(OpKind.FREE_SIZED, size=size, slot=slot, gap_cycles=_GAP, warmup=warm)
            slot += 1
            emitted += 2

    return Workload(
        name=f"class_thrash[{num_classes}]",
        generator=generator,
        default_ops=default_ops,
        description=f"round-robin over {len(sizes)} size classes: permanent "
        "malloc-cache capacity misses",
    )


def prefetch_trap(default_ops: int = 3000) -> Workload:
    """Single class, zero-gap malloc/free pairs: maximum prefetch blocking."""

    def generator(seed: int, num_ops: int) -> Iterator[Op]:
        del seed
        # Standing depth so pops hit and prefetches fire (see micro.py).
        slot = 0
        held = []
        for _ in range(4 * 8):
            yield Op(OpKind.MALLOC, size=64, slot=slot, gap_cycles=_GAP, warmup=True)
            held.append(slot)
            slot += 1
            if len(held) == 4:
                for s in held:
                    yield Op(OpKind.FREE_SIZED, size=64, slot=s, gap_cycles=_GAP, warmup=True)
                held = []
        emitted = 0
        while emitted < num_ops:
            yield Op(OpKind.MALLOC, size=64, slot=slot, gap_cycles=_GAP)
            yield Op(OpKind.FREE_SIZED, size=64, slot=slot, gap_cycles=_GAP)
            slot += 1
            emitted += 2

    return Workload(
        name="prefetch_trap",
        generator=generator,
        default_ops=default_ops,
        description="tightest same-class loop: every prefetch still in "
        "flight when the next list op arrives",
    )


def fragmentation_bomb(population: int = 512, default_ops: int = 3000) -> Workload:
    """Allocate a population, free alternating objects, repeat."""

    def generator(seed: int, num_ops: int) -> Iterator[Op]:
        del seed
        slot = 0
        emitted = 0
        while emitted < num_ops:
            batch = []
            for _ in range(population):
                if emitted >= num_ops:
                    break
                yield Op(OpKind.MALLOC, size=48, slot=slot, gap_cycles=_GAP,
                         warmup=emitted < num_ops // 20)
                batch.append(slot)
                slot += 1
                emitted += 1
            # Free every other object: survivors pin their spans.
            for s in batch[::2]:
                if emitted >= num_ops:
                    break
                yield Op(OpKind.FREE_SIZED, size=48, slot=s, gap_cycles=_GAP,
                         warmup=False)
                emitted += 1
            # Release the survivors later so slots don't leak unboundedly.
            for s in batch[1::2]:
                if emitted >= num_ops:
                    break
                yield Op(OpKind.FREE_SIZED, size=48, slot=s, gap_cycles=_GAP,
                         warmup=False)
                emitted += 1

    return Workload(
        name="fragmentation_bomb",
        generator=generator,
        default_ops=default_ops,
        description=f"alternating frees over {population}-object populations",
    )

"""Workload op streams: the common language between generators and runner.

A workload is a named, seedable generator of :class:`Op` records.  Ops refer
to allocations through *slots* (generator-chosen integers) so a stream is
independent of the actual pointers the allocator hands out; the runner keeps
the slot→pointer table.

Each op also carries the *application behaviour* preceding it — compute
cycles and cache lines touched — which is how macro models exert realistic
cache pressure on the allocator's data structures between calls.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator


class OpKind(enum.Enum):
    MALLOC = "malloc"
    FREE = "free"
    FREE_SIZED = "free_sized"
    ANTAGONIZE = "antagonize"
    """Evict the less-used half of L1/L2 sets (the paper's simulator
    callback for the antagonist microbenchmark)."""


@dataclass(frozen=True)
class Op:
    """One event in a workload stream."""

    kind: OpKind
    size: int = 0
    slot: int = -1
    gap_cycles: int = 0
    """Application compute cycles since the previous allocator call."""
    app_lines: int = 0
    """Application cache lines touched since the previous allocator call."""
    warmup: bool = False
    """Warmup ops run fully but are excluded from measured statistics."""
    tid: int = 0
    """Thread issuing the op (multithreaded workloads; single-threaded
    streams leave it 0)."""


@dataclass(frozen=True)
class Workload:
    """A named op-stream factory."""

    name: str
    generator: Callable[[int, int], Iterable[Op]]
    """(seed, num_ops) -> op stream."""
    default_ops: int = 4000
    description: str = ""
    paper: dict[str, float] = field(default_factory=dict)
    """Paper-reported reference numbers for EXPERIMENTS.md comparisons."""

    def ops(self, seed: int = 1, num_ops: int | None = None) -> Iterator[Op]:
        return iter(self.generator(seed, num_ops or self.default_ops))

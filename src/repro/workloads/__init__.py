"""Workload generators.

Two families, mirroring the paper's methodology (Section 5):

* :mod:`repro.workloads.micro` — the six fast-path stress microbenchmarks
  (``tp``, ``tp_small``, ``sized_deletes``, ``gauss``, ``gauss_free``,
  ``antagonist``);
* :mod:`repro.workloads.macro` — synthetic allocation-trace models of the
  paper's SPEC CPU2006 and datacenter workloads (400.perlbench, 465.tonto,
  471.omnetpp, 483.xalancbmk, masstree.{same,wcol1}, xapian.{abstracts,
  pages}), parameterized to match the published per-workload size-class
  mixes (Fig. 6), fast-path fractions (Fig. 2) and allocator-time fractions
  (Fig. 18).

Generators produce deterministic :class:`~repro.workloads.base.Op` streams
(given a seed), so baseline and Mallacc runs replay identical request
sequences.
"""

from repro.workloads.base import Op, OpKind, Workload
from repro.workloads.micro import (
    MICROBENCHMARKS,
    antagonist,
    gauss,
    gauss_free,
    sized_deletes,
    tp,
    tp_small,
)
from repro.workloads.adversarial import class_thrash, fragmentation_bomb, prefetch_trap
from repro.workloads.macro import MACRO_WORKLOADS, MacroProfile, macro_workload
from repro.workloads.threads import balanced_churn, producer_consumer, request_fanout
from repro.workloads.tracefile import dump_ops, load_ops, trace_workload

__all__ = [
    "MACRO_WORKLOADS",
    "MICROBENCHMARKS",
    "MacroProfile",
    "Op",
    "OpKind",
    "Workload",
    "antagonist",
    "balanced_churn",
    "class_thrash",
    "dump_ops",
    "fragmentation_bomb",
    "gauss",
    "gauss_free",
    "load_ops",
    "macro_workload",
    "prefetch_trap",
    "producer_consumer",
    "request_fanout",
    "sized_deletes",
    "tp",
    "tp_small",
    "trace_workload",
]

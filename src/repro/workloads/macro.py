"""Synthetic models of the paper's macro workloads.

The paper ran four SPEC CPU2006 benchmarks that use the system allocator plus
two datacenter workloads (the xapian search engine and the masstree key-value
store) under XIOSim.  We cannot run those binaries; what the allocator
*observes*, however, is only (a) the request stream and (b) the cache state
its data structures are left in between calls.  Each
:class:`MacroProfile` therefore captures, per workload:

* the **size mix** — fit to the size-class CDFs of Figure 6 (e.g. xapian
  uses a handful of classes, xalancbmk needs ~30 for 90% coverage,
  masstree.same is essentially single-class);
* **free behaviour** — free:malloc ratio, FIFO lifetimes, whether frees are
  sized (C++ workloads compiled with ``-fsized-deallocation``) — masstree's
  performance tests famously never free (Section 3.2);
* **burstiness** — occasional allocation bursts that drain thread caches and
  exercise the central/page-heap paths (Figure 1's two slow peaks);
* **application pressure** — compute cycles and cache lines touched between
  calls, which sets both the allocator-time fraction (Figure 18) and how
  often the fast path misses in L1/L2 (the xalancbmk effect of Figure 16).

Paper-reported reference values ride along in ``Workload.paper`` so the
harness can print paper-vs-measured tables.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Iterator

from repro.workloads.base import Op, OpKind, Workload


@dataclass(frozen=True)
class MacroProfile:
    """Parameters of one synthetic macro workload."""

    name: str
    sizes: tuple[tuple[int, float], ...]
    """(request size, weight) pairs."""
    free_ratio: float
    """Frees issued per malloc (0 = never free, 1 = steady state)."""
    sized_free_frac: float
    """Fraction of frees that are sized (C++ with -fsized-deallocation)."""
    gap_cycles_mean: int
    """Mean application compute cycles between allocator calls."""
    app_lines: int
    """Application cache lines touched between allocator calls."""
    burst_prob: float = 0.0
    """Per-malloc probability of starting an allocation burst."""
    burst_len: int = 0
    lifetime_ops: int = 64
    """Mean FIFO lifetime (in mallocs) before an object becomes freeable."""
    phase_period: int = 0
    """Every this many mallocs, a phase ends (0 = no phases)."""
    phase_free_frac: float = 0.6
    """Fraction of the live set released at a phase boundary."""
    description: str = ""
    paper: dict[str, float] = field(default_factory=dict)


def _draw_size(rng: random.Random, sizes: tuple[tuple[int, float], ...], total: float) -> int:
    x = rng.random() * total
    acc = 0.0
    for size, weight in sizes:
        acc += weight
        if x <= acc:
            return size
    return sizes[-1][0]


def _macro_gen(profile: MacroProfile, seed: int, num_ops: int) -> Iterator[Op]:
    # crc32, not hash(): string hashing is per-process randomized, which
    # would give every worker process (and every resumed run) a different
    # op stream for the same (workload, seed) cell.
    rng = random.Random(seed ^ zlib.crc32(profile.name.encode()) & 0xFFFF)
    total_weight = sum(w for _, w in profile.sizes)
    slot = 0
    live: list[tuple[int, int]] = []  # FIFO of (slot, size)
    free_debt = 0.0
    emitted = 0
    mallocs = 0
    warmup_left = max(64, num_ops // 20)

    def gap() -> int:
        return max(1, int(rng.expovariate(1.0 / profile.gap_cycles_mean)))

    while emitted < num_ops:
        warm = warmup_left > 0
        burst = 1
        if profile.burst_prob and rng.random() < profile.burst_prob:
            burst = profile.burst_len
        for _ in range(burst):
            size = _draw_size(rng, profile.sizes, total_weight)
            yield Op(
                OpKind.MALLOC,
                size=size,
                slot=slot,
                gap_cycles=gap(),
                app_lines=profile.app_lines,
                warmup=warm,
            )
            live.append((slot, size))
            slot += 1
            emitted += 1
            mallocs += 1
            free_debt += profile.free_ratio
            if warmup_left > 0:
                warmup_left -= 1
        # Pay down free debt FIFO once objects have outlived their lifetime.
        while free_debt >= 1.0 and len(live) > profile.lifetime_ops // 2:
            vslot, vsize = live.pop(0)
            sized = rng.random() < profile.sized_free_frac
            yield Op(
                OpKind.FREE_SIZED if sized else OpKind.FREE,
                size=vsize,
                slot=vslot,
                gap_cycles=gap(),
                app_lines=profile.app_lines,
                warmup=warm,
            )
            free_debt -= 1.0
            emitted += 1
        # Phase boundary: release most of the live set (program phases such
        # as perlbench finishing one mail or xalancbmk one document), which
        # drains thread caches back through the central lists and lets fully
        # free spans return to the page heap -- the source of Figure 1's
        # page-allocator peak when the next phase re-carves them.
        if (
            profile.phase_period
            and mallocs >= profile.phase_period
            and profile.free_ratio > 0
        ):
            mallocs = 0
            release = int(len(live) * profile.phase_free_frac)
            for _ in range(release):
                vslot, vsize = live.pop(0)
                sized = rng.random() < profile.sized_free_frac
                yield Op(
                    OpKind.FREE_SIZED if sized else OpKind.FREE,
                    size=vsize,
                    slot=vslot,
                    gap_cycles=gap(),
                    app_lines=profile.app_lines,
                    warmup=warm,
                )
                emitted += 1


def macro_workload(profile: MacroProfile, default_ops: int = 6000) -> Workload:
    """Wrap a profile as a runnable :class:`Workload`."""

    def generator(seed: int, num_ops: int) -> Iterator[Op]:
        return _macro_gen(profile, seed, num_ops)

    return Workload(
        name=profile.name,
        generator=generator,
        default_ops=default_ops,
        description=profile.description,
        paper=dict(profile.paper),
    )


# ---------------------------------------------------------------------------
# Profiles.  Size mixes follow Figure 6 (number of classes for 90% of calls);
# gap/pressure follow Figure 18 (allocator-time fraction) and Section 6.1's
# per-workload discussion.  Paper reference values: fig13 = allocator-time
# improvement (%), fig14 = malloc-time improvement (%), fig18 = % of time in
# the allocator, tab2 = full-program speedup (%).
# ---------------------------------------------------------------------------

PERLBENCH = MacroProfile(
    name="400.perlbench",
    sizes=((16, 0.18), (24, 0.14), (32, 0.22), (48, 0.16), (64, 0.10),
           (96, 0.07), (144, 0.05), (256, 0.04), (512, 0.02), (1040, 0.013),
           (4096, 0.012), (16384, 0.006)),
    free_ratio=0.96,
    sized_free_frac=0.0,  # C: plain free()
    gap_cycles_mean=700,
    app_lines=16,
    burst_prob=0.035,
    burst_len=48,
    lifetime_ops=96,
    phase_period=420,
    phase_free_frac=0.7,
    description="Perl interpreter (diffmail): string/SV churn over ~5 hot "
    "size classes, no sized deletes",
    paper={"fig18": 4.4, "tab2": 0.78},
)

TONTO = MacroProfile(
    name="465.tonto",
    sizes=((32, 0.45), (88, 0.35), (256, 0.12), (2048, 0.08)),
    free_ratio=0.94,
    sized_free_frac=0.0,
    gap_cycles_mean=2600,
    app_lines=30,
    burst_prob=0.02,
    burst_len=32,
    lifetime_ops=48,
    phase_period=500,
    phase_free_frac=0.6,
    description="Quantum chemistry (Fortran): infrequent allocation, tiny "
    "class set",
    paper={"fig18": 1.1, "tab2": 0.35},
)

OMNETPP = MacroProfile(
    name="471.omnetpp",
    sizes=((40, 0.30), (64, 0.28), (96, 0.18), (168, 0.12), (400, 0.08), (1024, 0.04)),
    free_ratio=0.97,
    sized_free_frac=0.8,  # C++ simulation kernel
    gap_cycles_mean=1500,
    app_lines=50,
    burst_prob=0.025,
    burst_len=40,
    lifetime_ops=128,
    phase_period=600,
    phase_free_frac=0.6,
    description="Discrete event simulator: message objects, moderate class "
    "diversity, moderate cache pressure",
    paper={"fig18": 2.2},
)

XALANCBMK = MacroProfile(
    name="483.xalancbmk",
    # Broad, nearly flat mix over ~32 distinct classes so ~30 are
    # needed for 90% coverage (Figure 6's xalancbmk outlier).
    sizes=((16, 1.0), (24, 0.982), (32, 0.964), (48, 0.946), (64, 0.928), (80, 0.91), (96, 0.892), (112, 0.874), (128, 0.856), (144, 0.838), (160, 0.82), (176, 0.802), (192, 0.784), (208, 0.766), (224, 0.748), (240, 0.73), (256, 0.712), (288, 0.694), (320, 0.676), (352, 0.658), (384, 0.64), (416, 0.622), (448, 0.604), (480, 0.586), (512, 0.568), (576, 0.55), (640, 0.532), (704, 0.514), (768, 0.496), (896, 0.478), (1024, 0.46), (2048, 0.442)),
    free_ratio=0.97,
    sized_free_frac=0.9,  # C++ with sized deallocation
    gap_cycles_mean=2300,
    app_lines=300,  # XML DOM traversal: heavy cache antagonist
    burst_prob=0.02,
    burst_len=20,
    lifetime_ops=160,
    phase_period=550,
    phase_free_frac=0.65,
    description="XSLT processor: ~30 size classes, cache-heavy application "
    "that evicts allocator state (Figure 16)",
    paper={"fig18": 2.8, "tab2": 0.27, "fig14_min": 40.0},
)

MASSTREE_SAME = MacroProfile(
    name="masstree.same",
    sizes=((272, 0.95), (8192, 0.05)),
    free_ratio=0.0,  # the performance tests never free (Section 3.2)
    sized_free_frac=0.0,
    gap_cycles_mean=415,
    app_lines=20,
    lifetime_ops=10**9,
    description="Key-value store, 'same' test: dominated by one large size class, never "
    "frees — continuously drains to the page allocator",
    paper={"fig18": 13.0, "tab2": 0.49, "fig13_approx": 5.0},
)

MASSTREE_WCOL1 = MacroProfile(
    name="masstree.wcol1",
    sizes=((272, 0.64), (48, 0.28), (8192, 0.08)),
    free_ratio=0.0,
    sized_free_frac=0.0,
    gap_cycles_mean=330,
    app_lines=20,
    lifetime_ops=10**9,
    description="Key-value store, 'wcol1' test: two classes, never frees",
    paper={"fig18": 18.6},
)

XAPIAN_ABSTRACTS = MacroProfile(
    name="xapian.abstracts",
    sizes=((16, 0.30), (32, 0.34), (56, 0.26), (264, 0.07), (1024, 0.03)),
    free_ratio=1.0,
    sized_free_frac=0.85,
    gap_cycles_mean=300,
    app_lines=10,
    burst_prob=0.01,
    burst_len=10,
    lifetime_ops=24,
    description="Search engine over page abstracts: tiny class set, "
    "short-lived objects, nearly always fast path",
    paper={"fig18": 6.5, "tab2": 0.55, "fig14_min": 40.0},
)

XAPIAN_PAGES = MacroProfile(
    name="xapian.pages",
    sizes=((16, 0.26), (32, 0.30), (56, 0.24), (264, 0.12), (2048, 0.05), (8192, 0.03)),
    free_ratio=1.0,
    sized_free_frac=0.85,
    gap_cycles_mean=480,
    app_lines=12,
    burst_prob=0.01,
    burst_len=10,
    lifetime_ops=24,
    description="Search engine over full articles: like abstracts with a "
    "tail of larger buffers",
    paper={"fig18": 4.8, "tab2": 0.16, "fig14_min": 40.0},
)

MACRO_PROFILES: dict[str, MacroProfile] = {
    p.name: p
    for p in (
        PERLBENCH,
        TONTO,
        OMNETPP,
        XALANCBMK,
        MASSTREE_SAME,
        MASSTREE_WCOL1,
        XAPIAN_ABSTRACTS,
        XAPIAN_PAGES,
    )
}

MACRO_WORKLOADS: dict[str, Workload] = {
    name: macro_workload(profile) for name, profile in MACRO_PROFILES.items()
}

"""The six fast-path microbenchmarks (paper Section 5).

Strided benchmarks (``tp``, ``tp_small``, ``sized_deletes``) fit in L1 and
stress the very best baseline case; Gaussian benchmarks (``gauss``,
``gauss_free``, ``antagonist``) have larger working sets and more interesting
caching behaviour.  All of them "explicitly minimize the number of
instructions between allocator calls ... and are run with sufficient warmup
time" — warmup here both trains the branch predictor/caches and leaves a
standing depth of objects in each free list, as a real warmed-up process has.

Size strides are chosen so the benchmarks touch the same *number of size
classes* the paper quotes for its TCMalloc table (tp ≈ 25, tp_small 4,
sized_deletes 8); our generated table differs in a few classes from the
paper's revision, so strides are the faithful degree of freedom.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.workloads.base import Op, OpKind, Workload

_LOOP_GAP = 2
"""Cycles of loop overhead between back-to-back allocator calls."""

_WARMUP_DEPTH = 3
"""Standing free-list depth left behind by warmup."""

_WARMUP_ROUNDS = 8
"""Alloc/free rounds during warmup.  Each round's ListTooLong overflows and
central fetches grow every list's ``max_length`` (TCMalloc's slow start), so
by the end the standing depth survives — exactly what 'sufficient warmup
time' achieves on the real allocator."""


def _warmup_pool(sizes: list[int], sized: bool, slot0: int = 0) -> tuple[list[Op], int]:
    """Repeatedly allocate ``_WARMUP_DEPTH`` objects of each size and free
    them, leaving every touched free list warm and populated."""
    ops: list[Op] = []
    slot = slot0
    kind = OpKind.FREE_SIZED if sized else OpKind.FREE
    for _ in range(_WARMUP_ROUNDS):
        allocated: list[tuple[int, int]] = []
        for _ in range(_WARMUP_DEPTH):
            for size in sizes:
                ops.append(
                    Op(OpKind.MALLOC, size=size, slot=slot, gap_cycles=_LOOP_GAP, warmup=True)
                )
                allocated.append((slot, size))
                slot += 1
        for s, size in allocated:
            ops.append(Op(kind, size=size, slot=s, gap_cycles=_LOOP_GAP, warmup=True))
    return ops, slot


def _strided(sizes: list[int], sized: bool, seed: int, num_ops: int) -> Iterator[Op]:
    """Back-to-back malloc/free pairs striding through ``sizes``."""
    del seed  # strided benchmarks are deterministic
    warmup, slot = _warmup_pool(sizes, sized)
    yield from warmup
    kind = OpKind.FREE_SIZED if sized else OpKind.FREE
    emitted = 0
    while emitted < num_ops:
        for size in sizes:
            yield Op(OpKind.MALLOC, size=size, slot=slot, gap_cycles=_LOOP_GAP)
            yield Op(kind, size=size, slot=slot, gap_cycles=_LOOP_GAP)
            slot += 1
            emitted += 2
            if emitted >= num_ops:
                return


def _tp_gen(seed: int, num_ops: int) -> Iterator[Op]:
    return _strided(list(range(32, 513, 16)), sized=False, seed=seed, num_ops=num_ops)


def _tp_small_gen(seed: int, num_ops: int) -> Iterator[Op]:
    return _strided([32, 64, 96, 128], sized=False, seed=seed, num_ops=num_ops)


def _sized_deletes_gen(seed: int, num_ops: int) -> Iterator[Op]:
    return _strided(list(range(32, 257, 32)), sized=True, seed=seed, num_ops=num_ops)


def _gauss_sizes(rng: random.Random) -> int:
    """90% small (16-64 B strings/list nodes), 10% larger (256-512 B)."""
    if rng.random() < 0.9:
        size = int(rng.gauss(40, 8))
        return max(16, min(64, size))
    size = int(rng.gauss(384, 64))
    return max(256, min(512, size))


def _gauss_like(seed: int, num_ops: int, free_prob: float, antagonize: bool) -> Iterator[Op]:
    rng = random.Random(seed)
    slot = 0
    live: list[tuple[int, int]] = []
    # Warmup: build and release a pool so lists and predictors are warm.
    warm: list[tuple[int, int]] = []
    for _ in range(32):
        size = _gauss_sizes(rng)
        yield Op(OpKind.MALLOC, size=size, slot=slot, gap_cycles=_LOOP_GAP, warmup=True)
        warm.append((slot, size))
        slot += 1
    for s, size in warm:
        yield Op(OpKind.FREE, size=size, slot=s, gap_cycles=_LOOP_GAP, warmup=True)

    emitted = 0
    while emitted < num_ops:
        size = _gauss_sizes(rng)
        yield Op(OpKind.MALLOC, size=size, slot=slot, gap_cycles=_LOOP_GAP)
        live.append((slot, size))
        slot += 1
        emitted += 1
        if antagonize:
            yield Op(OpKind.ANTAGONIZE)
        if free_prob > 0 and live and rng.random() < free_prob:
            victim, vsize = live.pop(rng.randrange(len(live)))
            yield Op(OpKind.FREE, size=vsize, slot=victim, gap_cycles=_LOOP_GAP)
            emitted += 1


def _gauss_gen(seed: int, num_ops: int) -> Iterator[Op]:
    return _gauss_like(seed, num_ops, free_prob=0.0, antagonize=False)


def _gauss_free_gen(seed: int, num_ops: int) -> Iterator[Op]:
    return _gauss_like(seed, num_ops, free_prob=0.5, antagonize=False)


def _antagonist_gen(seed: int, num_ops: int) -> Iterator[Op]:
    return _gauss_like(seed, num_ops, free_prob=0.5, antagonize=True)


tp = Workload(
    name="tp",
    generator=_tp_gen,
    description="Back-to-back malloc/free striding 32..512 B in 16 B steps",
)
tp_small = Workload(
    name="tp_small",
    generator=_tp_small_gen,
    description="Strides 32..128 B: four size classes, a different free list "
    "each iteration — the fastest possible fast path",
)
sized_deletes = Workload(
    name="sized_deletes",
    generator=_sized_deletes_gen,
    description="tp_small variant: eight size classes, sized deletes",
)
gauss = Workload(
    name="gauss",
    generator=_gauss_gen,
    description="Gaussian sizes (90% small, 10% large), never frees: the "
    "lower bound for free-list-centric optimizations",
)
gauss_free = Workload(
    name="gauss_free",
    generator=_gauss_free_gen,
    description="Gaussian sizes, frees with 50% probability",
)
antagonist = Workload(
    name="antagonist",
    generator=_antagonist_gen,
    description="gauss_free plus eviction of the less-used half of L1/L2 "
    "after every allocation (cache-trashing application)",
)

MICROBENCHMARKS: dict[str, Workload] = {
    w.name: w for w in (antagonist, gauss, gauss_free, sized_deletes, tp, tp_small)
}

"""Immutable run provenance: what exactly produced this result?

A :class:`RunManifest` pins down everything needed to reproduce or audit a
run after the fact — the config fingerprint, the seeds, the env knobs that
silently change behaviour (``REPRO_TRACE_INTERN``, ``REPRO_CACHE_IMPL``,
...), the git SHA of the working tree, the package version, and wall-clock
timing.  One is attached to every :class:`~repro.harness.runner.RunResult`,
:class:`~repro.harness.runner.SampledRunResult`, and matrix checkpoint, and
surfaced in ``repro report`` output.

Manifests are *observability*, not *results*: they never feed back into the
simulation, and the figure/table payloads (``figure_data()``,
``matrix_to_json``) exclude them, so results stay byte-identical whether
manifests are collected or not.  Collection is deliberately cheap — a few
``os.environ`` reads, one small sha256, and a cached ``git rev-parse`` that
runs at most once per process.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time
from dataclasses import asdict, dataclass, replace
from typing import Mapping


def _package_version() -> str:
    # Imported lazily: the runner imports repro.obs while ``repro``'s own
    # __init__ is still executing, before __version__ is bound.
    try:
        from repro import __version__

        return __version__
    except ImportError:  # pragma: no cover - partial-init fallback
        return "unknown"

#: Environment knobs that change simulator behaviour.  Captured verbatim
#: (unset keys are omitted) so a manifest diff reveals "you ran with the
#: reference cache implementation" style divergences.
ENV_KNOBS = (
    "REPRO_ENGINE",
    "REPRO_TRACE_CACHE",
    "REPRO_TRACE_INTERN",
    "REPRO_INTERN_VALIDATE",
    "REPRO_CACHE_IMPL",
    "REPRO_OBS_TRACE",
    "PYTHONHASHSEED",
)

_GIT_SHA_CACHE: str | None = None
_GIT_SHA_KNOWN = False


def git_sha() -> str:
    """The working tree's HEAD SHA, or ``"unknown"`` outside a repo.
    Cached so a matrix of hundreds of cells costs one subprocess."""
    global _GIT_SHA_CACHE, _GIT_SHA_KNOWN
    if not _GIT_SHA_KNOWN:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=5,
                cwd=os.path.dirname(os.path.abspath(__file__)),
            )
            sha = out.stdout.strip()
            _GIT_SHA_CACHE = sha if out.returncode == 0 and sha else "unknown"
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA_CACHE = "unknown"
        _GIT_SHA_KNOWN = True
    return _GIT_SHA_CACHE


def config_fingerprint(config: Mapping[str, object]) -> str:
    """A short, stable sha256 over a JSON-able config mapping.  Keys are
    sorted and values round-tripped through JSON, so dict insertion order
    and PYTHONHASHSEED cannot change the fingerprint."""
    blob = json.dumps(config, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


@dataclass(frozen=True)
class RunManifest:
    """Provenance for one run.  Frozen: a manifest describes what happened
    and is never edited afterwards."""

    config_hash: str
    seed: int | None
    env: tuple[tuple[str, str], ...]
    git_sha: str
    package_version: str
    python_version: str
    platform: str
    started_at: float
    """Unix time the run began."""
    wall_seconds: float = 0.0
    config: tuple[tuple[str, str], ...] = ()
    """The fingerprinted config itself, stringified — small by design."""
    extra: tuple[tuple[str, str], ...] = ()
    engine: str = ""
    """Replay engine (``columnar`` | ``reference``) the run executed on.
    Engines are bit-identical on results, so this is provenance — but a
    cross-engine ``repro report --compare`` deserves a flag, not silence."""

    def to_dict(self) -> dict:
        payload = asdict(self)
        for key in ("env", "config", "extra"):
            payload[key] = {k: v for k, v in payload[key]}
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RunManifest":
        data = dict(payload)
        for key in ("env", "config", "extra"):
            mapping = data.get(key, {}) or {}
            data[key] = tuple(sorted((str(k), str(v)) for k, v in mapping.items()))
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        return cls(**{k: v for k, v in data.items() if k in known})

    def finished(self, wall_seconds: float) -> "RunManifest":
        """A copy with the wall time filled in (manifests are frozen)."""
        return replace(self, wall_seconds=wall_seconds)

    def describe(self) -> str:
        """One-line human rendering for reports and logs."""
        env = ",".join(f"{k}={v}" for k, v in self.env) or "-"
        engine = f" engine={self.engine}" if self.engine else ""
        return (
            f"config={self.config_hash} seed={self.seed} git={self.git_sha[:12]} "
            f"v{self.package_version}{engine} env[{env}] wall={self.wall_seconds:.3f}s"
        )


def collect_manifest(
    config: Mapping[str, object] | None = None,
    seed: int | None = None,
    **extra: object,
) -> RunManifest:
    """Snapshot provenance for a run that is starting now."""
    config = dict(config or {})
    env = tuple(
        (k, os.environ[k]) for k in ENV_KNOBS if k in os.environ
    )
    from repro.sim.engine import engine_name

    return RunManifest(
        engine=engine_name(),
        config_hash=config_fingerprint(config),
        seed=seed,
        env=env,
        git_sha=git_sha(),
        package_version=_package_version(),
        python_version=platform.python_version(),
        platform=platform.platform(),
        started_at=time.time(),
        config=tuple(sorted((str(k), json.dumps(v, sort_keys=True, default=str))
                            for k, v in config.items())),
        extra=tuple(sorted((str(k), str(v)) for k, v in extra.items())),
    )

"""Bounded-overhead span tracer with Chrome trace-event export.

A :class:`Tracer` collects *completed spans* — name, begin/end timestamps,
process/thread ids, nesting depth, and a small sorted argument tuple — into
a ring buffer (`collections.deque(maxlen=...)`), so a runaway trace can
never grow without bound: old spans fall off the front and the export stays
balanced because each record carries both endpoints.

Design constraints, in order:

* **disabled must be nearly free** — the global tracer starts disabled;
  ``tracer.span(...)`` on a disabled tracer returns one shared no-op
  context manager (no allocation, no clock read).  Hook sites in the
  runner are per-*replay*, not per-op, so even the enabled cost is noise
  (``tests/obs/test_observability_differential.py`` asserts byte-identical
  simulation results either way);
* **thread/process-safe ids** — every span records ``os.getpid()`` and
  ``threading.get_native_id()``; nesting depth is tracked per-thread via
  ``threading.local``, and ``deque.append`` is atomic under the GIL, so
  concurrent spans from helper threads interleave safely;
* **Perfetto-loadable export** — :meth:`Tracer.to_chrome_trace` emits the
  Chrome trace-event JSON format (``ph``/``ts``/``pid``/``tid`` keys,
  microsecond timestamps) as balanced ``B``/``E`` duration events plus
  ``C`` counter and ``i`` instant events, ordered so every thread's event
  stream nests properly.  ``python -m repro trace <workload>
  --export-perfetto out.json`` wires it to the CLI.

Timestamps come from ``perf_counter_ns`` relative to the tracer's epoch:
monotonic within a process, which is all the viewer needs.  Cross-process
spans (matrix pool cells) are recorded parent-side via :meth:`Tracer.complete`
with explicit times.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from dataclasses import dataclass
from time import perf_counter_ns
from typing import Iterable

DEFAULT_CAPACITY = 1 << 16
"""Default ring size: ~64k spans, a few MB at worst."""


@dataclass(frozen=True)
class SpanEvent:
    """One completed span (or point event) in the ring."""

    name: str
    cat: str
    ts_us: int
    """Begin timestamp, microseconds since the tracer epoch."""
    dur_us: int
    """Duration in microseconds (>= 1 for spans; 0 marks an instant)."""
    pid: int
    tid: int
    depth: int
    args: tuple[tuple[str, object], ...] = ()
    kind: str = "span"
    """``span`` | ``instant`` | ``counter``."""


class _NullSpan:
    """Shared no-op context manager returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """Live span handle; records the event into the ring on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_t0", "_depth")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self._depth = tracer._enter_depth()
        self._t0 = perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        t1 = perf_counter_ns()
        tracer = self._tracer
        tracer._exit_depth()
        tracer._record(
            SpanEvent(
                name=self._name,
                cat=self._cat,
                ts_us=(self._t0 - tracer._epoch_ns) // 1000,
                dur_us=max(1, (t1 - self._t0) // 1000),
                pid=os.getpid(),
                tid=threading.get_native_id(),
                depth=self._depth,
                args=tuple(sorted(self._args.items())),
            )
        )


class Tracer:
    """Ring-buffered span tracer; see the module docstring."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY, enabled: bool = True) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.enabled = enabled
        self.dropped = 0
        """Spans evicted from the ring (capacity overflow)."""
        self._events: deque[SpanEvent] = deque(maxlen=capacity)
        self._epoch_ns = perf_counter_ns()
        self._tls = threading.local()

    # -- recording (hot-path facing) ----------------------------------------
    def span(self, name: str, cat: str = "repro", **args) -> "_Span | _NullSpan":
        """Context manager timing one ``with`` block as a span.  On a
        disabled tracer this returns a shared no-op — the only cost is the
        call itself."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "repro", **args) -> None:
        """A zero-duration point event (antagonist hits, mode switches)."""
        if not self.enabled:
            return
        self._record(
            SpanEvent(
                name=name,
                cat=cat,
                ts_us=self.now_us(),
                dur_us=0,
                pid=os.getpid(),
                tid=threading.get_native_id(),
                depth=self._depth(),
                args=tuple(sorted(args.items())),
                kind="instant",
            )
        )

    def counter(self, name: str, value: float, cat: str = "repro") -> None:
        """A counter sample (rendered as a track in Perfetto)."""
        if not self.enabled:
            return
        self._record(
            SpanEvent(
                name=name,
                cat=cat,
                ts_us=self.now_us(),
                dur_us=0,
                pid=os.getpid(),
                tid=threading.get_native_id(),
                depth=0,
                args=(("value", value),),
                kind="counter",
            )
        )

    def complete(
        self,
        name: str,
        ts_us: int,
        dur_us: int,
        cat: str = "repro",
        tid: int | None = None,
        **args,
    ) -> None:
        """Record a span with explicit endpoints — how the matrix pool logs
        worker cells it only observes from the parent process."""
        if not self.enabled:
            return
        self._record(
            SpanEvent(
                name=name,
                cat=cat,
                ts_us=ts_us,
                dur_us=max(1, dur_us),
                pid=os.getpid(),
                tid=tid if tid is not None else threading.get_native_id(),
                depth=self._depth(),
                args=tuple(sorted(args.items())),
            )
        )

    def now_us(self) -> int:
        """Microseconds since the tracer epoch (monotonic)."""
        return (perf_counter_ns() - self._epoch_ns) // 1000

    # -- internals ----------------------------------------------------------
    def _depth(self) -> int:
        return getattr(self._tls, "depth", 0)

    def _enter_depth(self) -> int:
        depth = getattr(self._tls, "depth", 0)
        self._tls.depth = depth + 1
        return depth

    def _exit_depth(self) -> None:
        self._tls.depth = max(0, getattr(self._tls, "depth", 1) - 1)

    def _record(self, event: SpanEvent) -> None:
        events = self._events
        if len(events) == self.capacity:
            self.dropped += 1
        events.append(event)

    # -- inspection / export ------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> list[SpanEvent]:
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def to_chrome_trace(self, metadata: dict | None = None) -> dict:
        """The Chrome trace-event JSON object (``{"traceEvents": [...]}``).

        Spans become balanced ``B``/``E`` pairs; instants become ``i``,
        counters ``C``.  Events are ordered per thread so that at equal
        timestamps closes precede opens, deeper closes precede shallower
        ones, and shallower opens precede deeper ones — the ordering a
        nesting-aware viewer requires.
        """
        chrome: list[dict] = []
        for e in self._events:
            args = {k: v for k, v in e.args}
            common = {"name": e.name, "cat": e.cat, "pid": e.pid, "tid": e.tid}
            if e.kind == "span":
                chrome.append(
                    {**common, "ph": "B", "ts": e.ts_us, "args": args,
                     "_order": (e.ts_us, 1, e.depth)}
                )
                chrome.append(
                    {**common, "ph": "E", "ts": e.ts_us + e.dur_us,
                     "_order": (e.ts_us + e.dur_us, 0, -e.depth)}
                )
            elif e.kind == "instant":
                chrome.append(
                    {**common, "ph": "i", "ts": e.ts_us, "s": "t", "args": args,
                     "_order": (e.ts_us, 1, e.depth)}
                )
            else:  # counter
                chrome.append(
                    {**common, "ph": "C", "ts": e.ts_us, "args": args,
                     "_order": (e.ts_us, 1, 0)}
                )
        chrome.sort(key=lambda ev: (ev["pid"], ev["tid"], ev.pop("_order")))
        payload: dict = {"traceEvents": chrome, "displayTimeUnit": "ms"}
        if metadata:
            payload["metadata"] = metadata
        if self.dropped:
            payload.setdefault("metadata", {})["dropped_spans"] = self.dropped
        return payload

    def export_chrome_trace(self, path: str | os.PathLike, metadata: dict | None = None) -> int:
        """Write the Chrome trace JSON to ``path``; returns the event count."""
        payload = self.to_chrome_trace(metadata=metadata)
        with open(path, "w") as fh:
            json.dump(payload, fh, sort_keys=True)
        return len(payload["traceEvents"])


# ---------------------------------------------------------------------------
# The process-global tracer
# ---------------------------------------------------------------------------
def _tracer_from_env() -> Tracer:
    """Disabled by default; ``REPRO_OBS_TRACE=1`` arms it at import (handy
    for tracing a run without touching code)."""
    flag = os.environ.get("REPRO_OBS_TRACE", "").strip().lower()
    return Tracer(enabled=flag not in ("", "0", "off", "false", "no"))


_GLOBAL = _tracer_from_env()


def get_tracer() -> Tracer:
    """The process-global tracer every instrumented site records into."""
    return _GLOBAL


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the global tracer (returns the previous one)."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = tracer
    return previous


class tracing:
    """``with tracing() as tracer:`` — enable span collection for a scope,
    restoring the previous global tracer on exit."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._tracer = Tracer(capacity=capacity, enabled=True)

    def __enter__(self) -> Tracer:
        self._previous = set_tracer(self._tracer)
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> None:
        set_tracer(self._previous)


def validate_chrome_trace(payload: dict) -> list[str]:
    """Schema check used by the golden-file test (and available to users):
    returns a list of problems — empty means the payload is a structurally
    valid, balanced, per-thread-monotonic Chrome trace."""
    problems: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    stacks: dict[tuple[int, int], list[str]] = {}
    last_ts: dict[tuple[int, int], int] = {}
    for i, ev in enumerate(events):
        for key in ("ph", "ts", "pid", "tid", "name"):
            if key not in ev:
                problems.append(f"event {i} missing {key!r}")
        ph = ev.get("ph")
        if ph not in ("B", "E", "i", "C"):
            problems.append(f"event {i} has unknown ph {ph!r}")
            continue
        track = (ev.get("pid"), ev.get("tid"))
        ts = ev.get("ts", 0)
        if ts < last_ts.get(track, 0):
            problems.append(f"event {i} timestamp not monotonic on {track}")
        last_ts[track] = ts
        if ph == "B":
            stacks.setdefault(track, []).append(ev.get("name", ""))
        elif ph == "E":
            stack = stacks.setdefault(track, [])
            if not stack:
                problems.append(f"event {i}: E with no open B on {track}")
            else:
                stack.pop()
    for track, stack in stacks.items():
        if stack:
            problems.append(f"unbalanced spans left open on {track}: {stack}")
    return problems


def iter_spans(events: Iterable[SpanEvent], name: str) -> list[SpanEvent]:
    """All spans with the given name (test/report helper)."""
    return [e for e in events if e.kind == "span" and e.name == name]

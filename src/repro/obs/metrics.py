"""A mergeable metrics registry: counters, gauges, fixed-bucket histograms.

Before this module, every perf subsystem kept its own ad-hoc stats dict —
``TraceCacheStats``, ``TraceInternStats``, ``HotPathProfiler.counters``,
``MatrixStats.trace_cache/intern/sampling``, the sampled runner's telemetry
fields.  :class:`MetricsRegistry` is the one queryable interface over all
of them (see :mod:`repro.obs.bridges` for the adapters), designed around
three properties:

* **merge is associative and commutative** — counters add, histograms add
  bucket-wise, gauges take the max (a deliberate choice: "last write wins"
  depends on arrival order, which a process pool does not have).  Parallel
  workers serialize their registries into checkpoints and the pool merges
  them in completion order; ``tests/obs/test_metrics_registry.py`` property-
  tests that any merge order equals the serial registry;
* **serialization is canonical** — :meth:`MetricsRegistry.to_dict` sorts
  every key, so two equal registries serialize to identical JSON bytes
  regardless of insertion order or ``PYTHONHASHSEED``;
* **labels are first-class** — a metric name plus a sorted label tuple
  (``registry.counter("cells_done", workload="tp")``) identifies a series,
  Prometheus-style, without a separate "family" object to thread around.

Histograms use *fixed* bucket bounds fixed at first registration: merging
two histograms with different bounds is a hard error, not a resample —
silent rebinning is how cross-run comparisons go quietly wrong.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping

#: Default histogram buckets, in cycles — matches the paper's duration-plot
#: decades (Figures 1/2) so call-duration histograms line up with the
#: existing figures.
DEFAULT_CYCLE_BUCKETS = (20.0, 50.0, 100.0, 1000.0, 10000.0, 100000.0)

LabelItems = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def render_series(name: str, labels: LabelItems) -> str:
    """Canonical ``name{k=v,...}`` rendering (sorted, stable)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += n

    def _merge(self, other: "Counter") -> None:
        self.value += other.value


class Gauge:
    """A point-in-time value.  Merges by max — the only order-free choice
    for values set independently by concurrent workers."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def _merge(self, other: "Gauge") -> None:
        self.value = max(self.value, other.value)


class Histogram:
    """Fixed-bucket histogram: ``counts[i]`` holds observations
    ``<= bounds[i]``, with one overflow bucket at the end; ``sum``/``count``
    track the mean exactly."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Iterable[float] = DEFAULT_CYCLE_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram bounds must be sorted and distinct")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.sum += other.sum
        self.count += other.count


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A flat, mergeable map from ``(name, labels)`` to a metric."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelItems], Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, str] = {}

    # -- registration / recording -------------------------------------------
    def _get(self, kind: str, name: str, labels: Mapping[str, object], **kw):
        seen = self._kinds.get(name)
        if seen is None:
            self._kinds[name] = kind
        elif seen != kind:
            raise ValueError(f"metric {name!r} already registered as a {seen}")
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = _KINDS[kind](**kw)
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_CYCLE_BUCKETS, **labels
    ) -> Histogram:
        return self._get("histogram", name, labels, bounds=buckets)

    # -- querying ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._kinds

    def value(self, name: str, **labels) -> float:
        """The scalar value of a counter/gauge series (histograms: use
        :meth:`get`); raises ``KeyError`` on an unknown series."""
        metric = self._metrics[(name, _label_key(labels))]
        if isinstance(metric, Histogram):
            raise TypeError(f"{name!r} is a histogram; use get()")
        return metric.value

    def get(self, name: str, **labels) -> Counter | Gauge | Histogram:
        return self._metrics[(name, _label_key(labels))]

    def series(self, name: str) -> dict[LabelItems, Counter | Gauge | Histogram]:
        """All label-series of one metric name."""
        return {
            labels: metric
            for (n, labels), metric in self._metrics.items()
            if n == name
        }

    def total(self, name: str) -> float:
        """Sum of a counter's value across all label series."""
        if self._kinds.get(name) != "counter":
            raise TypeError(f"{name!r} is not a counter")
        return sum(m.value for m in self.series(name).values())

    # -- merging -------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry in place (returns self).
        Associative and commutative; see the module docstring."""
        for name, kind in other._kinds.items():
            seen = self._kinds.get(name)
            if seen is None:
                self._kinds[name] = kind
            elif seen != kind:
                raise ValueError(
                    f"merge conflict: {name!r} is a {seen} here, {kind} there"
                )
        for key, metric in other._metrics.items():
            mine = self._metrics.get(key)
            if mine is None:
                # Fresh copy so merged registries never alias their sources.
                self._metrics[key] = _copy_metric(metric)
            else:
                mine._merge(metric)
        return self

    @staticmethod
    def merged(registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        out = MetricsRegistry()
        for reg in registries:
            out.merge(reg)
        return out

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        """Canonical JSON-ready payload: kinds and series sorted, histogram
        bounds inline, no insertion-order dependence."""
        series: dict[str, dict] = {}
        for (name, labels), metric in sorted(self._metrics.items()):
            entry: dict = {"kind": self._kinds[name]}
            if isinstance(metric, Histogram):
                entry.update(
                    bounds=list(metric.bounds),
                    counts=list(metric.counts),
                    sum=metric.sum,
                    count=metric.count,
                )
            else:
                entry["value"] = metric.value
            series[render_series(name, labels)] = entry
        return series

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Mapping]) -> "MetricsRegistry":
        reg = cls()
        for rendered, entry in payload.items():
            name, labels = _parse_series(rendered)
            kind = entry["kind"]
            if kind == "histogram":
                h = reg.histogram(name, buckets=entry["bounds"], **dict(labels))
                h.counts = [int(c) for c in entry["counts"]]
                h.sum = float(entry["sum"])
                h.count = int(entry["count"])
            elif kind == "counter":
                reg.counter(name, **dict(labels)).value = float(entry["value"])
            elif kind == "gauge":
                reg.gauge(name, **dict(labels)).set(float(entry["value"]))
            else:
                raise ValueError(f"unknown metric kind {kind!r}")
        return reg

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({len(self._metrics)} series)"


def _copy_metric(metric):
    if isinstance(metric, Histogram):
        out = Histogram(metric.bounds)
        out.counts = list(metric.counts)
        out.sum = metric.sum
        out.count = metric.count
        return out
    return type(metric)(metric.value)


def _parse_series(rendered: str) -> tuple[str, LabelItems]:
    if "{" not in rendered:
        return rendered, ()
    name, _, rest = rendered.partition("{")
    inner = rest.rstrip("}")
    labels = tuple(
        (k, v) for k, _, v in (pair.partition("=") for pair in inner.split(","))
    )
    return name, labels

"""Regression diffing between two JSON run payloads.

``repro report --compare A.json B.json`` loads two payloads (``run
--json``, matrix exports, BENCH artifacts — any JSON tree), flattens every
scalar leaf to a dotted path, and flags relative deltas beyond a threshold.
The default threshold is 0: the simulator is deterministic, so two runs of
the same configuration must match *exactly*, and CI runs precisely that
self-check (two identical smoke runs → zero flagged deltas).  A nonzero
threshold (``--threshold 0.05``) turns the same machinery into a
cross-commit perf guard alongside ``benchmarks/check_bench_regression.py``.

Wall-clock fields and manifests legitimately differ between byte-identical
runs, so they are ignored by default (:data:`DEFAULT_IGNORE`); pass extra
``fnmatch`` patterns to widen the blind spot deliberately rather than by
raising the threshold.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Iterable, Mapping, Sequence

#: Path patterns excluded from comparison: timing and provenance differ
#: between identical runs by construction.
DEFAULT_IGNORE = (
    "*wall_seconds*",
    "*wall_time*",
    "*started_at*",
    "*manifest*",
    "*seconds_per_rep*",
    "*engine_info*",
    "*.engine",
    "engine",
)


@dataclass(frozen=True)
class MetricDelta:
    """One flagged difference between payload A and payload B."""

    path: str
    a: object
    b: object
    rel_delta: float
    """Relative change |b-a|/max(|a|,|b|); inf when only one side exists
    or the values are non-numeric and unequal."""
    reason: str
    """``changed`` | ``missing_in_a`` | ``missing_in_b`` | ``type``."""

    def describe(self) -> str:
        if self.reason == "missing_in_a":
            return f"{self.path}: only in B (= {self.b!r})"
        if self.reason == "missing_in_b":
            return f"{self.path}: only in A (= {self.a!r})"
        if isinstance(self.a, (int, float)) and isinstance(self.b, (int, float)):
            return (
                f"{self.path}: {self.a!r} -> {self.b!r} "
                f"({self.rel_delta:+.2%} relative)"
            )
        return f"{self.path}: {self.a!r} != {self.b!r}"


def load_payload(path: str | os.PathLike) -> dict:
    """Read a JSON payload for comparison (must be a JSON object)."""
    with open(path) as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a JSON object, got {type(payload).__name__}")
    return payload


def flatten(payload: object, prefix: str = "") -> dict[str, object]:
    """Scalar leaves of a JSON tree keyed by dotted path; list elements
    get index segments (``table.rows.3.cycles``)."""
    leaves: dict[str, object] = {}
    if isinstance(payload, Mapping):
        for key in sorted(payload, key=str):
            leaves.update(flatten(payload[key], f"{prefix}{key}."))
    elif isinstance(payload, (list, tuple)):
        for i, item in enumerate(payload):
            leaves.update(flatten(item, f"{prefix}{i}."))
    else:
        leaves[prefix[:-1]] = payload
    return leaves


def _ignored(path: str, patterns: Sequence[str]) -> bool:
    return any(fnmatchcase(path, pat) for pat in patterns)


#: Matches the engine label in a rendered series name; registry rendering
#: is unquoted (``engine_info{engine=columnar}``), Prometheus-style dumps
#: quote (``engine="columnar"``) — accept both.
_ENGINE_LABEL = re.compile(r'engine="?([^",}]+)"?')


def payload_engines(payload: Mapping[str, object]) -> tuple[str, ...]:
    """Replay engines a payload claims to come from, in sorted order.

    Looks at every provenance carrier: ``engine`` leaves (top-level or
    ``manifest.engine``) and ``engine_info{engine="..."}`` metric series
    names.  Empty when the payload predates engine stamping.
    """
    engines: set[str] = set()
    for path, value in flatten(payload).items():
        if (path == "engine" or path.endswith(".engine")) and isinstance(value, str):
            if value:
                engines.add(value)
        elif "engine_info" in path:
            m = _ENGINE_LABEL.search(path)
            if m:
                engines.add(m.group(1))
    return tuple(sorted(engines))


def cross_engine_note(
    a: Mapping[str, object], b: Mapping[str, object]
) -> str | None:
    """A warning line when A and B were produced by different replay
    engines — the numbers must still match (engines are bit-identical by
    contract), but the comparison deserves a flag, not a silent diff."""
    ea, eb = payload_engines(a), payload_engines(b)
    if ea and eb and ea != eb:
        return (
            f"note: cross-engine comparison (A: {','.join(ea)} vs "
            f"B: {','.join(eb)}) — engines are bit-identical by contract, "
            "so any delta below is a real regression"
        )
    return None


def _rel_delta(a: float, b: float) -> float:
    if a == b:
        return 0.0
    denom = max(abs(a), abs(b))
    return abs(b - a) / denom if denom else 0.0


def compare_payloads(
    a: Mapping[str, object],
    b: Mapping[str, object],
    threshold: float = 0.0,
    ignore: Iterable[str] = DEFAULT_IGNORE,
) -> list[MetricDelta]:
    """All differences between two payloads that exceed ``threshold``
    (relative, numeric leaves) or differ at all (structure, strings,
    booleans).  An empty list means the runs agree."""
    patterns = tuple(ignore)
    flat_a = {k: v for k, v in flatten(a).items() if not _ignored(k, patterns)}
    flat_b = {k: v for k, v in flatten(b).items() if not _ignored(k, patterns)}
    deltas: list[MetricDelta] = []
    for path in sorted(set(flat_a) | set(flat_b)):
        if path not in flat_a:
            deltas.append(MetricDelta(path, None, flat_b[path], float("inf"), "missing_in_a"))
            continue
        if path not in flat_b:
            deltas.append(MetricDelta(path, flat_a[path], None, float("inf"), "missing_in_b"))
            continue
        va, vb = flat_a[path], flat_b[path]
        numeric_a = isinstance(va, (int, float)) and not isinstance(va, bool)
        numeric_b = isinstance(vb, (int, float)) and not isinstance(vb, bool)
        if numeric_a and numeric_b:
            rel = _rel_delta(float(va), float(vb))
            if rel > threshold:
                deltas.append(MetricDelta(path, va, vb, rel, "changed"))
        elif va != vb:
            reason = "changed" if type(va) is type(vb) else "type"
            deltas.append(MetricDelta(path, va, vb, float("inf"), reason))
    return deltas


def render_deltas(deltas: Sequence[MetricDelta], limit: int = 50) -> str:
    """Human summary for the CLI: one line per flagged delta."""
    if not deltas:
        return "OK: payloads match (no flagged deltas)"
    lines = [f"FLAGGED: {len(deltas)} delta(s)"]
    lines += [f"  {d.describe()}" for d in deltas[:limit]]
    if len(deltas) > limit:
        lines.append(f"  ... and {len(deltas) - limit} more")
    return "\n".join(lines)

"""Bridges from the existing stat carriers into a :class:`MetricsRegistry`.

Each perf subsystem keeps its native counters (cheap, local, zero-dep);
these adapters lift them into one registry after the fact, which is how the
"unify the ad-hoc stats" goal coexists with the hot path staying untouched:

* :func:`run_registry` — a :class:`~repro.harness.runner.RunResult`,
  :class:`~repro.harness.runner.SampledRunResult`, or
  :class:`~repro.harness.runner.MultiThreadRunResult` (duck-typed);
* :func:`profiler_registry` — a
  :class:`~repro.harness.profile.HotPathProfiler`;
* :func:`stats_registry` — a ``TraceCacheStats``/``TraceInternStats``
  hits/misses/evictions carrier;
* :func:`refill_summary` — the slow-path refill stage of a profiler
  (seconds, entries, share of replay wall time), as a dict and optional
  gauges;
* :func:`matrix_registry` — re-hydrates and merges the per-cell registries
  a matrix run serialized into its checkpoints;
* :func:`traffic_registry` — a
  :class:`~repro.traffic.engine.TrafficResult`, including its latency
  histograms (bucket-exact: merged shards reproduce serial percentiles);
* :func:`warm_registry` — a fork-server warm-bank summary
  (``MatrixStats.warm``), kept out of the byte-compared per-cell metrics.

All of them accept an existing registry to accumulate into, plus extra
labels (``alloc="baseline"``) to keep series from different runs of the
same workload distinct instead of silently summed.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import engine_name as _engine_name


def run_registry(
    result,
    registry: MetricsRegistry | None = None,
    histogram: bool = True,
    **labels: object,
) -> MetricsRegistry:
    """Lift one run result's telemetry into a registry.

    ``histogram=True`` also folds every call record into a ``call_cycles``
    histogram (O(records) — skip it when only the counters matter).
    """
    reg = registry if registry is not None else MetricsRegistry()
    if getattr(result, "workload", ""):
        labels.setdefault("workload", result.workload)
    # Info-style marker: which replay engine produced these numbers.  The
    # engines are bit-identical on every other series, so this is the one
    # series allowed to differ — ``repro report --compare`` keys off it to
    # flag cross-engine diffs (and excludes it from the delta scan).
    engine = getattr(getattr(result, "manifest", None), "engine", "") or _engine_name()
    reg.gauge("engine_info", engine=engine, **labels).set(1.0)
    reg.counter("calls", **labels).inc(len(result.records))
    reg.counter("warmup_calls", **labels).inc(result.warmup_calls)
    reg.counter("app_cycles", **labels).inc(result.app_cycles)
    reg.counter("trace_cache_hits", **labels).inc(result.trace_cache_hits)
    reg.counter("trace_cache_misses", **labels).inc(result.trace_cache_misses)
    reg.counter("intern_hits", **labels).inc(result.intern_hits)
    reg.counter("intern_misses", **labels).inc(result.intern_misses)
    detailed = getattr(result, "detailed_calls", None)
    if detailed is not None:  # sampled replay telemetry
        reg.counter("detailed_calls", **labels).inc(detailed)
        reg.counter("warming_calls", **labels).inc(result.warming_calls)
        reg.gauge("sampling_rounds", **labels).set(result.rounds)
    if histogram:
        hist = reg.histogram("call_cycles", **labels)
        for record in result.records:
            hist.observe(record.cycles)
    return reg


def profiler_registry(
    profiler, registry: MetricsRegistry | None = None, **labels: object
) -> MetricsRegistry:
    """Lift a :class:`HotPathProfiler`'s stages and counters.  Stage wall
    time becomes a (float) counter labeled by stage, so merged registries
    sum seconds across cells exactly like ``HotPathProfiler.merge``."""
    reg = registry if registry is not None else MetricsRegistry()
    for name, stage in profiler.stages.items():
        reg.counter("stage_seconds", stage=name, **labels).inc(stage.seconds)
        reg.counter("stage_entries", stage=name, **labels).inc(stage.entries)
    for name, value in profiler.counters.items():
        reg.counter(f"profile_{name}", **labels).inc(value)
    return reg


def refill_summary(
    profiler, registry: MetricsRegistry | None = None, **labels: object
) -> dict:
    """Summarize the slow-path refill machinery from a profiler: seconds
    spent in refill emission (central-cache fetches/releases, scavenges,
    large-span traffic — reference hooks or fused columnar twins), entry
    and segment counts, and the refill share of total replay wall time.

    Optionally lifts the summary into ``registry`` (gauges, so re-bridging
    the same profiler twice does not double-count)."""
    refill = profiler.stages.get("refill")
    replay = profiler.stages.get("replay")
    seconds = refill.seconds if refill is not None else 0.0
    entries = refill.entries if refill is not None else 0
    segments = profiler.counters.get("refill_entries", 0)
    share = seconds / replay.seconds if replay is not None and replay.seconds else 0.0
    summary = {
        "refill_seconds": seconds,
        "refill_entries": entries,
        "refill_segments": segments,
        "refill_share": share,
    }
    if registry is not None:
        registry.gauge("refill_seconds", **labels).set(seconds)
        registry.gauge("refill_share", **labels).set(share)
        registry.gauge("refill_segments", **labels).set(float(segments))
    return summary


def stats_registry(
    stats,
    name: str,
    registry: MetricsRegistry | None = None,
    **labels: object,
) -> MetricsRegistry:
    """Lift a hits/misses(/evictions) stats object (``TraceCacheStats``,
    ``TraceInternStats``) under the series prefix ``name``."""
    reg = registry if registry is not None else MetricsRegistry()
    reg.counter(f"{name}_hits", **labels).inc(stats.hits)
    reg.counter(f"{name}_misses", **labels).inc(stats.misses)
    if hasattr(stats, "evictions"):
        reg.counter(f"{name}_evictions", **labels).inc(stats.evictions)
    return reg


def traffic_registry(
    result, registry: MetricsRegistry | None = None, **labels: object
) -> MetricsRegistry:
    """Lift one :class:`~repro.traffic.engine.TrafficResult` into a
    registry: request/call counters plus the allocation-latency and sojourn
    histograms as native registry histograms (identical bucket layout, so
    sharded cells merge into exactly the serial percentiles)."""
    reg = registry if registry is not None else MetricsRegistry()
    labels.setdefault("workload", result.workload)
    labels.setdefault("arrival", result.config.arrival)
    reg.counter("requests", **labels).inc(result.completed)
    reg.counter("warmup_requests", **labels).inc(result.warmup_requests)
    reg.counter("detailed_requests", **labels).inc(result.detailed_requests)
    reg.counter("skipped_requests", **labels).inc(result.skipped_requests)
    reg.counter("calls", **labels).inc(result.calls)
    reg.counter("warmup_calls", **labels).inc(result.warmup_calls)
    reg.counter("alloc_cycles", **labels).inc(result.alloc_cycles)
    reg.counter("app_cycles", **labels).inc(result.app_cycles)
    reg.counter("contention_cycles", **labels).inc(result.contention_cycles)
    reg.counter("context_switches", **labels).inc(result.context_switches)
    reg.gauge("throughput_rps", **labels).set(result.throughput_rps)
    reg.gauge("offered_rps", **labels).set(result.offered_rps)
    result.alloc_hist.to_registry(reg, "request_alloc_cycles", **labels)
    result.sojourn_hist.to_registry(reg, "request_sojourn_cycles", **labels)
    return reg


def matrix_registry(payloads: Iterable[Mapping]) -> MetricsRegistry:
    """Merge serialized per-cell registries (``CellResult.metrics``) back
    into one pool-level registry."""
    return MetricsRegistry.merged(
        MetricsRegistry.from_dict(p) for p in payloads if p
    )


def warm_registry(
    warm: Mapping[str, int],
    registry: MetricsRegistry | None = None,
    **labels: object,
) -> MetricsRegistry:
    """Lift a warm-bank summary (``MatrixStats.warm`` or
    :meth:`repro.sim.warm.WarmBank.summary`) into a registry.

    Deliberately a *separate* bridge from the per-cell path: warm-bank
    telemetry describes the harness, not the science, and must never be
    merged into ``CellResult.metrics`` — the pooled per-cell registry is
    byte-compared serial-vs-sharded, and serial runs have no bank."""
    reg = registry if registry is not None else MetricsRegistry()
    for key in ("schedule_hits", "template_hits", "stream_hits"):
        reg.counter(f"warm_{key}", **labels).inc(int(warm.get(key, 0)))
    for key in ("schedules", "templates", "streams"):
        reg.gauge(f"warm_{key}", **labels).set(int(warm.get(key, 0)))
    return reg

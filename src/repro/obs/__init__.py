"""``repro.obs`` — the unified observability layer.

Four perf subsystems (trace cache, parallel matrix, interning, sampled
simulation) each grew an ad-hoc stats dict; this package puts one seam
under all of them, mirroring in software what Mallacc's sampling PMU does
in hardware (Section 4, Figure 5): measure the hot path without perturbing
it, and make every run reproducible after the fact.

* :mod:`repro.obs.tracer` — a bounded-overhead span tracer (ring-buffered
  events, thread/process-safe ids) with Chrome trace-event JSON export, so
  a whole ``run_workload``/``matrix`` execution loads in Perfetto;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms (optionally labeled) that unifies
  the stat dicts scattered across the runner, trace cache, interner,
  sampling engine, parallel harness, and profiler behind one queryable,
  *mergeable* interface (parallel workers serialize registries into
  checkpoints; the pool merges them);
* :mod:`repro.obs.manifest` — immutable :class:`RunManifest` provenance
  records (config hash, seeds, env knobs, git SHA, package version,
  wall time) attached to every run result and matrix checkpoint;
* :mod:`repro.obs.compare` — regression diffing between two JSON run
  payloads with configurable thresholds (``repro report --compare``).

Everything here is strictly opt-in and off-by-default-cheap: simulation
results are byte-identical with observability on or off, and the disabled
hooks cost well under 1% of a replay
(``tests/obs/test_observability_differential.py``,
``benchmarks/bench_hot_path.py``).
"""

from repro.obs.bridges import (
    matrix_registry,
    profiler_registry,
    run_registry,
    stats_registry,
)
from repro.obs.compare import MetricDelta, compare_payloads, load_payload
from repro.obs.manifest import RunManifest, collect_manifest, config_fingerprint
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import Tracer, get_tracer, set_tracer, tracing

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricDelta",
    "MetricsRegistry",
    "RunManifest",
    "Tracer",
    "collect_manifest",
    "compare_payloads",
    "config_fingerprint",
    "get_tracer",
    "load_payload",
    "matrix_registry",
    "profiler_registry",
    "run_registry",
    "set_tracer",
    "stats_registry",
    "tracing",
]

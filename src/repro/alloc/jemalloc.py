"""A jemalloc-style allocator: the second client of Mallacc.

The paper stresses that Mallacc "is designed not for a specific allocator
implementation, but for use by a number of high-performance memory
allocators" (Section 4) and notes that "jemalloc's thread caches were
inspired by TCMalloc, and their size class organization is quite similar"
(Section 3.1).  This module implements a jemalloc-flavoured allocator on the
same substrate so that claim can be tested:

* **size classes**: jemalloc's schedule — size groups of four classes per
  power-of-two doubling (spacing = 2^(lg(group)-2)), rather than TCMalloc's
  span-waste-driven table;
* **tcache**: per-thread bins with ``ncached``/``ncached_max`` and jemalloc's
  *fill/flush* discipline — a miss fills ``ncached_max/4`` objects at once, an
  overflow flushes ``3/4`` of the bin (versus TCMalloc's slow-start and
  batch release);
* **arena/runs**: bins draw from runs (jemalloc's span analog) carved out of
  the same page heap substrate.

The fast path is structurally identical to TCMalloc's — size-class
computation, sampling countdown, free-list pop — which is exactly why the
malloc cache transfers: :class:`MallaccJemalloc` reuses the five
instructions unchanged.
"""

from __future__ import annotations

from repro.alloc.allocator import TCMalloc
from repro.alloc.constants import (
    K_MAX_SIZE,
    AllocatorConfig,
)
from repro.alloc.context import Emitter, Machine
from repro.alloc.size_classes import LookupResult, SizeClassTable
from repro.sim.uop import Tag


def jemalloc_size_classes() -> tuple[list[int], list[int], list[int]]:
    """Generate jemalloc's size-class schedule.

    Tiny/small classes: 8, 16, then four classes per doubling group —
    (20,24,28,32... no: jemalloc x64): 8, 16, 32, 48, 64, 80, 96, 112, 128,
    160, 192, 224, 256, 320, ... each group of four spaced at
    ``group/4``.  We generate up to the same 256 KB small threshold.
    Returns (class_to_size, class_to_pages, class_to_move) with class 0
    reserved, shaped like the TCMalloc table so the machinery is shared.
    """
    sizes = [8, 16]
    group = 16
    while sizes[-1] < K_MAX_SIZE:
        spacing = max(8, group // 4)
        for i in range(1, 5):
            size = group + i * spacing
            if size > K_MAX_SIZE:
                break
            if size > sizes[-1]:
                sizes.append(size)
        group *= 2
    sizes = [s for s in sizes if s <= K_MAX_SIZE]

    class_to_size = [0] + sizes
    class_to_pages = [0]
    class_to_move = [0]
    for size in sizes:
        # Runs sized like TCMalloc spans: waste below 1/8 of the run.
        psize = 8192
        while (psize % size) > (psize >> 3):
            psize += 8192
        class_to_pages.append(psize // 8192)
        # jemalloc tcache: ncached_max = min(2^lg_fill_div.., 200 small);
        # model the fill batch like TCMalloc's move quantum for parity.
        class_to_move.append(max(2, min(200 * 8 // max(size // 8, 1), 32)))
    return class_to_size, class_to_pages, class_to_move


class JemallocSizeClassTable(SizeClassTable):
    """The shared table type, populated with jemalloc's schedule."""

    @classmethod
    def generate(cls, address_space=None) -> "JemallocSizeClassTable":
        class_to_size, class_to_pages, class_to_move = jemalloc_size_classes()
        # Build a size->class direct map at 8-byte granularity (jemalloc
        # uses a size2index computation plus a small table; two dependent
        # lookups, just like Figure 5).
        max_idx = (K_MAX_SIZE >> 3) + 1
        class_array = [0] * max_idx
        next_size = 8
        for c in range(1, len(class_to_size)):
            upper = class_to_size[c]
            for s in range(next_size, upper + 1, 8):
                class_array[(s + 7) >> 3] = c
            next_size = upper + 8
        class_array[0] = 1  # size 0..8 -> first class
        table = cls(
            class_to_size=class_to_size,
            class_to_pages=class_to_pages,
            class_to_move=class_to_move,
            class_array=class_array,
        )
        if address_space is not None:
            table.class_array_addr = address_space.reserve_metadata(max_idx)
            table.class_to_size_addr = address_space.reserve_metadata(
                8 * len(class_to_size)
            )
        return table

    def size_class_of(self, size: int) -> int:
        return self.class_array[(size + 7) >> 3]

    def emit_lookup(self, em: Emitter, size: int) -> LookupResult:
        """jemalloc's size2index: one shift-based index computation plus two
        dependent table loads — the same shape Mallacc accelerates."""
        idx = (size + 7) >> 3
        shift = em.alu(tag=Tag.SIZE_CLASS)
        array_word = self.class_array_addr + (idx // 8) * 8
        cls_load = em.load_table(array_word, deps=(shift,), tag=Tag.SIZE_CLASS)
        cl = self.class_array[idx]
        size_word = self.class_to_size_addr + cl * 8
        size_load = em.load_table(size_word, deps=(cls_load,), tag=Tag.SIZE_CLASS)
        return LookupResult(
            size_class=cl,
            alloc_size=self.class_to_size[cl],
            cls_uop=cls_load,
            size_uop=size_load,
        )


class Jemalloc(TCMalloc):
    """The jemalloc-flavoured allocator.

    Shares the pool machinery (the structures are isomorphic: tcache bins ~
    thread-cache lists, runs ~ spans, arena bins ~ central lists) but swaps
    in jemalloc's size-class schedule and its fill/flush tcache discipline.
    """

    #: jemalloc flushes 3/4 of an overflowing bin (tcache_bin_flush_small).
    FLUSH_FRACTION = 0.75

    def __init__(self, machine: Machine | None = None, config: AllocatorConfig | None = None, ablations=None) -> None:
        super().__init__(machine=machine, config=config, ablations=ablations)
        # Swap the size-class table for jemalloc's, regenerating the pools
        # that depend on class count.
        self._install_table(JemallocSizeClassTable.generate(self.machine.address_space))
        self._patch_tcache_discipline()

    def _install_table(self, table: SizeClassTable) -> None:
        from repro.alloc.central_cache import CentralFreeList
        from repro.alloc.thread_cache import ThreadCache

        self.table = table
        self.central_lists = [
            CentralFreeList(cl, table, self.page_heap, self.config)
            for cl in range(table.num_classes)
        ]
        self.thread_cache = ThreadCache(
            self.machine, table, self.central_lists, self.config
        )

    def _patch_tcache_discipline(self) -> None:
        """jemalloc's fill/flush: fill a quarter of the bin cap on a miss,
        flush three quarters on overflow — no slow start."""
        tc = self.thread_cache
        for cl in range(1, self.table.num_classes):
            # ncached_max ≈ 2 * batch, filled in quarters.
            tc.lists[cl].max_length = 2 * self.table.batch_size_of(cl)

        original_fetch = tc._fetch_from_central
        original_too_long = tc._list_too_long

        def fetch(em, cl, deps):
            flist = tc.lists[cl]
            fill = max(1, flist.max_length // 4)
            taken = tc.central_lists[cl].remove_range(em, fill, deps, owner=tc)
            tc.stats.fetches += 1
            tc.stats.objects_fetched += len(taken)
            dep = deps
            for ptr in taken:
                uop = tc.list_ops.push(em, flist, cl, ptr, dep)
                dep = (uop,)
            tc.size_bytes += len(taken) * tc.table.alloc_size_of(cl)

        def too_long(em, cl, deps):
            flist = tc.lists[cl]
            drop = int(flist.length * Jemalloc.FLUSH_FRACTION)
            if drop:
                tc._release_to_central(em, cl, drop, deps)

        tc._fetch_from_central = fetch
        tc._list_too_long = too_long
        del original_fetch, original_too_long


class MallaccJemalloc:
    """jemalloc with the Mallacc fast path: the generality demonstration.

    Defined lazily (the mixin lives in :mod:`repro.core`, which imports this
    package) — use :func:`make_mallacc_jemalloc`.
    """


def make_mallacc_jemalloc(
    machine: Machine | None = None,
    config: AllocatorConfig | None = None,
    cache_config=None,
):
    """Build a jemalloc accelerated by the *unchanged* Mallacc fast path.

    This is the paper's generality claim made executable: the same five
    instructions and malloc cache, mixed over a different allocator.
    """
    from repro.core.accel_allocator import MallaccFastPathMixin

    global MallaccJemalloc

    class MallaccJemalloc(MallaccFastPathMixin, Jemalloc):  # noqa: F811
        def __init__(self) -> None:
            super().__init__(machine=machine, config=config)
            self._attach_mallacc(cache_config)

    return MallaccJemalloc()

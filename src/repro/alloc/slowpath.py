"""Fused priced twins of the interned refill slow paths (columnar engine).

:mod:`repro.alloc.fastpath` fused the loop-free fast paths; this module does
the same for the *refill machinery* — the emission stacks behind
``malloc:central``, ``malloc:page`` and ``free:slow``:

* ``CentralFreeList.remove_range`` / ``insert_range``, including the
  transfer-cache park/unpark fast mid-tier and the lock/contention model;
* ``PageHeap.allocate_span`` / ``free_span`` with the timed radix-pagemap
  probe chains, heap growth, span splitting/coalescing and OS release;
* ``CentralFreeList._populate``'s span carving (one store per object).

Each twin executes the same primitive sequence as straight-line code —
simulated memory reads/writes, hierarchy demand accesses, TLB walks, branch
predictions, malloc-cache operations, lock bookkeeping — assembling the
token and latency tuples directly, and interns the result via
``interner.intern(site, tokens, latencies, materialize)``.

Refill shapes are variable-length (batch moves, carve counts, probe chains),
so unlike the fast paths their structures cannot be enumerated up front.
Instead every data-dependent decision is a structural token (``("carve",
n)``, ``("pm_probes", n)``, ``("release_at", i)``, ...), and the static
structure is *compiled from the token stream* on first sight
(:func:`compile_struct`), keyed by ``(site, tokens)`` in a process-wide
:class:`~repro.sim.columns.StructStore`.  The size class and every count are
inside the tokens, so one compiled structure serves every call of that
shape; ``materialize`` runs only on an intern miss.

Cycle counts, runner statistics, cache/TLB/predictor state, lock/contention
counters and every intern/trace-cache counter are bit-identical to the
reference engine (held to by the differential grid in
``tests/integration/test_hot_path_differential.py``).

Twins activate only under the columnar engine with interning on, and every
fallback check is a pure read performed before the first mutation: fast
shapes (the fast-path twin's domain), sampled calls, LARGE traffic, invalid
arguments and inconsistent malloc-cache entries all return ``None`` so the
reference implementation runs from untouched state.  Mid-emission error
paths (double free inside a push, a foreign pointer in ``insert_range``,
span over-fill) need no precheck: the twin performs the identical check at
the identical point with identical prior mutations and raises the same
exception.

Registration is by exact allocator type (:func:`register_slowpath` /
:func:`slowpath_for`), mirroring the fast-path registry.
"""

from __future__ import annotations

from time import perf_counter

from repro.alloc.constants import (
    K_MAX_DYNAMIC_FREE_LIST_LENGTH,
    K_MAX_PAGES,
    K_MIN_SYSTEM_ALLOC_PAGES,
    K_PAGE_SHIFT,
)
from repro.alloc.fastpath import _pagemap_words, _sz_commit, _sz_scan
from repro.alloc.size_classes import class_index
from repro.alloc.span import Span, SpanState
from repro.sim.columns import StructBuilder, StructStore
from repro.sim.memory import NULL
from repro.sim.uop import Tag

#: Process-wide compiled structures, keyed by (site, tokens).
_STRUCTS = StructStore()


# --------------------------------------------------------------------------
# Token-stream structure compiler.
#
# A refill template's tokens pin its whole variable-length shape: branch
# outcomes in emission order plus every note()-d count and mid-flight
# decision.  The compiler walks the token tuple exactly as the emitting
# code would have walked its control flow, replaying the uop record
# sequence (kinds, dependence edges, tags, sequential address slots).
# Count tokens are noted *after* their uops in the reference (pm_probes at
# the end of a probe chain) but with no tokens in between, so consuming
# them first is safe: only the uop record order and the token tuple order
# must each match, not their interleaving.


class _Template:
    """Compiler state: a token cursor plus a StructBuilder with sequential
    address-slot assignment and the Mallacc ordering register."""

    __slots__ = ("toks", "i", "b", "order", "slot")

    def __init__(self, tokens: tuple) -> None:
        self.toks = tokens
        self.i = 0
        self.b = StructBuilder()
        self.order: int | None = None
        self.slot = 0

    def take(self, name: str):
        tok = self.toks[self.i] if self.i < len(self.toks) else None
        if tok is None or tok[0] != name:
            raise AssertionError(
                f"refill template: expected {name!r} at token {self.i}, got {tok!r}"
            )
        self.i += 1
        return tok[1]

    def peek(self) -> str | None:
        return self.toks[self.i][0] if self.i < len(self.toks) else None

    def peek_tok(self):
        return self.toks[self.i] if self.i < len(self.toks) else None

    def branch(self, name: str, deps: tuple = (), tag: Tag = Tag.ADDRESSING):
        taken = self.take(name)
        self.b.branch(deps, tag)
        return taken

    def ordered(self, deps: tuple) -> tuple:
        if self.order is not None:
            return tuple(dict.fromkeys(deps + (self.order,)))
        return deps

    def nload(self, deps: tuple = (), tag: Tag = Tag.ADDRESSING) -> int:
        slot = self.slot
        self.slot = slot + 1
        return self.b.load(slot, deps, tag)

    def nstore(self, deps: tuple = (), tag: Tag = Tag.ADDRESSING) -> int:
        slot = self.slot
        self.slot = slot + 1
        return self.b.store(slot, deps, tag)

    def nprefetch(self) -> int:
        slot = self.slot
        self.slot = slot + 1
        return self.b.prefetch(slot)

    def end(self) -> tuple:
        if self.i != len(self.toks):
            raise AssertionError(
                f"refill template: {len(self.toks) - self.i} unconsumed tokens "
                f"starting at {self.toks[self.i]!r}"
            )
        return self.b.done()


def _sw_lookup(t: _Template) -> tuple[int, int]:
    """The Figure 5 software size-class lookup: add, shift, two loads."""
    b = t.b
    add = b.alu((), Tag.SIZE_CLASS)
    shift = b.alu((add,), Tag.SIZE_CLASS)
    cls_uop = t.nload((shift,), Tag.SIZE_CLASS)
    size_uop = t.nload((cls_uop,), Tag.SIZE_CLASS)
    return cls_uop, size_uop


def _compile_search(t: _Template, deps: tuple) -> None:
    """PageHeap._search_free: a dependent chain of free-list probes."""
    probe = None
    for _ in range(t.take("pm_probes")):
        probe = t.nload(deps if probe is None else (probe,), Tag.SLOW_PATH)


def _compile_populate(t: _Template, deps: tuple) -> None:
    """CentralFreeList._populate: allocate_span + carve stores."""
    _compile_search(t, deps)
    if t.take("pm_grow"):
        t.b.fixed(deps, Tag.SLOW_PATH)  # the syscall, original deps
        _compile_search(t, deps)
    if t.take("pm_split"):
        t.nstore((), Tag.SLOW_PATH)  # pagemap boundary rewrite
    prev = None
    for _ in range(t.take("carve")):
        prev = t.nstore(deps if prev is None else (prev,), Tag.SLOW_PATH)


def _compile_free_span(t: _Template) -> None:
    """PageHeap.free_span: the pagemap store, then a possible OS release."""
    t.nstore((), Tag.SLOW_PATH)
    tok = t.peek_tok()
    if tok is not None and tok[0] == "pm_madvise":
        if t.take("pm_madvise"):
            t.b.fixed((), Tag.SLOW_PATH)  # madvise


def _compile_pop(t: _Template, deps: tuple, mallacc: bool) -> int:
    """A thread-cache list pop; returns the uop consumers depend on
    (PopResult.uop: the header load, or the mchdpop on a cache hit)."""
    b = t.b
    if not mallacc:
        head = t.nload(deps, Tag.PUSH_POP)
        nxt = t.nload((head,), Tag.PUSH_POP)
        t.nstore((nxt,), Tag.PUSH_POP)
        return head
    u = b.mallacc(t.ordered(deps))
    t.order = u
    miss = t.branch("mchd_hit", (u,))
    if miss:
        head = t.nload((u,) + deps, Tag.PUSH_POP)
        nxt = t.nload((head,), Tag.PUSH_POP)
        t.nstore((nxt,), Tag.PUSH_POP)
        ret = head
    else:
        result = u
        if t.take("mchd_head_only"):
            result = t.nload((u,), Tag.PUSH_POP)
        t.nstore((result,), Tag.PUSH_POP)
        ret = u
    if t.take("nxtprefetch"):
        t.order = t.nprefetch()
    return ret


def _compile_push(t: _Template, deps: tuple, mallacc: bool) -> int:
    """A thread-cache list push; returns the uop the next push depends on."""
    b = t.b
    if not mallacc:
        head = t.nload(deps, Tag.PUSH_POP)
        t.nstore((head,), Tag.PUSH_POP)
        t.nstore((head,), Tag.PUSH_POP)
        return head
    u = b.mallacc(t.ordered(deps))
    t.order = u
    if t.take("mchdpush_hit"):
        t.nstore((u,), Tag.PUSH_POP)
        t.nstore((u,), Tag.PUSH_POP)
    else:
        head = t.nload((u,) + deps, Tag.PUSH_POP)
        t.nstore((head,), Tag.PUSH_POP)
        t.nstore((head,), Tag.PUSH_POP)
    return u


def _compile_remove(t: _Template, num: int, deps: tuple) -> None:
    """CentralFreeList.remove_range: lock, unpark-or-span-pops, unlock."""
    b = t.b
    lock = b.fixed(deps, Tag.SLOW_PATH)
    if t.take("transfer_unpark"):
        t.nload((lock,), Tag.SLOW_PATH)  # parked-batch descriptor
        b.fixed((lock,), Tag.SLOW_PATH)
        return
    dep: tuple = (lock,)
    k = 0
    while k < num:
        if t.peek_tok() == ("populate_at", k):
            t.take("populate_at")
            _compile_populate(t, dep)
        dep = (t.nload(dep, Tag.SLOW_PATH),)  # span freelist pop
        k += 1
    b.fixed(dep, Tag.SLOW_PATH)


def _compile_insert(t: _Template, num: int, deps: tuple) -> None:
    """CentralFreeList.insert_range: lock, park-or-span-pushes, unlock."""
    b = t.b
    lock = b.fixed(deps, Tag.SLOW_PATH)
    if t.take("transfer_park"):
        t.nstore((lock,), Tag.SLOW_PATH)  # parked-batch descriptor
        b.fixed((lock,), Tag.SLOW_PATH)
        return
    dep: tuple = (lock,)
    for i in range(num):
        dep = (t.nstore(dep, Tag.SLOW_PATH),)  # span freelist push
        if t.peek_tok() == ("release_at", i):
            t.take("release_at")
            _compile_free_span(t)
    b.fixed(dep, Tag.SLOW_PATH)


def _compile_release(t: _Template, deps: tuple, mallacc: bool) -> None:
    """ThreadCache._release_to_central: pops, then insert_range."""
    n = t.take("tc_release")
    dep = deps
    for _ in range(n):
        dep = (_compile_pop(t, dep, mallacc),)
    if n:
        _compile_insert(t, n, dep)


def _compile_malloc(tokens: tuple) -> tuple:
    """``malloc:central`` / ``malloc:page`` (they share one grammar; the
    site only records which pool ultimately satisfied the call)."""
    t = _Template(tokens)
    b = t.b
    for _ in range(6):
        b.alu((), Tag.CALL_OVERHEAD)
    if t.peek() == "sample_threshold":
        counter = t.nload((), Tag.SAMPLING)
        sub = b.alu((counter,), Tag.SAMPLING)
        t.branch("sample_threshold", (sub,), Tag.SAMPLING)
        t.nstore((sub,), Tag.SAMPLING)
    t.take("sampled")
    t.branch("malloc_is_small")
    mallacc = t.peek() == "mcsz_hit"
    if mallacc:
        sz = b.mallacc()
        if t.branch("mcsz_hit", (sz,)):
            cls_uop, size_uop = _sw_lookup(t)
            b.mallacc((size_uop,))
        else:
            cls_uop = size_uop = sz
    else:
        cls_uop, size_uop = _sw_lookup(t)
    addr_uop = b.alu((cls_uop,))
    t.branch("tc_list_empty", (addr_uop,))
    num = t.take("central_remove")
    _compile_remove(t, num, (addr_uop,))
    dep: tuple = (addr_uop,)
    for _ in range(num):
        dep = (_compile_push(t, dep, mallacc),)
    _compile_pop(t, (addr_uop,), mallacc)
    meta = (addr_uop, size_uop)
    len_uop = t.nload(meta, Tag.METADATA)
    t.nstore((b.alu((len_uop,), Tag.METADATA),), Tag.METADATA)
    sz_uop = t.nload(meta, Tag.METADATA)
    t.nstore((b.alu((sz_uop,), Tag.METADATA),), Tag.METADATA)
    for _ in range(5):
        b.alu((), Tag.CALL_OVERHEAD)
    return t.end()


def _compile_free(tokens: tuple) -> tuple:
    """``free:slow``: push, then ListTooLong release and/or scavenge."""
    t = _Template(tokens)
    b = t.b
    for _ in range(6):
        b.alu((), Tag.CALL_OVERHEAD)
    sized = t.take("sized")
    if sized:
        mallacc = t.peek() == "mcsz_hit"
        if mallacc:
            sz = b.mallacc()
            if t.branch("mcsz_hit", (sz,)):
                lookup_uop, size_uop = _sw_lookup(t)
                b.mallacc((size_uop,))
            else:
                lookup_uop = sz
        else:
            lookup_uop, _ = _sw_lookup(t)
    else:
        shift = b.alu((), Tag.SIZE_CLASS)
        root = t.nload((shift,), Tag.SIZE_CLASS)
        lookup_uop = t.nload((root,), Tag.SIZE_CLASS)
        mallacc = t.peek() == "mchdpush_hit"
    addr_uop = b.alu((lookup_uop,))
    _compile_push(t, (addr_uop,), mallacc)
    len_uop = t.nload((addr_uop,), Tag.METADATA)
    t.nstore((b.alu((len_uop,), Tag.METADATA),), Tag.METADATA)
    if t.branch("tc_list_too_long", (addr_uop,)):
        _compile_release(t, (addr_uop,), mallacc)
    while t.peek() == "scavenge_class":
        t.take("scavenge_class")
        _compile_release(t, (), mallacc)
    for _ in range(5):
        b.alu((), Tag.CALL_OVERHEAD)
    return t.end()


def compile_struct(site: str, tokens: tuple) -> tuple:
    """Compile the static structure for one ``(site, tokens)`` template."""
    if site == "free:slow":
        return _compile_free(tokens)
    return _compile_malloc(tokens)


# --------------------------------------------------------------------------
# The priced pass: per-call runtime state for a fused refill emission.


class _Pass:
    """Hoisted primitives plus the token/latency/address accumulators.

    Dependence edges exist only in the compiled structure (latencies do not
    depend on them), so the hot pass never threads uop indices — the only
    positions that matter at runtime are the Mallacc list-op uops
    (``len(lats)`` before the append) for the ordering register and the
    prefetch issue-slot estimate.
    """

    __slots__ = (
        "lats", "addrs", "toks", "segs", "clock", "hierarchy", "h_read",
        "h_write", "tlb", "mem_read", "mem_write", "predict", "issue_width",
    )

    def __init__(self, m) -> None:
        self.lats: list[int] = []
        self.addrs: list[int] = []
        self.toks: list = []
        self.segs = 0
        self.clock = m.clock
        hierarchy = m.hierarchy
        self.hierarchy = hierarchy
        self.h_read = hierarchy.demand_access
        self.h_write = self.h_read if hierarchy._fast_demand else hierarchy._access_write
        self.tlb = m.tlb.access
        self.mem_read = m.memory.read_word
        self.mem_write = m.memory.write_word
        self.predict = m.predictor.predict
        self.issue_width = m.timing.config.issue_width

    def load(self, addr: int) -> int:
        """A valued load: priced access plus the memory read."""
        self.lats.append(self.h_read(addr) + self.tlb(addr))
        self.addrs.append(addr)
        return self.mem_read(addr)

    def load_priced(self, addr: int) -> None:
        """A value-discarding load (tables, metadata reads, probes): pays
        the hierarchy and TLB without the pure ``read_word``."""
        self.lats.append(self.h_read(addr) + self.tlb(addr))
        self.addrs.append(addr)

    def store(self, addr: int, value: int) -> None:
        self.mem_write(addr, value)
        self.h_write(addr)
        self.tlb(addr)
        self.lats.append(1)
        self.addrs.append(addr)

    def store_chain(self, base: int, stride: int, count: int, last_value: int) -> None:
        """``count`` stores at ``base + i*stride``, each writing the next
        address in the chain (``last_value`` for the final store) — the
        span-carve loop in one frame, access-for-access identical to
        ``count`` :meth:`store` calls."""
        mem_write = self.mem_write
        h_write = self.h_write
        tlb = self.tlb
        addr = base
        for _ in range(count - 1):
            nxt = addr + stride
            mem_write(addr, nxt)
            h_write(addr)
            tlb(addr)
            addr = nxt
        mem_write(addr, last_value)
        h_write(addr)
        tlb(addr)
        self.lats.extend((1,) * count)
        self.addrs.extend(range(base, base + count * stride, stride))

    def alu(self) -> None:
        self.lats.append(1)

    def alus(self, n: int) -> None:
        self.lats.extend((1,) * n)

    def fixed(self, latency: int) -> None:
        self.lats.append(latency)

    def branch(self, site: str, taken: bool) -> None:
        self.lats.append(1 + self.predict(site, taken))
        self.toks.append((site, taken))

    def note(self, tok) -> None:
        self.toks.append(tok)


_VETO = object()
"""Sentinel from the ``_pre_*`` hooks: fall back before any mutation."""


# --------------------------------------------------------------------------
# The twins.


class TCMallocSlowPath:
    """Fused twin of the software refill slow paths (baseline TCMalloc).

    The malloc/free bodies are shared with :class:`MallaccSlowPath` through
    small hooks (sampling, lookups, list pops/pushes) so the two variants
    cannot drift structurally; everything else — the central-list, transfer
    -cache and page-heap machinery — is identical between allocators by
    construction.
    """

    __slots__ = ("alloc",)

    def __init__(self, alloc) -> None:
        self.alloc = alloc

    def _machine(self):
        m = self.alloc.machine
        if m.warming is not None or m.interner is None:
            return None
        return m

    # -- malloc (central / page refills) ------------------------------------
    def malloc(self, size: int):
        a = self.alloc
        m = self._machine()
        if m is None:
            return None
        config = a.config
        if size <= 0 or size > config.max_size:
            return None
        if self._sampling_would_trigger(a, size):
            return None
        table = a.table
        cl = table.class_array[class_index(size)]
        tc = a.thread_cache
        flist = tc.lists[cl]
        if flist.length != 0:
            return None  # fast shape: the fast-path twin's domain
        pre = self._pre_malloc_lookup(a, size, cl)
        if pre is _VETO:
            return None

        # All fallback conditions cleared: commit.  From here the primitive
        # sequence mirrors the emitting path exactly.
        prof = m.profiler
        t_emit = perf_counter() if prof is not None else 0.0
        clock0 = m.clock
        self._begin(a)
        p = _Pass(m)
        p.alus(6)
        self._emit_sampling(p, a, size)
        p.note(("sampled", False))
        p.branch("malloc_is_small", True)
        heap = a.page_heap
        populates0 = heap.stats.spans_allocated
        self._emit_malloc_lookup(p, a, size, cl, pre)
        p.alu()  # free-list address lea
        p.branch("tc_list_empty", True)
        self._fetch(p, a, cl, flist)
        if flist.length == 0:
            raise AssertionError("fetch must leave at least one object")
        ptr = self._pop(p, a, flist, cl)
        self._metadata(p, flist)
        self._size_update(p, tc)
        tc.size_bytes -= table.class_to_size[cl]
        p.alus(5)

        live = a.live
        if ptr in live:
            raise AssertionError(f"allocator returned live pointer {ptr:#x}")
        live[ptr] = (size, cl)
        if heap.stats.spans_allocated > populates0:
            site, path = "malloc:page", _PATH_PAGE
        else:
            site, path = "malloc:central", _PATH_CENTRAL
        record = _finish(
            a, m, prof, t_emit, site, p,
            kind="malloc", size=size, cl=cl, path=path, ptr=ptr, clock0=clock0,
        )
        return ptr, record

    # -- free (release / scavenge) ------------------------------------------
    def free(self, ptr: int, sized_hint: int | None):
        a = self.alloc
        m = self._machine()
        if m is None:
            return None
        entry = a.live.get(ptr)
        if entry is None:
            return None
        size, cl = entry
        if cl == 0:
            return None  # whole-span free: rare, not interned
        config = a.config
        table = a.table
        sized = sized_hint is not None
        if sized:
            if sized_hint <= 0 or sized_hint > config.max_size:
                return None
            if table.class_array[class_index(sized_hint)] != cl:
                return None
        pre = self._pre_free_lookup(a, sized_hint, cl)
        if pre is _VETO:
            return None
        tc = a.thread_cache
        flist = tc.lists[cl]
        alloc_size = table.class_to_size[cl]
        if (
            flist.length < flist.max_length
            and tc.size_bytes + alloc_size < config.max_thread_cache_size
        ):
            return None  # fast shape
        if ptr in flist._contents:
            return None  # double free: the reference raises, untouched state

        prof = m.profiler
        t_emit = perf_counter() if prof is not None else 0.0
        clock0 = m.clock
        self._begin(a)
        p = _Pass(m)
        del a.live[ptr]
        p.alus(6)
        p.note(("sized", sized))
        self._emit_free_lookup(p, a, ptr, sized_hint, cl, pre)
        p.alu()  # free-list address lea
        self._push(p, a, flist, cl, ptr)
        self._metadata(p, flist)
        tc.size_bytes += alloc_size
        too_long = flist.length > flist.max_length
        p.branch("tc_list_too_long", too_long)
        if too_long:
            self._list_too_long(p, a, cl)
        if tc.size_bytes >= config.max_thread_cache_size:
            self._scavenge(p, a)
        p.alus(5)
        return _finish(
            a, m, prof, t_emit, "free:slow", p,
            kind="free", size=size, cl=cl, path=_PATH_FREE_SLOW, ptr=ptr,
            clock0=clock0,
        )

    # -- per-allocator hooks (overridden by MallaccSlowPath) -----------------
    def _begin(self, a) -> None:
        pass

    def _sampling_would_trigger(self, a, size: int) -> bool:
        return a.config.sampling_enabled and a.sampler.bytes_until_sample - size <= 0

    def _emit_sampling(self, p: _Pass, a, size: int) -> None:
        if not a.config.sampling_enabled:
            return
        sampler = a.sampler
        counter = sampler.counter_addr
        p.load_priced(counter)
        p.alu()
        remaining = sampler.bytes_until_sample - size
        sampler.bytes_until_sample = remaining
        p.branch("sample_threshold", False)
        p.store(counter, remaining if remaining > 0 else 0)

    def _pre_malloc_lookup(self, a, size: int, cl: int):
        return None

    def _emit_malloc_lookup(self, p: _Pass, a, size: int, cl: int, pre) -> None:
        table = a.table
        p.alu()
        p.alu()
        p.load_priced(table.class_array_addr + (class_index(size) // 8) * 8)
        p.load_priced(table.class_to_size_addr + cl * 8)

    def _pre_free_lookup(self, a, sized_hint, cl: int):
        return None

    def _emit_free_lookup(self, p: _Pass, a, ptr: int, sized_hint, cl: int, pre) -> None:
        if sized_hint is not None:
            table = a.table
            p.alu()
            p.alu()
            p.load_priced(table.class_array_addr + (class_index(sized_hint) // 8) * 8)
            p.load_priced(table.class_to_size_addr + cl * 8)
        else:
            word0, word1 = _pagemap_words(a.page_heap, ptr)
            p.alu()
            p.load_priced(word0)
            p.load_priced(word1)

    # -- thread-cache list operations ---------------------------------------
    def _pop(self, p: _Pass, a, flist, cl: int) -> int:
        if flist.length == 0:
            raise IndexError("emit_pop on empty free list")
        header = flist.header_addr
        head = p.load(header)
        next_ptr = p.load(head)
        p.store(header, next_ptr)
        flist._contents.discard(head)
        length = flist.length - 1
        flist.length = length
        if length < flist.low_water:
            flist.low_water = length
        return head

    def _push(self, p: _Pass, a, flist, cl: int, ptr: int) -> None:
        if ptr in flist._contents:
            raise ValueError(f"double free of {ptr:#x}")
        header = flist.header_addr
        old_head = p.load(header)
        p.store(header, ptr)
        p.store(ptr, old_head)
        flist._contents.add(ptr)
        flist.length += 1

    def _push_run(self, p: _Pass, a, flist, cl: int, ptrs: list[int]) -> None:
        """Batch-push fused into one frame — access-for-access identical to
        ``len(ptrs)`` individual ``_push`` calls.  Safe here because the base
        ``_push`` never reads ``flist.length`` or ``low_water`` mid-run."""
        contents = flist._contents
        header = flist.header_addr
        h_read = p.h_read
        h_write = p.h_write
        tlb = p.tlb
        mem_read = p.mem_read
        mem_write = p.mem_write
        lats_append = p.lats.append
        addrs_append = p.addrs.append
        contents_add = contents.add
        for ptr in ptrs:
            if ptr in contents:
                raise ValueError(f"double free of {ptr:#x}")
            # load(header)
            lats_append(h_read(header) + tlb(header))
            addrs_append(header)
            old_head = mem_read(header)
            # store(header, ptr)
            mem_write(header, ptr)
            h_write(header)
            tlb(header)
            lats_append(1)
            addrs_append(header)
            # store(ptr, old_head)
            mem_write(ptr, old_head)
            h_write(ptr)
            tlb(ptr)
            lats_append(1)
            addrs_append(ptr)
            contents_add(ptr)
        flist.length += len(ptrs)

    # -- metadata -----------------------------------------------------------
    def _metadata(self, p: _Pass, flist) -> None:
        length_addr = flist.header_addr + 8
        p.load_priced(length_addr)
        p.alu()
        p.store(length_addr, flist.length)

    def _size_update(self, p: _Pass, tc) -> None:
        size_field = tc.lists[0].header_addr + 16
        p.load_priced(size_field)
        p.alu()
        sb = tc.size_bytes
        p.store(size_field, sb if sb > 0 else 0)

    # -- central-cache refill -----------------------------------------------
    def _fetch(self, p: _Pass, a, cl: int, flist) -> None:
        """ThreadCache._fetch_from_central: batch remove + pushes + slow-start."""
        p.segs += 1
        table = a.table
        tc = a.thread_cache
        batch = table.batch_size_of(cl)
        num = min(flist.max_length, batch)
        taken = self._remove_range(p, a, a.central_lists[cl], num, tc)
        if not taken:
            raise AssertionError("central list must populate on demand")
        tc.stats.fetches += 1
        tc.stats.objects_fetched += len(taken)
        self._push_run(p, a, flist, cl, taken)
        tc.size_bytes += len(taken) * table.alloc_size_of(cl)
        if flist.max_length < batch:
            flist.max_length += 1
        else:
            new_length = min(flist.max_length + batch, K_MAX_DYNAMIC_FREE_LIST_LENGTH)
            flist.max_length = new_length - (new_length % batch)

    def _lock(self, p: _Pass, central, owner) -> None:
        """The _emit_lock acquire half: contention model + acquire cost."""
        now = p.clock
        stats = central.stats
        contended = (
            owner is not None
            and central.last_owner is not None
            and owner is not central.last_owner
        )
        wait = max(0, central.busy_until - now) if contended else 0
        if wait:
            stats.contention_waits += 1
            stats.contention_cycles += wait
        central.busy_until = (
            max(now, central.busy_until) + central.critical_section_estimate
        )
        central.last_owner = owner
        p.fixed(central.config.costs.lock_acquire + wait)

    def _remove_range(self, p: _Pass, a, central, num: int, owner) -> list[int]:
        """CentralFreeList.remove_range under the lock."""
        stats = central.stats
        stats.remove_calls += 1
        p.note(("central_remove", num))
        self._lock(p, central, owner)
        costs = central.config.costs
        transfer = central.transfer
        if num == transfer.batch_size and transfer.slots:
            parked = transfer.slots.pop()
            p.load_priced(parked[0])
            transfer.stats.batch_removes += 1
        else:
            transfer.stats.remove_misses += 1
            parked = None
        p.note(("transfer_unpark", parked is not None))
        if parked is not None:
            p.fixed(costs.lock_release)
            stats.objects_moved_out += len(parked)
            return parked
        taken: list[int] = []
        taken_append = taken.append
        nonempty = central.nonempty_spans
        h_read = p.h_read
        tlb = p.tlb
        mem_read = p.mem_read
        lats_append = p.lats.append
        addrs_append = p.addrs.append
        taken_len = 0
        # Chain-walk pops fused into one frame per span streak —
        # access-for-access identical to the per-object ``p.load`` loop.
        while taken_len < num:
            if not nonempty:
                p.note(("populate_at", taken_len))
                self._populate(p, a, central)
            span = nonempty[-1]
            head = span.freelist_head
            while True:
                lats_append(h_read(head) + tlb(head))
                addrs_append(head)
                nxt = mem_read(head)
                taken_append(head)
                taken_len += 1
                span.objects_free -= 1
                head = nxt
                if head == NULL:
                    span.freelist_head = NULL
                    nonempty.pop()
                    break
                if taken_len >= num:
                    span.freelist_head = head
                    break
        p.fixed(costs.lock_release)
        central.num_free_objects -= taken_len
        stats.objects_moved_out += taken_len
        return taken

    def _populate(self, p: _Pass, a, central) -> None:
        """CentralFreeList._populate: new span carved into objects."""
        table = a.table
        cl = central.size_class
        pages = table.pages_of(cl)
        obj_size = table.alloc_size_of(cl)
        span = self._allocate_span(p, a, central.page_heap, pages)
        span.size_class = cl
        central.page_heap.spans.register_interior(span)
        num_objects = span.length_bytes // obj_size
        p.note(("carve", num_objects))
        start_addr = span.start_addr
        p.store_chain(start_addr, obj_size, num_objects, NULL)
        span.freelist_head = start_addr
        span.objects_free = num_objects
        central.nonempty_spans.append(span)
        central.num_free_objects += num_objects
        central.stats.populates += 1

    # -- page heap ----------------------------------------------------------
    def _search_free(self, p: _Pass, heap, num_pages: int):
        """PageHeap._search_free: timed probe chain over the free buckets."""
        probe_base = heap.pagemap_root_addr + 24
        probes = 0
        found = None
        free_lists = heap.free_lists
        for length in range(num_pages, K_MAX_PAGES + 1):
            p.load_priced(probe_base + (length % 32) * 8)
            probes += 1
            bucket = free_lists.get(length)
            if bucket:
                found = bucket.pop()
                break
        if found is None:
            large = heap.large_list
            for i, span in enumerate(large):
                if span.num_pages >= num_pages:
                    found = large.pop(i)
                    break
        p.note(("pm_probes", probes))
        return found

    def _allocate_span(self, p: _Pass, a, heap, num_pages: int):
        """PageHeap.allocate_span: search, grow, split, mark in-use."""
        span = self._search_free(p, heap, num_pages)
        p.note(("pm_grow", span is None))
        if span is None:
            ask = max(num_pages, K_MIN_SYSTEM_ALLOC_PAGES)
            reservation = heap.address_space.reserve_pages(ask)
            heap.stats.system_allocations += 1
            heap.stats.bytes_from_system += reservation.length
            p.fixed(heap.config.costs.syscall)
            grown = Span(
                start_page=reservation.start >> K_PAGE_SHIFT, num_pages=ask
            )
            heap.spans.register(grown)
            heap._push_free(grown)
            span = self._search_free(p, heap, num_pages)
            if span is None:
                raise AssertionError("heap growth must satisfy the request")
        p.note(("pm_split", span.num_pages > num_pages))
        if span.num_pages > num_pages:
            leftover = span.split(num_pages)
            heap.spans.register(leftover)
            heap._push_free(leftover)
            heap.stats.spans_split += 1
            p.store(heap.pagemap_root_addr + 8, leftover.start_page)
        span.state = SpanState.IN_USE
        heap.spans.register(span)
        heap.stats.spans_allocated += 1
        return span

    def _free_span(self, p: _Pass, heap, span) -> None:
        """PageHeap.free_span: coalesce, pagemap store, optional OS release."""
        if span.state is not SpanState.IN_USE:
            raise ValueError("span is not in use")
        span.state = SpanState.ON_NORMAL_FREELIST
        span.size_class = 0
        span.objects_free = 0
        span.freelist_head = 0
        heap.stats.spans_freed += 1
        spans = heap.spans
        prev = spans.span_of_page(span.start_page - 1)
        if prev is not None and prev.state is SpanState.ON_NORMAL_FREELIST:
            heap._remove_free(prev)
            spans.unregister(prev)
            span.start_page = prev.start_page
            span.num_pages += prev.num_pages
            heap.stats.spans_coalesced += 1
        succ = spans.span_of_page(span.end_page)
        if succ is not None and succ.state is SpanState.ON_NORMAL_FREELIST:
            heap._remove_free(succ)
            spans.unregister(succ)
            span.num_pages += succ.num_pages
            heap.stats.spans_coalesced += 1
        spans.register(span)
        heap._push_free(span)
        p.store(heap.pagemap_root_addr + 16, span.start_page)
        if heap.config.release_rate:
            heap._release_counter += 1
            if heap._release_counter >= heap.config.release_rate:
                heap._release_counter = 0
                victim = None
                if heap.large_list:
                    victim = max(heap.large_list, key=lambda s: s.num_pages)
                else:
                    for length in sorted(heap.free_lists, reverse=True):
                        bucket = heap.free_lists[length]
                        if bucket:
                            victim = bucket[-1]
                            break
                p.note(("pm_madvise", victim is not None))
                if victim is not None:
                    heap._remove_free(victim)
                    heap.spans.unregister(victim)
                    heap.stats.spans_released += 1
                    heap.stats.bytes_released += victim.length_bytes
                    p.fixed(heap.config.costs.madvise)

    # -- release back to the central lists ----------------------------------
    def _list_too_long(self, p: _Pass, a, cl: int) -> None:
        """ThreadCache._list_too_long: release one batch + max-length decay."""
        p.segs += 1
        tc = a.thread_cache
        flist = tc.lists[cl]
        batch = a.table.batch_size_of(cl)
        self._release(p, a, cl, min(batch, flist.length))
        if flist.max_length < batch:
            flist.max_length += 1
        elif flist.max_length > batch:
            flist.length_overages += 1
            if flist.length_overages > 3:
                flist.max_length -= batch
                flist.length_overages = 0

    def _release(self, p: _Pass, a, cl: int, num: int) -> None:
        """ThreadCache._release_to_central: pops + insert_range."""
        tc = a.thread_cache
        flist = tc.lists[cl]
        count = min(num, flist.length)
        p.note(("tc_release", count))
        ptrs = [self._pop(p, a, flist, cl) for _ in range(count)]
        if ptrs:
            self._insert_range(p, a, a.central_lists[cl], ptrs, tc)
            tc.size_bytes -= len(ptrs) * a.table.alloc_size_of(cl)
            tc.stats.releases += 1
            tc.stats.objects_released += len(ptrs)

    def _insert_range(self, p: _Pass, a, central, ptrs: list[int], owner) -> None:
        """CentralFreeList.insert_range under the lock."""
        stats = central.stats
        stats.insert_calls += 1
        self._lock(p, central, owner)
        costs = central.config.costs
        transfer = central.transfer
        if len(ptrs) == transfer.batch_size and len(transfer.slots) < transfer.num_slots:
            p.store(ptrs[0], ptrs[-1])
            transfer.slots.append(list(ptrs))
            transfer.stats.batch_inserts += 1
            parked = True
        else:
            if len(ptrs) == transfer.batch_size:
                transfer.stats.insert_overflows += 1
            parked = False
        p.note(("transfer_park", parked))
        if parked:
            p.fixed(costs.lock_release)
            stats.objects_moved_in += len(ptrs)
            return
        heap = central.page_heap
        cl = central.size_class
        per_span = a.table.objects_per_span(cl)
        nonempty = central.nonempty_spans
        span_of = heap.span_of_addr
        h_write = p.h_write
        tlb = p.tlb
        mem_write = p.mem_write
        lats_append = p.lats.append
        addrs_append = p.addrs.append
        # Freelist pushes inlined (store() body), access-for-access identical.
        for i, ptr in enumerate(ptrs):
            span = span_of(ptr)
            if span is None or span.size_class != cl:
                raise ValueError(f"object {ptr:#x} does not belong to class {cl}")
            fh = span.freelist_head
            mem_write(ptr, fh)
            h_write(ptr)
            tlb(ptr)
            lats_append(1)
            addrs_append(ptr)
            if fh == NULL and span not in nonempty:
                nonempty.append(span)
            span.freelist_head = ptr
            span.objects_free += 1
            if span.objects_free > per_span:
                raise AssertionError("span over-filled")
            central.num_free_objects += 1
            if span.objects_free == per_span:
                p.note(("release_at", i))
                if span in nonempty:
                    nonempty.remove(span)
                central.num_free_objects -= span.objects_free
                heap.spans.unregister(span)
                span.state = SpanState.IN_USE
                heap.spans.register(span)
                self._free_span(p, heap, span)
                stats.spans_returned += 1
        p.fixed(costs.lock_release)
        stats.objects_moved_in += len(ptrs)

    def _scavenge(self, p: _Pass, a) -> None:
        """ThreadCache._scavenge: drop half the low-water from every class."""
        p.segs += 1
        tc = a.thread_cache
        tc.stats.scavenges += 1
        for cl in range(1, a.table.num_classes):
            flist = tc.lists[cl]
            drop = flist.low_water // 2
            if drop > 0:
                p.note(("scavenge_class", cl))
                self._release(p, a, cl, drop)
            flist.low_water = flist.length


class MallaccSlowPath(TCMallocSlowPath):
    """Fused twin of the refill slow paths on a Mallacc allocator.

    Only the per-call hooks differ from the baseline: sampling rides the
    PMU, size-class lookups go through the malloc cache, and every
    thread-cache push/pop is an ``mchdpush``/``mchdpop`` with software
    fallback — including the batch transfers, which is what keeps the
    cached head/next copies coherent across refills.  ``szlookup`` is
    replicated as a pure scan (``_sz_scan``) so an inconsistent entry can
    veto before the stats/LRU mutation.
    """

    __slots__ = ()

    def _begin(self, a) -> None:
        a.isa.begin_call()

    def _sampling_would_trigger(self, a, size: int) -> bool:
        pmu = a.pmu
        return a.config.sampling_enabled and pmu.accumulated + size >= pmu.threshold

    def _emit_sampling(self, p: _Pass, a, size: int) -> None:
        if a.config.sampling_enabled:
            a.pmu.accumulated += size

    def _pre_malloc_lookup(self, a, size: int, cl: int):
        sentry = _sz_scan(a.isa.cache, size)
        if sentry is not None and (
            sentry.size_class != cl
            or sentry.alloc_size != a.table.class_to_size[cl]
        ):
            return _VETO
        return sentry

    def _emit_malloc_lookup(self, p: _Pass, a, size: int, cl: int, pre) -> None:
        cache = a.isa.cache
        sz_hit = pre is not None
        _sz_commit(cache, pre)
        p.fixed(cache.config.lookup_latency)
        p.branch("mcsz_hit", not sz_hit)
        if not sz_hit:
            table = a.table
            p.alu()
            p.alu()
            p.load_priced(table.class_array_addr + (class_index(size) // 8) * 8)
            p.load_priced(table.class_to_size_addr + cl * 8)
            cache.szupdate(size, table.class_to_size[cl], cl)
            p.fixed(1)

    def _pre_free_lookup(self, a, sized_hint, cl: int):
        if sized_hint is None:
            return None
        sentry = _sz_scan(a.isa.cache, sized_hint)
        if sentry is not None and sentry.size_class != cl:
            return _VETO
        return sentry

    def _emit_free_lookup(self, p: _Pass, a, ptr: int, sized_hint, cl: int, pre) -> None:
        if sized_hint is None:
            super()._emit_free_lookup(p, a, ptr, sized_hint, cl, pre)
            return
        cache = a.isa.cache
        sz_hit = pre is not None
        _sz_commit(cache, pre)
        p.fixed(cache.config.lookup_latency)
        p.branch("mcsz_hit", not sz_hit)
        if not sz_hit:
            table = a.table
            p.alu()
            p.alu()
            p.load_priced(table.class_array_addr + (class_index(sized_hint) // 8) * 8)
            p.load_priced(table.class_to_size_addr + cl * 8)
            cache.szupdate(sized_hint, table.class_to_size[cl], cl)
            p.fixed(1)

    # -- accelerated list operations ----------------------------------------
    def _pop(self, p: _Pass, a, flist, cl: int) -> int:
        isa = a.isa
        cache = isa.cache
        pentry, head, next_ptr, stall = cache.hdpop(cl, p.clock)
        pop_uop = len(p.lats)
        p.fixed(cache.config.list_op_latency + stall)
        isa._order_uop = pop_uop
        hit = pentry is not None
        p.branch("mchd_hit", not hit)
        header = flist.header_addr
        if hit:
            head_only = next_ptr == NULL and flist.length > 1
            p.note(("mchd_head_only", head_only))
            if head_only:
                next_ptr = p.load(head)
            if flist.length == 0:
                raise IndexError("pop_cached on empty free list")
            real_head = p.mem_read(header)
            if real_head != head:
                raise AssertionError(
                    f"malloc cache head {head:#x} diverged from list head {real_head:#x}"
                )
            if p.mem_read(head) != next_ptr:
                raise AssertionError("malloc cache next diverged from list")
            p.store(header, next_ptr)
        else:
            if flist.length == 0:
                raise IndexError("emit_pop on empty free list")
            head = p.load(header)
            next_ptr = p.load(head)
            p.store(header, next_ptr)
        flist._contents.discard(head)
        length = flist.length - 1
        flist.length = length
        if length < flist.low_water:
            flist.low_water = length

        new_head = p.mem_read(header)
        do_prefetch = new_head != NULL
        p.note(("nxtprefetch", do_prefetch))
        if do_prefetch:
            head_next = p.mem_read(new_head)
            mem_latency = p.hierarchy.prefetch(new_head)
            pf_uop = len(p.lats)
            p.lats.append(1)
            p.addrs.append(new_head)
            isa._order_uop = pf_uop
            issue_estimate = pf_uop // p.issue_width
            cache.nxtprefetch(cl, new_head, head_next, p.clock + issue_estimate + mem_latency)
        return head

    def _push(self, p: _Pass, a, flist, cl: int, ptr: int) -> None:
        isa = a.isa
        cache = isa.cache
        hit, old_head, stall = cache.hdpush(cl, ptr, p.clock)
        push_uop = len(p.lats)
        p.fixed(cache.config.list_op_latency + stall)
        isa._order_uop = push_uop
        p.note(("mchdpush_hit", hit))
        if ptr in flist._contents:
            raise ValueError(f"double free of {ptr:#x}")
        header = flist.header_addr
        if hit:
            real_head = p.mem_read(header)
            if real_head != old_head:
                raise AssertionError(
                    f"malloc cache head {old_head:#x} diverged from list head {real_head:#x}"
                )
        else:
            old_head = p.load(header)
        p.store(header, ptr)
        p.store(ptr, old_head)
        flist._contents.add(ptr)
        flist.length += 1

    def _push_run(self, p: _Pass, a, flist, cl: int, ptrs: list[int]) -> None:
        # Each mchdpush's hit/stall outcome depends on the cached head left
        # by the previous push, so the run cannot be fused here.
        for ptr in ptrs:
            self._push(p, a, flist, cl, ptr)


# --------------------------------------------------------------------------
# Shared tail.


def _finish(a, m, prof, t_emit, site, p, *, kind, size, cl, path, ptr, clock0):
    """Twin of ``TCMalloc._finish``: intern, price, record, advance."""
    tokens = tuple(p.toks)
    lats = tuple(p.lats)
    addrs = tuple(p.addrs)
    if prof is not None:
        t0 = perf_counter()
        prof.add_stage("refill", t0 - t_emit)
        prof.count("refill_entries", p.segs)
    trace = m.interner.intern(
        site, tokens, lats,
        lambda: m.timing.materialize_columnar(
            _STRUCTS.get_or_compile(site, tokens, compile_struct), addrs, lats
        ),
    )
    if prof is not None:
        t1 = perf_counter()
    timing = m.timing
    result = timing.run(trace)
    ablations = a.ablations
    if ablations:
        ablated = {
            name: timing.run_ablated(trace, tags).cycles
            for name, tags in ablations.items()
        }
    else:
        ablated = {}
    if prof is not None:
        t2 = perf_counter()
        prof.add_stage("build", t1 - t0)
        prof.add_stage("schedule", t2 - t1)
        prof.count("calls")
        prof.count("uops", len(trace))
    record = _CallRecord(
        kind=kind,
        size=size,
        size_class=cl,
        path=path,
        cycles=result.cycles,
        num_uops=len(trace),
        ptr=ptr,
        clock=clock0,
        sampled=False,
        ablated=ablated,
    )
    m.advance(result.cycles)
    if a.keep_records:
        a.records.append(record)
    a._post_schedule(trace, result)
    return record


# --------------------------------------------------------------------------
# Registry: exact allocator type -> twin factory, mirroring the fast path.

_REGISTRY: dict[type, type] = {}


def register_slowpath(alloc_type: type, twin_type: type) -> None:
    _REGISTRY[alloc_type] = twin_type


def slowpath_for(alloc):
    """The fused refill twin for ``alloc``, or None if its exact type has
    none."""
    twin_type = _REGISTRY.get(type(alloc))
    return None if twin_type is None else twin_type(alloc)


from repro.alloc.allocator import (  # noqa: E402  (cycle: allocator imports us lazily)
    CallRecord as _CallRecord,
    Path as _Path,
    TCMalloc as _TCMalloc,
)

_PATH_CENTRAL = _Path.CENTRAL
_PATH_PAGE = _Path.PAGE_ALLOC
_PATH_FREE_SLOW = _Path.FREE_SLOW

register_slowpath(_TCMalloc, TCMallocSlowPath)

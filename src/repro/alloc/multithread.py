"""Multithreaded allocation: the reason modern allocators look this way.

Section 2: "the rise of multi-core processors and multithreaded applications
... motivated allocator designs that were fast and efficient in the face of
problems like lock contention, false cache sharing, and memory blowup with
large numbers of threads ... [modern allocators] ensure that memory can
migrate from thread to thread to avoid memory blowup in scenarios where one
thread allocates memory and another thread frees memory."

:class:`MultiThreadAllocator` runs N logical threads over shared lower pools
(one page heap, one set of central free lists) with a private thread cache
each, interleaved on one machine clock:

* **lock contention** — overlapping critical sections on a central list
  serialize (``CentralFreeList._emit_lock``);
* **cross-thread frees** — an object allocated by thread A and freed by
  thread B lands in *B's* cache, TCMalloc semantics;
* **memory migration** — B's overflowing lists release to the shared
  central lists, where A's fetches find the objects again, bounding the
  producer→consumer footprint;
* **context switches** — threads run on their own cores; the OS preempts on
  a timer quantum, and each preemption flushes the core's malloc cache
  (Section 4.1: the cache holds copies only, so a flush is always safe).

When ``accelerated=True`` each core gets its own malloc cache (Mallacc is
in-core state).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloc.allocator import CallRecord, SharedPools, TCMalloc
from repro.alloc.constants import AllocatorConfig
from repro.alloc.context import Machine
from repro.alloc.page_heap import PageHeap
from repro.alloc.size_classes import SizeClassTable
from repro.core.accel_allocator import MallaccFastPathMixin
from repro.core.malloc_cache import MallocCacheConfig


class _ThreadView(MallaccFastPathMixin, TCMalloc):
    """One thread's accelerated view over the shared pools."""

    def __init__(self, machine, config, shared, cache_config) -> None:
        TCMalloc.__init__(self, machine=machine, config=config, shared=shared)
        self._attach_mallacc(cache_config)


@dataclass
class ThreadStats:
    """Measured per-thread call counts; warmup traffic is kept separate so
    ``cycles`` stays a sum over *measured* calls only (parity with
    :class:`~repro.harness.runner.RunResult`)."""

    mallocs: int = 0
    frees: int = 0
    cycles: int = 0
    warmup_mallocs: int = 0
    warmup_frees: int = 0
    warmup_cycles: int = 0

    @property
    def warmup_calls(self) -> int:
        return self.warmup_mallocs + self.warmup_frees


class MultiThreadAllocator:
    """N logical threads multiplexed over shared pools on one machine."""

    def __init__(
        self,
        num_threads: int,
        machine: Machine | None = None,
        config: AllocatorConfig | None = None,
        accelerated: bool = False,
        cache_config: MallocCacheConfig | None = None,
        context_switch_flushes: bool = True,
        switch_quantum_cycles: int = 1_000_000,
        coherent: bool = False,
        memoize_traces: bool | None = None,
        intern_traces: bool | None = None,
    ) -> None:
        if num_threads < 1:
            raise ValueError("need at least one thread")
        self.coherent = coherent
        if coherent:
            from repro.sim.multicore import build_core_machines

            self.core_machines, self.substrate = build_core_machines(num_threads)
            self.machine = self.core_machines[0]
        else:
            self.machine = machine or Machine()
            self.core_machines = [self.machine] * num_threads
            self.substrate = None
        if memoize_traces is not None:
            # Coherent mode runs one TimingModel per core; apply to each.
            for core in {id(m): m for m in self.core_machines}.values():
                core.timing.set_memoization(memoize_traces)
        if intern_traces is not None:
            from repro.sim.trace_intern import TraceInterner

            for core in {id(m): m for m in self.core_machines}.values():
                if intern_traces and core.interner is None:
                    core.interner = TraceInterner()
                elif not intern_traces:
                    core.interner = None
        self.config = config or AllocatorConfig()
        self.accelerated = accelerated
        self.context_switch_flushes = context_switch_flushes
        self.switch_quantum_cycles = switch_quantum_cycles
        self._next_preemption = switch_quantum_cycles

        table = SizeClassTable.generate(self.machine.address_space)
        page_heap = PageHeap(self.machine.address_space, self.config)
        from repro.alloc.central_cache import CentralFreeList

        central = [
            CentralFreeList(cl, table, page_heap, self.config)
            for cl in range(table.num_classes)
        ]
        self.shared = SharedPools(table=table, page_heap=page_heap, central_lists=central)

        self.threads: list[TCMalloc] = []
        for tid in range(num_threads):
            core = self.core_machines[tid]
            if accelerated:
                view = _ThreadView(core, self.config, self.shared, cache_config)
            else:
                view = TCMalloc(machine=core, config=self.config, shared=self.shared)
            view.keep_records = False
            self.threads.append(view)

        self.owner: dict[int, int] = {}
        """ptr -> allocating thread (diagnostics only; frees go anywhere)."""
        self.stats = [ThreadStats() for _ in range(num_threads)]
        self.running_tid = 0
        self.context_switches = 0

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, tid: int) -> None:
        """Timer-quantum preemption: threads occupy their own cores, and a
        preemption (context switch on every core) fires each time the global
        clock crosses a quantum boundary, flushing the per-core malloc
        caches.

        Boundaries stay pinned to whole multiples of the quantum — the next
        deadline advances by however many quanta the clock crossed, never by
        ``clock + quantum`` (which would let the timer drift by each call's
        latency).  A long application gap that crosses several boundaries
        counts one context switch per boundary; the cache flush itself is
        idempotent, so it runs once."""
        self.running_tid = tid
        if self.machine.clock < self._next_preemption:
            return
        quantum = self.switch_quantum_cycles
        crossed = (self.machine.clock - self._next_preemption) // quantum + 1
        self._next_preemption += crossed * quantum
        self.context_switches += crossed
        if self.context_switch_flushes and self.accelerated:
            for view in self.threads:
                view.context_switch()

    # -- allocation interface ------------------------------------------------
    def _sync_clocks(self) -> None:
        """Cores share one timeline: contention windows and preemptions are
        judged against the furthest-ahead core."""
        if not self.coherent:
            return
        now = max(m.clock for m in self.core_machines)
        for m in self.core_machines:
            m.clock = now

    def malloc(self, tid: int, size: int, warmup: bool = False) -> tuple[int, CallRecord]:
        self._check_tid(tid)
        self._schedule(tid)
        ptr, record = self.threads[tid].malloc(size)
        self._sync_clocks()
        self.owner[ptr] = tid
        stats = self.stats[tid]
        if warmup:
            stats.warmup_mallocs += 1
            stats.warmup_cycles += record.cycles
        else:
            stats.mallocs += 1
            stats.cycles += record.cycles
        return ptr, record

    def free(self, tid: int, ptr: int, warmup: bool = False) -> CallRecord:
        """Free from any thread: the object joins ``tid``'s cache (TCMalloc's
        cross-thread semantics)."""
        return self._free(tid, ptr, sized=None, warmup=warmup)

    def sized_free(self, tid: int, ptr: int, size: int, warmup: bool = False) -> CallRecord:
        return self._free(tid, ptr, sized=size, warmup=warmup)

    def _free(self, tid: int, ptr: int, sized: int | None, warmup: bool = False) -> CallRecord:
        self._check_tid(tid)
        self._schedule(tid)
        owner_tid = self.owner.pop(ptr, None)
        if owner_tid is None:
            raise ValueError(f"free of unallocated pointer {ptr:#x}")
        freer = self.threads[tid]
        # The live entry sits on the allocating view; migrate it so the
        # freeing thread's facade accepts and accounts the pointer.
        entry = self.threads[owner_tid].live.pop(ptr)
        freer.live[ptr] = entry
        record = freer.sized_free(ptr, sized) if sized is not None else freer.free(ptr)
        self._sync_clocks()
        stats = self.stats[tid]
        if warmup:
            stats.warmup_frees += 1
            stats.warmup_cycles += record.cycles
        else:
            stats.frees += 1
            stats.cycles += record.cycles
        return record

    def antagonize(self) -> int:
        """Run the antagonist's eviction callback machine-wide: evict the
        less-used half of *every* core's private L1/L2 exactly once, plus the
        shared L3 once in coherent mode (the cores alias one hierarchy in
        flat mode, where its L3 is private and stays untouched for parity
        with the single-threaded runner).  Returns lines evicted."""
        evicted = 0
        for machine in {id(m): m for m in self.core_machines}.values():
            evicted += machine.hierarchy.antagonize()
        if self.substrate is not None:
            evicted += self.substrate.l3.evict_less_used_half()
        return evicted

    def _check_tid(self, tid: int) -> None:
        if not 0 <= tid < len(self.threads):
            raise ValueError(f"bad thread id {tid}")

    # -- accounting ----------------------------------------------------------
    @property
    def live_bytes(self) -> int:
        return sum(view.live_bytes for view in self.threads)

    def cached_bytes(self) -> int:
        """Bytes parked in all thread caches (the blowup metric)."""
        return sum(max(0, view.thread_cache.size_bytes) for view in self.threads)

    def reserved_bytes(self) -> int:
        return self.shared.page_heap.stats.bytes_from_system - (
            self.shared.page_heap.stats.bytes_released
        )

    def contention_cycles(self) -> int:
        return sum(c.stats.contention_cycles for c in self.shared.central_lists)

    def coherence_stats(self):
        """Directory statistics (coherent mode only)."""
        if self.substrate is None:
            return None
        return self.substrate.directory.stats

    def check_conservation(self) -> None:
        for view in self.threads:
            view.check_conservation()
        self.shared.page_heap.check_invariants()


# Columnar-engine refill twin for thread views: every emission hook a
# _ThreadView inherits is the Mallacc variant (MallaccFastPathMixin), so the
# Mallacc refill twin is its exact mirror.  No fast-path twin is registered
# — per-thread fast paths stay on the reference emitter — but refills
# dominate MT slow traffic and carry the lock/transfer-cache state the
# differential grid pins.
from repro.alloc.slowpath import MallaccSlowPath, register_slowpath  # noqa: E402

register_slowpath(_ThreadView, MallaccSlowPath)

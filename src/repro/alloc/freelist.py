"""Singly-linked free lists stored in simulated memory.

TCMalloc "stores the next pointer at the address of the block of memory it is
about to return, instead of allocating a separate field in a struct for it"
(Section 3.3).  A pop is therefore the dependent chain of Figure 7:

.. code-block:: asm

    load  temp, MEM[head]       ; get the head
    load  next_head, MEM[temp]  ; get head->next
    store MEM[head], next_head  ; head = head->next

and a push is one load and two stores.  The two loads on the pop path are the
performance-critical accesses the malloc cache targets.

Each list's header (head pointer, length word) occupies its own cache line in
the metadata region, so header accesses are priced realistically and an
antagonist can evict them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloc.context import Emitter
from repro.sim.memory import NULL, SimulatedMemory
from repro.sim.uop import Tag


@dataclass
class PopResult:
    """Functional and timing outcome of one pop."""

    ptr: int
    next_ptr: int
    uop: int
    """Index of the uop producing the returned pointer (for dependences)."""


@dataclass
class FreeList:
    """A TCMalloc free list: header in metadata space, links in the blocks.

    ``length`` is mirrored as a Python int for O(1) functional checks; the
    authoritative head pointer lives in simulated memory at ``header_addr``.
    """

    memory: SimulatedMemory
    header_addr: int
    length: int = 0
    max_length: int = 1
    """Slow-start bound on length (ThreadCache::FetchFromCentralCache)."""
    length_overages: int = 0
    low_water: int = 0
    """Minimum length since last scavenge (drives how much to release)."""
    _contents: set[int] = field(default_factory=set)

    # -- functional-only operations (used by slow paths and tests) ---------
    @property
    def head(self) -> int:
        return self.memory.read_word(self.header_addr)

    def empty(self) -> bool:
        return self.length == 0

    def push_functional(self, ptr: int) -> None:
        """Push without emitting micro-ops (setup and tests)."""
        if ptr in self._contents:
            raise ValueError(f"double push of {ptr:#x}")
        self.memory.write_word(ptr, self.memory.read_word(self.header_addr))
        self.memory.write_word(self.header_addr, ptr)
        self._contents.add(ptr)
        self.length += 1

    def pop_functional(self) -> int:
        if self.length == 0:
            raise IndexError("pop from empty free list")
        head = self.memory.read_word(self.header_addr)
        self.memory.write_word(self.header_addr, self.memory.read_word(head))
        self._contents.discard(head)
        self.length -= 1
        if self.length < self.low_water:
            self.low_water = self.length
        return head

    def __contains__(self, ptr: int) -> bool:
        return ptr in self._contents

    def iter_blocks(self):
        """Walk the list through simulated memory (validation helper)."""
        ptr = self.head
        seen = 0
        while ptr != NULL and seen <= self.length:
            yield ptr
            ptr = self.memory.read_word(ptr)
            seen += 1

    # -- timed operations ---------------------------------------------------
    def emit_pop(self, em: Emitter, addr_dep: tuple[int, ...] = ()) -> PopResult:
        """The Figure 7 pop: two dependent loads and a buffered store.

        ``addr_dep`` carries the uop that produced the list's address
        (normally the size-class lookup), serializing lookup before pop as
        the real code does.
        """
        if self.length == 0:
            raise IndexError("emit_pop on empty free list")
        if not em.touches_hierarchy:
            # Functional fast-forward: identical memory/list transitions to
            # the emitting path below, fused into direct memory calls.
            mem = self.memory
            head = mem.read_word(self.header_addr)
            next_ptr = mem.read_word(head)
            mem.write_word(self.header_addr, next_ptr)
            self._contents.discard(head)
            self.length -= 1
            if self.length < self.low_water:
                self.low_water = self.length
            return PopResult(ptr=head, next_ptr=next_ptr, uop=0)
        head, head_uop = em.load_word(self.header_addr, deps=addr_dep, tag=Tag.PUSH_POP)
        next_ptr, next_uop = em.load_word(head, deps=(head_uop,), tag=Tag.PUSH_POP)
        em.store_word(self.header_addr, next_ptr, deps=(next_uop,), tag=Tag.PUSH_POP)
        self._contents.discard(head)
        self.length -= 1
        if self.length < self.low_water:
            self.low_water = self.length
        return PopResult(ptr=head, next_ptr=next_ptr, uop=head_uop)

    def emit_push(self, em: Emitter, ptr: int, addr_dep: tuple[int, ...] = ()) -> int:
        """The Figure 7 push: one load and two buffered stores.  Returns the
        uop index of the header load."""
        if ptr in self._contents:
            raise ValueError(f"double free of {ptr:#x}")
        if not em.touches_hierarchy:
            mem = self.memory
            old_head = mem.read_word(self.header_addr)
            mem.write_word(self.header_addr, ptr)
            mem.write_word(ptr, old_head)
            self._contents.add(ptr)
            self.length += 1
            return 0
        old_head, head_uop = em.load_word(self.header_addr, deps=addr_dep, tag=Tag.PUSH_POP)
        em.store_word(self.header_addr, ptr, deps=(head_uop,), tag=Tag.PUSH_POP)
        em.store_word(ptr, old_head, deps=(head_uop,), tag=Tag.PUSH_POP)
        self._contents.add(ptr)
        self.length += 1
        return head_uop

    def pop_cached(self, em: Emitter, head: int, next_ptr: int, deps: tuple[int, ...] = ()) -> None:
        """Pop when the head and next values are already in hand (a malloc
        cache hit): the two loads of Figure 7 disappear; only the buffered
        head-update store remains.  Raises if the cached values disagree with
        the real list — the consistency invariant Mallacc must preserve."""
        if self.length == 0:
            raise IndexError("pop_cached on empty free list")
        real_head = self.memory.read_word(self.header_addr)
        if real_head != head:
            raise AssertionError(
                f"malloc cache head {head:#x} diverged from list head {real_head:#x}"
            )
        if self.memory.read_word(head) != next_ptr:
            raise AssertionError("malloc cache next diverged from list")
        em.store_word(self.header_addr, next_ptr, deps=deps, tag=Tag.PUSH_POP)
        self._contents.discard(head)
        self.length -= 1
        if self.length < self.low_water:
            self.low_water = self.length

    def push_cached(self, em: Emitter, ptr: int, old_head: int, deps: tuple[int, ...] = ()) -> None:
        """Push when the current head is already cached: the head load of
        Figure 7 disappears; the two buffered stores remain."""
        if ptr in self._contents:
            raise ValueError(f"double free of {ptr:#x}")
        real_head = self.memory.read_word(self.header_addr)
        if real_head != old_head:
            raise AssertionError(
                f"malloc cache head {old_head:#x} diverged from list head {real_head:#x}"
            )
        em.store_word(self.header_addr, ptr, deps=deps, tag=Tag.PUSH_POP)
        em.store_word(ptr, old_head, deps=deps, tag=Tag.PUSH_POP)
        self._contents.add(ptr)
        self.length += 1

    def emit_update_metadata(self, em: Emitter, deps: tuple[int, ...] = ()) -> None:
        """Length/total-size bookkeeping: part of the ~50% of fast-path
        cycles *not* covered by the three main components (Section 3.3)."""
        length_addr = self.header_addr + 8
        if not em.touches_hierarchy:
            self.memory.write_word(length_addr, self.length)
            return
        _, len_uop = em.load_word(length_addr, deps=deps, tag=Tag.METADATA)
        upd = em.alu(deps=(len_uop,), tag=Tag.METADATA)
        em.store_word(length_addr, self.length, deps=(upd,), tag=Tag.METADATA)

"""The page heap: span-granular allocation backed by the (simulated) OS.

This is the bottom pool of the Section 3.1 hierarchy: "TCMalloc allocates a
span (a contiguous run of pages) from a page allocator ... Should the page
allocator also be out of memory, TCMalloc then requests additional pages of
memory from the operating system."

Implements:

* per-length free lists for spans up to ``K_MAX_PAGES`` pages plus a large
  list, searched first-fit from the requested length upward;
* span splitting on allocation and buddy-style coalescing with free
  neighbours on deallocation;
* a two-level radix pagemap whose *timed* lookups emit the dependent loads
  (and TLB behaviour) that make non-sized ``free()`` expensive (Section 3.3:
  the address→size-class mapping "tends to cache poorly, especially in the
  TLB");
* heap growth through a modeled system call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloc.constants import (
    K_MAX_PAGES,
    K_MIN_SYSTEM_ALLOC_PAGES,
    K_PAGE_SHIFT,
    AllocatorConfig,
)
from repro.alloc.context import Emitter
from repro.alloc.span import Span, SpanSet, SpanState
from repro.sim.memory import VirtualAddressSpace
from repro.sim.uop import Tag

_PAGEMAP_LEAF_PAGES = 1 << 15
"""Pages covered by one pagemap leaf node."""


@dataclass
class PageHeapStats:
    spans_allocated: int = 0
    spans_freed: int = 0
    spans_split: int = 0
    spans_coalesced: int = 0
    system_allocations: int = 0
    bytes_from_system: int = 0
    spans_released: int = 0
    bytes_released: int = 0


@dataclass
class PageHeap:
    """Span allocator with first-fit free lists and coalescing."""

    address_space: VirtualAddressSpace
    config: AllocatorConfig = field(default_factory=AllocatorConfig)
    spans: SpanSet = field(default_factory=SpanSet)
    stats: PageHeapStats = field(default_factory=PageHeapStats)
    # free_lists[n] holds free spans of exactly n pages (n <= K_MAX_PAGES);
    # larger spans live in large_list.
    free_lists: dict[int, list[Span]] = field(default_factory=dict)
    large_list: list[Span] = field(default_factory=list)
    pagemap_root_addr: int = 0
    pagemap_leaf_base: int = 0
    _release_counter: int = 0

    def __post_init__(self) -> None:
        # Root node: one line; leaves: one word per page, spread across the
        # metadata region so distinct pages map to distinct lines/TLB pages.
        self.pagemap_root_addr = self.address_space.reserve_metadata(512)
        self.pagemap_leaf_base = self.address_space.reserve_metadata(1 << 24, align=4096)

    # -- pagemap ------------------------------------------------------------
    def span_of_addr(self, addr: int) -> Span | None:
        return self.spans.span_of_page(addr >> K_PAGE_SHIFT)

    def emit_pagemap_lookup(
        self, em: Emitter, addr: int, deps: tuple[int, ...] = (), tag: Tag = Tag.ADDRESSING
    ) -> tuple[Span | None, int]:
        """Timed radix lookup: root load, then a dependent leaf load whose
        address is spread by page number.  Returns ``(span, uop)``.

        Non-sized ``free()`` passes ``tag=Tag.SIZE_CLASS``: the pagemap walk
        *is* free's size-class computation (Section 3.3's "hash lookup from
        the address being freed to the size class"), and the limit study
        removes it accordingly."""
        page = addr >> K_PAGE_SHIFT
        shift = em.alu(deps=deps, tag=tag)
        root_word = self.pagemap_root_addr + ((page // _PAGEMAP_LEAF_PAGES) % 64) * 8
        root_uop = em.load_table(root_word, deps=(shift,), tag=tag)
        leaf_word = self.pagemap_leaf_base + (page % (1 << 21)) * 8
        leaf_uop = em.load_table(leaf_word, deps=(root_uop,), tag=tag)
        return self.spans.span_of_page(page), leaf_uop

    # -- span allocation ----------------------------------------------------
    def allocate_span(self, em: Emitter, num_pages: int, deps: tuple[int, ...] = ()) -> Span:
        """Return an IN_USE span of exactly ``num_pages`` pages, splitting a
        larger free span or growing the heap as needed."""
        if num_pages <= 0:
            raise ValueError("num_pages must be positive")
        span = self._search_free(em, num_pages, deps)
        em.note(("pm_grow", span is None))
        if span is None:
            self._grow_heap(em, num_pages, deps)
            span = self._search_free(em, num_pages, deps)
            if span is None:
                raise AssertionError("heap growth must satisfy the request")
        em.note(("pm_split", span.num_pages > num_pages))
        if span.num_pages > num_pages:
            leftover = span.split(num_pages)
            self.spans.register(leftover)
            self._push_free(leftover)
            self.stats.spans_split += 1
            # Splitting rewrites pagemap boundaries: two stores.
            em.store_word(self.pagemap_root_addr + 8, leftover.start_page, tag=Tag.SLOW_PATH)
        span.state = SpanState.IN_USE
        # Re-register boundaries after a possible split.
        self.spans.register(span)
        self.stats.spans_allocated += 1
        return span

    def free_span(self, em: Emitter, span: Span) -> None:
        """Return a span, coalescing with free neighbours (buddy-style merge
        of adjacent free runs)."""
        if span.state is not SpanState.IN_USE:
            raise ValueError("span is not in use")
        span.state = SpanState.ON_NORMAL_FREELIST
        span.size_class = 0
        span.objects_free = 0
        span.freelist_head = 0
        self.stats.spans_freed += 1

        # Coalesce with predecessor and successor if free.
        prev = self.spans.span_of_page(span.start_page - 1)
        if prev is not None and prev.state is SpanState.ON_NORMAL_FREELIST:
            self._remove_free(prev)
            self.spans.unregister(prev)
            span.start_page = prev.start_page
            span.num_pages += prev.num_pages
            self.stats.spans_coalesced += 1
        succ = self.spans.span_of_page(span.end_page)
        if succ is not None and succ.state is SpanState.ON_NORMAL_FREELIST:
            self._remove_free(succ)
            self.spans.unregister(succ)
            span.num_pages += succ.num_pages
            self.stats.spans_coalesced += 1
        self.spans.register(span)
        self._push_free(span)
        em.store_word(self.pagemap_root_addr + 16, span.start_page, tag=Tag.SLOW_PATH)
        self._maybe_release_to_os(em)

    def _maybe_release_to_os(self, em: Emitter) -> None:
        """TCMalloc's page-release scavenging: every ``release_rate`` span
        frees, return the largest free span to the OS (madvise).  Keeps
        long-running processes from hoarding memory, at the price of future
        system calls when the heap must grow again -- which is what puts
        Figure 1's page-allocator peak at 10^4+ cycles."""
        if not self.config.release_rate:
            return
        self._release_counter += 1
        if self._release_counter < self.config.release_rate:
            return
        self._release_counter = 0
        victim: Span | None = None
        if self.large_list:
            victim = max(self.large_list, key=lambda s: s.num_pages)
        else:
            for length in sorted(self.free_lists, reverse=True):
                if self.free_lists[length]:
                    victim = self.free_lists[length][-1]
                    break
        em.note(("pm_madvise", victim is not None))
        if victim is None:
            return
        self._remove_free(victim)
        self.spans.unregister(victim)
        self.stats.spans_released += 1
        self.stats.bytes_released += victim.length_bytes
        em.fixed(self.config.costs.madvise, tag=Tag.SLOW_PATH)

    # -- internals ------------------------------------------------------------
    def _search_free(self, em: Emitter, num_pages: int, deps: tuple[int, ...]) -> Span | None:
        probe = None
        probes = 0
        found: Span | None = None
        for length in range(num_pages, K_MAX_PAGES + 1):
            # Each probed list head is one load.
            probe = em.load_table(
                self.pagemap_root_addr + 24 + (length % 32) * 8,
                deps=deps if probe is None else (probe,),
                tag=Tag.SLOW_PATH,
            )
            probes += 1
            bucket = self.free_lists.get(length)
            if bucket:
                found = bucket.pop()
                break
        if found is None:
            for i, span in enumerate(self.large_list):
                if span.num_pages >= num_pages:
                    found = self.large_list.pop(i)
                    break
        # The probe count pins the dependent-load chain for the template.
        em.note(("pm_probes", probes))
        return found

    def _push_free(self, span: Span) -> None:
        if span.num_pages <= K_MAX_PAGES:
            self.free_lists.setdefault(span.num_pages, []).append(span)
        else:
            self.large_list.append(span)

    def _remove_free(self, span: Span) -> None:
        bucket = (
            self.free_lists.get(span.num_pages, [])
            if span.num_pages <= K_MAX_PAGES
            else self.large_list
        )
        if span in bucket:
            bucket.remove(span)

    def _grow_heap(self, em: Emitter, num_pages: int, deps: tuple[int, ...]) -> None:
        """Ask the OS for memory (a costly system call, Section 2)."""
        ask = max(num_pages, K_MIN_SYSTEM_ALLOC_PAGES)
        reservation = self.address_space.reserve_pages(ask)
        self.stats.system_allocations += 1
        self.stats.bytes_from_system += reservation.length
        em.fixed(self.config.costs.syscall, deps=deps, tag=Tag.SLOW_PATH)
        span = Span(start_page=reservation.start >> K_PAGE_SHIFT, num_pages=ask)
        self.spans.register(span)
        self._push_free(span)

    # -- introspection ----------------------------------------------------------
    def free_pages(self) -> int:
        total = sum(n * len(lst) for n, lst in self.free_lists.items())
        return total + sum(s.num_pages for s in self.large_list)

    def check_invariants(self) -> None:
        """Every free span is registered and non-overlapping (test hook)."""
        claimed: dict[int, Span] = {}
        for bucket in list(self.free_lists.values()) + [self.large_list]:
            for span in bucket:
                if span.state is not SpanState.ON_NORMAL_FREELIST:
                    raise AssertionError("in-use span on a free list")
                for page in range(span.start_page, span.end_page):
                    if page in claimed:
                        raise AssertionError(f"page {page} in two free spans")
                    claimed[page] = span

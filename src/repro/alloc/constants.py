"""Allocator-wide constants and configuration.

Values mirror gperftools (the open-source TCMalloc the paper used, revision
050f2d) and the figures quoted in the paper text: 8 KB pages, a 256 KB
small-allocation threshold, 88 size classes, a 2 MB thread-cache garbage
collection threshold, and "approx 64k transfers between thread and central
caches".
"""

from __future__ import annotations

from dataclasses import dataclass

# --- Size-class machinery (gperftools common.h) -------------------------
K_ALIGNMENT = 8
"""Baseline alignment; the class-index function works in units of this."""

K_MIN_ALIGN = 16
"""Minimum alignment of returned objects (gperftools default build)."""

K_PAGE_SHIFT = 13
K_PAGE_SIZE = 1 << K_PAGE_SHIFT  # 8 KB TCMalloc pages

K_MAX_SIZE = 256 * 1024
"""Small-allocation threshold; larger requests bypass thread caches."""

K_MAX_SMALL_SIZE = 1024
"""Below this, class indices step by 8 bytes; above, by 128 bytes."""

K_CLASS_ARRAY_SIZE = ((K_MAX_SIZE + 127 + (120 << 7)) >> 7) + 1
"""Entries in the size→class lookup array (2169; 'slightly above 2100')."""

K_DEFAULT_TRANSFER_OBJECTS = 32
"""Cap on objects moved between thread and central caches per transfer."""

K_MAX_DYNAMIC_FREE_LIST_LENGTH = 8192
"""Cap on a thread-cache free list's max_length (slow-start ceiling)."""

# --- Pool sizing ---------------------------------------------------------
K_MAX_THREAD_CACHE_SIZE = 2 * 1024 * 1024
"""Per-thread cache size that triggers a scavenge (2 MB per the paper)."""

K_MAX_PAGES = 128
"""Page heap keeps exact free lists for spans up to this many pages."""

K_MIN_SYSTEM_ALLOC_PAGES = 16
"""Pages requested from the OS at a time.  Real TCMalloc uses 1 MB (128
pages); we scale down to 128 KB so OS-boundary events occur at the trace
lengths this simulator runs (thousands, not millions, of calls)."""

# --- Sampling ------------------------------------------------------------
K_SAMPLE_PARAMETER = 512 * 1024
"""Mean bytes between sampled allocations (tcmalloc default 512 KB)."""


@dataclass(frozen=True)
class CostModel:
    """Cycle costs for events the micro-op model treats as fixed blocks.

    These price operations whose internals the paper does not evaluate
    (locks, system calls, trace capture); they position the slow-path peaks
    of Figure 1 at the right orders of magnitude (roughly 10^3 cycles for a
    central-list refill, 10^4+ for the page allocator).
    """

    lock_acquire: int = 150
    lock_release: int = 30
    lock_contention: int = 0
    syscall: int = 5000
    madvise: int = 2000
    stack_trace_capture: int = 800
    pmu_interrupt: int = 400


@dataclass(frozen=True)
class AllocatorConfig:
    """Tunable knobs for one allocator instance."""

    page_shift: int = K_PAGE_SHIFT
    max_size: int = K_MAX_SIZE
    max_thread_cache_size: int = K_MAX_THREAD_CACHE_SIZE
    sample_parameter: int = K_SAMPLE_PARAMETER
    sampling_enabled: bool = True
    release_rate: int = 4
    """Every this many span frees, one free span is returned to the OS
    (TCMalloc's page-release scavenging); 0 disables release."""
    costs: CostModel = CostModel()

    @property
    def page_size(self) -> int:
        return 1 << self.page_shift

"""Heap profiling from allocation samples.

Section 3.3: "Sampling is invaluable in a production setting for analyzing
memory usage and debugging memory leaks without having to stop, let alone
recompile, live jobs."  The samples themselves are only useful through the
*estimator* that reconstructs heap usage from them — each sampled allocation
of size ``s`` under a byte-countdown of period ``P`` represents roughly
``max(P, s)/s`` allocations, the standard tcmalloc heap-profile weighting.

This module builds that estimator and the fidelity check used by
``benchmarks/bench_sampling_fidelity.py``: the Mallacc PMU sampler must
produce heap profiles as accurate as the software countdown it replaces —
the accelerator may not degrade the observability feature it absorbs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.alloc.sampler import SampleRecord


@dataclass
class HeapProfile:
    """Estimated allocation totals by size, reconstructed from samples."""

    period: int
    estimated_bytes_by_size: dict[int, float] = field(default_factory=dict)

    @property
    def estimated_total_bytes(self) -> float:
        return sum(self.estimated_bytes_by_size.values())

    def top_sizes(self, k: int = 5) -> list[tuple[int, float]]:
        return sorted(
            self.estimated_bytes_by_size.items(), key=lambda kv: -kv[1]
        )[:k]


def build_profile(samples: list[SampleRecord], period: int) -> HeapProfile:
    """Reconstruct allocation volume from a sample stream.

    The byte-countdown samples an allocation of size ``s`` with probability
    ≈ ``min(1, s/P)``; inverting that weight de-biases the estimate (the
    tcmalloc ``AllocValue`` scaling).
    """
    if period <= 0:
        raise ValueError("period must be positive")
    estimated: dict[int, float] = defaultdict(float)
    for sample in samples:
        weight = max(1.0, period / max(sample.size, 1))
        estimated[sample.size] += weight * sample.size
    return HeapProfile(period=period, estimated_bytes_by_size=dict(estimated))


@dataclass(frozen=True)
class FidelityReport:
    """How well a reconstructed profile matches ground truth."""

    true_bytes: int
    estimated_bytes: float
    samples: int

    @property
    def relative_error(self) -> float:
        if not self.true_bytes:
            return 0.0
        return abs(self.estimated_bytes - self.true_bytes) / self.true_bytes


def fidelity(samples: list[SampleRecord], period: int, true_total_bytes: int) -> FidelityReport:
    """Compare a profile's estimate against the actual bytes allocated."""
    profile = build_profile(samples, period)
    return FidelityReport(
        true_bytes=true_total_bytes,
        estimated_bytes=profile.estimated_total_bytes,
        samples=len(samples),
    )

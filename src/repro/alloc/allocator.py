"""The TCMalloc facade: ``malloc``/``free``/``sized_free`` walking Figure 3.

Every call runs *functionally* (real pointers handed out and reclaimed, real
free lists in simulated memory) while emitting the micro-op trace of its
compiled x86 counterpart; scheduling the trace yields the call's cycle count.

The fast path matches the paper's anatomy (Section 3.3): roughly 40 micro-ops
— call overhead, the sampling countdown, the two-load size-class lookup, the
free-list address computation, the two-load pop, and metadata updates — and
costs 18-20 cycles when everything hits in L1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from time import perf_counter

from repro.alloc.central_cache import CentralFreeList
from repro.alloc.constants import K_PAGE_SHIFT, AllocatorConfig
from repro.alloc.context import Emitter, Machine
from repro.alloc.page_heap import PageHeap
from repro.alloc.sampler import Sampler
from repro.alloc.size_classes import SizeClassTable, class_index
from repro.alloc.thread_cache import ThreadCache
from repro.sim.engine import is_columnar
from repro.sim.memory import NULL
from repro.sim.trace_intern import TraceInterner
from repro.sim.uop import Tag, Trace


class Path(enum.Enum):
    """Which pool ultimately satisfied the request (Figure 1's peaks)."""

    FAST = "fast"  # thread-cache hit
    CENTRAL = "central"  # thread-cache miss, central-list hit
    PAGE_ALLOC = "page_alloc"  # central miss: span carved from the page heap
    LARGE = "large"  # > 256 KB, straight to spans
    FREE_FAST = "free_fast"  # push to thread cache, no overflow
    FREE_SLOW = "free_slow"  # push triggered a release/scavenge
    FREE_LARGE = "free_large"  # whole span returned


MALLOC_PATHS = frozenset({Path.FAST, Path.CENTRAL, Path.PAGE_ALLOC, Path.LARGE})
FREE_PATHS = frozenset({Path.FREE_FAST, Path.FREE_SLOW, Path.FREE_LARGE})

#: Emission sites eligible for template interning.  Fast paths are loop-free;
#: the refill slow paths contain data-dependent loops (span carving, batch
#: moves, free-list probes), but every loop count is now a structural token
#: (``carve``, ``tc_release``, ``pm_probes``, ...) so their shapes key
#: templates too — a workload's refill shapes repeat heavily (same size
#: class, same batch size, same carve count), which is what lets the fused
#: slow-path twins (:mod:`repro.alloc.slowpath`) intern instead of
#: materializing.  Only LARGE/FREE_LARGE still build ad hoc: whole-span
#: traffic is rare and its coalescing shapes genuinely don't repeat.
_INTERN_SITES = {
    ("malloc", Path.FAST): "malloc:fast",
    ("malloc", Path.CENTRAL): "malloc:central",
    ("malloc", Path.PAGE_ALLOC): "malloc:page",
    ("free", Path.FREE_FAST): "free:fast",
    ("free", Path.FREE_SLOW): "free:slow",
}


@dataclass
class SharedPools:
    """The process-wide pools threads share (Section 3.1's lower levels)."""

    table: SizeClassTable
    page_heap: PageHeap
    central_lists: list[CentralFreeList]


@dataclass
class CallRecord:
    """Outcome of one allocator call."""

    kind: str  # "malloc" or "free"
    size: int
    size_class: int
    path: Path
    cycles: int
    num_uops: int
    ptr: int
    clock: int
    """Machine clock when the call began."""
    sampled: bool = False
    ablated: dict[str, int] = field(default_factory=dict)
    """Cycle counts of this call with named uop-tag sets removed."""

    @property
    def is_malloc(self) -> bool:
        return self.kind == "malloc"

    @property
    def is_fast_path(self) -> bool:
        return self.path in (Path.FAST, Path.FREE_FAST)


class TCMalloc:
    """A single-threaded TCMalloc instance on a simulated machine.

    ``ablations`` maps a name to a set of :class:`Tag` values; each call is
    additionally scheduled with those uops removed (the paper's limit-study
    methodology) and the result stored in ``CallRecord.ablated``.
    """

    def __init__(
        self,
        machine: Machine | None = None,
        config: AllocatorConfig | None = None,
        ablations: dict[str, frozenset[Tag]] | None = None,
        shared: "SharedPools | None" = None,
        memoize_traces: bool | None = None,
        intern_traces: bool | None = None,
    ) -> None:
        self.machine = machine or Machine()
        self.config = config or AllocatorConfig()
        self.ablations = dict(ablations or {})
        if memoize_traces is not None:
            # Explicit override of the machine's trace-scheduling memoization
            # (None leaves the CoreConfig default in place).
            self.machine.timing.set_memoization(memoize_traces)
        if intern_traces is not None:
            # Explicit override of the machine's emission-side interning
            # (None leaves the REPRO_TRACE_INTERN default in place).
            if intern_traces and self.machine.interner is None:
                self.machine.interner = TraceInterner()
            elif not intern_traces:
                self.machine.interner = None
        if shared is not None:
            # Multithreaded mode: this instance is one thread's view over
            # pools owned by a MultiThreadAllocator.
            self.table = shared.table
            self.page_heap = shared.page_heap
            self.central_lists = shared.central_lists
        else:
            self.table = SizeClassTable.generate(self.machine.address_space)
            self.page_heap = PageHeap(self.machine.address_space, self.config)
            self.central_lists = [
                CentralFreeList(cl, self.table, self.page_heap, self.config)
                for cl in range(self.table.num_classes)
            ]
        self.thread_cache = ThreadCache(
            self.machine, self.table, self.central_lists, self.config
        )
        self.sampler = Sampler(self.machine, self.config)
        self.live: dict[int, tuple[int, int]] = {}
        """ptr -> (requested size, size class); class 0 marks large spans."""
        self.records: list[CallRecord] = []
        self.keep_records: bool = True
        self._fastpath = None
        self._slowpath = None
        if is_columnar():
            # Columnar engine: attach the fused priced twins of this
            # allocator's fast paths and refill slow paths (None for
            # unregistered subclasses).
            from repro.alloc.fastpath import fastpath_for
            from repro.alloc.slowpath import slowpath_for

            self._fastpath = fastpath_for(self)
            self._slowpath = slowpath_for(self)

    # ------------------------------------------------------------------ malloc
    def malloc(self, size: int) -> tuple[int, CallRecord]:
        """Allocate ``size`` bytes; returns ``(ptr, record)``."""
        fastpath = self._fastpath
        if fastpath is not None:
            out = fastpath.malloc(size)
            if out is not None:
                return out
        slowpath = self._slowpath
        if slowpath is not None:
            out = slowpath.malloc(size)
            if out is not None:
                return out
        if size <= 0:
            raise ValueError("size must be positive")
        clock0 = self.machine.clock
        em = self.machine.new_emitter()
        self._emit_prologue(em)

        sampled = self._emit_sampling_check(em, size)
        # PMU-based sampling (Mallacc) decides without emitting a branch, so
        # the decision must be a template token in its own right.
        em.note(("sampled", sampled))
        small = size <= self.config.max_size
        em.branch("malloc_is_small", taken=small, tag=Tag.ADDRESSING)

        populates_before = self.page_heap.stats.spans_allocated
        if small:
            lookup = self._emit_size_class_lookup(em, size)
            cl = lookup.size_class
            ptr, fast = self.thread_cache.allocate(em, cl, lookup.cls_uop, lookup.size_uop)
            if fast:
                path = Path.FAST
            elif self.page_heap.stats.spans_allocated > populates_before:
                path = Path.PAGE_ALLOC
            else:
                path = Path.CENTRAL
        else:
            prof = self.machine.profiler if em.touches_hierarchy else None
            t0 = perf_counter() if prof is not None else 0.0
            cl, alloc_size = 0, self._pages_for(size) << K_PAGE_SHIFT
            span = self.page_heap.allocate_span(em, self._pages_for(size))
            ptr = span.start_addr
            path = Path.LARGE
            if prof is not None:
                prof.add_stage("refill", perf_counter() - t0)
                prof.count("refill_entries")

        if sampled:
            self._record_sample(em, size)
        self._emit_epilogue(em)

        if ptr in self.live:
            raise AssertionError(f"allocator returned live pointer {ptr:#x}")
        self.live[ptr] = (size, cl)

        record = self._finish(em, "malloc", size, cl, path, ptr, clock0, sampled)
        return ptr, record

    # ------------------------------------------------------------- derived API
    def calloc(self, count: int, size: int) -> tuple[int, CallRecord]:
        """Zeroed array allocation: a malloc plus a line-bandwidth-limited
        memset of the rounded block."""
        if count <= 0 or size <= 0:
            raise ValueError("count and size must be positive")
        total = count * size
        ptr, record = self.malloc(total)
        record.cycles += self._bulk_copy_cycles(self._rounded(total))
        return ptr, record

    def realloc(self, ptr: int, new_size: int) -> tuple[int, CallRecord]:
        """C ``realloc``: in place when the size class doesn't change,
        otherwise allocate + copy + free (TCMalloc's strategy).

        Returns ``(new_ptr, record)`` where the record is the dominant call
        (the new allocation, or a cheap bookkeeping record when in place).
        """
        if ptr not in self.live:
            raise ValueError(f"realloc of unallocated pointer {ptr:#x}")
        if new_size <= 0:
            raise ValueError("new_size must be positive")
        old_size, old_cl = self.live[ptr]
        small = new_size <= self.config.max_size
        if small and old_cl != 0 and self.table.size_class_of(new_size) == old_cl:
            # Same class: the block already fits; only bookkeeping changes.
            self.live[ptr] = (new_size, old_cl)
            em = self.machine.new_emitter()
            self._emit_prologue(em)
            lookup = self._emit_size_class_lookup(em, new_size)
            em.branch("realloc_same_class", taken=True, deps=(lookup.cls_uop,))
            self._emit_epilogue(em)
            return ptr, self._finish(
                em, "malloc", new_size, old_cl, Path.FAST, ptr, self.machine.clock, False
            )
        new_ptr, record = self.malloc(new_size)
        record.cycles += self._bulk_copy_cycles(min(old_size, new_size))
        if old_cl == 0:
            self.free(ptr)
        else:
            self.sized_free(ptr, old_size)
        return new_ptr, record

    def memalign(self, alignment: int, size: int) -> tuple[int, CallRecord]:
        """posix_memalign: allocate with the given power-of-two alignment.

        Small alignments fall out of the size-class machinery (classes are
        at least 16-byte aligned, spans page-aligned); larger ones round the
        request up until a naturally aligned block arrives.
        """
        if alignment == 0 or alignment & (alignment - 1):
            raise ValueError("alignment must be a power of two")
        request = size
        while True:
            ptr, record = self.malloc(request)
            if ptr % alignment == 0:
                self.live[ptr] = (size, self.live[ptr][1])
                return ptr, record
            # Misaligned: undo and retry with a larger request.  (Real
            # TCMalloc computes the class directly; the retry models the
            # same rounding without duplicating the table walk.)
            entry_size, entry_cl = self.live[ptr]
            if entry_cl == 0:
                self.free(ptr)
            else:
                self.sized_free(ptr, entry_size)
            request = max(request * 2, alignment)
            if request > self.config.max_size * 4:
                raise MemoryError("alignment unsatisfiable")

    def _rounded(self, size: int) -> int:
        if size > self.config.max_size:
            return self._pages_for(size) << K_PAGE_SHIFT
        return self.table.alloc_size_of(self.table.size_class_of(size))

    def _bulk_copy_cycles(self, num_bytes: int) -> int:
        """memcpy/memset cost: 32 bytes per cycle (two AVX stores)."""
        return max(1, num_bytes // 32)

    # ------------------------------------------------------------------ free
    def free(self, ptr: int) -> CallRecord:
        """Deallocate via the address→size-class pagemap lookup (non-sized)."""
        return self._free_impl(ptr, sized_hint=None)

    def sized_free(self, ptr: int, size: int) -> CallRecord:
        """C++14 sized deallocation: the compiler supplies the size, so the
        class comes from the cheap Figure 5 lookup instead of the pagemap."""
        return self._free_impl(ptr, sized_hint=size)

    def _free_impl(self, ptr: int, sized_hint: int | None) -> CallRecord:
        fastpath = self._fastpath
        if fastpath is not None:
            record = fastpath.free(ptr, sized_hint)
            if record is not None:
                return record
        slowpath = self._slowpath
        if slowpath is not None:
            record = slowpath.free(ptr, sized_hint)
            if record is not None:
                return record
        if ptr not in self.live:
            raise ValueError(f"free of unallocated pointer {ptr:#x}")
        size, cl = self.live.pop(ptr)
        clock0 = self.machine.clock
        em = self.machine.new_emitter()
        self._emit_prologue(em)

        if cl == 0:
            # Large span: always through the pagemap.
            prof = self.machine.profiler if em.touches_hierarchy else None
            t0 = perf_counter() if prof is not None else 0.0
            span, uop = self.page_heap.emit_pagemap_lookup(em, ptr)
            if span is None:
                raise AssertionError("live large pointer must map to a span")
            self.page_heap.free_span(em, span)
            path = Path.FREE_LARGE
            if prof is not None:
                prof.add_stage("refill", perf_counter() - t0)
                prof.count("refill_entries")
        else:
            # Sized and non-sized frees emit different lookups but share the
            # fast path; no branch distinguishes them, so token it.
            em.note(("sized", sized_hint is not None))
            if sized_hint is not None:
                lookup = self._emit_size_class_lookup(em, sized_hint)
                lookup_uop = lookup.cls_uop
                if lookup.size_class != cl:
                    raise AssertionError("sized free hint maps to wrong class")
            else:
                _, lookup_uop = self.page_heap.emit_pagemap_lookup(
                    em, ptr, tag=Tag.SIZE_CLASS
                )
            fast = self.thread_cache.deallocate(em, cl, ptr, lookup_uop)
            path = Path.FREE_FAST if fast else Path.FREE_SLOW

        self._emit_epilogue(em)
        return self._finish(em, "free", size, cl, path, ptr, clock0, sampled=False)

    # ------------------------------------------------- functional fast-forward
    def fast_forward_malloc(self, size: int) -> tuple[int, int, str] | None:
        """Flat skip-mode malloc: the thread-cache fast path fused into one
        frame, with state transitions identical to running :meth:`malloc`
        under a :class:`~repro.alloc.context.FunctionalEmitter` — same
        memory words, free-list bookkeeping, sampler countdown, and branch
        predictor sites in the same order, none of the per-component calls.

        Returns ``(ptr, size_class, path_value)``; returns ``None`` when any
        slow-path condition holds (large request, sampling trigger, empty
        list) so the caller can fall back to :meth:`malloc` — every check
        precedes the first mutation, so the fallback observes untouched
        state.  Only meaningful during a skip stretch: nothing is priced and
        no cache/TLB state moves.
        """
        if size <= 0 or size > self.config.max_size:
            return None
        sampler = self.sampler
        sampling = self.config.sampling_enabled
        if sampling:
            remaining = sampler.bytes_until_sample - size
            if remaining <= 0:
                return None
        cl = self.table.class_array[class_index(size)]
        flist = self.thread_cache.lists[cl]
        if flist.length == 0:
            return None
        machine = self.machine
        mem = machine.memory
        predict = machine.predictor.predict
        if sampling:
            sampler.bytes_until_sample = remaining
            predict("sample_threshold", False)
            mem.write_word(sampler.counter_addr, remaining)
        predict("malloc_is_small", True)
        predict("tc_list_empty", False)
        # The Figure 7 pop, fused.
        header = flist.header_addr
        head = mem.read_word(header)
        next_ptr = mem.read_word(head)
        mem.write_word(header, next_ptr)
        flist._contents.discard(head)
        length = flist.length - 1
        flist.length = length
        if length < flist.low_water:
            flist.low_water = length
        # Length word, then the cache-size field (written pre-decrement,
        # exactly as ThreadCache.allocate orders it).
        mem.write_word(header + 8, length)
        tc = self.thread_cache
        mem.write_word(tc.lists[0].header_addr + 16, max(tc.size_bytes, 0))
        tc.size_bytes -= self.table.class_to_size[cl]
        live = self.live
        if head in live:
            raise AssertionError(f"allocator returned live pointer {head:#x}")
        live[head] = (size, cl)
        return head, cl, Path.FAST.value

    def fast_forward_free(
        self, ptr: int, sized_hint: int | None = None
    ) -> tuple[int, str] | None:
        """Flat skip-mode free (sized and non-sized collapse functionally;
        the hint only matters to the Mallacc override, where sized frees
        run the size lookup through the malloc cache).  Returns
        ``(size_class, path_value)`` or ``None`` to fall back — see
        :meth:`fast_forward_malloc` for the contract."""
        entry = self.live.get(ptr)
        if entry is None:
            raise ValueError(f"free of unallocated pointer {ptr:#x}")
        cl = entry[1]
        if cl == 0:
            return None  # large span: pagemap + span merge, full path
        tc = self.thread_cache
        flist = tc.lists[cl]
        if flist.length >= flist.max_length:
            return None  # push would overflow: ListTooLong release
        alloc_size = self.table.class_to_size[cl]
        if tc.size_bytes + alloc_size >= self.config.max_thread_cache_size:
            return None  # scavenge
        del self.live[ptr]
        mem = self.machine.memory
        contents = flist._contents
        if ptr in contents:
            raise ValueError(f"double free of {ptr:#x}")
        # The Figure 7 push, fused.
        header = flist.header_addr
        old_head = mem.read_word(header)
        mem.write_word(header, ptr)
        mem.write_word(ptr, old_head)
        contents.add(ptr)
        length = flist.length + 1
        flist.length = length
        mem.write_word(header + 8, length)
        tc.size_bytes += alloc_size
        self.machine.predictor.predict("tc_list_too_long", False)
        return cl, Path.FREE_FAST.value

    def skip_warm_lines(self, size_classes) -> list[int]:
        """Addresses an exact replay keeps hot across a fast-forwarded
        stretch: the free-list header and current head node of each recently
        active class (oldest first), the thread-cache footprint word, and
        the sampling countdown.  The sampled runner re-touches these after
        replaying deferred application traffic, restoring the metadata /
        app-line LRU interleaving a full replay would have left behind —
        without it the bulk app window evicts allocator metadata that every
        interleaved call would have refreshed."""
        mem = self.machine.memory
        lists = self.thread_cache.lists
        addrs: list[int] = []
        for cl in size_classes:
            flist = lists[cl]
            header = flist.header_addr
            addrs.append(header)
            head = mem.read_word(header)
            if head != NULL:
                addrs.append(head)
        addrs.append(lists[0].header_addr + 16)
        counter = self._sampling_counter_addr()
        if counter is not None:
            addrs.append(counter)
        return addrs

    def _sampling_counter_addr(self) -> int | None:
        """Memory address of the sampling countdown, if the fast path keeps
        one (Mallacc moves it into a PMU register and returns ``None``)."""
        if self.config.sampling_enabled:
            return self.sampler.counter_addr
        return None

    # ------------------------------------------------------------------ hooks
    def _emit_sampling_check(self, em: Emitter, size: int) -> bool:
        """Fast-path sampling work; Mallacc replaces this with a PMU count."""
        return self.sampler.emit_check(em, size)

    def _record_sample(self, em: Emitter, size: int) -> None:
        self.sampler.record_sample(em, size)

    def _emit_size_class_lookup(self, em: Emitter, size: int):
        """Size->class mapping; Mallacc replaces this with mcszlookup."""
        return self.table.emit_lookup(em, size)

    # ------------------------------------------------------------------ shared
    def _pages_for(self, size: int) -> int:
        return (size + (1 << K_PAGE_SHIFT) - 1) >> K_PAGE_SHIFT

    def _emit_prologue(self, em: Emitter) -> None:
        """Call overhead: saving registers, frame setup (~¼ of the fast
        path's residual cycles per Section 3.3).  These issue in parallel
        with the useful work — they consume slots, not latency."""
        if em.functional:
            return  # alu() is a no-op on every functional emitter
        for _ in range(6):
            em.alu(tag=Tag.CALL_OVERHEAD)

    def _emit_epilogue(self, em: Emitter) -> None:
        if em.functional:
            return
        for _ in range(5):
            em.alu(tag=Tag.CALL_OVERHEAD)

    def _finish(
        self,
        em: Emitter,
        kind: str,
        size: int,
        cl: int,
        path: Path,
        ptr: int,
        clock0: int,
        sampled: bool,
    ) -> CallRecord:
        if em.functional:
            # Functional fast-forward: allocator state advanced, nothing is
            # priced.  The record keeps path/size-class statistics flowing
            # (interval features, path counters) at zero cycles; the clock
            # moves only through the runner's application gaps, so detailed
            # intervals downstream see a consistently-shifted timebase.
            record = CallRecord(
                kind=kind,
                size=size,
                size_class=cl,
                path=path,
                cycles=0,
                num_uops=0,
                ptr=ptr,
                clock=clock0,
                sampled=sampled,
            )
            if self.keep_records:
                self.records.append(record)
            self._post_schedule(None, None)
            return record
        site = _INTERN_SITES.get((kind, path))
        prof = self.machine.profiler
        ablated: dict[str, int] = {}
        if prof is None:
            trace = em.build(intern_site=site)
            result = self.machine.timing.run(trace)
            for name, tags in self.ablations.items():
                ablated[name] = self.machine.timing.run_ablated(trace, tags).cycles
        else:
            t0 = perf_counter()
            trace = em.build(intern_site=site)
            t1 = perf_counter()
            result = self.machine.timing.run(trace)
            for name, tags in self.ablations.items():
                ablated[name] = self.machine.timing.run_ablated(trace, tags).cycles
            t2 = perf_counter()
            prof.add_stage("build", t1 - t0)
            prof.add_stage("schedule", t2 - t1)
            prof.count("calls")
            prof.count("uops", len(trace))
        record = CallRecord(
            kind=kind,
            size=size,
            size_class=cl,
            path=path,
            cycles=result.cycles,
            num_uops=len(trace),
            ptr=ptr,
            clock=clock0,
            sampled=sampled,
            ablated=ablated,
        )
        self.machine.advance(result.cycles)
        if self.keep_records:
            self.records.append(record)
        self._post_schedule(trace, result)
        return record

    def _post_schedule(self, trace: Trace | None, result) -> None:
        """Hook for subclasses (Mallacc resolves prefetch arrival here).
        Called with ``(None, None)`` after a functional fast-forward step."""

    # ------------------------------------------------------------------ checks
    def check_conservation(self) -> None:
        """No pointer is simultaneously live and on a free list; cached and
        central object counts are self-consistent (test hook)."""
        for cl in range(1, self.table.num_classes):
            flist = self.thread_cache.lists[cl]
            for ptr in flist.iter_blocks():
                if ptr in self.live:
                    raise AssertionError(f"{ptr:#x} live and free (class {cl})")
        self.page_heap.check_invariants()

    @property
    def live_bytes(self) -> int:
        return sum(size for size, _ in self.live.values())

    @property
    def trace_cache_stats(self):
        """Trace-scheduling memoization stats of this core, or ``None`` when
        memoization is disabled."""
        return self.machine.timing.cache_stats

"""Fused priced twins of the interned allocator fast paths (columnar engine).

Under the reference engine every allocator call walks the emission stack:
``TCMalloc.malloc`` calls into the sampler, the size-class table, the thread
cache and the free list, each of which drives an :class:`~repro.alloc.context
.Emitter` one micro-op at a time.  Profiling the columnar engine shows that
~90% of replay wall time is this ceremony — context-manager wrappers, token
appends, per-uop ``TraceBuilder`` method calls — while the *outputs* of a
fast-path call are tiny: a token tuple, a latency tuple, and a handful of
state transitions.

This module fuses each fast-path shape into straight-line code (a *priced
twin* of the emitting path): the exact same primitive sequence — simulated
memory reads/writes, cache-hierarchy demand accesses, TLB walks, branch
predictions, malloc-cache operations — executes in emitter order, assembling
the latency tuple directly, and the result is interned via
``interner.intern(site, tokens, latencies, materialize)``.  ``materialize``
rebuilds the full :class:`~repro.sim.uop.Trace` from a static structure
table only when the interner misses, so the steady state allocates no uops
at all.  Cycle counts, runner statistics, cache/TLB/predictor state and
intern/trace-cache counters are byte-identical to the reference path; the
differential grid in ``tests/integration/test_hot_path_differential.py``
holds both engines to that.

Twins activate only when the columnar engine is selected at allocator
construction time and the machine interns traces; they handle exactly the
fast-path shapes (``malloc:fast`` / ``free:fast``) and return ``None`` to
fall back to the ordinary emitting path on *any* slow-path condition.  Every
fallback check is a pure read performed before the first mutation, so the
reference implementation then runs from untouched state — including error
paths, which raise at the same point with the same message.

Value-discarding loads (the sampling countdown read, the metadata length
read) skip the pure ``memory.read_word`` call but still pay the hierarchy
and TLB access, matching what the priced trace observes.

Registration is by exact allocator type (:func:`register_fastpath` /
:func:`fastpath_for`): subclasses that override emission hooks do not
inherit a twin unless they register their own.
"""

from __future__ import annotations

from time import perf_counter

from repro.alloc.page_heap import _PAGEMAP_LEAF_PAGES, K_PAGE_SHIFT
from repro.alloc.size_classes import class_index
from repro.sim.columns import StructBuilder
from repro.sim.memory import NULL
from repro.sim.uop import Tag

# --------------------------------------------------------------------------
# Structure tables live in repro.sim.columns (shared with the slow-path
# twins, which compile them lazily from token streams).  Fast-path shapes
# are enumerable, so this module builds its structures eagerly below.

_StructBuilder = StructBuilder


# Address-slot layout for malloc structures:
#   0 = sampling counter, 1 = class-array word, 2 = class-to-size word,
#   3 = free-list header, 4 = popped head, 5 = length word, 6 = size field,
#   7 = prefetched new head (Mallacc only).
# For free structures:
#   0 = class-array word / pagemap root word, 1 = class-to-size word /
#   pagemap leaf word, 2 = free-list header, 3 = freed pointer,
#   4 = length word.


def _build_malloc_struct(sampling: bool) -> tuple:
    b = _StructBuilder()
    for _ in range(6):
        b.alu(tag=Tag.CALL_OVERHEAD)
    if sampling:
        counter = b.load(0, tag=Tag.SAMPLING)
        sub = b.alu((counter,), Tag.SAMPLING)
        b.branch((sub,), Tag.SAMPLING)
        b.store(0, (sub,), Tag.SAMPLING)
    b.branch(tag=Tag.ADDRESSING)  # malloc_is_small
    add = b.alu(tag=Tag.SIZE_CLASS)
    shift = b.alu((add,), Tag.SIZE_CLASS)
    cls_uop = b.load(1, (shift,), Tag.SIZE_CLASS)
    size_uop = b.load(2, (cls_uop,), Tag.SIZE_CLASS)
    addr_uop = b.alu((cls_uop,), Tag.ADDRESSING)
    b.branch((addr_uop,), Tag.ADDRESSING)  # tc_list_empty
    head_uop = b.load(3, (addr_uop,), Tag.PUSH_POP)
    next_uop = b.load(4, (head_uop,), Tag.PUSH_POP)
    b.store(3, (next_uop,), Tag.PUSH_POP)
    meta = (addr_uop, size_uop)
    len_uop = b.load(5, meta, Tag.METADATA)
    upd = b.alu((len_uop,), Tag.METADATA)
    b.store(5, (upd,), Tag.METADATA)
    sz_uop = b.load(6, meta, Tag.METADATA)
    sz_upd = b.alu((sz_uop,), Tag.METADATA)
    b.store(6, (sz_upd,), Tag.METADATA)
    for _ in range(5):
        b.alu(tag=Tag.CALL_OVERHEAD)
    return b.done()


def _emit_free_lookup(b: _StructBuilder, sized: bool) -> int:
    """Size-class lookup (sized) or pagemap walk (non-sized); returns the
    uop producing the class, which the list-address lea depends on."""
    if sized:
        add = b.alu(tag=Tag.SIZE_CLASS)
        shift = b.alu((add,), Tag.SIZE_CLASS)
        cls_uop = b.load(0, (shift,), Tag.SIZE_CLASS)
        b.load(1, (cls_uop,), Tag.SIZE_CLASS)
        return cls_uop
    shift = b.alu(tag=Tag.SIZE_CLASS)
    root = b.load(0, (shift,), Tag.SIZE_CLASS)
    return b.load(1, (root,), Tag.SIZE_CLASS)


def _build_free_struct(sized: bool) -> tuple:
    b = _StructBuilder()
    for _ in range(6):
        b.alu(tag=Tag.CALL_OVERHEAD)
    lookup_uop = _emit_free_lookup(b, sized)
    addr_uop = b.alu((lookup_uop,), Tag.ADDRESSING)
    head_uop = b.load(2, (addr_uop,), Tag.PUSH_POP)
    b.store(2, (head_uop,), Tag.PUSH_POP)
    b.store(3, (head_uop,), Tag.PUSH_POP)
    len_uop = b.load(4, (addr_uop,), Tag.METADATA)
    upd = b.alu((len_uop,), Tag.METADATA)
    b.store(4, (upd,), Tag.METADATA)
    b.branch((addr_uop,), Tag.ADDRESSING)  # tc_list_too_long
    for _ in range(5):
        b.alu(tag=Tag.CALL_OVERHEAD)
    return b.done()


def _build_mallacc_malloc_struct(
    sz_hit: bool, hd_hit: bool, head_only: bool, prefetch: bool
) -> tuple:
    b = _StructBuilder()
    for _ in range(6):
        b.alu(tag=Tag.CALL_OVERHEAD)
    b.branch(tag=Tag.ADDRESSING)  # malloc_is_small
    sz = b.mallacc()  # mcszlookup
    b.branch((sz,), Tag.ADDRESSING)  # mcsz_hit
    if sz_hit:
        cls_uop = size_uop = sz
    else:
        add = b.alu(tag=Tag.SIZE_CLASS)
        shift = b.alu((add,), Tag.SIZE_CLASS)
        cls_uop = b.load(1, (shift,), Tag.SIZE_CLASS)
        size_uop = b.load(2, (cls_uop,), Tag.SIZE_CLASS)
        b.mallacc((size_uop,))  # mcszupdate
    addr_uop = b.alu((cls_uop,), Tag.ADDRESSING)
    b.branch((addr_uop,), Tag.ADDRESSING)  # tc_list_empty
    pop_uop = b.mallacc((addr_uop,))  # mchdpop (order register was clear)
    b.branch((pop_uop,), Tag.ADDRESSING)  # mchd_hit
    if hd_hit:
        result_uop = pop_uop
        if head_only:
            result_uop = b.load(4, (pop_uop,), Tag.PUSH_POP)
        b.store(3, (result_uop,), Tag.PUSH_POP)
    else:
        head_uop = b.load(3, (pop_uop, addr_uop), Tag.PUSH_POP)
        next_uop = b.load(4, (head_uop,), Tag.PUSH_POP)
        b.store(3, (next_uop,), Tag.PUSH_POP)
    if prefetch:
        b.prefetch(7)  # mcnxtprefetch (architecturally ungated)
    meta = (addr_uop, size_uop)
    len_uop = b.load(5, meta, Tag.METADATA)
    upd = b.alu((len_uop,), Tag.METADATA)
    b.store(5, (upd,), Tag.METADATA)
    sz_load = b.load(6, meta, Tag.METADATA)
    sz_upd = b.alu((sz_load,), Tag.METADATA)
    b.store(6, (sz_upd,), Tag.METADATA)
    for _ in range(5):
        b.alu(tag=Tag.CALL_OVERHEAD)
    return b.done()


def _build_mallacc_free_struct(sized: bool, sz_hit: bool, push_hit: bool) -> tuple:
    b = _StructBuilder()
    for _ in range(6):
        b.alu(tag=Tag.CALL_OVERHEAD)
    if sized:
        sz = b.mallacc()  # mcszlookup
        b.branch((sz,), Tag.ADDRESSING)  # mcsz_hit
        if sz_hit:
            lookup_uop = sz
        else:
            add = b.alu(tag=Tag.SIZE_CLASS)
            shift = b.alu((add,), Tag.SIZE_CLASS)
            lookup_uop = b.load(0, (shift,), Tag.SIZE_CLASS)
            size_uop = b.load(1, (lookup_uop,), Tag.SIZE_CLASS)
            b.mallacc((size_uop,))  # mcszupdate
    else:
        lookup_uop = _emit_free_lookup(b, sized=False)
    addr_uop = b.alu((lookup_uop,), Tag.ADDRESSING)
    push_uop = b.mallacc((addr_uop,))  # mchdpush
    if push_hit:
        b.store(2, (push_uop,), Tag.PUSH_POP)
        b.store(3, (push_uop,), Tag.PUSH_POP)
    else:
        head_uop = b.load(2, (push_uop, addr_uop), Tag.PUSH_POP)
        b.store(2, (head_uop,), Tag.PUSH_POP)
        b.store(3, (head_uop,), Tag.PUSH_POP)
    len_uop = b.load(4, (addr_uop,), Tag.METADATA)
    upd = b.alu((len_uop,), Tag.METADATA)
    b.store(4, (upd,), Tag.METADATA)
    b.branch((addr_uop,), Tag.ADDRESSING)  # tc_list_too_long
    for _ in range(5):
        b.alu(tag=Tag.CALL_OVERHEAD)
    return b.done()


_MALLOC_STRUCT = {s: _build_malloc_struct(s) for s in (False, True)}
_FREE_STRUCT = {s: _build_free_struct(s) for s in (False, True)}
_MALLACC_MALLOC_STRUCT: dict[tuple, tuple] = {}
_MALLACC_FREE_STRUCT: dict[tuple, tuple] = {}

_TOK_MALLOC_SAMPLING = (
    ("sample_threshold", False),
    ("sampled", False),
    ("malloc_is_small", True),
    ("tc_list_empty", False),
)
_TOK_MALLOC_PLAIN = _TOK_MALLOC_SAMPLING[1:]


def _mallacc_malloc_struct(flags: tuple) -> tuple:
    struct = _MALLACC_MALLOC_STRUCT.get(flags)
    if struct is None:
        struct = _MALLACC_MALLOC_STRUCT[flags] = _build_mallacc_malloc_struct(*flags)
    return struct


def _mallacc_free_struct(flags: tuple) -> tuple:
    struct = _MALLACC_FREE_STRUCT.get(flags)
    if struct is None:
        struct = _MALLACC_FREE_STRUCT[flags] = _build_mallacc_free_struct(*flags)
    return struct


# --------------------------------------------------------------------------
# The twins.


class TCMallocFastPath:
    """Fused twin of the software fast paths (baseline TCMalloc)."""

    __slots__ = ("alloc",)

    def __init__(self, alloc) -> None:
        self.alloc = alloc

    # -- shared guards ------------------------------------------------------
    def _machine(self):
        m = self.alloc.machine
        if m.warming is not None or m.interner is None:
            return None
        return m

    # -- malloc -------------------------------------------------------------
    def malloc(self, size: int):
        a = self.alloc
        m = self._machine()
        if m is None:
            return None
        config = a.config
        if size <= 0 or size > config.max_size:
            return None
        sampling = config.sampling_enabled
        sampler = a.sampler
        if sampling and sampler.bytes_until_sample - size <= 0:
            return None
        table = a.table
        cl = table.class_array[class_index(size)]
        tc = a.thread_cache
        flist = tc.lists[cl]
        if flist.length == 0:
            return None

        # All slow-path conditions cleared: commit.  From here the primitive
        # sequence mirrors the emitting path exactly.
        prof = m.profiler
        clock0 = m.clock
        hierarchy = m.hierarchy
        h_read = hierarchy.demand_access
        h_write = h_read if hierarchy._fast_demand else hierarchy._access_write
        tlb = m.tlb.access
        memory = m.memory
        mem_read = memory.read_word
        mem_write = memory.write_word
        predict = m.predictor.predict

        if sampling:
            counter = sampler.counter_addr
            lat_counter = h_read(counter) + tlb(counter)
            remaining = sampler.bytes_until_sample - size
            sampler.bytes_until_sample = remaining
            p_sample = predict("sample_threshold", False)
            mem_write(counter, remaining if remaining > 0 else 0)
            h_write(counter)
            tlb(counter)
        else:
            counter = 0
        p_small = predict("malloc_is_small", True)

        array_word = table.class_array_addr + ((class_index(size) >> 3) << 3)
        lat_array = h_read(array_word) + tlb(array_word)
        size_word = table.class_to_size_addr + (cl << 3)
        lat_size = h_read(size_word) + tlb(size_word)

        p_empty = predict("tc_list_empty", False)
        header = flist.header_addr
        lat_header = h_read(header) + tlb(header)
        head = mem_read(header)
        lat_head = h_read(head) + tlb(head)
        next_ptr = mem_read(head)
        mem_write(header, next_ptr)
        h_write(header)
        tlb(header)
        flist._contents.discard(head)
        length = flist.length - 1
        flist.length = length
        if length < flist.low_water:
            flist.low_water = length

        length_addr = header + 8
        lat_len = h_read(length_addr) + tlb(length_addr)
        mem_write(length_addr, length)
        h_write(length_addr)
        tlb(length_addr)
        size_field = tc.lists[0].header_addr + 16
        lat_field = h_read(size_field) + tlb(size_field)
        size_bytes = tc.size_bytes
        mem_write(size_field, size_bytes if size_bytes > 0 else 0)
        h_write(size_field)
        tlb(size_field)
        tc.size_bytes = size_bytes - table.class_to_size[cl]

        live = a.live
        if head in live:
            raise AssertionError(f"allocator returned live pointer {head:#x}")
        live[head] = (size, cl)

        if sampling:
            lats = (
                1, 1, 1, 1, 1, 1,
                lat_counter, 1, 1 + p_sample, 1,
                1 + p_small,
                1, 1, lat_array, lat_size,
                1, 1 + p_empty,
                lat_header, lat_head, 1,
                lat_len, 1, 1, lat_field, 1, 1,
                1, 1, 1, 1, 1,
            )
            tokens = _TOK_MALLOC_SAMPLING
        else:
            lats = (
                1, 1, 1, 1, 1, 1,
                1 + p_small,
                1, 1, lat_array, lat_size,
                1, 1 + p_empty,
                lat_header, lat_head, 1,
                lat_len, 1, 1, lat_field, 1, 1,
                1, 1, 1, 1, 1,
            )
            tokens = _TOK_MALLOC_PLAIN
        struct = _MALLOC_STRUCT[sampling]
        addrs = (counter, array_word, size_word, header, head, length_addr, size_field)
        record = _finish(
            a, m, prof, "malloc:fast", tokens, lats, struct, addrs,
            kind="malloc", size=size, cl=cl, path=_PATH_FAST, ptr=head,
            clock0=clock0,
        )
        return head, record

    # -- free ---------------------------------------------------------------
    def free(self, ptr: int, sized_hint: int | None):
        a = self.alloc
        m = self._machine()
        if m is None:
            return None
        entry = a.live.get(ptr)
        if entry is None:
            return None
        size, cl = entry
        if cl == 0:
            return None
        config = a.config
        table = a.table
        if sized_hint is not None:
            if sized_hint <= 0 or sized_hint > config.max_size:
                return None
            if table.class_array[class_index(sized_hint)] != cl:
                return None
        tc = a.thread_cache
        flist = tc.lists[cl]
        if flist.length >= flist.max_length:
            return None
        alloc_size = table.class_to_size[cl]
        if tc.size_bytes + alloc_size >= config.max_thread_cache_size:
            return None
        if ptr in flist._contents:
            return None

        prof = m.profiler
        clock0 = m.clock
        hierarchy = m.hierarchy
        h_read = hierarchy.demand_access
        h_write = h_read if hierarchy._fast_demand else hierarchy._access_write
        tlb = m.tlb.access
        memory = m.memory
        mem_read = memory.read_word
        mem_write = memory.write_word

        del a.live[ptr]
        sized = sized_hint is not None
        if sized:
            word0 = table.class_array_addr + ((class_index(sized_hint) >> 3) << 3)
            word1 = table.class_to_size_addr + (cl << 3)
        else:
            word0, word1 = _pagemap_words(a.page_heap, ptr)
        lat_w0 = h_read(word0) + tlb(word0)
        lat_w1 = h_read(word1) + tlb(word1)

        header = flist.header_addr
        lat_header = h_read(header) + tlb(header)
        old_head = mem_read(header)
        mem_write(header, ptr)
        h_write(header)
        tlb(header)
        mem_write(ptr, old_head)
        h_write(ptr)
        tlb(ptr)
        flist._contents.add(ptr)
        length = flist.length + 1
        flist.length = length

        length_addr = header + 8
        lat_len = h_read(length_addr) + tlb(length_addr)
        mem_write(length_addr, length)
        h_write(length_addr)
        tlb(length_addr)
        tc.size_bytes += alloc_size
        p_long = m.predictor.predict("tc_list_too_long", False)

        lats = (
            1, 1, 1, 1, 1, 1,
            *((1, 1, lat_w0, lat_w1) if sized else (1, lat_w0, lat_w1)),
            1,
            lat_header, 1, 1,
            lat_len, 1, 1,
            1 + p_long,
            1, 1, 1, 1, 1,
        )
        tokens = (("sized", sized), ("tc_list_too_long", False))
        struct = _FREE_STRUCT[sized]
        addrs = (word0, word1, header, ptr, length_addr)
        return _finish(
            a, m, prof, "free:fast", tokens, lats, struct, addrs,
            kind="free", size=size, cl=cl, path=_PATH_FREE_FAST, ptr=ptr,
            clock0=clock0,
        )


class MallaccFastPath(TCMallocFastPath):
    """Fused twin of the Mallacc-accelerated fast paths.

    The malloc-cache operations (``szlookup``/``szupdate``/``hdpop``/
    ``hdpush``/``nxtprefetch``) run against the real :class:`~repro.core
    .malloc_cache.MallocCache`, so hit rates, LRU state and blocking stalls
    are identical to the emitting path.  ``szlookup`` alone is replicated
    inline (same scan order) so its entry can be sanity-checked *before* the
    stats/LRU mutation — an inconsistent entry falls back to the reference
    path, which raises at its usual point.
    """

    __slots__ = ()

    def malloc(self, size: int):
        a = self.alloc
        m = self._machine()
        if m is None:
            return None
        config = a.config
        if size <= 0 or size > config.max_size:
            return None
        pmu = a.pmu
        sampling = config.sampling_enabled
        if sampling and pmu.accumulated + size >= pmu.threshold:
            return None
        table = a.table
        cl = table.class_array[class_index(size)]
        tc = a.thread_cache
        flist = tc.lists[cl]
        if flist.length == 0:
            return None
        isa = a.isa
        cache = isa.cache
        alloc_size = table.class_to_size[cl]
        sentry = _sz_scan(cache, size)
        if sentry is not None and (
            sentry.size_class != cl or sentry.alloc_size != alloc_size
        ):
            return None

        prof = m.profiler
        clock0 = m.clock
        hierarchy = m.hierarchy
        h_read = hierarchy.demand_access
        h_write = h_read if hierarchy._fast_demand else hierarchy._access_write
        tlb = m.tlb.access
        memory = m.memory
        mem_read = memory.read_word
        mem_write = memory.write_word
        predict = m.predictor.predict

        if sampling:
            pmu.accumulated += size
        p_small = predict("malloc_is_small", True)
        sz_hit = sentry is not None
        _sz_commit(cache, sentry)
        lats = [1, 1, 1, 1, 1, 1, 1 + p_small, cache.config.lookup_latency]
        lats.append(1 + predict("mcsz_hit", not sz_hit))
        array_word = size_word = 0
        if not sz_hit:
            array_word = table.class_array_addr + ((class_index(size) >> 3) << 3)
            size_word = table.class_to_size_addr + (cl << 3)
            lats += [
                1, 1,
                h_read(array_word) + tlb(array_word),
                h_read(size_word) + tlb(size_word),
                1,
            ]
            cache.szupdate(size, alloc_size, cl)
        lats.append(1)  # list-address lea
        lats.append(1 + predict("tc_list_empty", False))

        pentry, head, next_ptr, stall = cache.hdpop(cl, clock0)
        pop_uop = len(lats)
        lats.append(cache.config.list_op_latency + stall)
        hd_hit = pentry is not None
        lats.append(1 + predict("mchd_hit", not hd_hit))
        header = flist.header_addr
        head_only = False
        if hd_hit:
            head_only = next_ptr == NULL and flist.length > 1
            if head_only:
                lats.append(h_read(head) + tlb(head))
                next_ptr = mem_read(head)
            real_head = mem_read(header)
            if real_head != head:
                raise AssertionError(
                    f"malloc cache head {head:#x} diverged from list head {real_head:#x}"
                )
            if mem_read(head) != next_ptr:
                raise AssertionError("malloc cache next diverged from list")
            mem_write(header, next_ptr)
            h_write(header)
            tlb(header)
            lats.append(1)
        else:
            lats.append(h_read(header) + tlb(header))
            head = mem_read(header)
            lats.append(h_read(head) + tlb(head))
            next_ptr = mem_read(head)
            mem_write(header, next_ptr)
            h_write(header)
            tlb(header)
            lats.append(1)
        flist._contents.discard(head)
        length = flist.length - 1
        flist.length = length
        if length < flist.low_water:
            flist.low_water = length

        new_head = mem_read(header)
        do_prefetch = new_head != NULL
        if do_prefetch:
            head_next = mem_read(new_head)
            mem_latency = hierarchy.prefetch(new_head)
            prefetch_uop = len(lats)
            lats.append(1)
            isa._order_uop = prefetch_uop
            issue_estimate = prefetch_uop // m.timing.config.issue_width
            cache.nxtprefetch(cl, new_head, head_next, clock0 + issue_estimate + mem_latency)
        else:
            isa._order_uop = pop_uop

        length_addr = header + 8
        lats.append(h_read(length_addr) + tlb(length_addr))
        mem_write(length_addr, length)
        h_write(length_addr)
        tlb(length_addr)
        lats += [1, 1]
        size_field = tc.lists[0].header_addr + 16
        lats.append(h_read(size_field) + tlb(size_field))
        size_bytes = tc.size_bytes
        mem_write(size_field, size_bytes if size_bytes > 0 else 0)
        h_write(size_field)
        tlb(size_field)
        lats += [1, 1]
        tc.size_bytes = size_bytes - alloc_size
        lats += [1, 1, 1, 1, 1]

        live = a.live
        if head in live:
            raise AssertionError(f"allocator returned live pointer {head:#x}")
        live[head] = (size, cl)

        tokens = [
            ("sampled", False),
            ("malloc_is_small", True),
            ("mcsz_hit", not sz_hit),
            ("tc_list_empty", False),
            ("mchd_hit", not hd_hit),
        ]
        if hd_hit:
            tokens.insert(5, ("mchd_head_only", head_only))
        tokens.append(("nxtprefetch", do_prefetch))
        struct = _mallacc_malloc_struct((sz_hit, hd_hit, head_only, do_prefetch))
        addrs = (0, array_word, size_word, header, head, length_addr, size_field, new_head)
        record = _finish(
            a, m, prof, "malloc:fast", tuple(tokens), tuple(lats), struct, addrs,
            kind="malloc", size=size, cl=cl, path=_PATH_FAST, ptr=head,
            clock0=clock0,
        )
        return head, record

    def free(self, ptr: int, sized_hint: int | None):
        a = self.alloc
        m = self._machine()
        if m is None:
            return None
        entry = a.live.get(ptr)
        if entry is None:
            return None
        size, cl = entry
        if cl == 0:
            return None
        config = a.config
        table = a.table
        isa = a.isa
        cache = isa.cache
        sized = sized_hint is not None
        sentry = None
        if sized:
            if sized_hint <= 0 or sized_hint > config.max_size:
                return None
            if table.class_array[class_index(sized_hint)] != cl:
                return None
            sentry = _sz_scan(cache, sized_hint)
            if sentry is not None and sentry.size_class != cl:
                return None
        tc = a.thread_cache
        flist = tc.lists[cl]
        if flist.length >= flist.max_length:
            return None
        alloc_size = table.class_to_size[cl]
        if tc.size_bytes + alloc_size >= config.max_thread_cache_size:
            return None
        if ptr in flist._contents:
            return None

        prof = m.profiler
        clock0 = m.clock
        hierarchy = m.hierarchy
        h_read = hierarchy.demand_access
        h_write = h_read if hierarchy._fast_demand else hierarchy._access_write
        tlb = m.tlb.access
        memory = m.memory
        mem_read = memory.read_word
        mem_write = memory.write_word
        predict = m.predictor.predict

        del a.live[ptr]
        lats = [1, 1, 1, 1, 1, 1]
        word0 = word1 = 0
        sz_hit = False
        if sized:
            sz_hit = sentry is not None
            _sz_commit(cache, sentry)
            lats.append(cache.config.lookup_latency)
            lats.append(1 + predict("mcsz_hit", not sz_hit))
            if not sz_hit:
                word0 = table.class_array_addr + ((class_index(sized_hint) >> 3) << 3)
                word1 = table.class_to_size_addr + (cl << 3)
                lats += [
                    1, 1,
                    h_read(word0) + tlb(word0),
                    h_read(word1) + tlb(word1),
                    1,
                ]
                cache.szupdate(sized_hint, alloc_size, cl)
        else:
            word0, word1 = _pagemap_words(a.page_heap, ptr)
            lats += [1, h_read(word0) + tlb(word0), h_read(word1) + tlb(word1)]
        lats.append(1)  # list-address lea

        push_hit, old_head, stall = cache.hdpush(cl, ptr, clock0)
        push_uop = len(lats)
        lats.append(cache.config.list_op_latency + stall)
        isa._order_uop = push_uop
        header = flist.header_addr
        if push_hit:
            real_head = mem_read(header)
            if real_head != old_head:
                raise AssertionError(
                    f"malloc cache head {old_head:#x} diverged from list head {real_head:#x}"
                )
        else:
            lats.append(h_read(header) + tlb(header))
            old_head = mem_read(header)
        mem_write(header, ptr)
        h_write(header)
        tlb(header)
        lats.append(1)
        mem_write(ptr, old_head)
        h_write(ptr)
        tlb(ptr)
        lats.append(1)
        flist._contents.add(ptr)
        length = flist.length + 1
        flist.length = length

        length_addr = header + 8
        lats.append(h_read(length_addr) + tlb(length_addr))
        mem_write(length_addr, length)
        h_write(length_addr)
        tlb(length_addr)
        lats += [1, 1]
        tc.size_bytes += alloc_size
        lats.append(1 + predict("tc_list_too_long", False))
        lats += [1, 1, 1, 1, 1]

        tokens = [("sized", sized)]
        if sized:
            tokens.append(("mcsz_hit", not sz_hit))
        tokens.append(("mchdpush_hit", push_hit))
        tokens.append(("tc_list_too_long", False))
        struct = _mallacc_free_struct((sized, sz_hit, push_hit))
        addrs = (word0, word1, header, ptr, length_addr)
        return _finish(
            a, m, prof, "free:fast", tuple(tokens), tuple(lats), struct, addrs,
            kind="free", size=size, cl=cl, path=_PATH_FREE_FAST, ptr=ptr,
            clock0=clock0,
        )


# --------------------------------------------------------------------------
# Shared tail and helpers.


def _finish(a, m, prof, site, tokens, lats, struct, addrs, *, kind, size, cl,
            path, ptr, clock0):
    """Twin of ``TCMalloc._finish``: intern, price, record, advance."""
    if prof is not None:
        t0 = perf_counter()
    trace = m.interner.intern(
        site, tokens, lats, lambda: m.timing.materialize_columnar(struct, addrs, lats)
    )
    if prof is not None:
        t1 = perf_counter()
    timing = m.timing
    result = timing.run(trace)
    ablations = a.ablations
    if ablations:
        ablated = {
            name: timing.run_ablated(trace, tags).cycles
            for name, tags in ablations.items()
        }
    else:
        ablated = {}
    if prof is not None:
        t2 = perf_counter()
        prof.add_stage("build", t1 - t0)
        prof.add_stage("schedule", t2 - t1)
        prof.count("calls")
        prof.count("uops", len(trace))
    record = _CallRecord(
        kind=kind,
        size=size,
        size_class=cl,
        path=path,
        cycles=result.cycles,
        num_uops=len(trace),
        ptr=ptr,
        clock=clock0,
        sampled=False,
        ablated=ablated,
    )
    m.advance(result.cycles)
    if a.keep_records:
        a.records.append(record)
    a._post_schedule(trace, result)
    return record


def _pagemap_words(page_heap, ptr: int) -> tuple[int, int]:
    """Addresses of the two pagemap words a non-sized free walks."""
    page = ptr >> K_PAGE_SHIFT
    root = page_heap.pagemap_root_addr + ((page // _PAGEMAP_LEAF_PAGES) % 64) * 8
    leaf = page_heap.pagemap_leaf_base + (page % (1 << 21)) * 8
    return root, leaf


def _sz_scan(cache, size: int):
    """Pure replica of ``MallocCache.szlookup``'s scan (no stats/LRU)."""
    key = class_index(size) if cache.config.index_keyed else size
    for entry in cache.entries:
        if entry.valid and entry.lo <= key <= entry.hi:
            return entry
    return None


def _sz_commit(cache, entry) -> None:
    """Apply the stats/LRU mutations ``szlookup`` would have made."""
    if entry is not None:
        cache.stats.sz_hits += 1
        cache._tick += 1
        entry.last_use = cache._tick
    else:
        cache.stats.sz_misses += 1


# --------------------------------------------------------------------------
# Registry: exact allocator type -> twin factory.  Subclasses that override
# emission hooks must register their own twin (or run without one).

_REGISTRY: dict[type, type] = {}


def register_fastpath(alloc_type: type, twin_type: type) -> None:
    _REGISTRY[alloc_type] = twin_type


def fastpath_for(alloc):
    """The fused twin for ``alloc``, or None if its exact type has none."""
    twin_type = _REGISTRY.get(type(alloc))
    return None if twin_type is None else twin_type(alloc)


from repro.alloc.allocator import CallRecord as _CallRecord  # noqa: E402
from repro.alloc.allocator import Path as _Path  # noqa: E402
from repro.alloc.allocator import TCMalloc as _TCMalloc  # noqa: E402

_PATH_FAST = _Path.FAST
_PATH_FREE_FAST = _Path.FREE_FAST

register_fastpath(_TCMalloc, TCMallocFastPath)

"""Per-thread caches: the top pool whose hits are the malloc fast path.

Section 3.1: "At the top are thread caches assigned to each thread of a
process, and meant to service small requests (< 256KB).  Each cache contains
many singly-linked free lists ... one free list per size class."

Implements the real TCMalloc heuristics:

* slow-start growth of each list's ``max_length`` (grow by one until the
  transfer batch size, then by a batch at a time, capped);
* ``ListTooLong`` releases a batch to the central list when a deallocation
  overflows ``max_length``;
* a 2 MB cache-size bound triggering a scavenge that returns ``low_water/2``
  objects per list (the paper: "if that free list now exceeds a certain size
  (2MB), TCMalloc returns unused objects back to the central free list").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from repro.alloc.central_cache import CentralFreeList
from repro.alloc.constants import (
    K_MAX_DYNAMIC_FREE_LIST_LENGTH,
    AllocatorConfig,
)
from repro.alloc.context import Emitter, Machine
from repro.alloc.freelist import FreeList, PopResult
from repro.alloc.size_classes import SizeClassTable
from repro.sim.uop import Tag


class SoftwareListOps:
    """Default strategy: free-list pushes and pops go through memory, the
    Figure 7 way.  :class:`repro.core.accel_allocator.MallaccListOps`
    replaces this to route every list operation through the malloc cache,
    which is what keeps the cached head/next copies coherent across
    slow-path batch transfers."""

    def pop(self, em: Emitter, flist: FreeList, cl: int, addr_dep: tuple[int, ...]) -> PopResult:
        return flist.emit_pop(em, addr_dep=addr_dep)

    def push(self, em: Emitter, flist: FreeList, cl: int, ptr: int, addr_dep: tuple[int, ...]) -> int:
        return flist.emit_push(em, ptr, addr_dep=addr_dep)


@dataclass
class ThreadCacheStats:
    fetches: int = 0
    releases: int = 0
    scavenges: int = 0
    objects_fetched: int = 0
    objects_released: int = 0


@dataclass
class ThreadCache:
    """One thread's cache of per-class free lists."""

    machine: Machine
    table: SizeClassTable
    central_lists: list[CentralFreeList]
    config: AllocatorConfig = field(default_factory=AllocatorConfig)
    lists: list[FreeList] = field(default_factory=list)
    list_ops: SoftwareListOps = field(default_factory=SoftwareListOps)
    size_bytes: int = 0
    stats: ThreadCacheStats = field(default_factory=ThreadCacheStats)

    def __post_init__(self) -> None:
        # One header cache line per class, contiguous like the real struct.
        base = self.machine.address_space.reserve_metadata(
            64 * self.table.num_classes, align=64
        )
        self.lists = [
            FreeList(memory=self.machine.memory, header_addr=base + 64 * cl)
            for cl in range(self.table.num_classes)
        ]

    # -- allocation side ------------------------------------------------------
    def allocate(self, em: Emitter, cl: int, cls_uop: int, size_uop: int | None = None) -> tuple[int, bool]:
        """Satisfy one object of class ``cl``.  Returns ``(ptr, was_fast)``.

        ``cls_uop`` is the uop that produced the size class — the free-list
        address ``lea`` depends on it; ``size_uop`` (the rounded-size load)
        only feeds the metadata update, mirroring the compiled register flow.
        """
        flist = self.lists[cl]
        addr_uop = em.alu(deps=(cls_uop,), tag=Tag.ADDRESSING)
        empty = flist.empty()
        em.branch("tc_list_empty", taken=empty, deps=(addr_uop,), tag=Tag.ADDRESSING)
        if empty:
            self._fetch_from_central(em, cl, (addr_uop,))
            if flist.empty():
                raise AssertionError("fetch must leave at least one object")
            pop = self.list_ops.pop(em, flist, cl, (addr_uop,))
            fast = False
        else:
            pop = self.list_ops.pop(em, flist, cl, (addr_uop,))
            fast = True
        meta_deps = (addr_uop,) if size_uop is None else (addr_uop, size_uop)
        flist.emit_update_metadata(em, deps=meta_deps)
        self._emit_size_update(em, meta_deps)
        self.size_bytes -= self.table.alloc_size_of(cl)
        return pop.ptr, fast

    def _emit_size_update(self, em: Emitter, deps: tuple[int, ...]) -> None:
        """Update the cache's total-size field (size_ -= alloc_size): part of
        the residual metadata work that stays off the critical path."""
        size_field = self.lists[0].header_addr + 16
        if not em.touches_hierarchy:
            self.machine.memory.write_word(size_field, max(self.size_bytes, 0))
            return
        _, uop = em.load_word(size_field, deps=deps, tag=Tag.METADATA)
        upd = em.alu(deps=(uop,), tag=Tag.METADATA)
        em.store_word(size_field, max(self.size_bytes, 0), deps=(upd,), tag=Tag.METADATA)

    # -- deallocation side ------------------------------------------------------
    def deallocate(self, em: Emitter, cl: int, ptr: int, lookup_uop: int) -> bool:
        """Push one object back.  Returns True if the push stayed fast (no
        overflow release, no scavenge)."""
        flist = self.lists[cl]
        addr_uop = em.alu(deps=(lookup_uop,), tag=Tag.ADDRESSING)
        self.list_ops.push(em, flist, cl, ptr, (addr_uop,))
        flist.emit_update_metadata(em, deps=(addr_uop,))
        self.size_bytes += self.table.alloc_size_of(cl)

        fast = True
        too_long = flist.length > flist.max_length
        em.branch("tc_list_too_long", taken=too_long, deps=(addr_uop,), tag=Tag.ADDRESSING)
        if too_long:
            self._list_too_long(em, cl, (addr_uop,))
            fast = False
        if self.size_bytes >= self.config.max_thread_cache_size:
            self._scavenge(em)
            fast = False
        return fast

    # -- pool transfers ------------------------------------------------------
    def _fetch_from_central(self, em: Emitter, cl: int, deps: tuple[int, ...]) -> None:
        """ThreadCache::FetchFromCentralCache with slow-start growth."""
        # Profile the refill machinery (detailed emission only: warm-mode
        # functional calls are already accounted to the warming stage).
        prof = self.machine.profiler if em.touches_hierarchy else None
        t0 = perf_counter() if prof is not None else 0.0
        flist = self.lists[cl]
        batch = self.table.batch_size_of(cl)
        num = min(flist.max_length, batch)
        taken = self.central_lists[cl].remove_range(em, num, deps, owner=self)
        if not taken:
            raise AssertionError("central list must populate on demand")
        self.stats.fetches += 1
        self.stats.objects_fetched += len(taken)
        dep = deps
        for ptr in taken:
            uop = self.list_ops.push(em, flist, cl, ptr, dep)
            dep = (uop,)
        self.size_bytes += len(taken) * self.table.alloc_size_of(cl)
        # Slow-start: grow max_length by 1 until the batch size, then by a
        # batch at a time up to the cap.
        if flist.max_length < batch:
            flist.max_length += 1
        else:
            new_length = min(flist.max_length + batch, K_MAX_DYNAMIC_FREE_LIST_LENGTH)
            flist.max_length = new_length - (new_length % batch)
        if prof is not None:
            prof.add_stage("refill", perf_counter() - t0)
            prof.count("refill_entries")

    def _list_too_long(self, em: Emitter, cl: int, deps: tuple[int, ...]) -> None:
        """Release one batch back to the central list and decay max_length."""
        prof = self.machine.profiler if em.touches_hierarchy else None
        t0 = perf_counter() if prof is not None else 0.0
        flist = self.lists[cl]
        batch = self.table.batch_size_of(cl)
        self._release_to_central(em, cl, min(batch, flist.length), deps)
        if flist.max_length < batch:
            flist.max_length += 1
        elif flist.max_length > batch:
            flist.length_overages += 1
            if flist.length_overages > 3:
                flist.max_length -= batch
                flist.length_overages = 0
        if prof is not None:
            prof.add_stage("refill", perf_counter() - t0)
            prof.count("refill_entries")

    def _release_to_central(self, em: Emitter, cl: int, num: int, deps: tuple[int, ...]) -> None:
        flist = self.lists[cl]
        # Token the pop count: the software pops below emit no per-object
        # tokens, and a transfer-cache park would otherwise hide it from the
        # interned template (refill shapes are interned now).
        em.note(("tc_release", min(num, flist.length)))
        ptrs = []
        dep = deps
        for _ in range(min(num, flist.length)):
            pop = self.list_ops.pop(em, flist, cl, dep)
            dep = (pop.uop,)
            ptrs.append(pop.ptr)
        if ptrs:
            self.central_lists[cl].insert_range(em, ptrs, dep, owner=self)
            self.size_bytes -= len(ptrs) * self.table.alloc_size_of(cl)
            self.stats.releases += 1
            self.stats.objects_released += len(ptrs)

    def _scavenge(self, em: Emitter) -> None:
        """Return low-water/2 objects from every list (ThreadCache::Scavenge)."""
        prof = self.machine.profiler if em.touches_hierarchy else None
        t0 = perf_counter() if prof is not None else 0.0
        self.stats.scavenges += 1
        for cl in range(1, self.table.num_classes):
            flist = self.lists[cl]
            drop = flist.low_water // 2
            if drop > 0:
                em.note(("scavenge_class", cl))
                self._release_to_central(em, cl, drop, ())
            flist.low_water = flist.length
        if prof is not None:
            prof.add_stage("refill", perf_counter() - t0)
            prof.count("refill_entries")

    # -- introspection ------------------------------------------------------
    def total_objects(self) -> int:
        return sum(fl.length for fl in self.lists)

"""The machine an allocator runs on, and the per-call emission context.

:class:`Machine` bundles the persistent hardware state — simulated memory,
cache hierarchy, TLB, branch predictor, core timing model, and a global cycle
clock.  :class:`Emitter` is created fresh for each allocator call; it couples
a :class:`~repro.sim.uop.TraceBuilder` to the machine so that every
functional memory access also emits a priced micro-op.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.sim.arena import ArenaMemory
from repro.sim.branch import BranchPredictor
from repro.sim.engine import is_columnar
from repro.sim.hierarchy import CacheHierarchy
from repro.sim.lazyhier import LazyRingHierarchy
from repro.sim.memory import SimulatedMemory, VirtualAddressSpace
from repro.sim.timing import CoreConfig, TimingModel, TimingResult
from repro.sim.tlb import TLB
from repro.sim.trace_intern import TraceInterner, interner_from_env
from repro.sim.uop import NULL_TRACE_BUILDER, Tag, Trace, TraceBuilder

if TYPE_CHECKING:
    from repro.harness.profile import HotPathProfiler


def default_memory() -> SimulatedMemory:
    """Engine-selected simulated memory: arena slabs under columnar, the
    sparse word dict under reference.  Both are observationally identical."""
    return ArenaMemory() if is_columnar() else SimulatedMemory()


def default_hierarchy() -> CacheHierarchy:
    """Engine-selected cache hierarchy: the lazy ring-burst model under
    columnar (which self-degrades to plain eager whenever the geometry or
    the cache implementation rules the lazy representation out), the plain
    eager hierarchy under reference."""
    return LazyRingHierarchy() if is_columnar() else CacheHierarchy()


@dataclass
class Machine:
    """All persistent simulated-hardware state for one core."""

    memory: SimulatedMemory = field(default_factory=default_memory)
    address_space: VirtualAddressSpace = field(default_factory=VirtualAddressSpace)
    hierarchy: CacheHierarchy = field(default_factory=default_hierarchy)
    tlb: TLB = field(default_factory=TLB)
    predictor: BranchPredictor = field(default_factory=BranchPredictor)
    timing: TimingModel = field(default_factory=lambda: TimingModel(CoreConfig()))
    interner: TraceInterner | None = field(default_factory=interner_from_env)
    """Emission-side intern table; ``None`` disables template interning."""
    profiler: "HotPathProfiler | None" = None
    """Opt-in hot-path profiler; ``None`` (the default) costs nothing.  The
    allocator duck-types it, so any object with ``add_stage``/``count``
    works — normally a :class:`repro.harness.profile.HotPathProfiler`."""
    clock: int = 0
    """Global cycle count, advanced by allocator calls and application gaps."""
    warming: str | None = None
    """Functional fast-forward mode for the *next* allocator calls: ``None``
    (default) emits and prices traces as always; ``"warm"`` advances
    allocator *and* cache/TLB/predictor state without emitting uops;
    ``"skip"`` advances only allocator/predictor state (cache hierarchy and
    TLB are left stale, to be re-warmed by the sampling slack).  Set by the
    sampled runner around unsampled intervals — exact replays never touch
    it, so the detailed path is byte-identical with this field present."""

    def new_emitter(self) -> "Emitter | FunctionalEmitter":
        warming = self.warming
        if warming is None:
            return Emitter(self)
        if warming == "warm":
            return WarmingEmitter(self)
        return FunctionalEmitter(self)

    def advance(self, cycles: int) -> None:
        if cycles < 0:
            raise ValueError("cannot advance the clock backwards")
        self.clock += cycles


class Emitter:
    """Per-call coupling of functional state to the micro-op trace.

    Allocator code calls :meth:`load_word`/:meth:`store_word` instead of
    touching :class:`SimulatedMemory` directly; each call moves cache lines,
    charges TLB penalties, and appends a micro-op carrying the resulting
    latency.  Methods return the uop index for dependence threading.
    """

    functional = False
    """Class-level flag the allocator's ``_finish`` branches on: a detailed
    emitter builds and schedules, a :class:`FunctionalEmitter` does not."""

    touches_hierarchy = True
    """Whether memory-facing methods move cache/TLB state.  Hot emit helpers
    (size-class lookup, free-list ops, the sampling countdown) check
    ``not em.touches_hierarchy`` to take a fused functional shortcut: same
    memory/list/predictor state transitions, none of the per-uop ceremony.
    Only :class:`FunctionalEmitter` (skip mode) clears it — detailed and
    warming emitters must see every access."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.tb = TraceBuilder()
        # Pre-bound hot-path callables: load/store/alu run once per emitted
        # micro-op, so the attribute chains are hoisted here (an Emitter
        # lives for exactly one allocator call).
        hierarchy = machine.hierarchy
        self._h_read = hierarchy.demand_access
        if hierarchy._fast_demand:
            self._h_write = hierarchy.demand_access  # inlined walk: same path
        else:
            self._h_write = hierarchy._access_write  # preserves write=True
        self._tlb = machine.tlb.access
        self._mem_read = machine.memory.read_word
        self._mem_write = machine.memory.write_word

    # -- memory ------------------------------------------------------------
    def load_word(self, addr: int, deps: tuple[int, ...] = (), tag: Tag = Tag.ADDRESSING) -> tuple[int, int]:
        """Read simulated memory; returns ``(value, uop_index)``."""
        value = self._mem_read(addr)
        latency = self._h_read(addr) + self._tlb(addr)
        idx = self.tb.load(addr, latency, deps=deps, tag=tag)
        return value, idx

    def store_word(self, addr: int, value: int, deps: tuple[int, ...] = (), tag: Tag = Tag.ADDRESSING) -> int:
        """Write simulated memory; returns the uop index."""
        self._mem_write(addr, value)
        self._h_write(addr)
        self._tlb(addr)
        return self.tb.store(addr, deps=deps, tag=tag)

    def load_table(self, addr: int, deps: tuple[int, ...] = (), tag: Tag = Tag.ADDRESSING) -> int:
        """A load from a read-only table (size-class arrays): prices the
        access without needing a stored word.  Returns the uop index."""
        latency = self._h_read(addr) + self._tlb(addr)
        return self.tb.load(addr, latency, deps=deps, tag=tag)

    # -- computation -------------------------------------------------------
    def alu(self, deps: tuple[int, ...] = (), tag: Tag = Tag.ADDRESSING, latency: int = 1) -> int:
        return self.tb.alu(deps=deps, tag=tag, latency=latency)

    def branch(self, site: str, taken: bool, deps: tuple[int, ...] = (), tag: Tag = Tag.ADDRESSING) -> int:
        penalty = self.machine.predictor.predict(site, taken)
        # Every branch outcome is an intern-template token: the control path
        # through an emission site determines the trace's structure.
        self.tb.note((site, taken))
        return self.tb.branch(deps=deps, tag=tag, mispredict_penalty=penalty)

    def note(self, token) -> None:
        """Record a structural decision that emits no branch uop (Mallacc
        push hits, prefetch presence, sized vs. pagemap free, ...) so the
        intern template key captures it."""
        self.tb.note(token)

    def fixed(self, latency: int, deps: tuple[int, ...] = (), tag: Tag = Tag.SLOW_PATH) -> int:
        return self.tb.fixed(latency, deps=deps, tag=tag)

    def mallacc(self, latency: int, deps: tuple[int, ...] = ()) -> int:
        return self.tb.mallacc(latency, deps=deps)

    def prefetch_line(self, addr: int, deps: tuple[int, ...] = ()) -> tuple[int, int]:
        """Issue an asynchronous line fetch; returns ``(uop_index, latency)``.

        The latency is how long after issue the data lands (resolved against
        live cache state, and the line is filled so later demand accesses
        hit)."""
        latency = self.machine.hierarchy.prefetch(addr)
        idx = self.tb.prefetch(addr)
        del deps  # prefetches never gate anything architecturally
        return idx, latency

    # -- finishing ---------------------------------------------------------
    def build(self, intern_site: str | None = None) -> Trace:
        """Materialize the trace; with ``intern_site`` (and the machine's
        interner enabled) identical calls return one shared instance."""
        interner = self.machine.interner
        if intern_site is not None and interner is not None:
            return self.tb.build_interned(interner, intern_site)
        return self.tb.build()

    def schedule(self) -> TimingResult:
        return self.machine.timing.run(self.build())


class FunctionalEmitter:
    """Functional fast-forward (skip mode): the same per-call API as
    :class:`Emitter`, but nothing is emitted, priced, or cached.

    Allocator code runs unchanged — real loads and stores against simulated
    memory, so free lists, the thread cache, the malloc cache, and the
    sampler countdown all advance exactly as in a detailed call.  The cache
    hierarchy and TLB are *not* touched (:data:`~repro.sim.sampling
    .MODE_SKIP`): microarchitectural state goes intentionally stale and is
    re-warmed by the sampling slack (:class:`WarmingEmitter`) before the
    next detailed interval.  The branch predictor *is* trained (one dict
    update per branch — too cheap to be worth drifting).

    Uop indices are all 0: dependence threading only shapes traces, and
    there is no trace.  ``build``/``schedule`` raise — a functional step has
    no timing identity, and ``TCMalloc._finish`` short-circuits before
    reaching them.  ``em.tb`` is a shared :data:`~repro.sim.uop
    .NULL_TRACE_BUILDER` for any code reaching the builder duck-type.
    """

    functional = True
    touches_hierarchy = False
    tb = NULL_TRACE_BUILDER

    __slots__ = ("machine", "_mem_read", "_mem_write", "_predict")

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._mem_read = machine.memory.read_word
        self._mem_write = machine.memory.write_word
        self._predict = machine.predictor.predict

    # -- memory ------------------------------------------------------------
    def load_word(self, addr: int, deps: tuple[int, ...] = (), tag: Tag = Tag.ADDRESSING) -> tuple[int, int]:
        return self._mem_read(addr), 0

    def store_word(self, addr: int, value: int, deps: tuple[int, ...] = (), tag: Tag = Tag.ADDRESSING) -> int:
        self._mem_write(addr, value)
        return 0

    def load_table(self, addr: int, deps: tuple[int, ...] = (), tag: Tag = Tag.ADDRESSING) -> int:
        return 0

    # -- computation -------------------------------------------------------
    def alu(self, deps: tuple[int, ...] = (), tag: Tag = Tag.ADDRESSING, latency: int = 1) -> int:
        return 0

    def branch(self, site: str, taken: bool, deps: tuple[int, ...] = (), tag: Tag = Tag.ADDRESSING) -> int:
        self._predict(site, taken)
        return 0

    def note(self, token) -> None:
        pass

    def fixed(self, latency: int, deps: tuple[int, ...] = (), tag: Tag = Tag.SLOW_PATH) -> int:
        return 0

    def mallacc(self, latency: int, deps: tuple[int, ...] = ()) -> int:
        return 0

    def prefetch_line(self, addr: int, deps: tuple[int, ...] = ()) -> tuple[int, int]:
        # Prices nothing, but must still return *a* latency (Mallacc derives
        # an absolute ready-time from it).  L1 latency is the natural
        # nominal value: during a skip stretch the clock only advances
        # through application gaps, so any small constant keeps prefetches
        # resolved well before the next detailed interval could observe a
        # stall.
        return 0, self.machine.hierarchy.config.l1.latency

    # -- finishing ---------------------------------------------------------
    def build(self, intern_site: str | None = None) -> Trace:
        raise RuntimeError("functional fast-forward has no trace to build")

    def schedule(self) -> TimingResult:
        raise RuntimeError("functional fast-forward has no trace to schedule")


class WarmingEmitter(FunctionalEmitter):
    """Cache-exact functional warming (:data:`~repro.sim.sampling
    .MODE_WARM`): skip-mode state updates *plus* every cache-hierarchy
    demand access and TLB walk, latencies discarded.  After a warming
    stretch, L1/L2/TLB contents are bit-identical to an exact replay of the
    same ops — this is the SMARTS warmup slack before a detailed interval
    (and the whole-stream mode under ``cache_warming='always'``)."""

    touches_hierarchy = True

    __slots__ = ("_h_read", "_h_write", "_tlb")

    def __init__(self, machine: Machine) -> None:
        super().__init__(machine)
        hierarchy = machine.hierarchy
        self._h_read = hierarchy.demand_access
        if hierarchy._fast_demand:
            self._h_write = hierarchy.demand_access  # inlined walk: same path
        else:
            self._h_write = hierarchy._access_write  # preserves write=True
        self._tlb = machine.tlb.access

    def load_word(self, addr: int, deps: tuple[int, ...] = (), tag: Tag = Tag.ADDRESSING) -> tuple[int, int]:
        value = self._mem_read(addr)
        self._h_read(addr)
        self._tlb(addr)
        return value, 0

    def store_word(self, addr: int, value: int, deps: tuple[int, ...] = (), tag: Tag = Tag.ADDRESSING) -> int:
        self._mem_write(addr, value)
        self._h_write(addr)
        self._tlb(addr)
        return 0

    def load_table(self, addr: int, deps: tuple[int, ...] = (), tag: Tag = Tag.ADDRESSING) -> int:
        self._h_read(addr)
        self._tlb(addr)
        return 0

    def prefetch_line(self, addr: int, deps: tuple[int, ...] = ()) -> tuple[int, int]:
        return 0, self.machine.hierarchy.prefetch(addr)

"""Fragmentation accounting.

Section 2: "Allocators are judged on both the speed with which they satisfy
a request and their memory fragmentation, which measures how much memory is
requested from the OS vs. how much memory the application actually uses",
and the 88-class table is "a relatively large number picked to keep memory
fragmentation low".

Three layers are measured:

* **internal** — rounding waste: bytes allocated (rounded to size classes or
  buddy powers) vs bytes requested;
* **cached** — bytes parked in thread caches and central lists, committed
  but unavailable to the application;
* **external** — bytes reserved from the OS vs bytes in live objects: the
  headline fragmentation figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloc.allocator import TCMalloc


@dataclass(frozen=True)
class FragmentationReport:
    """A point-in-time fragmentation snapshot."""

    requested_bytes: int
    allocated_bytes: int
    cached_bytes: int
    reserved_bytes: int

    @property
    def internal(self) -> float:
        """Rounding waste as a fraction of allocated bytes."""
        if not self.allocated_bytes:
            return 0.0
        return 1.0 - self.requested_bytes / self.allocated_bytes

    @property
    def external(self) -> float:
        """OS-reserved bytes not backing live data, as a fraction of
        reserved bytes."""
        if not self.reserved_bytes:
            return 0.0
        return max(0.0, 1.0 - self.requested_bytes / self.reserved_bytes)

    @property
    def overhead_factor(self) -> float:
        """reserved / requested: 1.0 is perfect."""
        if not self.requested_bytes:
            return 1.0
        return self.reserved_bytes / self.requested_bytes


def measure(allocator: TCMalloc) -> FragmentationReport:
    """Snapshot an allocator's fragmentation."""
    requested = 0
    allocated = 0
    for size, cl in allocator.live.values():
        requested += size
        if cl == 0:
            pages = allocator._pages_for(size)
            allocated += pages * allocator.config.page_size
        else:
            allocated += allocator.table.alloc_size_of(cl)
    cached = max(0, allocator.thread_cache.size_bytes)
    for cl, central in enumerate(allocator.central_lists):
        if cl:
            cached += central.num_free_objects * allocator.table.alloc_size_of(cl)
    reserved = (
        allocator.page_heap.stats.bytes_from_system
        - allocator.page_heap.stats.bytes_released
    )
    return FragmentationReport(
        requested_bytes=requested,
        allocated_bytes=allocated,
        cached_bytes=cached,
        reserved_bytes=reserved,
    )


def internal_fragmentation_of_table(table, sizes) -> float:
    """Expected rounding waste of a size-class table over a size stream —
    the experiment behind 'a relatively large number [of classes] picked to
    keep memory fragmentation low'."""
    requested = 0
    allocated = 0
    for size in sizes:
        requested += size
        allocated += table.alloc_size_of(table.size_class_of(size))
    return 1.0 - requested / allocated if allocated else 0.0

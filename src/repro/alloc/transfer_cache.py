"""The transfer cache: whole-batch recycling between pool levels.

Real TCMalloc interposes a *transfer cache* between thread caches and the
central free lists: a small array of slots, each holding one complete
transfer batch (``num_objects_to_move`` objects).  A thread releasing a full
batch parks it in a slot; a thread fetching a full batch grabs a parked one
— no span manipulation, no per-object list walking, just a slot swap under
the same lock.  This is part of how the central path stays near 10³ rather
than 10⁴ cycles: Section 3.1's heuristics that "transfer chunks of memory
between the various pools in an effort to maximize thread cache hit rates".

The functional contract: a batch entering a slot leaves it with exactly the
same objects (order preserved), and slots never duplicate or lose pointers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloc.constants import AllocatorConfig
from repro.alloc.context import Emitter
from repro.sim.uop import Tag

K_TRANSFER_SLOTS = 8
"""Slots per size class (tcmalloc's kMaxNumTransferEntries region, scaled)."""


@dataclass
class TransferCacheStats:
    batch_inserts: int = 0
    batch_removes: int = 0
    insert_overflows: int = 0
    remove_misses: int = 0


@dataclass
class TransferCache:
    """Per-class slots of parked transfer batches."""

    size_class: int
    batch_size: int
    num_slots: int = K_TRANSFER_SLOTS
    config: AllocatorConfig = field(default_factory=AllocatorConfig)
    slots: list[list[int]] = field(default_factory=list)
    stats: TransferCacheStats = field(default_factory=TransferCacheStats)

    def try_insert(self, em: Emitter, batch: list[int], deps: tuple[int, ...] = ()) -> bool:
        """Park a full batch; False if it isn't full-sized or no slot is
        free (caller falls through to the central list)."""
        if len(batch) != self.batch_size or len(self.slots) >= self.num_slots:
            if len(batch) == self.batch_size:
                self.stats.insert_overflows += 1
            return False
        # One store parks the batch descriptor (start/end pointer pair).
        em.store_word(batch[0], batch[-1], deps=deps, tag=Tag.SLOW_PATH)
        self.slots.append(list(batch))
        self.stats.batch_inserts += 1
        return True

    def try_remove(self, em: Emitter, num: int, deps: tuple[int, ...] = ()) -> list[int] | None:
        """Grab a parked batch if a full batch was requested; None on miss."""
        if num != self.batch_size or not self.slots:
            self.stats.remove_misses += 1
            return None
        batch = self.slots.pop()
        _, _ = em.load_word(batch[0], deps=deps, tag=Tag.SLOW_PATH)
        self.stats.batch_removes += 1
        return batch

    @property
    def parked_objects(self) -> int:
        return sum(len(s) for s in self.slots)

    def drain(self) -> list[list[int]]:
        """Hand every parked batch back (used when a class needs its spans
        returned); empties the cache."""
        out, self.slots = self.slots, []
        return out

"""A debugging allocator: canaries, double-free forensics, leak reports.

Production allocators ship a debug mode (tcmalloc's ``debugallocation``)
because the paper's "frequent, fast, interspersed" calls are also the ones
application bugs corrupt.  :class:`DebugAllocator` wraps the simulated
TCMalloc with:

* **canary words** written immediately before and after every returned
  block, verified on free — an application overwrite of either is reported
  with the damaged pointer;
* **free-fill**: freed blocks' first words are poisoned so use-after-free
  reads are visible in simulated memory;
* **leak reports**: live objects grouped by size with allocation timestamps
  (machine cycles), the static counterpart of the sampler's live profile.

The checks cost real simulated work (extra stores/loads per call), so the
debug mode's overhead is itself measurable — mirroring production reality.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloc.allocator import CallRecord, TCMalloc
from repro.sim.uop import Tag

CANARY = 0xDEAD_BEEF_CAFE_F00D
POISON = 0xFEE1_DEAD_FEE1_DEAD


class HeapCorruptionError(Exception):
    """An application write clobbered allocator redzones."""


@dataclass(frozen=True)
class LeakRecord:
    ptr: int
    size: int
    allocated_at: int
    """Machine cycle of the allocation."""


class DebugAllocator(TCMalloc):
    """TCMalloc with redzones and forensics.

    The canary sits in the block's own rounding slack when there is room
    (sizes are rounded up anyway), else the block is silently upsized one
    class — same policy as debug tcmalloc.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.allocated_at: dict[int, int] = {}
        self.corruptions_detected = 0
        self.frees_checked = 0

    # -- allocation ------------------------------------------------------------
    def malloc(self, size: int) -> tuple[int, CallRecord]:
        guarded = size + 16  # leading + trailing canary words
        ptr, record = super().malloc(guarded)
        # Rewrite bookkeeping to the caller-visible size.
        entry = self.live.pop(ptr)
        user_ptr = ptr + 8
        self.live[ptr] = (entry[0], entry[1])
        self._plant_canaries(ptr, size, record)
        self.allocated_at[user_ptr] = self.machine.clock
        self._user_sizes = getattr(self, "_user_sizes", {})
        self._user_sizes[user_ptr] = size
        return user_ptr, record

    def _plant_canaries(self, base: int, user_size: int, record: CallRecord) -> None:
        em = self.machine.new_emitter()
        em.store_word(base, CANARY, tag=Tag.METADATA)
        tail = self._tail_addr(base, user_size)
        em.store_word(tail, CANARY, tag=Tag.METADATA)
        result = self.machine.timing.run(em.build())
        record.cycles += result.cycles
        self.machine.advance(result.cycles)

    @staticmethod
    def _tail_addr(base: int, user_size: int) -> int:
        return base + 8 + ((user_size + 7) & ~7)

    # -- deallocation ------------------------------------------------------------
    def free(self, user_ptr: int) -> CallRecord:  # type: ignore[override]
        return self._debug_free(user_ptr)

    def sized_free(self, user_ptr: int, size: int) -> CallRecord:  # type: ignore[override]
        del size  # the guarded size differs; forensics uses its own table
        return self._debug_free(user_ptr)

    def _debug_free(self, user_ptr: int) -> CallRecord:
        base = user_ptr - 8
        if base not in self.live:
            raise ValueError(
                f"free of unallocated pointer {user_ptr:#x} "
                f"(allocated set has {len(self.live)} entries)"
            )
        user_size = self._user_sizes.pop(user_ptr)
        self.frees_checked += 1
        self._verify_canaries(base, user_size, user_ptr)
        self.allocated_at.pop(user_ptr, None)
        # Poison the user words so stale reads are recognizable.
        self.machine.memory.write_word(user_ptr, POISON)
        return super().free(base)

    def _verify_canaries(self, base: int, user_size: int, user_ptr: int) -> None:
        em = self.machine.new_emitter()
        head, _ = em.load_word(base, tag=Tag.METADATA)
        tail, _ = em.load_word(self._tail_addr(base, user_size), tag=Tag.METADATA)
        result = self.machine.timing.run(em.build())
        self.machine.advance(result.cycles)
        if head != CANARY or tail != CANARY:
            self.corruptions_detected += 1
            which = "leading" if head != CANARY else "trailing"
            raise HeapCorruptionError(
                f"{which} canary of block {user_ptr:#x} ({user_size} bytes) "
                f"was overwritten"
            )

    # -- forensics ------------------------------------------------------------
    def leak_report(self) -> list[LeakRecord]:
        """Live objects, oldest first — what a shutdown leak check prints."""
        report = [
            LeakRecord(ptr=ptr, size=self._user_sizes[ptr], allocated_at=when)
            for ptr, when in self.allocated_at.items()
        ]
        return sorted(report, key=lambda r: r.allocated_at)

    def leaked_bytes(self) -> int:
        return sum(self._user_sizes[p] for p in self.allocated_at)

"""A binary buddy allocator: the prior hardware-allocation approach.

Section 2: hardware allocator work before Mallacc consisted of "several
variations of the buddy technique, which show that it easily maps to purely
combinational logic.  While buddy allocation has been available for decades,
modern allocators have converged to simpler techniques in their highest-level
pools ... most likely due to buddy systems' reported high degrees of
fragmentation and relative complexity."

This module implements the classic Knowlton buddy system on the same
simulated substrate so that argument is measurable: block sizes are powers
of two, a free block may split into two buddies, and a freed block merges
only with *its* buddy.  ``benchmarks/bench_buddy_comparison.py`` reproduces
the Section 2 comparison — internal fragmentation vs TCMalloc's size-class
scheme, and allocation latency vs the thread-cache fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloc.constants import AllocatorConfig
from repro.alloc.context import Emitter, Machine
from repro.sim.uop import Tag

MIN_ORDER = 4  # 16-byte minimum block
MAX_ORDER = 22  # 4 MB arena


@dataclass
class BuddyStats:
    allocations: int = 0
    frees: int = 0
    splits: int = 0
    merges: int = 0
    requested_bytes: int = 0
    allocated_bytes: int = 0

    @property
    def internal_fragmentation(self) -> float:
        """Wasted fraction of allocated memory (the buddy system's weak
        spot: a 33-byte request burns a 64-byte block)."""
        if not self.allocated_bytes:
            return 0.0
        return 1.0 - self.requested_bytes / self.allocated_bytes


@dataclass
class BuddyAllocator:
    """A single-arena binary buddy allocator with timed operations."""

    machine: Machine = field(default_factory=Machine)
    config: AllocatorConfig = field(default_factory=AllocatorConfig)
    stats: BuddyStats = field(default_factory=BuddyStats)
    free_lists: dict[int, list[int]] = field(default_factory=dict)
    live: dict[int, tuple[int, int]] = field(default_factory=dict)
    """ptr -> (requested size, order)."""
    arena_base: int = 0

    def __post_init__(self) -> None:
        reservation = self.machine.address_space.reserve_pages(
            (1 << MAX_ORDER) // self.machine.address_space.page_size
        )
        self.arena_base = reservation.start
        self.free_lists = {order: [] for order in range(MIN_ORDER, MAX_ORDER + 1)}
        self.free_lists[MAX_ORDER].append(self.arena_base)

    # -- size mapping ---------------------------------------------------------
    @staticmethod
    def order_for(size: int) -> int:
        if size <= 0:
            raise ValueError("size must be positive")
        order = max(MIN_ORDER, (size - 1).bit_length())
        if order > MAX_ORDER:
            raise MemoryError("request exceeds arena")
        return order

    def _buddy_of(self, addr: int, order: int) -> int:
        return self.arena_base + ((addr - self.arena_base) ^ (1 << order))

    # -- allocation -------------------------------------------------------------
    def malloc(self, size: int) -> tuple[int, int]:
        """Allocate; returns ``(ptr, cycles)``.

        Timing: the order computation is combinational (one ALU), then one
        free-list head load per order probed, and one split (a store to the
        new buddy's header) per level descended — the hardware-friendly
        structure prior work exploited, with the fragmentation bill attached.
        """
        em = self.machine.new_emitter()
        order = self.order_for(size)
        dep = (em.alu(tag=Tag.SIZE_CLASS),)

        found = None
        for probe in range(order, MAX_ORDER + 1):
            uop = em.load_table(
                self.arena_base + probe * 8, deps=dep, tag=Tag.PUSH_POP
            )
            dep = (uop,)
            if self.free_lists[probe]:
                found = probe
                break
        if found is None:
            raise MemoryError("buddy arena exhausted")

        addr = self.free_lists[found].pop()
        while found > order:
            found -= 1
            buddy = self._buddy_of(addr, found)
            self.free_lists[found].append(buddy)
            uop = em.store_word(buddy, found, deps=dep, tag=Tag.PUSH_POP)
            dep = (uop,)
            self.stats.splits += 1

        self.live[addr] = (size, order)
        self.stats.allocations += 1
        self.stats.requested_bytes += size
        self.stats.allocated_bytes += 1 << order
        result = self.machine.timing.run(em.build())
        self.machine.advance(result.cycles)
        return addr, result.cycles

    def free(self, ptr: int) -> int:
        """Free with eager buddy coalescing; returns cycles."""
        if ptr not in self.live:
            raise ValueError(f"free of unallocated pointer {ptr:#x}")
        size, order = self.live.pop(ptr)
        self.stats.frees += 1
        self.stats.requested_bytes -= size
        self.stats.allocated_bytes -= 1 << order

        em = self.machine.new_emitter()
        dep: tuple[int, ...] = (em.alu(tag=Tag.SIZE_CLASS),)
        addr = ptr
        while order < MAX_ORDER:
            buddy = self._buddy_of(addr, order)
            uop = em.load_table(
                self.arena_base + order * 8, deps=dep, tag=Tag.PUSH_POP
            )
            dep = (uop,)
            if buddy not in self.free_lists[order]:
                break
            # Merge with the buddy: one level up.
            self.free_lists[order].remove(buddy)
            addr = min(addr, buddy)
            order += 1
            self.stats.merges += 1
        self.free_lists[order].append(addr)
        em.store_word(addr, order, deps=dep, tag=Tag.PUSH_POP)
        result = self.machine.timing.run(em.build())
        self.machine.advance(result.cycles)
        return result.cycles

    # -- introspection ------------------------------------------------------------
    def free_bytes(self) -> int:
        return sum((1 << o) * len(lst) for o, lst in self.free_lists.items())

    def check_invariants(self) -> None:
        """Free + live block bytes cover the arena exactly; no block appears
        twice; every free block is properly aligned for its order."""
        seen: set[int] = set()
        total = self.free_bytes() + sum(1 << o for _, o in self.live.values())
        if total != 1 << MAX_ORDER:
            raise AssertionError("arena bytes not conserved")
        for order, lst in self.free_lists.items():
            for addr in lst:
                if addr in seen:
                    raise AssertionError(f"block {addr:#x} on two lists")
                seen.add(addr)
                if (addr - self.arena_base) % (1 << order):
                    raise AssertionError("misaligned buddy block")

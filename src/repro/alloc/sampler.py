"""Allocation sampling: the byte-countdown profiler on the fast path.

Section 3.3: "TCMalloc can also sample allocation requests every N bytes.  A
sampled allocation dumps and stores a stack trace in addition to performing
the allocation itself ... it adds a measurable overhead to each malloc
request, since a counter must be decremented and checked against the
threshold each time."

The baseline sampler emits that per-call counter work; Mallacc replaces it
with a dedicated performance counter (:mod:`repro.core.sampling`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloc.constants import AllocatorConfig
from repro.alloc.context import Emitter, Machine
from repro.sim.uop import Tag


@dataclass
class SampleRecord:
    """One sampled allocation (what a production profiler would log)."""

    size: int
    clock: int


@dataclass
class Sampler:
    """Software byte-countdown sampler (the baseline mechanism)."""

    machine: Machine
    config: AllocatorConfig = field(default_factory=AllocatorConfig)
    bytes_until_sample: int = 0
    counter_addr: int = 0
    samples: list[SampleRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.counter_addr = self.machine.address_space.reserve_metadata(64, align=64)
        self.bytes_until_sample = self.config.sample_parameter

    def emit_check(self, em: Emitter, size: int) -> bool:
        """Per-call fast-path work: load the countdown, subtract, branch.
        Returns True if this allocation is sampled."""
        if not self.config.sampling_enabled:
            return False
        if not em.touches_hierarchy:
            # Functional fast-forward: countdown, counter word, and branch
            # predictor advance exactly as below, without the uop ceremony.
            self.bytes_until_sample -= size
            sampled = self.bytes_until_sample <= 0
            em.branch("sample_threshold", taken=sampled)
            self.machine.memory.write_word(
                self.counter_addr, max(self.bytes_until_sample, 0)
            )
            return sampled
        _, counter_uop = em.load_word(self.counter_addr, tag=Tag.SAMPLING)
        sub = em.alu(deps=(counter_uop,), tag=Tag.SAMPLING)
        self.bytes_until_sample -= size
        sampled = self.bytes_until_sample <= 0
        em.branch("sample_threshold", taken=sampled, deps=(sub,), tag=Tag.SAMPLING)
        em.store_word(self.counter_addr, max(self.bytes_until_sample, 0), deps=(sub,), tag=Tag.SAMPLING)
        return sampled

    def record_sample(self, em: Emitter, size: int) -> None:
        """Capture a stack trace and reset the countdown (slow, rare)."""
        em.fixed(self.config.costs.stack_trace_capture, tag=Tag.SLOW_PATH)
        self.samples.append(SampleRecord(size=size, clock=self.machine.clock))
        self.bytes_until_sample = self.config.sample_parameter

    @property
    def num_samples(self) -> int:
        return len(self.samples)

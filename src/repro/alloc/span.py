"""Spans: contiguous runs of TCMalloc pages.

A span is the unit the page heap manages.  Small-object spans are carved into
equal-sized chunks for one size class and handed to the central free list;
large allocations (> 256 KB) are returned as whole spans.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.alloc.constants import K_PAGE_SHIFT


class SpanState(enum.Enum):
    """Lifecycle of a span."""

    ON_NORMAL_FREELIST = "free"
    IN_USE = "in_use"


@dataclass
class Span:
    """A run of ``num_pages`` pages starting at page number ``start_page``."""

    start_page: int
    num_pages: int
    state: SpanState = SpanState.ON_NORMAL_FREELIST
    size_class: int = 0
    """0 for large spans; otherwise the class this span was carved for."""
    objects_free: int = 0
    """Free objects of this span currently sitting in the central list."""
    freelist_head: int = 0
    """Head of this span's object free list (address in simulated memory)."""

    @property
    def start_addr(self) -> int:
        return self.start_page << K_PAGE_SHIFT

    @property
    def length_bytes(self) -> int:
        return self.num_pages << K_PAGE_SHIFT

    @property
    def end_page(self) -> int:
        return self.start_page + self.num_pages

    def contains_page(self, page: int) -> bool:
        return self.start_page <= page < self.end_page

    def split(self, num_pages: int) -> "Span":
        """Shrink this span to ``num_pages`` and return the leftover span."""
        if not 0 < num_pages < self.num_pages:
            raise ValueError("split size must be within the span")
        leftover = Span(
            start_page=self.start_page + num_pages,
            num_pages=self.num_pages - num_pages,
        )
        self.num_pages = num_pages
        return leftover


class SpanList:
    """An ordered span collection with O(1) membership and removal.

    ``CentralFreeList.nonempty_spans`` was a plain list, which made
    ``_push_to_span``'s membership test and ``_release_span``'s removal
    linear scans per object — measurable on the refill path.  This keeps
    list semantics (append order, ``[-1]``, ``pop()`` from the tail) on
    top of an insertion-ordered dict keyed by object identity.  Spans on
    the list are distinct live objects (distinct page ranges), so identity
    keying matches the old equality semantics exactly; entries are always
    removed before a span object can die, so id reuse cannot alias.
    """

    __slots__ = ("_spans",)

    def __init__(self) -> None:
        self._spans: dict[int, Span] = {}

    def append(self, span: "Span") -> None:
        self._spans[id(span)] = span

    def pop(self) -> "Span":
        return self._spans.popitem()[1]

    def remove(self, span: "Span") -> None:
        del self._spans[id(span)]

    def __contains__(self, span: object) -> bool:
        return id(span) in self._spans

    def __getitem__(self, index: int) -> "Span":
        if index == -1:
            return next(reversed(self._spans.values()))
        return list(self._spans.values())[index]

    def __len__(self) -> int:
        return len(self._spans)

    def __bool__(self) -> bool:
        return bool(self._spans)

    def __iter__(self):
        return iter(self._spans.values())


@dataclass
class SpanSet:
    """Bookkeeping for all spans, keyed by page (the functional pagemap)."""

    by_page: dict[int, Span] = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)

    def register(self, span: Span) -> None:
        self.spans.append(span)
        self.by_page[span.start_page] = span
        self.by_page[span.end_page - 1] = span

    def register_interior(self, span: Span) -> None:
        """Map every page of a small-object span (object→span lookups on
        free() can land on any interior page)."""
        for page in range(span.start_page, span.end_page):
            self.by_page[page] = span

    def unregister(self, span: Span) -> None:
        if span in self.spans:
            self.spans.remove(span)
        for page in range(span.start_page, span.end_page):
            if self.by_page.get(page) is span:
                del self.by_page[page]

    def span_of_page(self, page: int) -> Span | None:
        return self.by_page.get(page)

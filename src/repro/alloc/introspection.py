"""MallocExtension-style introspection: where every byte is.

Real TCMalloc exposes ``MallocExtension::GetStats()`` — the per-pool byte
accounting operators read when a job's memory misbehaves.  This module
reproduces it for the simulated allocator: application bytes, thread-cache
bytes, central/transfer-cache bytes, unmapped/free page-heap bytes, and the
textual rendering ops are used to seeing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloc.allocator import TCMalloc


@dataclass(frozen=True)
class HeapStats:
    """Byte accounting across the pool hierarchy at one instant."""

    in_use_by_app: int
    thread_cache_bytes: int
    central_cache_bytes: int
    transfer_cache_bytes: int
    page_heap_free_bytes: int
    released_to_os_bytes: int
    reserved_from_os_bytes: int

    @property
    def heap_size(self) -> int:
        """Bytes currently backed by the OS (reserved minus released)."""
        return self.reserved_from_os_bytes - self.released_to_os_bytes

    @property
    def cached_bytes(self) -> int:
        return (
            self.thread_cache_bytes
            + self.central_cache_bytes
            + self.transfer_cache_bytes
            + self.page_heap_free_bytes
        )

    def consistent(self) -> bool:
        """Application + caches never exceed the live heap (slack allows for
        rounding and span metadata)."""
        return self.in_use_by_app + self.cached_bytes <= self.heap_size + 4096


def collect_stats(allocator: TCMalloc) -> HeapStats:
    """Walk every pool and account its bytes."""
    in_use = 0
    for size, cl in allocator.live.values():
        if cl == 0:
            in_use += allocator._pages_for(size) * allocator.config.page_size
        else:
            in_use += allocator.table.alloc_size_of(cl)

    thread_bytes = 0
    for cl in range(1, allocator.table.num_classes):
        thread_bytes += (
            allocator.thread_cache.lists[cl].length * allocator.table.alloc_size_of(cl)
        )

    central_bytes = 0
    transfer_bytes = 0
    for cl, central in enumerate(allocator.central_lists):
        if cl == 0:
            continue
        obj = allocator.table.alloc_size_of(cl)
        central_bytes += central.num_free_objects * obj
        transfer_bytes += central.transfer.parked_objects * obj

    page_free = allocator.page_heap.free_pages() * allocator.config.page_size
    stats = allocator.page_heap.stats
    return HeapStats(
        in_use_by_app=in_use,
        thread_cache_bytes=thread_bytes,
        central_cache_bytes=central_bytes,
        transfer_cache_bytes=transfer_bytes,
        page_heap_free_bytes=page_free,
        released_to_os_bytes=stats.bytes_released,
        reserved_from_os_bytes=stats.bytes_from_system,
    )


def render_stats(stats: HeapStats) -> str:
    """The classic MALLOC: block, tcmalloc style."""
    rows = [
        ("Bytes in use by application", stats.in_use_by_app),
        ("Bytes in thread cache freelists", stats.thread_cache_bytes),
        ("Bytes in central cache freelists", stats.central_cache_bytes),
        ("Bytes in transfer cache freelists", stats.transfer_cache_bytes),
        ("Bytes in page heap freelist", stats.page_heap_free_bytes),
        ("Bytes released to OS (aka unmapped)", stats.released_to_os_bytes),
        ("Actual memory used (physical + swap)", stats.heap_size),
        ("Virtual address space used", stats.reserved_from_os_bytes),
    ]
    lines = ["------------------------------------------------", "MALLOC:"]
    for label, value in rows:
        lines.append(f"MALLOC: {value:>12} ({value / (1 << 20):6.1f} MiB) {label}")
    lines.append("------------------------------------------------")
    return "\n".join(lines)

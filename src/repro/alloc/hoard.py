"""A Hoard-style allocator: per-processor heaps with superblocks.

Section 2 lists Hoard (Berger et al., ASPLOS 2000) among the modern
multithreaded allocators that "were all designed to support robust
multithreaded performance".  Hoard's design differs from TCMalloc's in ways
that make it a useful third client for Mallacc:

* memory lives in fixed-size **superblocks** (8 KB here), each dedicated to
  one size class, each with its own internal free list;
* each processor heap owns whole superblocks; a block freed from any thread
  returns to *its superblock* (not the freeing thread's cache);
* the **emptiness invariant** bounds blowup: when a heap's in-use fraction
  drops below the emptiness threshold ``f`` and it holds more than ``K``
  superblocks of slack, its emptiest superblock migrates to the global heap
  for other processors to reuse — Hoard's central theorem caps per-heap
  memory at ``O(live) + K·S``;
* size classes are a geometric sequence with ratio ``b`` (Hoard used 1.2);

The fast path still ends in a Figure 7 list pop, but the list belongs to
*whichever superblock is current*, not to a per-class anchor — which is why
Mallacc integration (``make_mallacc_hoard``) must invalidate the malloc
cache's list half whenever the current superblock changes.  That caveat is
itself a finding about the accelerator's generality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.alloc.constants import AllocatorConfig
from repro.alloc.context import Emitter, Machine
from repro.sim.memory import NULL
from repro.sim.uop import Tag

SUPERBLOCK_BYTES = 8192
SIZE_RATIO = 1.2
MIN_BLOCK = 16
MAX_BLOCK = SUPERBLOCK_BYTES // 2
EMPTINESS_THRESHOLD = 0.25  # Hoard's f
SLACK_SUPERBLOCKS = 2  # Hoard's K


def hoard_size_classes() -> list[int]:
    """Geometric size classes with ratio 1.2, 8-byte aligned."""
    sizes = [MIN_BLOCK]
    while sizes[-1] < MAX_BLOCK:
        nxt = int(math.ceil(sizes[-1] * SIZE_RATIO / 8.0) * 8)
        if nxt == sizes[-1]:
            nxt += 8
        sizes.append(min(nxt, MAX_BLOCK))
    return sizes


@dataclass
class Superblock:
    """One 8 KB superblock carved for a single size class."""

    base: int
    block_size: int
    header_addr: int = 0
    """Header (head pointer, counters) in metadata space — kept out of the
    block area so small classes' link words are never clobbered."""
    owner: int = -1  # heap index; -1 = global heap
    freelist_head: int = 0
    blocks_in_use: int = 0
    capacity: int = 0

    def init_freelist(self, memory) -> None:
        self.capacity = SUPERBLOCK_BYTES // self.block_size
        addr = self.base
        for i in range(self.capacity):
            nxt = addr + self.block_size if i + 1 < self.capacity else NULL
            memory.write_word(addr, nxt)
            addr += self.block_size
        self.freelist_head = self.base

    @property
    def free_blocks(self) -> int:
        return self.capacity - self.blocks_in_use

    @property
    def fullness(self) -> float:
        return self.blocks_in_use / self.capacity if self.capacity else 0.0

    def contains(self, ptr: int) -> bool:
        return self.base <= ptr < self.base + SUPERBLOCK_BYTES


@dataclass
class HoardStats:
    mallocs: int = 0
    frees: int = 0
    superblocks_created: int = 0
    migrations_to_global: int = 0
    migrations_from_global: int = 0


class HoardAllocator:
    """A P-heap Hoard with one global heap, on the simulated machine."""

    def __init__(
        self,
        num_heaps: int = 1,
        machine: Machine | None = None,
        config: AllocatorConfig | None = None,
    ) -> None:
        if num_heaps < 1:
            raise ValueError("need at least one heap")
        self.machine = machine or Machine()
        self.config = config or AllocatorConfig()
        self.sizes = hoard_size_classes()
        self.num_heaps = num_heaps
        # heaps[h][cl] -> list of superblocks (current one last).
        self.heaps: list[dict[int, list[Superblock]]] = [
            {} for _ in range(num_heaps)
        ]
        self.global_heap: dict[int, list[Superblock]] = {}
        self.by_base: dict[int, Superblock] = {}
        self.live: dict[int, tuple[int, int]] = {}  # ptr -> (size, class idx)
        self.stats = HoardStats()
        self.current_changed: bool = False
        """Set when a malloc switched the current superblock (the Mallacc
        integration reads and clears this to invalidate its list cache)."""

    # -- size classes -----------------------------------------------------------
    def class_of(self, size: int) -> int:
        if size <= 0:
            raise ValueError("size must be positive")
        if size > MAX_BLOCK:
            raise MemoryError("large allocations not supported by this heap")
        for i, s in enumerate(self.sizes):
            if s >= size:
                return i
        raise AssertionError("unreachable")

    def block_size_of(self, cl: int) -> int:
        return self.sizes[cl]

    # -- allocation ------------------------------------------------------------
    def malloc(self, size: int, heap: int = 0) -> tuple[int, int]:
        """Allocate from processor heap ``heap``; returns ``(ptr, cycles)``."""
        self._check_heap(heap)
        em = self.machine.new_emitter()
        cl = self.class_of(size)
        lookup = em.alu(tag=Tag.SIZE_CLASS)
        cls_ld = em.load_table(0x100 + cl * 8, deps=(lookup,), tag=Tag.SIZE_CLASS)

        self.current_changed = False
        sb = self._current_superblock(em, heap, cl, (cls_ld,))
        ptr, pop_uop = self._pop_block(em, sb, (cls_ld,))
        self.live[ptr] = (size, cl)
        self.stats.mallocs += 1
        em.alu(deps=(pop_uop,), tag=Tag.METADATA)
        result = self.machine.timing.run(em.build())
        self.machine.advance(result.cycles)
        return ptr, result.cycles

    def free(self, ptr: int, heap: int = 0) -> int:
        """Free ``ptr`` back to its superblock; returns cycles."""
        self._check_heap(heap)
        if ptr not in self.live:
            raise ValueError(f"free of unallocated pointer {ptr:#x}")
        size, cl = self.live.pop(ptr)
        em = self.machine.new_emitter()
        # Find the superblock from the pointer (the Hoard header lookup).
        sb_base = ptr - (ptr - 0x2000_0000_0000) % SUPERBLOCK_BYTES
        sb = self.by_base[sb_base]
        hdr = em.load_table(sb.header_addr + 8, tag=Tag.SIZE_CLASS)
        if not sb.contains(ptr):
            raise AssertionError("pointer outside its superblock")
        # Push onto the superblock's list (Figure 7 push).
        old_head, head_uop = em.load_word(sb.header_addr, deps=(hdr,), tag=Tag.PUSH_POP)
        em.store_word(sb.header_addr, ptr, deps=(head_uop,), tag=Tag.PUSH_POP)
        em.store_word(ptr, sb.freelist_head, deps=(head_uop,), tag=Tag.PUSH_POP)
        sb.freelist_head = ptr
        sb.blocks_in_use -= 1
        self.stats.frees += 1
        del old_head

        if sb.owner >= 0:
            self._maybe_migrate_to_global(em, sb.owner, cl)
        result = self.machine.timing.run(em.build())
        self.machine.advance(result.cycles)
        return result.cycles

    # -- internals ------------------------------------------------------------
    def _check_heap(self, heap: int) -> None:
        if not 0 <= heap < self.num_heaps:
            raise ValueError(f"bad heap index {heap}")

    def _current_superblock(self, em: Emitter, heap: int, cl: int, deps) -> Superblock:
        blocks = self.heaps[heap].setdefault(cl, [])
        if blocks and blocks[-1].free_blocks > 0:
            return blocks[-1]
        # Search older superblocks for space.
        for sb in reversed(blocks[:-1] if blocks else []):
            if sb.free_blocks > 0:
                blocks.remove(sb)
                blocks.append(sb)
                self.current_changed = True
                em.load_table(sb.header_addr + 8, deps=deps, tag=Tag.SLOW_PATH)
                return sb
        # Reuse a global superblock, else carve a new one.
        self.current_changed = True
        pool = self.global_heap.get(cl, [])
        if pool:
            sb = pool.pop()
            self.stats.migrations_from_global += 1
            em.fixed(self.config.costs.lock_acquire, deps=deps, tag=Tag.SLOW_PATH)
        else:
            reservation = self.machine.address_space.reserve_pages(
                SUPERBLOCK_BYTES // self.machine.address_space.page_size or 1
            )
            sb = Superblock(
                base=reservation.start,
                block_size=self.sizes[cl],
                header_addr=self.machine.address_space.reserve_metadata(64, align=64),
            )
            sb.init_freelist(self.machine.memory)
            self.by_base[sb.base] = sb
            self.stats.superblocks_created += 1
            em.fixed(self.config.costs.syscall // 4, deps=deps, tag=Tag.SLOW_PATH)
        sb.owner = heap
        self.heaps[heap].setdefault(cl, []).append(sb)
        return sb

    def _pop_block(self, em: Emitter, sb: Superblock, deps) -> tuple[int, int]:
        head = sb.freelist_head
        if head == NULL:
            raise AssertionError("current superblock must have a free block")
        next_ptr, uop = em.load_word(head, deps=deps, tag=Tag.PUSH_POP)
        em.store_word(sb.header_addr, next_ptr, deps=(uop,), tag=Tag.PUSH_POP)
        sb.freelist_head = next_ptr
        sb.blocks_in_use += 1
        return head, uop

    def _maybe_migrate_to_global(self, em: Emitter, heap: int, cl: int) -> None:
        """Hoard's emptiness invariant: if the heap is mostly empty and has
        slack, its emptiest superblock moves to the global heap."""
        blocks = self.heaps[heap].get(cl, [])
        if len(blocks) <= SLACK_SUPERBLOCKS:
            return
        in_use = sum(sb.blocks_in_use for sb in blocks)
        capacity = sum(sb.capacity for sb in blocks)
        if capacity and in_use / capacity < EMPTINESS_THRESHOLD:
            emptiest = min(blocks, key=lambda sb: sb.fullness)
            blocks.remove(emptiest)
            emptiest.owner = -1
            self.global_heap.setdefault(cl, []).append(emptiest)
            self.stats.migrations_to_global += 1
            self.current_changed = True
            em.fixed(self.config.costs.lock_acquire, tag=Tag.SLOW_PATH)

    # -- introspection ------------------------------------------------------------
    @property
    def live_bytes(self) -> int:
        return sum(size for size, _ in self.live.values())

    def reserved_bytes(self) -> int:
        return len(self.by_base) * SUPERBLOCK_BYTES

    def heap_bytes(self, heap: int) -> int:
        return sum(
            len(blocks) * SUPERBLOCK_BYTES for blocks in self.heaps[heap].values()
        )

    def check_invariants(self) -> None:
        """Every block is in exactly one place; per-superblock accounting
        matches its free list; ownership is consistent."""
        for sb in self.by_base.values():
            count, ptr = 0, sb.freelist_head
            while ptr != NULL and count <= sb.capacity:
                if not sb.contains(ptr):
                    raise AssertionError("free block escaped its superblock")
                ptr = self.machine.memory.read_word(ptr)
                count += 1
            if count != sb.free_blocks:
                raise AssertionError(
                    f"superblock {sb.base:#x}: list has {count}, "
                    f"accounting says {sb.free_blocks}"
                )
        for h, heap in enumerate(self.heaps):
            for blocks in heap.values():
                for sb in blocks:
                    if sb.owner != h:
                        raise AssertionError("owner field out of sync")
        for blocks in self.global_heap.values():
            for sb in blocks:
                if sb.owner != -1:
                    raise AssertionError("global superblock still owned")


class MallaccHoard(HoardAllocator):
    """Hoard with the Mallacc instructions — the generality stress test.

    The size-class half transfers directly (raw-size keying, since Hoard's
    geometric classes don't use TCMalloc's index function).  The free-list
    half needs care: the cached Head/Next describe *one* superblock's list,
    so the modified allocator invalidates the class's entry whenever the
    current superblock changes, and only pushes through ``mchdpush`` when
    the freed block belongs to the heap's current superblock.  Those
    invalidations are pure software policy — no hardware change — which is
    the paper's software-managed design paying off.
    """

    def __init__(
        self,
        num_heaps: int = 1,
        machine: Machine | None = None,
        config: AllocatorConfig | None = None,
        cache_config=None,
    ) -> None:
        super().__init__(num_heaps=num_heaps, machine=machine, config=config)
        from repro.core.instructions import MallaccISA
        from repro.core.malloc_cache import MallocCache, MallocCacheConfig

        # One malloc cache per heap: Mallacc is in-core state, and Hoard's
        # processor heaps correspond to cores.
        self.isas = [
            MallaccISA(
                cache=MallocCache(cache_config or MallocCacheConfig(index_keyed=False))
            )
            for _ in range(num_heaps)
        ]

    @property
    def malloc_cache(self):
        return self.isas[0].cache

    def malloc(self, size: int, heap: int = 0) -> tuple[int, int]:
        self._check_heap(heap)
        isa = self.isas[heap]
        isa.begin_call()
        em = self.machine.new_emitter()

        outcome = isa.mcszlookup(em, size)
        if outcome.hit:
            cl, cls_uop = outcome.size_class, outcome.uop
        else:
            cl = self.class_of(size)
            lookup = em.alu(tag=Tag.SIZE_CLASS)
            cls_uop = em.load_table(0x100 + cl * 8, deps=(lookup,), tag=Tag.SIZE_CLASS)
            isa.mcszupdate(em, size, self.block_size_of(cl), cl, deps=(cls_uop,))

        self.current_changed = False
        sb = self._current_superblock(em, heap, cl, (cls_uop,))
        if self.current_changed:
            # The cached list half describes a different superblock now.
            isa.cache.invalidate_class(cl)

        pop = isa.mchdpop(em, cl, deps=(cls_uop,))
        if pop.hit and pop.head == sb.freelist_head:
            # Cached copies verified against the superblock: skip the load.
            ptr = pop.head
            if self.machine.memory.read_word(ptr) != pop.next_ptr:
                raise AssertionError("malloc cache diverged from superblock list")
            em.store_word(sb.header_addr, pop.next_ptr, deps=(pop.uop,), tag=Tag.PUSH_POP)
            sb.freelist_head = pop.next_ptr
            sb.blocks_in_use += 1
            pop_uop = pop.uop
        else:
            if pop.hit:
                # Stale entry for another superblock: discard and fall back.
                isa.cache.invalidate_class(cl)
            ptr, pop_uop = self._pop_block(em, sb, (pop.uop,))
        if sb.freelist_head != NULL:
            isa.mcnxtprefetch(em, cl, sb.freelist_head, deps=(pop_uop,))

        self.live[ptr] = (size, cl)
        self.stats.mallocs += 1
        em.alu(deps=(pop_uop,), tag=Tag.METADATA)
        result = self.machine.timing.run(em.build())
        self.machine.advance(result.cycles)
        isa.pending = []
        return ptr, result.cycles

    def free(self, ptr: int, heap: int = 0) -> int:
        self._check_heap(heap)
        if ptr not in self.live:
            raise ValueError(f"free of unallocated pointer {ptr:#x}")
        size, cl = self.live[ptr]
        sb_base = ptr - (ptr - 0x2000_0000_0000) % SUPERBLOCK_BYTES
        sb = self.by_base[sb_base]
        isa = self.isas[heap]
        owner_blocks = self.heaps[sb.owner].get(cl, []) if sb.owner >= 0 else []
        if sb.owner != heap or not (owner_blocks and owner_blocks[-1] is sb):
            # Cross-heap free, or a non-current superblock: this core's
            # cached list half does not describe that list — software path.
            # The *owner's* core must also drop its copies: a remote free
            # mutates the list its malloc cache mirrors.  (TCMalloc avoids
            # this by freeing into the freeing thread's own list — one
            # reason its shape suits Mallacc better than Hoard's.)
            isa.cache.invalidate_class(cl)
            if sb.owner >= 0:
                self.isas[sb.owner].cache.invalidate_class(cl)
            return super().free(ptr, heap=heap)

        del self.live[ptr]
        isa.begin_call()
        em = self.machine.new_emitter()
        hit, old_head, uop = isa.mchdpush(em, cl, ptr)
        if hit and old_head != sb.freelist_head:
            raise AssertionError("malloc cache head diverged from superblock")
        em.store_word(sb.header_addr, ptr, deps=(uop,), tag=Tag.PUSH_POP)
        em.store_word(ptr, sb.freelist_head, deps=(uop,), tag=Tag.PUSH_POP)
        sb.freelist_head = ptr
        sb.blocks_in_use -= 1
        self.stats.frees += 1
        if sb.owner >= 0:
            before = self.stats.migrations_to_global
            self._maybe_migrate_to_global(em, sb.owner, cl)
            if self.stats.migrations_to_global != before:
                isa.cache.invalidate_class(cl)
        result = self.machine.timing.run(em.build())
        self.machine.advance(result.cycles)
        isa.pending = []
        return result.cycles

"""Central free lists: the shared mid-level pool.

Section 3.1: "If a free list is empty, the allocator must first fetch blocks
into a thread cache from a next-level pool ... Both approaches require
locking, and are orders of magnitude slower than hitting in a thread cache.
Should both of these sources be empty themselves, TCMalloc allocates a span
... from a page allocator, breaks up the span into appropriately sized
chunks, and places these chunks into the central free list and the
thread-local cache."

One :class:`CentralFreeList` exists per size class.  Objects are linked
through simulated memory inside their spans, so batch transfers emit the real
dependent-load chains, and span carving emits one store per object carved —
which is what prices a central-cache miss at the ~10^3-10^4 cycles seen in
Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloc.constants import AllocatorConfig
from repro.alloc.context import Emitter
from repro.alloc.page_heap import PageHeap
from repro.alloc.size_classes import SizeClassTable
from repro.alloc.span import Span, SpanList, SpanState
from repro.alloc.transfer_cache import TransferCache
from repro.sim.memory import NULL
from repro.sim.uop import Tag


@dataclass
class CentralStats:
    remove_calls: int = 0
    insert_calls: int = 0
    populates: int = 0
    objects_moved_out: int = 0
    objects_moved_in: int = 0
    spans_returned: int = 0
    contention_waits: int = 0
    contention_cycles: int = 0


@dataclass
class CentralFreeList:
    """The central list for one size class."""

    size_class: int
    table: SizeClassTable
    page_heap: PageHeap
    config: AllocatorConfig = field(default_factory=AllocatorConfig)
    nonempty_spans: SpanList = field(default_factory=SpanList)
    num_free_objects: int = 0
    stats: CentralStats = field(default_factory=CentralStats)
    busy_until: int = 0
    """Machine cycle until which the list's lock is held (the contention
    model for multithreaded runs: a second thread arriving earlier spins)."""
    critical_section_estimate: int = 250
    transfer: TransferCache = None  # type: ignore[assignment]
    """Whole-batch recycling slots in front of the span lists."""

    def __post_init__(self) -> None:
        if self.transfer is None:
            self.transfer = TransferCache(
                size_class=self.size_class,
                batch_size=self.table.batch_size_of(self.size_class) if self.size_class else 1,
                config=self.config,
            )
    last_owner: object = None
    """Which thread cache last held the lock; re-acquisition by the same
    owner never spins (there is no one to contend with)."""

    # -- public (called by thread caches with the lock modeled) --------------
    def remove_range(self, em: Emitter, num: int, deps: tuple[int, ...] = (), owner: object = None) -> list[int]:
        """Pop up to ``num`` objects for a thread cache; populates from the
        page heap when empty.  Emits the lock and per-object accesses."""
        if num <= 0:
            raise ValueError("num must be positive")
        self.stats.remove_calls += 1
        # Structural tokens: refill shapes are interned now, so every
        # data-dependent decision (batch size, unpark, populate points)
        # must key the template (see TraceBuilder.note).
        em.note(("central_remove", num))
        lock = self._emit_lock(em, deps, owner)
        # Fast mid-tier: a parked transfer batch satisfies a full-batch
        # request without touching any span.
        parked = self.transfer.try_remove(em, num, deps=(lock,))
        em.note(("transfer_unpark", parked is not None))
        if parked is not None:
            em.fixed(self.config.costs.lock_release, deps=(lock,), tag=Tag.SLOW_PATH)
            self.stats.objects_moved_out += len(parked)
            return parked
        taken: list[int] = []
        dep: tuple[int, ...] = (lock,)
        while len(taken) < num:
            if not self.nonempty_spans:
                em.note(("populate_at", len(taken)))
                if not self._populate(em, dep):
                    break
            span = self.nonempty_spans[-1]
            ptr, uop = self._pop_from_span(em, span, dep)
            dep = (uop,)
            taken.append(ptr)
            if span.freelist_head == NULL:
                self.nonempty_spans.pop()
        em.fixed(self.config.costs.lock_release, deps=dep, tag=Tag.SLOW_PATH)
        self.num_free_objects -= len(taken)
        self.stats.objects_moved_out += len(taken)
        return taken

    def insert_range(self, em: Emitter, ptrs: list[int], deps: tuple[int, ...] = (), owner: object = None) -> None:
        """Return a batch of objects from a thread cache; spans that become
        entirely free go back to the page heap."""
        self.stats.insert_calls += 1
        lock = self._emit_lock(em, deps, owner)
        parked = self.transfer.try_insert(em, ptrs, deps=(lock,))
        em.note(("transfer_park", parked))
        if parked:
            em.fixed(self.config.costs.lock_release, deps=(lock,), tag=Tag.SLOW_PATH)
            self.stats.objects_moved_in += len(ptrs)
            return
        dep: tuple[int, ...] = (lock,)
        for i, ptr in enumerate(ptrs):
            span = self.page_heap.span_of_addr(ptr)
            if span is None or span.size_class != self.size_class:
                raise ValueError(f"object {ptr:#x} does not belong to class {self.size_class}")
            uop = self._push_to_span(em, span, ptr, dep)
            dep = (uop,)
            self.num_free_objects += 1
            if span.objects_free == self.table.objects_per_span(self.size_class):
                em.note(("release_at", i))
                self._release_span(em, span)
        em.fixed(self.config.costs.lock_release, deps=dep, tag=Tag.SLOW_PATH)
        self.stats.objects_moved_in += len(ptrs)

    def _emit_lock(self, em: Emitter, deps: tuple[int, ...], owner: object = None) -> int:
        """Acquire the list lock, spinning if another thread holds it.

        Single-threaded runs never contend (busy_until stays in the past);
        with multiple thread contexts on one machine clock, overlapping
        critical sections serialize here — the cost Section 3.1 describes
        as "orders of magnitude slower than hitting in a thread cache"."""
        now = em.machine.clock
        contended = owner is not None and self.last_owner is not None and owner is not self.last_owner
        wait = max(0, self.busy_until - now) if contended else 0
        if wait:
            self.stats.contention_waits += 1
            self.stats.contention_cycles += wait
        self.busy_until = max(now, self.busy_until) + self.critical_section_estimate
        self.last_owner = owner
        return em.fixed(
            self.config.costs.lock_acquire + wait, deps=deps, tag=Tag.SLOW_PATH
        )

    # -- span-level object lists ----------------------------------------------
    def _pop_from_span(self, em: Emitter, span: Span, deps: tuple[int, ...]) -> tuple[int, int]:
        head = span.freelist_head
        next_ptr, uop = em.load_word(head, deps=deps, tag=Tag.SLOW_PATH)
        span.freelist_head = next_ptr
        span.objects_free -= 1
        return head, uop

    def _push_to_span(self, em: Emitter, span: Span, ptr: int, deps: tuple[int, ...]) -> int:
        uop = em.store_word(ptr, span.freelist_head, deps=deps, tag=Tag.SLOW_PATH)
        if span.freelist_head == NULL and span not in self.nonempty_spans:
            self.nonempty_spans.append(span)
        span.freelist_head = ptr
        span.objects_free += 1
        if span.objects_free > self.table.objects_per_span(self.size_class):
            raise AssertionError("span over-filled")
        return uop

    def _populate(self, em: Emitter, deps: tuple[int, ...]) -> bool:
        """Fetch a span from the page heap and carve it into objects."""
        pages = self.table.pages_of(self.size_class)
        obj_size = self.table.alloc_size_of(self.size_class)
        span = self.page_heap.allocate_span(em, pages, deps)
        span.size_class = self.size_class
        self.page_heap.spans.register_interior(span)
        # Link every object through simulated memory: one store each.
        num_objects = span.length_bytes // obj_size
        em.note(("carve", num_objects))
        addr = span.start_addr
        prev_uop = None
        for i in range(num_objects):
            next_addr = addr + obj_size if i + 1 < num_objects else NULL
            prev_uop = em.store_word(
                addr, next_addr, deps=deps if prev_uop is None else (prev_uop,), tag=Tag.SLOW_PATH
            )
            addr += obj_size
        span.freelist_head = span.start_addr
        span.objects_free = num_objects
        self.nonempty_spans.append(span)
        self.num_free_objects += num_objects
        self.stats.populates += 1
        return True

    def _release_span(self, em: Emitter, span: Span) -> None:
        if span in self.nonempty_spans:
            self.nonempty_spans.remove(span)
        self.num_free_objects -= span.objects_free
        # Unmap interior pages and hand the span back.
        self.page_heap.spans.unregister(span)
        span.state = SpanState.IN_USE  # free_span expects an in-use span
        self.page_heap.spans.register(span)
        self.page_heap.free_span(em, span)
        self.stats.spans_returned += 1

"""Full-program speedup with statistical significance (Table 2).

The paper runs each workload several times, computes full-program speedup,
and reports only workloads where a single-sided Student's t-test rejects the
slowdown hypothesis with ≥95% confidence.  We reproduce the protocol with
seed-randomized trials: each trial regenerates the workload stream with a
different seed and runs baseline and Mallacc on it.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

try:  # scipy is optional: fall back to the pure-python t machinery.
    from scipy import stats as scipy_stats
except ImportError:  # pragma: no cover - exercised via test monkeypatching
    scipy_stats = None

from repro.harness.experiments import compare_workload
from repro.sim.sampling import percentile_rank_indices, student_t_sf2
from repro.workloads.base import Workload


def one_sample_t_pvalue_two_sided(values: list[float], popmean: float) -> tuple[float, float]:
    """``(t_stat, two_sided_p)`` of a one-sample t-test, scipy-free.

    Matches ``scipy.stats.ttest_1samp`` to float precision; used whenever
    scipy is not installed.
    """
    n = len(values)
    if n < 2:
        raise ValueError("need at least two values")
    mu = sum(values) / n
    var = sum((x - mu) ** 2 for x in values) / (n - 1)
    if var == 0.0:
        return (math.inf if mu > popmean else -math.inf if mu < popmean else 0.0), (
            1.0 if mu == popmean else 0.0
        )
    t_stat = (mu - popmean) / math.sqrt(var / n)
    return t_stat, student_t_sf2(t_stat, n - 1)


@dataclass
class SpeedupTrials:
    """Per-workload trial results and the t-test verdict."""

    workload: str
    speedups: list[float] = field(default_factory=list)
    """Full-program speedups in % (one per trial)."""

    @property
    def mean(self) -> float:
        return sum(self.speedups) / len(self.speedups) if self.speedups else 0.0

    @property
    def stddev(self) -> float:
        n = len(self.speedups)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self.speedups) / (n - 1))

    _p_value_cache: tuple[int, float] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def p_value(self) -> float:
        """One-sided p-value for H0: speedup <= 0 (smaller = stronger
        evidence of genuine speedup).  Cached per trial count — sweeps read
        it repeatedly and the t-test is pure in ``speedups``."""
        n = len(self.speedups)
        if self._p_value_cache is not None and self._p_value_cache[0] == n:
            return self._p_value_cache[1]
        p = self._compute_p_value()
        self._p_value_cache = (n, p)
        return p

    def _compute_p_value(self) -> float:
        if len(self.speedups) < 2:
            return 1.0
        if self.stddev == 0.0:
            return 0.0 if self.mean > 0 else 1.0
        if scipy_stats is not None:
            t_stat, p_two = scipy_stats.ttest_1samp(self.speedups, 0.0)
        else:
            t_stat, p_two = one_sample_t_pvalue_two_sided(self.speedups, 0.0)
        if t_stat <= 0:
            return 1.0
        return p_two / 2.0

    @property
    def significant(self) -> bool:
        """True when a slowdown is rejected with 95+% probability — the
        paper's inclusion criterion for Table 2."""
        return self.p_value < 0.05


def bootstrap_ci(
    values: list[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean.

    Used alongside the t-test to report interval estimates for the
    improvement percentages (the t-test answers "is it real?", the CI
    answers "how big?").
    """
    if not values:
        raise ValueError("need at least one value")
    if len(values) == 1:
        return (values[0], values[0])
    rng = random.Random(seed)
    n = len(values)
    means = sorted(
        sum(rng.choice(values) for _ in range(n)) / n for _ in range(resamples)
    )
    lo_i, hi_i = percentile_rank_indices(resamples, confidence)
    return (means[lo_i], means[hi_i])


def program_speedup_trials(
    workload: Workload,
    trials: int = 5,
    num_ops: int | None = None,
    cache_entries: int = 32,
    base_seed: int = 100,
) -> SpeedupTrials:
    """Run ``trials`` seed-randomized experiments and collect speedups."""
    result = SpeedupTrials(workload=workload.name)
    for t in range(trials):
        comparison = compare_workload(
            workload,
            num_ops=num_ops,
            seed=base_seed + 17 * t,
            cache_entries=cache_entries,
        )
        result.speedups.append(comparison.program_speedup)
    return result

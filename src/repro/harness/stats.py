"""Full-program speedup with statistical significance (Table 2).

The paper runs each workload several times, computes full-program speedup,
and reports only workloads where a single-sided Student's t-test rejects the
slowdown hypothesis with ≥95% confidence.  We reproduce the protocol with
seed-randomized trials: each trial regenerates the workload stream with a
different seed and runs baseline and Mallacc on it.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from scipy import stats as scipy_stats

from repro.harness.experiments import compare_workload
from repro.workloads.base import Workload


@dataclass
class SpeedupTrials:
    """Per-workload trial results and the t-test verdict."""

    workload: str
    speedups: list[float] = field(default_factory=list)
    """Full-program speedups in % (one per trial)."""

    @property
    def mean(self) -> float:
        return sum(self.speedups) / len(self.speedups) if self.speedups else 0.0

    @property
    def stddev(self) -> float:
        n = len(self.speedups)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self.speedups) / (n - 1))

    @property
    def p_value(self) -> float:
        """One-sided p-value for H0: speedup <= 0 (smaller = stronger
        evidence of genuine speedup)."""
        if len(self.speedups) < 2:
            return 1.0
        if self.stddev == 0.0:
            return 0.0 if self.mean > 0 else 1.0
        t_stat, p_two = scipy_stats.ttest_1samp(self.speedups, 0.0)
        if t_stat <= 0:
            return 1.0
        return p_two / 2.0

    @property
    def significant(self) -> bool:
        """True when a slowdown is rejected with 95+% probability — the
        paper's inclusion criterion for Table 2."""
        return self.p_value < 0.05


def bootstrap_ci(
    values: list[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean.

    Used alongside the t-test to report interval estimates for the
    improvement percentages (the t-test answers "is it real?", the CI
    answers "how big?").
    """
    if not values:
        raise ValueError("need at least one value")
    if len(values) == 1:
        return (values[0], values[0])
    rng = random.Random(seed)
    n = len(values)
    means = sorted(
        sum(rng.choice(values) for _ in range(n)) / n for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    lo = means[int(alpha * resamples)]
    hi = means[min(resamples - 1, int((1.0 - alpha) * resamples))]
    return (lo, hi)


def program_speedup_trials(
    workload: Workload,
    trials: int = 5,
    num_ops: int | None = None,
    cache_entries: int = 32,
    base_seed: int = 100,
) -> SpeedupTrials:
    """Run ``trials`` seed-randomized experiments and collect speedups."""
    result = SpeedupTrials(workload=workload.name)
    for t in range(trials):
        comparison = compare_workload(
            workload,
            num_ops=num_ops,
            seed=base_seed + 17 * t,
            cache_entries=cache_entries,
        )
        result.speedups.append(comparison.program_speedup)
    return result

"""Distribution metrics for the paper's figures.

The paper's duration plots (Figures 1, 2, 15, 16) are *time-weighted*: each
call contributes its own duration to the bin it falls in, so the y-axis reads
"time in calls (PDF %)" — a handful of 10^4-cycle calls can outweigh
thousands of 20-cycle hits.  Figure 6 is a per-call (not time) CDF over the
number of distinct size classes, most-used first.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.alloc.allocator import CallRecord


@dataclass(frozen=True)
class Histogram:
    """Log-spaced histogram of time spent in calls by call duration."""

    bin_edges: tuple[float, ...]
    """len(bins)+1 edges, in cycles."""
    weights: tuple[float, ...]
    """Percentage of total time per bin (sums to ~100)."""

    def cumulative(self) -> tuple[float, ...]:
        acc = 0.0
        out = []
        for w in self.weights:
            acc += w
            out.append(acc)
        return tuple(out)

    def peak_bins(self, min_share: float = 5.0) -> list[tuple[float, float, float]]:
        """Local maxima holding at least ``min_share``% of time, as
        (lo_edge, hi_edge, share%) — used to locate Figure 1's three peaks.

        A run of equal-height bins (a plateau) is one peak, reported once
        and spanning the whole run, not once per bin."""
        peaks = []
        i, n = 0, len(self.weights)
        while i < n:
            w = self.weights[i]
            j = i
            while j + 1 < n and self.weights[j + 1] == w:
                j += 1
            left = self.weights[i - 1] if i > 0 else 0.0
            right = self.weights[j + 1] if j + 1 < n else 0.0
            if w >= min_share and w >= left and w >= right:
                peaks.append((self.bin_edges[i], self.bin_edges[j + 1], w))
            i = j + 1
        return peaks


def duration_histogram(
    records: list[CallRecord],
    bins_per_decade: int = 4,
    max_decade: int = 6,
    malloc_only: bool = False,
) -> Histogram:
    """Time-in-calls PDF over log-spaced duration bins (Figures 1, 15, 16)."""
    if malloc_only:
        records = [r for r in records if r.is_malloc]
    num_bins = bins_per_decade * max_decade
    edges = [10 ** (i / bins_per_decade) for i in range(num_bins + 1)]
    weights = [0.0] * num_bins
    total = 0.0
    for r in records:
        total += r.cycles
        # Bin against the edges actually reported: floating-point rounding in
        # log10(cycles) * bins_per_decade can land a value one bin away from
        # the bracket [edges[i], edges[i+1]) that bisect finds directly.
        idx = min(num_bins - 1, max(0, bisect.bisect_right(edges, r.cycles) - 1))
        weights[idx] += r.cycles
    if total > 0:
        weights = [100.0 * w / total for w in weights]
    return Histogram(bin_edges=tuple(edges), weights=tuple(weights))


def time_weighted_cdf(
    records: list[CallRecord], thresholds: tuple[int, ...] = (20, 50, 100, 1000, 10000, 100000)
) -> dict[int, float]:
    """Cumulative % of allocator time in calls below each threshold
    (Figure 2's y-axis sampled at round numbers)."""
    total = sum(r.cycles for r in records)
    out: dict[int, float] = {}
    for t in thresholds:
        below = sum(r.cycles for r in records if r.cycles < t)
        out[t] = 100.0 * below / total if total else 0.0
    return out


def size_class_cdf(records: list[CallRecord], max_classes: int = 30) -> list[float]:
    """Per-call CDF over size classes, most frequently used first
    (Figure 6): entry k is the % of malloc calls covered by the top k+1
    classes."""
    counts: dict[int, int] = {}
    total = 0
    for r in records:
        if r.is_malloc and r.size_class > 0:
            counts[r.size_class] = counts.get(r.size_class, 0) + 1
            total += 1
    if not total:
        return []
    ordered = sorted(counts.values(), reverse=True)
    cdf = []
    acc = 0
    for c in ordered[:max_classes]:
        acc += c
        cdf.append(100.0 * acc / total)
    return cdf


def classes_for_coverage(records: list[CallRecord], coverage: float = 90.0) -> int:
    """How many size classes cover ``coverage``% of malloc calls (the
    Figure 6 headline metric: all but one workload need <5; xalancbmk ~30)."""
    cdf = size_class_cdf(records, max_classes=10**6)
    for i, pct in enumerate(cdf):
        if pct >= coverage:
            return i + 1
    return len(cdf)


def trace_cache_summary(*results) -> dict[str, float]:
    """Aggregate trace-scheduling memoization stats over run results.

    Accepts any objects carrying ``trace_cache_hits``/``trace_cache_misses``
    (:class:`~repro.harness.runner.RunResult`,
    :class:`~repro.harness.runner.MultiThreadRunResult`); returns hits,
    misses, lookups, and the pooled hit rate.  All zeros means memoization
    was disabled (or nothing was scheduled).
    """
    hits = sum(r.trace_cache_hits for r in results)
    misses = sum(r.trace_cache_misses for r in results)
    lookups = hits + misses
    return {
        "hits": float(hits),
        "misses": float(misses),
        "lookups": float(lookups),
        "hit_rate": hits / lookups if lookups else 0.0,
    }


def intern_summary(*results) -> dict[str, float]:
    """Aggregate emission-template intern stats over run results.

    Accepts any objects carrying ``intern_hits``/``intern_misses``
    (:class:`~repro.harness.runner.RunResult`,
    :class:`~repro.harness.runner.MultiThreadRunResult`,
    :class:`~repro.harness.parallel.CellResult`); returns hits, misses,
    lookups, and the pooled hit rate.  All zeros means interning was
    disabled (or nothing was allocated).  Like the trace cache, these are
    measurement machinery, never science: interning on/off is byte-invisible
    in every figure payload.
    """
    hits = sum(r.intern_hits for r in results)
    misses = sum(r.intern_misses for r in results)
    lookups = hits + misses
    return {
        "hits": float(hits),
        "misses": float(misses),
        "lookups": float(lookups),
        "hit_rate": hits / lookups if lookups else 0.0,
    }


def sampling_summary(*results) -> dict[str, float]:
    """Aggregate sampled-replay telemetry over run results.

    Accepts any objects carrying ``detailed_calls``/``warming_calls``
    (:class:`~repro.harness.runner.SampledRunResult`,
    :class:`~repro.harness.parallel.CellResult`); returns the pooled call
    counts and the detail fraction (the sampling cost knob: the share of
    measured calls that paid for detailed timing simulation).  All zeros
    means every run was exact (or nothing ran).
    """
    detailed = sum(getattr(r, "detailed_calls", 0) for r in results)
    warming = sum(getattr(r, "warming_calls", 0) for r in results)
    total = detailed + warming
    return {
        "detailed_calls": float(detailed),
        "warming_calls": float(warming),
        "measured_calls": float(total),
        "detail_fraction": detailed / total if total else 0.0,
    }


def profile_stage_shares(summary: dict) -> dict[str, float]:
    """Per-stage share of replay wall time from a
    :meth:`~repro.harness.profile.HotPathProfiler.summary` payload.

    Shares are relative to the ``replay`` stage (the whole op loop); an
    empty dict means the profiler never saw a replay."""
    stages = summary.get("stages", {})
    replay = stages.get("replay", {}).get("seconds", 0.0)
    if not replay:
        return {}
    return {
        name: stage["seconds"] / replay
        for name, stage in stages.items()
        if name != "replay"
    }


def mean_cycles(records: list[CallRecord], malloc_only: bool = True, fast_only: bool = False) -> float:
    sel = [
        r
        for r in records
        if (r.is_malloc or not malloc_only) and (r.is_fast_path or not fast_only)
    ]
    return sum(r.cycles for r in sel) / len(sel) if sel else 0.0


def median_cycles(records: list[CallRecord], malloc_only: bool = True) -> float:
    sel = sorted(r.cycles for r in records if r.is_malloc or not malloc_only)
    if not sel:
        return 0.0
    mid = len(sel) // 2
    return float(sel[mid]) if len(sel) % 2 else (sel[mid - 1] + sel[mid]) / 2.0

"""Baseline vs Mallacc vs limit-study comparisons (Figures 13, 14, 18).

``compare_workload`` replays one op stream three ways:

* **baseline** — stock TCMalloc, with the limit-study ablation scheduled
  per call (the paper's optimistic upper bound: size-class, sampling and
  push/pop instructions "simply ignored by performance simulation");
* **Mallacc** — :class:`~repro.core.accel_allocator.MallaccTCMalloc` with a
  malloc cache of the requested size (the paper's headline uses 32 entries).

Both runs see the identical op sequence on identically configured fresh
machines, so the only difference is the accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloc.allocator import TCMalloc
from repro.alloc.constants import AllocatorConfig
from repro.core.accel_allocator import MallaccTCMalloc
from repro.core.malloc_cache import MallocCacheConfig
from repro.harness.runner import RunResult, run_workload
from repro.sim.uop import LIMIT_STUDY_TAGS
from repro.workloads.base import Workload

LIMIT_ABLATION = "limit"


def _pct_improvement(base: int, new: int) -> float:
    return 100.0 * (base - new) / base if base else 0.0


@dataclass
class WorkloadComparison:
    """Results of one workload under baseline and Mallacc."""

    workload: str
    baseline: RunResult
    mallacc: RunResult
    paper: dict[str, float] = field(default_factory=dict)

    # -- Figure 13: allocator (malloc+free) time improvement -----------------
    @property
    def allocator_improvement(self) -> float:
        return _pct_improvement(
            self.baseline.allocator_cycles, self.mallacc.allocator_cycles
        )

    @property
    def allocator_limit_improvement(self) -> float:
        return _pct_improvement(
            self.baseline.allocator_cycles,
            self.baseline.ablated_allocator_cycles(LIMIT_ABLATION),
        )

    # -- Figure 14: malloc()-only improvement ----------------------------------
    @property
    def malloc_improvement(self) -> float:
        return _pct_improvement(self.baseline.malloc_cycles, self.mallacc.malloc_cycles)

    @property
    def malloc_limit_improvement(self) -> float:
        return _pct_improvement(
            self.baseline.malloc_cycles,
            self.baseline.ablated_malloc_cycles(LIMIT_ABLATION),
        )

    # -- Figure 18 / Table 2 ---------------------------------------------------
    @property
    def allocator_fraction(self) -> float:
        """Fraction of baseline program time spent in the allocator."""
        return self.baseline.allocator_fraction

    @property
    def program_speedup(self) -> float:
        """Full-program speedup in % (non-allocator time unchanged)."""
        base_total = self.baseline.total_cycles
        accel_total = self.mallacc.allocator_cycles + self.baseline.app_cycles
        return _pct_improvement(base_total, accel_total)


def make_baseline(
    config: AllocatorConfig | None = None,
    memoize_traces: bool | None = None,
    intern_traces: bool | None = None,
) -> TCMalloc:
    """A stock TCMalloc wired for the limit-study ablation."""
    return TCMalloc(
        config=config,
        ablations={LIMIT_ABLATION: LIMIT_STUDY_TAGS},
        memoize_traces=memoize_traces,
        intern_traces=intern_traces,
    )


def make_mallacc(
    cache_entries: int = 32,
    config: AllocatorConfig | None = None,
    cache_config: MallocCacheConfig | None = None,
    memoize_traces: bool | None = None,
    intern_traces: bool | None = None,
) -> MallaccTCMalloc:
    cache_config = cache_config or MallocCacheConfig(num_entries=cache_entries)
    return MallaccTCMalloc(
        config=config,
        cache_config=cache_config,
        memoize_traces=memoize_traces,
        intern_traces=intern_traces,
    )


def compare_workload(
    workload: Workload,
    num_ops: int | None = None,
    seed: int = 1,
    cache_entries: int = 32,
    config: AllocatorConfig | None = None,
    cache_config: MallocCacheConfig | None = None,
    model_app_traffic: bool = True,
    memoize_traces: bool | None = None,
    intern_traces: bool | None = None,
) -> WorkloadComparison:
    """Run one workload under baseline and Mallacc and compare.

    ``memoize_traces`` toggles trace-scheduling memoization on both runs
    (``None`` keeps the :class:`~repro.sim.timing.CoreConfig` default, which
    is on); ``intern_traces`` toggles emission-template interning the same
    way (``None`` keeps the ``REPRO_TRACE_INTERN`` default, also on).
    Results are bit-identical under any combination — the differential
    sweeps in ``tests/integration/test_trace_cache_differential.py`` and
    ``tests/integration/test_hot_path_differential.py`` enforce it.
    """
    ops = list(workload.ops(seed=seed, num_ops=num_ops))

    baseline_alloc = make_baseline(
        config=config, memoize_traces=memoize_traces, intern_traces=intern_traces
    )
    baseline = run_workload(
        baseline_alloc, ops, name=workload.name, model_app_traffic=model_app_traffic
    )

    mallacc_alloc = make_mallacc(
        cache_entries=cache_entries,
        config=config,
        cache_config=cache_config,
        memoize_traces=memoize_traces,
        intern_traces=intern_traces,
    )
    mallacc = run_workload(
        mallacc_alloc, ops, name=workload.name, model_app_traffic=model_app_traffic
    )

    return WorkloadComparison(
        workload=workload.name,
        baseline=baseline,
        mallacc=mallacc,
        paper=dict(workload.paper),
    )


def summarize_comparison(c: WorkloadComparison) -> dict[str, float | int]:
    """The canonical scalar figure/table payload of one comparison.

    Both the serial path and the sharded :mod:`repro.harness.parallel` path
    reduce a :class:`WorkloadComparison` through this one function, so their
    outputs are comparable byte-for-byte after JSON serialization.
    """
    from repro.harness.metrics import classes_for_coverage, median_cycles

    return {
        "allocator_improvement": c.allocator_improvement,
        "allocator_limit_improvement": c.allocator_limit_improvement,
        "malloc_improvement": c.malloc_improvement,
        "malloc_limit_improvement": c.malloc_limit_improvement,
        "allocator_fraction": c.allocator_fraction,
        "program_speedup": c.program_speedup,
        "median_malloc_baseline": median_cycles(c.baseline.records),
        "median_malloc_mallacc": median_cycles(c.mallacc.records),
        "classes_at_90": classes_for_coverage(c.baseline.records),
        "baseline_allocator_cycles": c.baseline.allocator_cycles,
        "mallacc_allocator_cycles": c.mallacc.allocator_cycles,
        "trace_cache_hits": c.baseline.trace_cache_hits + c.mallacc.trace_cache_hits,
        "trace_cache_misses": (
            c.baseline.trace_cache_misses + c.mallacc.trace_cache_misses
        ),
    }


def geomean(values: list[float]) -> float:
    """Geometric mean of improvement percentages (as the paper reports),
    computed on the speedup ratios to tolerate near-zero entries."""
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= max(1e-9, 1.0 - v / 100.0)
    return 100.0 * (1.0 - product ** (1.0 / len(values)))

"""Baseline vs Mallacc vs limit-study comparisons (Figures 13, 14, 18).

``compare_workload`` replays one op stream three ways:

* **baseline** — stock TCMalloc, with the limit-study ablation scheduled
  per call (the paper's optimistic upper bound: size-class, sampling and
  push/pop instructions "simply ignored by performance simulation");
* **Mallacc** — :class:`~repro.core.accel_allocator.MallaccTCMalloc` with a
  malloc cache of the requested size (the paper's headline uses 32 entries).

Both runs see the identical op sequence on identically configured fresh
machines, so the only difference is the accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.alloc.allocator import TCMalloc
from repro.alloc.constants import AllocatorConfig
from repro.core.accel_allocator import MallaccTCMalloc
from repro.core.malloc_cache import MallocCacheConfig
from repro.harness.runner import (
    RunResult,
    SampledRunResult,
    _metric_seed,
    plan_for_ops,
    run_workload,
    run_workload_sampled,
)
from repro.sim.sampling import SamplingConfig, bootstrap_metric_ci
from repro.sim.uop import LIMIT_STUDY_TAGS
from repro.workloads.base import Op, Workload

LIMIT_ABLATION = "limit"


def _pct_improvement(base: int, new: int) -> float:
    return 100.0 * (base - new) / base if base else 0.0


@dataclass
class WorkloadComparison:
    """Results of one workload under baseline and Mallacc."""

    workload: str
    baseline: RunResult
    mallacc: RunResult
    paper: dict[str, float] = field(default_factory=dict)

    # -- Figure 13: allocator (malloc+free) time improvement -----------------
    @property
    def allocator_improvement(self) -> float:
        return _pct_improvement(
            self.baseline.allocator_cycles, self.mallacc.allocator_cycles
        )

    @property
    def allocator_limit_improvement(self) -> float:
        return _pct_improvement(
            self.baseline.allocator_cycles,
            self.baseline.ablated_allocator_cycles(LIMIT_ABLATION),
        )

    # -- Figure 14: malloc()-only improvement ----------------------------------
    @property
    def malloc_improvement(self) -> float:
        return _pct_improvement(self.baseline.malloc_cycles, self.mallacc.malloc_cycles)

    @property
    def malloc_limit_improvement(self) -> float:
        return _pct_improvement(
            self.baseline.malloc_cycles,
            self.baseline.ablated_malloc_cycles(LIMIT_ABLATION),
        )

    # -- Figure 18 / Table 2 ---------------------------------------------------
    @property
    def allocator_fraction(self) -> float:
        """Fraction of baseline program time spent in the allocator."""
        return self.baseline.allocator_fraction

    @property
    def program_speedup(self) -> float:
        """Full-program speedup in % (non-allocator time unchanged)."""
        base_total = self.baseline.total_cycles
        accel_total = self.mallacc.allocator_cycles + self.baseline.app_cycles
        return _pct_improvement(base_total, accel_total)


def make_baseline(
    config: AllocatorConfig | None = None,
    memoize_traces: bool | None = None,
    intern_traces: bool | None = None,
) -> TCMalloc:
    """A stock TCMalloc wired for the limit-study ablation."""
    return TCMalloc(
        config=config,
        ablations={LIMIT_ABLATION: LIMIT_STUDY_TAGS},
        memoize_traces=memoize_traces,
        intern_traces=intern_traces,
    )


def make_mallacc(
    cache_entries: int = 32,
    config: AllocatorConfig | None = None,
    cache_config: MallocCacheConfig | None = None,
    memoize_traces: bool | None = None,
    intern_traces: bool | None = None,
) -> MallaccTCMalloc:
    cache_config = cache_config or MallocCacheConfig(num_entries=cache_entries)
    return MallaccTCMalloc(
        config=config,
        cache_config=cache_config,
        memoize_traces=memoize_traces,
        intern_traces=intern_traces,
    )


def compare_workload(
    workload: Workload,
    num_ops: int | None = None,
    seed: int = 1,
    cache_entries: int = 32,
    config: AllocatorConfig | None = None,
    cache_config: MallocCacheConfig | None = None,
    model_app_traffic: bool = True,
    memoize_traces: bool | None = None,
    intern_traces: bool | None = None,
    ops: Sequence[Op] | None = None,
) -> WorkloadComparison:
    """Run one workload under baseline and Mallacc and compare.

    ``memoize_traces`` toggles trace-scheduling memoization on both runs
    (``None`` keeps the :class:`~repro.sim.timing.CoreConfig` default, which
    is on); ``intern_traces`` toggles emission-template interning the same
    way (``None`` keeps the ``REPRO_TRACE_INTERN`` default, also on).
    Results are bit-identical under any combination — the differential
    sweeps in ``tests/integration/test_trace_cache_differential.py`` and
    ``tests/integration/test_hot_path_differential.py`` enforce it.

    ``ops`` injects a pre-generated stream instead of generating one from
    ``(seed, num_ops)`` — it must equal ``list(workload.ops(seed=seed,
    num_ops=num_ops))`` for the result to be meaningful.  The parallel
    harness uses this to share one read-only stream across the cells of a
    workload family (:mod:`repro.sim.warm`); the stream is deterministic, so
    injection is invisible to results.
    """
    ops = list(workload.ops(seed=seed, num_ops=num_ops)) if ops is None else list(ops)

    baseline_alloc = make_baseline(
        config=config, memoize_traces=memoize_traces, intern_traces=intern_traces
    )
    baseline = run_workload(
        baseline_alloc, ops, name=workload.name, model_app_traffic=model_app_traffic
    )

    mallacc_alloc = make_mallacc(
        cache_entries=cache_entries,
        config=config,
        cache_config=cache_config,
        memoize_traces=memoize_traces,
        intern_traces=intern_traces,
    )
    mallacc = run_workload(
        mallacc_alloc, ops, name=workload.name, model_app_traffic=model_app_traffic
    )

    # The runner cannot know the workload seed or cache size; enrich the
    # provenance records here where both are in scope.
    _enrich_manifests(
        (baseline, mallacc), seed=seed, cache_entries=cache_entries
    )
    return WorkloadComparison(
        workload=workload.name,
        baseline=baseline,
        mallacc=mallacc,
        paper=dict(workload.paper),
    )


def _enrich_manifests(results, seed: int, cache_entries: int) -> None:
    """Fill in comparison-scope provenance on the (baseline, mallacc) pair's
    run manifests: the workload seed and the malloc-cache size, plus which
    side of the comparison each run was."""
    for result, alloc in zip(results, ("baseline", "mallacc")):
        manifest = result.manifest
        if manifest is None:
            continue
        result.manifest = replace(
            manifest,
            seed=seed,
            extra=manifest.extra
            + (("alloc", alloc), ("cache_entries", str(cache_entries))),
        )


def summarize_comparison(c: WorkloadComparison) -> dict[str, float | int]:
    """The canonical scalar figure/table payload of one comparison.

    Both the serial path and the sharded :mod:`repro.harness.parallel` path
    reduce a :class:`WorkloadComparison` through this one function, so their
    outputs are comparable byte-for-byte after JSON serialization.
    """
    from repro.harness.metrics import classes_for_coverage, median_cycles

    return {
        "allocator_improvement": c.allocator_improvement,
        "allocator_limit_improvement": c.allocator_limit_improvement,
        "malloc_improvement": c.malloc_improvement,
        "malloc_limit_improvement": c.malloc_limit_improvement,
        "allocator_fraction": c.allocator_fraction,
        "program_speedup": c.program_speedup,
        "median_malloc_baseline": median_cycles(c.baseline.records),
        "median_malloc_mallacc": median_cycles(c.mallacc.records),
        "classes_at_90": classes_for_coverage(c.baseline.records),
        "baseline_allocator_cycles": c.baseline.allocator_cycles,
        "mallacc_allocator_cycles": c.mallacc.allocator_cycles,
        "trace_cache_hits": c.baseline.trace_cache_hits + c.mallacc.trace_cache_hits,
        "trace_cache_misses": (
            c.baseline.trace_cache_misses + c.mallacc.trace_cache_misses
        ),
    }


# ---------------------------------------------------------------------------
# Sampled comparisons
# ---------------------------------------------------------------------------
#: Component order of the paired per-interval tuples fed to the bootstrap.
_PAIRED_COMPONENTS = (
    "b_alloc",
    "b_malloc",
    "b_limit_alloc",
    "b_limit_malloc",
    "m_alloc",
    "m_malloc",
)


@dataclass
class SampledComparison:
    """Results of one workload under baseline and Mallacc, both replayed
    *sampled* on the **same** interval plan.

    Sharing the plan is what makes the bootstrap *paired*: every resample
    draws an interval and takes both sides' measurements from it, so
    interval-to-interval workload variation cancels in the improvement
    ratios and the CIs reflect only sampling error.  ``app_cycles`` comes
    from the baseline run and is exact (gaps are replayed in every mode),
    so program-speedup CIs only inherit the allocator-cycles uncertainty.
    """

    workload: str
    baseline: SampledRunResult
    mallacc: SampledRunResult
    paper: dict[str, float] = field(default_factory=dict)
    rounds: int = 1
    """Comparison-level adaptive refinement rounds (1 = no refinement)."""
    _cis: dict[str, tuple[float, float, float]] = field(
        default_factory=dict, repr=False
    )

    def _paired_values(self) -> dict[int, tuple[float, ...]]:
        out: dict[int, tuple[float, ...]] = {}
        for i in self.baseline.plan.sampled:
            b = self.baseline.interval_values[i]
            m = self.mallacc.interval_values[i]
            out[i] = (
                b.get("allocator", 0.0),
                b.get("malloc", 0.0),
                b.get(f"ablated_allocator:{LIMIT_ABLATION}", 0.0),
                b.get(f"ablated_malloc:{LIMIT_ABLATION}", 0.0),
                m.get("allocator", 0.0),
                m.get("malloc", 0.0),
            )
        return out

    def estimate(self, metric: str) -> tuple[float, float, float]:
        """``(point, ci_lo, ci_hi)`` for a named comparison metric, via the
        paired stratified bootstrap.  Deterministic: the seed mixes the
        metric name into the baseline config seed via crc32."""
        cached = self._cis.get(metric)
        if cached is not None:
            return cached
        app = float(self.baseline.app_cycles)
        metrics = {
            "allocator_improvement": lambda t: _pct_improvement(t[0], t[4]),
            "allocator_limit_improvement": lambda t: _pct_improvement(t[0], t[2]),
            "malloc_improvement": lambda t: _pct_improvement(t[1], t[5]),
            "malloc_limit_improvement": lambda t: _pct_improvement(t[1], t[3]),
            "program_speedup": lambda t: _pct_improvement(t[0] + app, t[4] + app),
            "allocator_fraction": lambda t: (t[0] / (t[0] + app)) if t[0] + app else 0.0,
        }
        if metric not in metrics:
            raise KeyError(f"unknown comparison metric {metric!r}")
        cfg = self.baseline.config
        cached = bootstrap_metric_ci(
            self.baseline.plan,
            self._paired_values(),
            metrics[metric],
            resamples=cfg.resamples,
            confidence=cfg.confidence,
            seed=_metric_seed(cfg.seed, f"paired:{metric}"),
        )
        self._cis[metric] = cached
        return cached

    def ci(self, metric: str) -> tuple[float, float]:
        return self.estimate(metric)[1:]

    # -- point estimates mirroring WorkloadComparison ------------------------
    @property
    def allocator_improvement(self) -> float:
        return self.estimate("allocator_improvement")[0]

    @property
    def allocator_limit_improvement(self) -> float:
        return self.estimate("allocator_limit_improvement")[0]

    @property
    def malloc_improvement(self) -> float:
        return self.estimate("malloc_improvement")[0]

    @property
    def malloc_limit_improvement(self) -> float:
        return self.estimate("malloc_limit_improvement")[0]

    @property
    def allocator_fraction(self) -> float:
        return self.estimate("allocator_fraction")[0]

    @property
    def program_speedup(self) -> float:
        return self.estimate("program_speedup")[0]

    @property
    def program_speedup_ci_halfwidth(self) -> float:
        """Half-width of the program-speedup CI in percentage points (the
        comparison-level error-budget criterion)."""
        _, lo, hi = self.estimate("program_speedup")
        return (hi - lo) / 2.0


def compare_workload_sampled(
    workload: Workload,
    num_ops: int | None = None,
    seed: int = 1,
    cache_entries: int = 32,
    config: AllocatorConfig | None = None,
    cache_config: MallocCacheConfig | None = None,
    model_app_traffic: bool = True,
    sampling: SamplingConfig | None = None,
    ops: Sequence[Op] | None = None,
) -> SampledComparison:
    """Sampled counterpart of :func:`compare_workload`.

    One plan is built up front (from a baseline-allocator functional probe
    for the phase sampler) and pinned for both replays, keeping the
    bootstrap paired.  When ``sampling.target_ci`` is set it is interpreted
    at the *comparison* level: the plan is densified and both sides re-run
    until the program-speedup CI half-width is at most ``target_ci``
    percentage points (or the plan is saturated / ``max_rounds`` reached).
    Per-run adaptive refinement is disabled — pairing requires both sides
    to see the same intervals.  ``ops`` injects a pre-generated stream, as
    in :func:`compare_workload`.
    """
    ops = list(workload.ops(seed=seed, num_ops=num_ops)) if ops is None else list(ops)
    cfg = sampling or SamplingConfig()

    def baseline_factory() -> TCMalloc:
        return make_baseline(config=config)

    def mallacc_factory() -> MallaccTCMalloc:
        return make_mallacc(
            cache_entries=cache_entries, config=config, cache_config=cache_config
        )

    target_ci = cfg.target_ci
    run_cfg = replace(cfg, target_ci=None)
    features = None
    rounds = 0
    while True:
        rounds += 1
        plan, features = plan_for_ops(baseline_factory, ops, run_cfg, features=features)
        baseline = run_workload_sampled(
            baseline_factory,
            ops,
            config=run_cfg,
            name=workload.name,
            model_app_traffic=model_app_traffic,
            plan=plan,
        )
        mallacc = run_workload_sampled(
            mallacc_factory,
            ops,
            config=run_cfg,
            name=workload.name,
            model_app_traffic=model_app_traffic,
            plan=plan,
        )
        _enrich_manifests(
            (baseline, mallacc), seed=seed, cache_entries=cache_entries
        )
        comparison = SampledComparison(
            workload=workload.name,
            baseline=baseline,
            mallacc=mallacc,
            paper=dict(workload.paper),
            rounds=rounds,
        )
        if target_ci is None:
            return comparison
        if comparison.program_speedup_ci_halfwidth <= target_ci:
            return comparison
        denser = run_cfg.escalated()
        if denser is None or rounds >= cfg.max_rounds:
            return comparison
        run_cfg = denser


def summarize_sampled_comparison(c: SampledComparison) -> dict:
    """Scalar payload of one sampled comparison: the same point-estimate
    keys as :func:`summarize_comparison` (so downstream table code can
    consume either) plus ``*_ci`` bounds and sampling telemetry.  Medians
    and class-coverage come from the detailed records only and are flagged
    by ``"sampled": True``."""
    from repro.harness.metrics import classes_for_coverage, median_cycles

    out: dict = {"sampled": True}
    for metric in (
        "allocator_improvement",
        "allocator_limit_improvement",
        "malloc_improvement",
        "malloc_limit_improvement",
        "allocator_fraction",
        "program_speedup",
    ):
        point, lo, hi = c.estimate(metric)
        out[metric] = point
        out[f"{metric}_ci"] = [lo, hi]
    out.update(
        {
            "median_malloc_baseline": median_cycles(c.baseline.records),
            "median_malloc_mallacc": median_cycles(c.mallacc.records),
            "classes_at_90": classes_for_coverage(c.baseline.records),
            "baseline_allocator_cycles": c.baseline.allocator_cycles,
            "mallacc_allocator_cycles": c.mallacc.allocator_cycles,
            "trace_cache_hits": (
                c.baseline.trace_cache_hits + c.mallacc.trace_cache_hits
            ),
            "trace_cache_misses": (
                c.baseline.trace_cache_misses + c.mallacc.trace_cache_misses
            ),
            "detail_fraction": c.baseline.plan.detail_fraction,
            "num_intervals": c.baseline.plan.num_intervals,
            "sampler": c.baseline.config.sampler,
            "rounds": c.rounds,
        }
    )
    return out


def geomean(values: list[float]) -> float:
    """Geometric mean of improvement percentages (as the paper reports),
    computed on the speedup ratios to tolerate near-zero entries."""
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= max(1e-9, 1.0 - v / 100.0)
    return 100.0 * (1.0 - product ** (1.0 / len(values)))

"""Fast-path component breakdown (Figure 4).

The paper estimates the cost of each fast-path step by removing its
instructions from simulated execution and subtracting from the baseline:
"These are estimates, and not strictly additive, since out-of-order cores
explicitly overlap work."  We do the same per call via uop-tag ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloc.allocator import TCMalloc
from repro.harness.runner import run_workload
from repro.sim.uop import LIMIT_STUDY_TAGS, Tag
from repro.workloads.base import Workload

COMPONENT_ABLATIONS: dict[str, frozenset[Tag]] = {
    "sampling": frozenset({Tag.SAMPLING}),
    "size_class": frozenset({Tag.SIZE_CLASS}),
    "push_pop": frozenset({Tag.PUSH_POP}),
    "combined": LIMIT_STUDY_TAGS,
}


@dataclass
class FastPathBreakdown:
    """Mean fast-path cycles for one workload, whole and per component."""

    workload: str
    baseline_cycles: float
    component_cycles: dict[str, float] = field(default_factory=dict)
    """Mean fast-path cycles with the named component removed."""

    def component_cost(self, name: str) -> float:
        """Estimated cycles attributable to a component (baseline minus
        ablated — the Figure 4 bar segments)."""
        return self.baseline_cycles - self.component_cycles[name]

    @property
    def combined_fraction(self) -> float:
        """Fraction of fast-path cycles the three components account for
        together (the paper: ≈50%)."""
        if not self.baseline_cycles:
            return 0.0
        return self.component_cost("combined") / self.baseline_cycles


def fastpath_breakdown(
    workload: Workload, num_ops: int = 2000, seed: int = 1
) -> FastPathBreakdown:
    """Run the workload once, scheduling every call under each ablation."""
    allocator = TCMalloc(ablations=COMPONENT_ABLATIONS)
    result = run_workload(allocator, workload.ops(seed=seed, num_ops=num_ops))
    fast = [r for r in result.records if r.is_fast_path]
    if not fast:
        raise ValueError(f"{workload.name} produced no fast-path calls")
    baseline = sum(r.cycles for r in fast) / len(fast)
    components = {
        name: sum(r.ablated[name] for r in fast) / len(fast)
        for name in COMPONENT_ABLATIONS
    }
    return FastPathBreakdown(
        workload=workload.name,
        baseline_cycles=baseline,
        component_cycles=components,
    )

"""Experiment harness: runs workloads, aggregates, and renders the paper's
tables and figures.

* :mod:`repro.harness.runner` — replay an op stream on an allocator;
* :mod:`repro.harness.metrics` — time-in-calls distributions (Figures 1, 2,
  15, 16), size-class CDFs (Figure 6), component breakdowns (Figure 4);
* :mod:`repro.harness.experiments` — baseline vs Mallacc vs limit-study
  comparisons (Figures 13, 14, 18);
* :mod:`repro.harness.sweeps` — malloc-cache size sensitivity (Figure 17);
* :mod:`repro.harness.parallel` — sharded, checkpointed, fault-tolerant
  execution of whole experiment matrices across worker processes;
* :mod:`repro.harness.validation` — simulator-vs-analytic-model error
  (Table 1);
* :mod:`repro.harness.stats` — full-program speedup with Student's t
  significance (Table 2);
* :mod:`repro.harness.figures` — plain-text rendering of all of the above.
"""

from repro.harness.experiments import WorkloadComparison, compare_workload
from repro.harness.metrics import (
    duration_histogram,
    size_class_cdf,
    time_weighted_cdf,
)
from repro.harness.parallel import (
    MatrixResult,
    SweepCell,
    build_matrix,
    run_matrix,
)
from repro.harness.runner import RunResult, run_workload

__all__ = [
    "MatrixResult",
    "RunResult",
    "SweepCell",
    "WorkloadComparison",
    "build_matrix",
    "compare_workload",
    "duration_histogram",
    "run_matrix",
    "run_workload",
    "size_class_cdf",
    "time_weighted_cdf",
]

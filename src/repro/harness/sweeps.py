"""Malloc-cache size sensitivity (Figure 17).

The paper sweeps cache sizes from 2 to 32 entries on the microbenchmark
suite and observes: small caches *hurt* (fallback path plus the wasted
lookup), speedup jumps sharply once the cache covers a strided benchmark's
class count, Gaussian benchmarks climb gradually (size-class locality), and
``tp`` can *lose* performance to prefetch blocking in tight loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.malloc_cache import MallocCacheConfig
from repro.harness.experiments import compare_workload, compare_workload_sampled
from repro.sim.sampling import SamplingConfig
from repro.workloads.base import Workload

DEFAULT_SIZES = (2, 4, 6, 8, 12, 16, 20, 24, 28, 32)


@dataclass
class SweepResult:
    """Speedup-vs-entries curve for one workload."""

    workload: str
    sizes: tuple[int, ...]
    malloc_speedups: list[float] = field(default_factory=list)
    """malloc() time improvement (%) per cache size."""
    allocator_speedups: list[float] = field(default_factory=list)
    limit_speedup: float = 0.0
    """The ablation upper bound (the 'Limit' bar of Figure 17)."""
    sampled: bool = False
    """True when the curve came from the interval-sampling engine; the
    ``*_cis`` lists then carry per-point 95% bounds (empty for exact)."""
    malloc_speedup_cis: list[tuple[float, float]] = field(default_factory=list)
    allocator_speedup_cis: list[tuple[float, float]] = field(default_factory=list)

    def inflection_size(self, threshold_frac: float = 0.5) -> int | None:
        """The smallest cache size reaching ``threshold_frac`` of the best
        measured speedup (the paper's 'speedup inflection points occur
        precisely at those malloc cache sizes')."""
        if not self.malloc_speedups:
            return None
        best = max(self.malloc_speedups)
        if best <= 0:
            return None
        for size, speedup in zip(self.sizes, self.malloc_speedups):
            if speedup >= threshold_frac * best:
                return size
        return None


def sweep_cache_sizes(
    workload: Workload,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    num_ops: int | None = None,
    seed: int = 1,
    cache_config_base: MallocCacheConfig | None = None,
    jobs: int = 1,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    sampling: SamplingConfig | None = None,
    batch_size: int | None = None,
) -> SweepResult:
    """Run one workload across malloc-cache sizes.

    ``jobs > 1`` shards the sweep points across worker processes via
    :mod:`repro.harness.parallel` (each point builds fresh machines on the
    identical op stream, so the curve is byte-identical to the serial
    loop); ``checkpoint_dir``/``resume`` make the sweep interruptible and
    ``batch_size`` forwards to :func:`repro.harness.parallel.run_matrix`
    (``None`` auto-sizes batches).
    Sharding requires the default cache-config base — non-default bases are
    not cell-serializable and fall back to the serial path.

    ``sampling`` switches every point to the interval-sampling engine
    (serial only): the curve becomes an estimate, and the result carries
    per-point confidence bounds in the ``*_cis`` lists.
    """
    base = cache_config_base or MallocCacheConfig()
    if jobs > 1 and cache_config_base is None and sampling is None:
        return _sweep_parallel(
            workload, sizes, num_ops, seed, jobs, checkpoint_dir, resume,
            batch_size=batch_size,
        )
    result = SweepResult(
        workload=workload.name, sizes=tuple(sizes), sampled=sampling is not None
    )
    for size in sizes:
        cfg = MallocCacheConfig(
            num_entries=size,
            index_keyed=base.index_keyed,
            eviction=base.eviction,
            cache_next=base.cache_next,
            prefetch_blocking=base.prefetch_blocking,
            base_lookup_latency=base.base_lookup_latency,
            list_op_latency=base.list_op_latency,
        )
        if sampling is not None:
            comparison = compare_workload_sampled(
                workload, num_ops=num_ops, seed=seed, cache_config=cfg,
                sampling=sampling,
            )
            result.malloc_speedup_cis.append(comparison.ci("malloc_improvement"))
            result.allocator_speedup_cis.append(
                comparison.ci("allocator_improvement")
            )
        else:
            comparison = compare_workload(
                workload, num_ops=num_ops, seed=seed, cache_config=cfg
            )
        result.malloc_speedups.append(comparison.malloc_improvement)
        result.allocator_speedups.append(comparison.allocator_improvement)
        result.limit_speedup = comparison.malloc_limit_improvement
    return result


def _sweep_parallel(
    workload: Workload,
    sizes: tuple[int, ...],
    num_ops: int | None,
    seed: int,
    jobs: int,
    checkpoint_dir: str | None,
    resume: bool,
    batch_size: int | None = None,
) -> SweepResult:
    """The sharded sweep: one :class:`~repro.harness.parallel.SweepCell`
    per cache size, all replaying the same seed (Figure 17's methodology)."""
    from repro.harness.parallel import SweepCell, run_matrix

    cells = [
        SweepCell(
            workload=workload.name,
            cache_entries=size,
            num_ops=num_ops or workload.default_ops,
            seed=seed,
        )
        for size in sizes
    ]
    matrix = run_matrix(
        cells, jobs=jobs, checkpoint_dir=checkpoint_dir, resume=resume,
        batch_size=batch_size,
    )
    if matrix.quarantined:
        raise RuntimeError(
            f"sweep cells failed after retries: {sorted(matrix.quarantined)}"
        )
    result = SweepResult(workload=workload.name, sizes=tuple(sizes))
    for cell in cells:
        summary = matrix.results[cell.cell_id].summary
        result.malloc_speedups.append(summary["malloc_improvement"])
        result.allocator_speedups.append(summary["allocator_improvement"])
        result.limit_speedup = summary["malloc_limit_improvement"]
    return result

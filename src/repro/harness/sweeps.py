"""Malloc-cache size sensitivity (Figure 17).

The paper sweeps cache sizes from 2 to 32 entries on the microbenchmark
suite and observes: small caches *hurt* (fallback path plus the wasted
lookup), speedup jumps sharply once the cache covers a strided benchmark's
class count, Gaussian benchmarks climb gradually (size-class locality), and
``tp`` can *lose* performance to prefetch blocking in tight loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.malloc_cache import MallocCacheConfig
from repro.harness.experiments import compare_workload
from repro.workloads.base import Workload

DEFAULT_SIZES = (2, 4, 6, 8, 12, 16, 20, 24, 28, 32)


@dataclass
class SweepResult:
    """Speedup-vs-entries curve for one workload."""

    workload: str
    sizes: tuple[int, ...]
    malloc_speedups: list[float] = field(default_factory=list)
    """malloc() time improvement (%) per cache size."""
    allocator_speedups: list[float] = field(default_factory=list)
    limit_speedup: float = 0.0
    """The ablation upper bound (the 'Limit' bar of Figure 17)."""

    def inflection_size(self, threshold_frac: float = 0.5) -> int | None:
        """The smallest cache size reaching ``threshold_frac`` of the best
        measured speedup (the paper's 'speedup inflection points occur
        precisely at those malloc cache sizes')."""
        if not self.malloc_speedups:
            return None
        best = max(self.malloc_speedups)
        if best <= 0:
            return None
        for size, speedup in zip(self.sizes, self.malloc_speedups):
            if speedup >= threshold_frac * best:
                return size
        return None


def sweep_cache_sizes(
    workload: Workload,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    num_ops: int | None = None,
    seed: int = 1,
    cache_config_base: MallocCacheConfig | None = None,
) -> SweepResult:
    """Run one workload across malloc-cache sizes."""
    base = cache_config_base or MallocCacheConfig()
    result = SweepResult(workload=workload.name, sizes=tuple(sizes))
    for size in sizes:
        cfg = MallocCacheConfig(
            num_entries=size,
            index_keyed=base.index_keyed,
            eviction=base.eviction,
            cache_next=base.cache_next,
            prefetch_blocking=base.prefetch_blocking,
            base_lookup_latency=base.base_lookup_latency,
            list_op_latency=base.list_op_latency,
        )
        comparison = compare_workload(
            workload, num_ops=num_ops, seed=seed, cache_config=cfg
        )
        result.malloc_speedups.append(comparison.malloc_improvement)
        result.allocator_speedups.append(comparison.allocator_improvement)
        result.limit_speedup = comparison.malloc_limit_improvement
    return result

"""Hot-path profiler: per-stage counters and wall time for the simulator.

The emission-side fast-forward (interned templates, O(1) caches, memoized
scheduling) was motivated by measurement; this module keeps the next
optimization round measured instead of guessed.  A
:class:`HotPathProfiler` attached to a :class:`~repro.alloc.context.Machine`
collects, per replay:

* **stages** — wall-clock seconds and entry counts for ``replay`` (the whole
  op loop, timed by the runner), ``refill`` (slow-path refill emission:
  central-cache fetches/releases, scavenges and large-span traffic, timed
  both in the reference machinery and in the fused columnar twins),
  ``build`` (trace materialization or intern lookup in
  ``TCMalloc._finish``), ``schedule`` (``TimingModel.run`` plus ablation
  variants), ``warming`` (a sampled replay's functional fast-forward
  stretches, timed by the sampled runner).  The residual ``replay - refill
  - build - schedule - warming`` is the remaining detailed-mode functional
  emission work (memory ops, hierarchy probes, free-list bookkeeping) and
  is reported as the derived ``emission`` stage.
* **counters** — allocator calls and uops seen, plus end-of-run deltas of
  the intern table (hits/misses), the trace-scheduling cache (hits/misses),
  and the cache hierarchy (probes = L1 lookups, DRAM accesses).

The profiler is strictly opt-in: every hook site guards on
``machine.profiler is not None``, so a disabled profiler costs one attribute
read and one ``is`` test per allocator call (measured < 5% overhead by
``benchmarks/bench_hot_path.py``).  The allocator deliberately duck-types
the profiler (no import of this module from ``repro.alloc`` — the harness
package imports the allocator, not vice versa).

Use it via ``run_workload(..., profiler=HotPathProfiler())``, the
``repro.cli profile`` subcommand, or directly::

    prof = HotPathProfiler()
    machine.profiler = prof
    ...
    print(render_profile(prof.summary()))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

#: Reporting order for the stage table.  ``warming`` is the functional
#: fast-forward stretch of a sampled replay (skip + warm modes);
#: ``columnar_compile`` is template compilation under the columnar engine,
#: nested *inside* ``schedule`` (so it is not part of the emission residual).
STAGE_ORDER = (
    "replay",
    "emission",
    "refill",
    "build",
    "schedule",
    "columnar_compile",
    "warming",
)


@dataclass
class StageStats:
    """Accumulated wall time for one named stage."""

    seconds: float = 0.0
    entries: int = 0


@dataclass
class HotPathProfiler:
    """Per-stage wall time and hot-path counters for one machine (or a
    group of machines — cores of a multithreaded run share one profiler)."""

    stages: dict[str, StageStats] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)

    # -- recording (hot-path facing: kept tiny) -----------------------------
    def add_stage(self, name: str, seconds: float) -> None:
        stage = self.stages.get(name)
        if stage is None:
            stage = self.stages[name] = StageStats()
        stage.seconds += seconds
        stage.entries += 1

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def timed(self, name: str):
        """Context manager timing one ``with`` block into ``name``."""
        return _StageTimer(self, name)

    # -- reporting ----------------------------------------------------------
    def summary(self) -> dict:
        """A JSON-ready summary: stage table (with the derived ``emission``
        residual), counters, and hit rates."""
        stages = {}
        for name, stage in self.stages.items():
            stages[name] = {"seconds": stage.seconds, "entries": stage.entries}
        replay = self.stages.get("replay")
        if replay is not None:
            # The warming stage is timed inside the replay loop too (the
            # sampled runner adds it separately), so it must be subtracted
            # here like build/schedule — otherwise functional fast-forward
            # time is double-counted as both "warming" and "emission" and
            # the stage shares sum past 1.
            accounted = sum(
                self.stages[name].seconds
                for name in ("refill", "build", "schedule", "warming")
                if name in self.stages
            )
            stages["emission"] = {
                "seconds": max(replay.seconds - accounted, 0.0),
                "entries": replay.entries,
            }
        summary: dict = {"stages": stages, "counters": dict(self.counters)}
        summary["rates"] = {
            "intern_hit_rate": _rate(self.counters, "intern_hits", "intern_misses"),
            "trace_cache_hit_rate": _rate(
                self.counters, "trace_cache_hits", "trace_cache_misses"
            ),
            "l1_hit_rate": _rate(self.counters, "l1_hits", "l1_misses"),
        }
        return summary

    def merge(self, other: "HotPathProfiler") -> None:
        """Fold another profiler's totals into this one (matrix pooling)."""
        for name, stage in other.stages.items():
            mine = self.stages.get(name)
            if mine is None:
                mine = self.stages[name] = StageStats()
            mine.seconds += stage.seconds
            mine.entries += stage.entries
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value


class _StageTimer:
    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: HotPathProfiler, name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_StageTimer":
        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler.add_stage(self._name, perf_counter() - self._t0)


def _rate(counters: dict[str, int], hits_key: str, misses_key: str) -> float | None:
    hits = counters.get(hits_key)
    misses = counters.get(misses_key)
    if hits is None and misses is None:
        return None
    total = (hits or 0) + (misses or 0)
    return (hits or 0) / total if total else 0.0


def collect_machine_counters(profiler: HotPathProfiler, machines) -> None:
    """Snapshot hot-path counters off ``machines`` (deduplicated — coherent
    cores share an L3/interner-free substrate) into ``profiler``.

    Called by the runner *after* a replay with the pre-run snapshot already
    subtracted by the caller; here we simply read lifetime totals, so use
    :func:`machine_counter_snapshot` around the region of interest instead
    when deltas are needed.
    """
    for name, value in machine_counter_snapshot(machines).items():
        profiler.count(name, value)


def machine_counter_snapshot(machines) -> dict[str, int]:
    """Lifetime hot-path counters summed over distinct machines.

    Distinctness is by object identity of the underlying component, so a
    shared L3 or a shared interner is counted once.
    """
    totals: dict[str, int] = {
        "l1_hits": 0,
        "l1_misses": 0,
        "hierarchy_probes": 0,
        "dram_accesses": 0,
        "intern_hits": 0,
        "intern_misses": 0,
        "trace_cache_hits": 0,
        "trace_cache_misses": 0,
        "columnar_templates_compiled": 0,
        "columnar_uops_compiled": 0,
    }
    seen_l1: set[int] = set()
    seen_interners: set[int] = set()
    seen_timings: set[int] = set()
    for machine in machines:
        l1 = machine.hierarchy.l1
        if id(l1) not in seen_l1:
            seen_l1.add(id(l1))
            totals["l1_hits"] += l1.hits
            totals["l1_misses"] += l1.misses
            totals["hierarchy_probes"] += l1.hits + l1.misses
            totals["dram_accesses"] += machine.hierarchy.dram_accesses
        interner = machine.interner
        if interner is not None and id(interner) not in seen_interners:
            seen_interners.add(id(interner))
            totals["intern_hits"] += interner.stats.hits
            totals["intern_misses"] += interner.stats.misses
        timing = machine.timing
        if id(timing) not in seen_timings:
            seen_timings.add(id(timing))
            if timing.cache_stats is not None:
                totals["trace_cache_hits"] += timing.cache_stats.hits
                totals["trace_cache_misses"] += timing.cache_stats.misses
            totals["columnar_templates_compiled"] += timing.columnar_compiles
            totals["columnar_uops_compiled"] += timing.columnar_compiled_uops
    return totals


def render_profile(summary: dict) -> str:
    """Plain-text table for one profiler summary (CLI output)."""
    lines = ["stage          seconds   entries"]
    stages = summary.get("stages", {})
    for name in STAGE_ORDER:
        stage = stages.get(name)
        if stage is None:
            continue
        lines.append(
            f"{name:<12}{stage['seconds']:>10.4f}{stage['entries']:>10d}"
        )
    for name, stage in sorted(stages.items()):
        if name not in STAGE_ORDER:
            lines.append(
                f"{name:<12}{stage['seconds']:>10.4f}{stage['entries']:>10d}"
            )
    counters = summary.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counter                 value")
        for name in sorted(counters):
            lines.append(f"{name:<20}{counters[name]:>10d}")
    rates = summary.get("rates", {})
    shown = {k: v for k, v in rates.items() if v is not None}
    if shown:
        lines.append("")
        for name in sorted(shown):
            lines.append(f"{name:<24}{shown[name]:>7.1%}")
    return "\n".join(lines)

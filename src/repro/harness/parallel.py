"""Parallel, fault-tolerant experiment harness.

Regenerating the paper's full evaluation replays every (workload ×
allocator-config × cache-size) cell through
:func:`~repro.harness.experiments.compare_workload` — on a Python timing
model, strictly serial replay is the dominant wall-clock cost.  This module
shards that experiment matrix across a ``multiprocessing`` worker pool:

* **determinism** — every cell carries its own seed and builds fresh
  machines on an identical op stream, so sharded results are byte-identical
  to serial ones (``tests/integration/test_parallel_differential.py``
  enforces this on the JSON serialization);
* **checkpointing** — each completed cell writes one JSON file under the
  checkpoint directory (atomically: temp file + rename), and a resumed run
  skips every cell whose checkpoint matches, so an interrupted or crashed
  run never recomputes finished work;
* **fault tolerance** — a failing cell is retried with exponential backoff
  up to ``max_retries`` times; a cell that keeps failing is *quarantined*
  and reported in the result, never silently dropped.  A worker process
  dying mid-task (OOM-kill, segfault) surfaces as a broken-pool error on
  its round; only then is the pool rebuilt, and only the batches in flight
  on it are retried;
* **observability** — a structured progress stream (``progress`` callback
  receiving dict events) reports tasks done/failed/retried/quarantined,
  per-cell wall time, and the pooled trace-cache hit rate via
  :func:`~repro.harness.metrics.trace_cache_summary`.

Sharding is amortized three ways so ``jobs > 1`` wins even on the small
cells sampled methodologies produce (SMARTS-style interval plans make
cells *cheaper*, which makes per-task overhead *relatively* costlier):

* **cell batching** — workers receive *batches* of cells per task
  (:func:`plan_batches`), grouped locality-aware by workload family so a
  batch's cells share one warm read-only op stream and the same interned
  fast-path templates.  ``batch_size=None`` auto-sizes
  (:func:`auto_batch_size`); ``1`` restores per-cell tasks;
* **fork-server workers** — the pool ``initializer`` installs a
  :class:`~repro.sim.warm.WarmBank` pre-built by the parent (tiny warm
  replays per workload family) holding interned trace templates, memoized
  scheduling results, and read-only op streams.  Banks are
  telemetry-neutral by construction: they satisfy cache *misses* after the
  miss is counted, so per-cell summaries and pooled metrics are
  byte-identical to cold serial runs;
* **one pool per run** — the ``ProcessPoolExecutor`` is created once and
  reused across retry rounds; it is rebuilt only after a
  ``BrokenProcessPool`` (a worker killed outright), and checkpoint writes
  are group-committed per completed batch instead of one fsync-ish round
  trip per cell.

Entry points: ``build_matrix`` to enumerate cells, ``run_matrix`` to
execute them, ``matrix_figure_data`` for the canonical (order-stable,
wall-time-free) figure/table payload.  Wired through
``repro.harness.sweeps`` (``jobs=``), the CLI (``python -m repro matrix
--jobs N --batch-size K --resume --checkpoint-dir D``) and
``benchmarks/bench_parallel_harness.py``.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time
import zlib
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.sim import warm as warm_state

from repro.harness.experiments import (
    compare_workload,
    compare_workload_sampled,
    make_baseline,
    make_mallacc,
    summarize_comparison,
    summarize_sampled_comparison,
)
from repro.harness.metrics import intern_summary, sampling_summary, trace_cache_summary
from repro.harness.runner import run_workload
from repro.obs.bridges import matrix_registry, run_registry
from repro.obs.manifest import collect_manifest
from repro.obs.tracer import get_tracer
from repro.sim.sampling import SamplingConfig

CHECKPOINT_VERSION = 2
"""Bumped to 2 when cells grew ``metrics``/``manifest`` payloads — version-1
checkpoints are silently recomputed rather than resumed without provenance."""


# ---------------------------------------------------------------------------
# Matrix cells
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SweepCell:
    """One cell of the experiment matrix: a workload replayed under baseline
    and Mallacc at one allocator configuration.  Fully declarative and
    picklable — the worker rebuilds fresh machines from these fields alone,
    which is what makes sharded replay bit-exact."""

    workload: str
    cache_entries: int = 32
    num_ops: int = 1000
    seed: int = 1
    model_app_traffic: bool = True
    sampled: bool = False
    """Replay through :func:`~repro.harness.experiments.compare_workload_sampled`
    instead of the exact comparison."""
    interval_ops: int = 200
    stride: int = 16
    sampler: str = "systematic"
    target_ci: float | None = None
    """Error budget in program-speedup CI half-width percentage points."""

    @property
    def cell_id(self) -> str:
        """Stable identifier; doubles as the checkpoint file stem.

        Exact cells keep their historical ids (old checkpoint directories
        stay resumable); sampled cells append every sampling knob so a
        config change never reuses a stale checkpoint."""
        suffix = "" if self.model_app_traffic else "-noapp"
        if self.sampled:
            budget = f"-t{self.target_ci:g}" if self.target_ci is not None else ""
            suffix += (
                f"-smp-{self.sampler}-i{self.interval_ops}"
                f"-k{self.stride}{budget}"
            )
        return (
            f"{self.workload}-e{self.cache_entries}"
            f"-n{self.num_ops}-s{self.seed}{suffix}"
        )

    def sampling_config(self) -> SamplingConfig:
        return SamplingConfig(
            interval_ops=self.interval_ops,
            sampler=self.sampler,
            stride=self.stride,
            target_ci=self.target_ci,
            seed=self.seed,
        )


def derive_seed(base_seed: int, workload: str) -> int:
    """Deterministic per-task seed: stable across runs, processes, and
    shard assignment (crc32, not ``hash()``, so ``PYTHONHASHSEED`` is
    irrelevant).  Cells of the same workload share a seed so cache-size
    sweep points replay the identical op stream (the Figure 17
    methodology)."""
    return (base_seed + zlib.crc32(workload.encode("utf-8"))) % (2**31 - 1)


def build_matrix(
    workloads: Sequence[str],
    cache_sizes: Sequence[int] = (32,),
    num_ops: int = 1000,
    base_seed: int = 1,
    model_app_traffic: bool = True,
    per_task_seeds: bool = True,
    sampled: bool = False,
    interval_ops: int = 200,
    stride: int = 16,
    sampler: str = "systematic",
    target_ci: float | None = None,
) -> list[SweepCell]:
    """Enumerate the (workload × cache-size) matrix in canonical order.

    With ``per_task_seeds`` each workload gets a seed derived from
    ``base_seed`` via :func:`derive_seed`; otherwise every cell uses
    ``base_seed`` verbatim (the legacy serial-sweep convention).
    ``sampled=True`` replays every cell through the interval-sampling
    engine with the given knobs (see :class:`SweepCell`).
    """
    return [
        SweepCell(
            workload=name,
            cache_entries=size,
            num_ops=num_ops,
            seed=derive_seed(base_seed, name) if per_task_seeds else base_seed,
            model_app_traffic=model_app_traffic,
            sampled=sampled,
            interval_ops=interval_ops,
            stride=stride,
            sampler=sampler,
            target_ci=target_ci,
        )
        for name in workloads
        for size in cache_sizes
    ]


@dataclass
class CellResult:
    """The scalar outcome of one cell (a serialized
    :func:`~repro.harness.experiments.summarize_comparison` payload).

    ``wall_seconds`` and the intern counters are measurement machinery, not
    science — they are excluded from :meth:`figure_data` so serial and
    sharded payloads compare equal (and so interning on/off stays
    byte-invisible in matrix output).
    """

    cell_id: str
    workload: str
    cache_entries: int
    num_ops: int
    seed: int
    summary: dict[str, float | int]
    wall_seconds: float = 0.0
    intern_hits: int = 0
    intern_misses: int = 0
    detailed_calls: int = 0
    """Calls through the detailed timing model (0 for exact cells, whose
    summary already accounts every call)."""
    warming_calls: int = 0
    metrics: dict = field(default_factory=dict)
    """This cell's serialized :class:`~repro.obs.metrics.MetricsRegistry`
    (baseline + mallacc telemetry, labeled) — checkpointed with the cell so
    the pool can merge worker registries without re-running anything."""
    manifest: dict = field(default_factory=dict)
    """Serialized :class:`~repro.obs.manifest.RunManifest` for this cell."""

    @property
    def trace_cache_hits(self) -> int:
        return int(self.summary.get("trace_cache_hits", 0))

    @property
    def trace_cache_misses(self) -> int:
        return int(self.summary.get("trace_cache_misses", 0))

    def figure_data(self) -> dict:
        """Deterministic figure/table payload for this cell."""
        return {
            "cell_id": self.cell_id,
            "workload": self.workload,
            "cache_entries": self.cache_entries,
            "num_ops": self.num_ops,
            "seed": self.seed,
            "summary": dict(sorted(self.summary.items())),
        }


def run_cell(cell: SweepCell) -> CellResult:
    """Execute one cell on fresh machines (the worker-side entry point)."""
    from repro.workloads import MACRO_WORKLOADS, MICROBENCHMARKS

    registry = {**MICROBENCHMARKS, **MACRO_WORKLOADS}
    if cell.workload not in registry:
        raise ValueError(f"unknown workload {cell.workload!r}")
    workload = registry[cell.workload]
    manifest = collect_manifest(asdict(cell), seed=cell.seed, cell_id=cell.cell_id)
    # In a pool worker with a warm bank installed, cells of one workload
    # family share a single read-only op stream across batches; without a
    # bank (the serial path) this generates the stream exactly as before.
    ops = warm_state.stream_for(
        cell.workload,
        cell.seed,
        cell.num_ops,
        lambda: workload.ops(seed=cell.seed, num_ops=cell.num_ops),
    )
    if cell.sampled:
        comparison = compare_workload_sampled(
            workload,
            num_ops=cell.num_ops,
            seed=cell.seed,
            cache_entries=cell.cache_entries,
            model_app_traffic=cell.model_app_traffic,
            sampling=cell.sampling_config(),
            ops=ops,
        )
        summary = summarize_sampled_comparison(comparison)
        detailed = comparison.baseline.detailed_calls + comparison.mallacc.detailed_calls
        warming = comparison.baseline.warming_calls + comparison.mallacc.warming_calls
    else:
        comparison = compare_workload(
            workload,
            num_ops=cell.num_ops,
            seed=cell.seed,
            cache_entries=cell.cache_entries,
            model_app_traffic=cell.model_app_traffic,
            ops=ops,
        )
        summary = summarize_comparison(comparison)
        detailed = warming = 0
    cell_metrics = run_registry(comparison.baseline, alloc="baseline")
    run_registry(comparison.mallacc, cell_metrics, alloc="mallacc")
    cell_metrics.counter("cells_done").inc()
    return CellResult(
        cell_id=cell.cell_id,
        workload=cell.workload,
        cache_entries=cell.cache_entries,
        num_ops=cell.num_ops,
        seed=cell.seed,
        summary=summary,
        intern_hits=comparison.baseline.intern_hits + comparison.mallacc.intern_hits,
        intern_misses=(
            comparison.baseline.intern_misses + comparison.mallacc.intern_misses
        ),
        detailed_calls=detailed,
        warming_calls=warming,
        metrics=cell_metrics.to_dict(),
        manifest=manifest.to_dict(),
    )


def _timed_cell(cell_fn: Callable[[SweepCell], CellResult], cell: SweepCell) -> CellResult:
    t0 = time.perf_counter()
    result = cell_fn(cell)
    result.wall_seconds = time.perf_counter() - t0
    if result.manifest:
        result.manifest["wall_seconds"] = result.wall_seconds
    return result


# ---------------------------------------------------------------------------
# Checkpoints
# ---------------------------------------------------------------------------
def checkpoint_path(checkpoint_dir: str | os.PathLike, cell: SweepCell) -> Path:
    return Path(checkpoint_dir) / f"{cell.cell_id}.json"


def write_checkpoint(checkpoint_dir: str | os.PathLike, cell: SweepCell, result: CellResult) -> Path:
    """Atomically persist one completed cell (temp file + rename, so a kill
    mid-write never leaves a truncated checkpoint behind)."""
    (target,) = write_checkpoints(checkpoint_dir, [(cell, result)])
    return target


def write_checkpoints(
    checkpoint_dir: str | os.PathLike,
    pairs: Sequence[tuple[SweepCell, CellResult]],
) -> list[Path]:
    """Group-commit a batch of completed cells.

    The per-cell file layout is unchanged (one ``<cell_id>.json`` each, so
    batched and unbatched checkpoint directories stay mutually resumable),
    but the write is coalesced: every payload is staged to a temp file
    first, then all staged files are committed with ``os.replace`` in one
    pass.  Each individual rename keeps the old atomicity guarantee — a
    kill mid-flush leaves some cells committed and none truncated."""
    directory = Path(checkpoint_dir)
    directory.mkdir(parents=True, exist_ok=True)
    staged: list[tuple[str, Path]] = []
    targets: list[Path] = []
    try:
        for cell, result in pairs:
            payload = {
                "version": CHECKPOINT_VERSION,
                "cell": asdict(cell),
                "result": asdict(result),
            }
            fd, tmp = tempfile.mkstemp(
                prefix=f".{cell.cell_id}.", suffix=".tmp", dir=directory
            )
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, sort_keys=True)
            staged.append((tmp, checkpoint_path(directory, cell)))
        while staged:
            tmp, target = staged.pop(0)
            os.replace(tmp, target)
            targets.append(target)
    except BaseException:
        for tmp, _ in staged:
            if os.path.exists(tmp):
                os.unlink(tmp)
        raise
    return targets


def load_checkpoint(checkpoint_dir: str | os.PathLike, cell: SweepCell) -> CellResult | None:
    """A cell's checkpointed result, or ``None`` if absent, unreadable, or
    written for a *different* cell definition (stale directories from an
    earlier matrix never masquerade as completed work)."""
    path = checkpoint_path(checkpoint_dir, cell)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if payload.get("version") != CHECKPOINT_VERSION:
        return None
    if payload.get("cell") != asdict(cell):
        return None
    try:
        return CellResult(**payload["result"])
    except (KeyError, TypeError):
        return None


# ---------------------------------------------------------------------------
# Batch planning
# ---------------------------------------------------------------------------
MAX_BATCH_CELLS = 8
"""Auto-sizing cap: batches larger than this stop amortizing anything (the
per-task overhead is already noise) and only hurt retry granularity — a
failed batch is retried whole."""


def auto_batch_size(num_pending: int, jobs: int) -> int:
    """Default batch size: pack the round into one task wave per worker,
    capped at :data:`MAX_BATCH_CELLS` so huge matrices keep work-stealing
    granularity (stragglers rebalance across waves)."""
    if jobs <= 1 or num_pending <= 0:
        return 1
    return max(1, min(MAX_BATCH_CELLS, math.ceil(num_pending / jobs)))


def plan_batches(
    pending: Sequence[SweepCell],
    jobs: int,
    batch_size: int | None = None,
) -> list[list[SweepCell]]:
    """Chunk ``pending`` into per-task batches, locality-aware.

    Cells are grouped by workload family first (preserving matrix order
    within each family), then chunked to ``batch_size``: cells of one
    family share a seed (:func:`derive_seed`) and therefore one read-only
    op stream and the same interned fast-path templates, so a family batch
    pays the stream/template cost once.  Execution order never affects
    results (cells are hermetic); only task-overhead amortization does.
    """
    if batch_size is None:
        batch_size = auto_batch_size(len(pending), jobs)
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    groups: dict[str, list[SweepCell]] = {}
    for cell in pending:
        groups.setdefault(cell.workload, []).append(cell)
    batches: list[list[SweepCell]] = []
    for cells in groups.values():
        for i in range(0, len(cells), batch_size):
            batches.append(cells[i : i + batch_size])
    return batches


# ---------------------------------------------------------------------------
# Fork-server warm state
# ---------------------------------------------------------------------------
WARM_REPLAY_OPS = 96
"""Ops per throwaway warm replay.  Enough to exercise every fast-path shape
a family emits (fill + steady state on a small thread cache); small enough
that prewarm stays a rounding error next to one real cell."""


def _worker_init(bank: warm_state.WarmBank | None) -> None:
    """Pool initializer: installs the parent-built warm bank in the worker
    (the fork-server handshake).  Runs once per worker process."""
    warm_state.install_bank(bank)


def build_warm_bank(
    cells: Sequence[SweepCell], warm_ops: int = WARM_REPLAY_OPS
) -> warm_state.WarmBank:
    """Parent-side prewarm: build the :class:`~repro.sim.warm.WarmBank` the
    pool initializer ships to every worker.

    Per distinct ``(workload, seed, cache_entries, app-traffic)`` family the
    parent replays a ``warm_ops``-op prefix under both baseline and Mallacc
    allocators and harvests the machines' interned templates and memoized
    scheduling results.  Harvested values are keyed by content (canonical
    fingerprints, ``(site, tokens, latencies)`` triples), so a truncated
    warm replay only bounds *coverage*, never correctness.  Op streams small
    enough to hold (:data:`~repro.sim.warm.STREAM_PREWARM_MAX_OPS`) are
    pre-generated here so every worker inherits them read-only; larger
    streams stay lazy, memoized worker-side on first use.
    """
    from repro.workloads import MACRO_WORKLOADS, MICROBENCHMARKS

    registry = {**MICROBENCHMARKS, **MACRO_WORKLOADS}
    bank = warm_state.WarmBank()
    warmed: set[tuple] = set()
    for cell in cells:
        workload = registry.get(cell.workload)
        if workload is None:
            continue
        stream_key = (cell.workload, cell.seed, cell.num_ops)
        if (
            cell.num_ops <= warm_state.STREAM_PREWARM_MAX_OPS
            and stream_key not in bank.streams
        ):
            bank.streams[stream_key] = tuple(
                workload.ops(seed=cell.seed, num_ops=cell.num_ops)
            )
        family = (cell.workload, cell.seed, cell.cache_entries, cell.model_app_traffic)
        if family in warmed:
            continue
        warmed.add(family)
        n = min(warm_ops, cell.num_ops)
        full = bank.streams.get(stream_key)
        ops = list(full[:n]) if full is not None else list(
            workload.ops(seed=cell.seed, num_ops=n)
        )
        for alloc in (make_baseline(), make_mallacc(cache_entries=cell.cache_entries)):
            run_workload(
                alloc, ops,
                name=cell.workload,
                model_app_traffic=cell.model_app_traffic,
            )
            warm_state.harvest_machine(bank, alloc.machine)
    return bank


def _run_cell_batch(
    cell_fn: Callable[[SweepCell], CellResult], cells: Sequence[SweepCell]
) -> tuple[list[tuple[str, bool, CellResult | str]], tuple[int, int, int]]:
    """Worker-side task: run one batch of cells, isolating per-cell failure.

    Returns per-cell ``(cell_id, ok, result-or-error)`` outcomes plus this
    task's warm-bank hit delta — one exploding cell never takes its batch
    siblings down with it (only a *worker death* does, via the broken pool).
    """
    bank = warm_state.active_bank()
    before = bank.counters() if bank is not None else (0, 0, 0)
    outcomes: list[tuple[str, bool, CellResult | str]] = []
    for cell in cells:
        try:
            outcomes.append((cell.cell_id, True, _timed_cell(cell_fn, cell)))
        except Exception as exc:
            outcomes.append((cell.cell_id, False, f"{type(exc).__name__}: {exc}"))
    after = bank.counters() if bank is not None else (0, 0, 0)
    delta = (after[0] - before[0], after[1] - before[1], after[2] - before[2])
    return outcomes, delta


# ---------------------------------------------------------------------------
# The sharded runner
# ---------------------------------------------------------------------------
@dataclass
class MatrixStats:
    """Run-level accounting for the progress/metrics stream."""

    cells_total: int = 0
    cells_done: int = 0
    cells_resumed: int = 0
    cells_failed: int = 0
    """Failed *attempts* (a cell that fails twice then succeeds counts 2)."""
    cells_retried: int = 0
    cells_quarantined: int = 0
    wall_seconds: float = 0.0
    batch_size: int = 1
    """Resolved first-round batch size (auto-sizing included)."""
    batches: int = 0
    """Pool tasks dispatched (inline cells count one each)."""
    pools_created: int = 0
    """Executors built over the run: 1 on a clean sharded run, +1 per
    broken-pool rebuild, 0 when everything ran inline or was resumed."""
    warm: dict[str, int] = field(default_factory=dict)
    """Warm-bank sizes (parent-side) and pooled worker hit counters — pure
    measurement machinery, never merged into cell metrics."""
    per_cell_wall: dict[str, float] = field(default_factory=dict)
    trace_cache: dict[str, float] = field(default_factory=dict)
    intern: dict[str, float] = field(default_factory=dict)
    sampling: dict[str, float] = field(default_factory=dict)
    """Pooled :func:`~repro.harness.metrics.sampling_summary` over all
    completed cells (all zeros on an exact-only matrix)."""
    metrics: dict = field(default_factory=dict)
    """The merged :class:`~repro.obs.metrics.MetricsRegistry` of every
    completed cell (serialized) — the pool-level unified telemetry view."""


@dataclass
class MatrixResult:
    """Everything a sharded run produced, in canonical cell order."""

    results: dict[str, CellResult]
    quarantined: dict[str, str]
    stats: MatrixStats

    def __post_init__(self) -> None:
        overlap = set(self.results) & set(self.quarantined)
        if overlap:  # pragma: no cover - construction invariant
            raise ValueError(f"cells both completed and quarantined: {overlap}")


def _emit(progress: Callable[[dict], None] | None, event: dict) -> None:
    if progress is not None:
        progress(event)


@dataclass
class _RoundOutcome:
    """One :func:`_attempt_round`'s results."""

    done: dict[str, CellResult] = field(default_factory=dict)
    failed: dict[str, str] = field(default_factory=dict)
    pool_broken: bool = False
    """A worker died outright this round; the caller must rebuild the pool
    before the next round (the only time a pool is ever rebuilt)."""
    warm_hits: tuple[int, int, int] = (0, 0, 0)
    batches: int = 0


def _attempt_round(
    pending: list[SweepCell],
    cell_fn: Callable[[SweepCell], CellResult],
    jobs: int,
    pool: ProcessPoolExecutor | None = None,
    batch_size: int | None = None,
    on_batch: Callable[[dict[str, CellResult]], None] | None = None,
) -> _RoundOutcome:
    """Run one attempt over ``pending`` cells.

    ``jobs <= 1`` executes inline (no pool: deterministic, debuggable, and
    what the serial differential baseline uses), flushing cell by cell.
    Otherwise cells are dispatched to the *caller-owned* ``pool`` in
    :func:`plan_batches` batches; ``on_batch`` fires after each batch with
    its completed cells (the checkpoint group-commit hook).  A broken pool
    — a worker killed outright — fails only the batches in flight on it and
    sets ``pool_broken`` so the caller rebuilds once, not per attempt.
    """
    out = _RoundOutcome()
    if jobs <= 1:
        for cell in pending:
            out.batches += 1
            try:
                result = _timed_cell(cell_fn, cell)
            except Exception as exc:
                out.failed[cell.cell_id] = f"{type(exc).__name__}: {exc}"
                continue
            out.done[cell.cell_id] = result
            if on_batch is not None:
                on_batch({cell.cell_id: result})
        return out

    if pool is None:  # pragma: no cover - caller contract
        raise ValueError("jobs > 1 requires a pool")
    batches = plan_batches(pending, jobs, batch_size)
    out.batches = len(batches)
    futures = {}
    submit_error: str | None = None
    for batch in batches:
        if submit_error is None:
            try:
                futures[pool.submit(_run_cell_batch, cell_fn, batch)] = batch
                continue
            except BrokenExecutor as exc:
                out.pool_broken = True
                submit_error = f"{type(exc).__name__}: {exc}"
        for cell in batch:
            out.failed[cell.cell_id] = submit_error
    warm = [0, 0, 0]
    for future in as_completed(futures):
        batch = futures[future]
        try:
            outcomes, delta = future.result()
        except Exception as exc:
            # Includes BrokenProcessPool: every batch in flight on a killed
            # pool lands here and is retried on the rebuilt pool.  Batches
            # that already completed are checkpointed and never re-run.
            if isinstance(exc, BrokenExecutor):
                out.pool_broken = True
            error = f"{type(exc).__name__}: {exc}"
            for cell in batch:
                out.failed[cell.cell_id] = error
            continue
        warm = [a + b for a, b in zip(warm, delta)]
        batch_done: dict[str, CellResult] = {}
        for cell_id, ok, payload in outcomes:
            if ok:
                out.done[cell_id] = payload
                batch_done[cell_id] = payload
            else:
                out.failed[cell_id] = payload
        if batch_done and on_batch is not None:
            on_batch(batch_done)
    out.warm_hits = (warm[0], warm[1], warm[2])
    return out


def run_matrix(
    cells: Sequence[SweepCell],
    jobs: int = 1,
    checkpoint_dir: str | os.PathLike | None = None,
    resume: bool = False,
    max_retries: int = 2,
    backoff_seconds: float = 0.1,
    progress: Callable[[dict], None] | None = None,
    cell_fn: Callable[[SweepCell], CellResult] = run_cell,
    batch_size: int | None = None,
    prewarm: bool = True,
) -> MatrixResult:
    """Shard ``cells`` across ``jobs`` workers with checkpoints and retry.

    * ``resume=True`` (requires ``checkpoint_dir``) skips every cell whose
      checkpoint matches its definition;
    * completed cells are checkpointed as each batch finishes (group
      commit), so *any* interrupted run with a checkpoint directory is
      resumable — batched and unbatched directories interchange freely;
    * a cell failing more than ``max_retries`` times is quarantined into
      ``MatrixResult.quarantined`` with its last error;
    * ``cell_fn`` must be picklable (a module-level function) when
      ``jobs > 1`` — injectable for fault-injection tests;
    * ``batch_size=None`` auto-sizes batches (:func:`auto_batch_size`),
      ``1`` restores per-cell tasks; inline ``jobs <= 1`` runs ignore it;
    * ``prewarm=True`` builds a :class:`~repro.sim.warm.WarmBank` in the
      parent and installs it in every worker via the pool initializer
      (fork-server).  Only the real ``run_cell`` is prewarmed — injected
      ``cell_fn``s skip the bank automatically.

    One executor serves the whole run, surviving retry rounds; it is
    rebuilt only after a broken pool (a worker killed outright).
    """
    cells = list(cells)
    ids = [c.cell_id for c in cells]
    if len(set(ids)) != len(ids):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        raise ValueError(f"duplicate cells in matrix: {dupes}")
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires a checkpoint_dir")

    stats = MatrixStats(cells_total=len(cells))
    completed: dict[str, CellResult] = {}
    tracer = get_tracer()
    trace_t0 = tracer.now_us() if tracer.enabled else 0
    t_start = time.perf_counter()

    pending: list[SweepCell] = []
    for cell in cells:
        prior = load_checkpoint(checkpoint_dir, cell) if resume else None
        if prior is not None:
            completed[cell.cell_id] = prior
            stats.cells_resumed += 1
        else:
            pending.append(cell)
    if jobs > 1:
        stats.batch_size = (
            batch_size if batch_size is not None
            else auto_batch_size(len(pending), jobs)
        )
    _emit(progress, {
        "event": "start",
        "cells": len(cells),
        "resumed": stats.cells_resumed,
        "jobs": jobs,
        "batch_size": stats.batch_size,
    })

    by_id = {c.cell_id: c for c in cells}

    def flush_batch(batch_done: dict[str, CellResult]) -> None:
        """Commit one completed batch: checkpoint group-commit, then
        per-cell accounting and progress events."""
        if checkpoint_dir is not None:
            write_checkpoints(
                checkpoint_dir,
                [(by_id[cid], res) for cid, res in batch_done.items()],
            )
        for cell_id, result in batch_done.items():
            completed[cell_id] = result
            stats.cells_done += 1
            stats.per_cell_wall[cell_id] = result.wall_seconds
            if tracer.enabled:
                # Worker cells run in other processes; log them parent-side
                # with explicit endpoints so the matrix trace shows every
                # cell as a span ending "now".
                dur_us = max(1, int(result.wall_seconds * 1e6))
                tracer.complete(
                    "matrix_cell", tracer.now_us() - dur_us, dur_us,
                    cell=cell_id, workload=result.workload,
                )
            _emit(progress, {
                "event": "cell_done",
                "cell": cell_id,
                "wall_seconds": result.wall_seconds,
                "done": stats.cells_done + stats.cells_resumed,
                "total": stats.cells_total,
            })

    bank: warm_state.WarmBank | None = None
    if jobs > 1 and pending and prewarm and cell_fn is run_cell:
        bank = build_warm_bank(pending)
    pool: ProcessPoolExecutor | None = None
    warm_hits = [0, 0, 0]
    last_error: dict[str, str] = {}
    attempt = 0
    try:
        while pending and attempt <= max_retries:
            if attempt:
                delay = backoff_seconds * (2 ** (attempt - 1))
                _emit(progress, {
                    "event": "retry_round",
                    "attempt": attempt,
                    "cells": [c.cell_id for c in pending],
                    "backoff_seconds": delay,
                })
                stats.cells_retried += len(pending)
                time.sleep(delay)
            if jobs > 1 and pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=jobs,
                    initializer=_worker_init,
                    initargs=(bank,),
                )
                stats.pools_created += 1
                _emit(progress, {
                    "event": "pool_start",
                    "jobs": jobs,
                    "pools_created": stats.pools_created,
                })
            round_out = _attempt_round(
                pending, cell_fn, jobs,
                pool=pool, batch_size=batch_size, on_batch=flush_batch,
            )
            stats.batches += round_out.batches
            warm_hits = [a + b for a, b in zip(warm_hits, round_out.warm_hits)]
            if round_out.pool_broken and pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
            for cell_id, error in round_out.failed.items():
                stats.cells_failed += 1
                last_error[cell_id] = error
                _emit(progress, {
                    "event": "cell_failed",
                    "cell": cell_id,
                    "attempt": attempt,
                    "error": error,
                })
            pending = [by_id[cid] for cid in ids if cid in round_out.failed]
            attempt += 1
    finally:
        if pool is not None:
            pool.shutdown()
    if bank is not None:
        stats.warm = bank.summary()
        stats.warm["schedule_hits"] = warm_hits[0]
        stats.warm["template_hits"] = warm_hits[1]
        stats.warm["stream_hits"] = warm_hits[2]

    quarantined = {cell.cell_id: last_error[cell.cell_id] for cell in pending}
    for cell_id, error in quarantined.items():
        stats.cells_quarantined += 1
        _emit(progress, {"event": "cell_quarantined", "cell": cell_id, "error": error})

    # Canonical order: results iterate in matrix order, not completion order.
    ordered = {cid: completed[cid] for cid in ids if cid in completed}
    stats.wall_seconds = time.perf_counter() - t_start
    stats.trace_cache = trace_cache_summary(*ordered.values())
    stats.intern = intern_summary(*ordered.values())
    stats.sampling = sampling_summary(*ordered.values())
    pooled = matrix_registry(r.metrics for r in ordered.values())
    pooled.counter("cells_resumed").inc(stats.cells_resumed)
    pooled.counter("cells_retried").inc(stats.cells_retried)
    pooled.counter("cells_quarantined").inc(stats.cells_quarantined)
    stats.metrics = pooled.to_dict()
    if tracer.enabled:
        tracer.complete(
            "run_matrix", trace_t0, tracer.now_us() - trace_t0,
            cells=stats.cells_total, jobs=jobs,
        )
    _emit(progress, {
        "event": "summary",
        "done": stats.cells_done,
        "resumed": stats.cells_resumed,
        "failed_attempts": stats.cells_failed,
        "retried": stats.cells_retried,
        "quarantined": stats.cells_quarantined,
        "wall_seconds": stats.wall_seconds,
        "trace_cache_hit_rate": stats.trace_cache["hit_rate"],
        "intern_hit_rate": stats.intern["hit_rate"],
        "batches": stats.batches,
        "pools_created": stats.pools_created,
    })
    return MatrixResult(results=ordered, quarantined=quarantined, stats=stats)


# ---------------------------------------------------------------------------
# Canonical output
# ---------------------------------------------------------------------------
def matrix_figure_data(result: MatrixResult) -> dict:
    """The order-stable figure/table payload of a matrix run.

    Contains only cell definitions and science (no wall times, worker
    counts, or retry noise), so any two runs of the same matrix — serial,
    sharded, resumed — serialize to identical bytes via
    :func:`matrix_to_json`.
    """
    return {
        "cells": [r.figure_data() for r in result.results.values()],
        "quarantined": sorted(result.quarantined),
    }


def matrix_to_json(result: MatrixResult) -> str:
    """Deterministic JSON serialization of :func:`matrix_figure_data`."""
    return json.dumps(matrix_figure_data(result), sort_keys=True, indent=2)

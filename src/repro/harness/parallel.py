"""Parallel, fault-tolerant experiment harness.

Regenerating the paper's full evaluation replays every (workload ×
allocator-config × cache-size) cell through
:func:`~repro.harness.experiments.compare_workload` — on a Python timing
model, strictly serial replay is the dominant wall-clock cost.  This module
shards that experiment matrix across a ``multiprocessing`` worker pool:

* **determinism** — every cell carries its own seed and builds fresh
  machines on an identical op stream, so sharded results are byte-identical
  to serial ones (``tests/integration/test_parallel_differential.py``
  enforces this on the JSON serialization);
* **checkpointing** — each completed cell writes one JSON file under the
  checkpoint directory (atomically: temp file + rename), and a resumed run
  skips every cell whose checkpoint matches, so an interrupted or crashed
  run never recomputes finished work;
* **fault tolerance** — a failing cell is retried with exponential backoff
  up to ``max_retries`` times; a cell that keeps failing is *quarantined*
  and reported in the result, never silently dropped.  A worker process
  dying mid-task (OOM-kill, segfault) surfaces as a broken-pool error on
  its round and is retried on a fresh pool like any other failure;
* **observability** — a structured progress stream (``progress`` callback
  receiving dict events) reports tasks done/failed/retried/quarantined,
  per-cell wall time, and the pooled trace-cache hit rate via
  :func:`~repro.harness.metrics.trace_cache_summary`.

Entry points: ``build_matrix`` to enumerate cells, ``run_matrix`` to
execute them, ``matrix_figure_data`` for the canonical (order-stable,
wall-time-free) figure/table payload.  Wired through
``repro.harness.sweeps`` (``jobs=``), the CLI (``python -m repro matrix
--jobs N --resume --checkpoint-dir D``) and
``benchmarks/bench_parallel_harness.py``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import zlib
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.harness.experiments import (
    compare_workload,
    compare_workload_sampled,
    summarize_comparison,
    summarize_sampled_comparison,
)
from repro.harness.metrics import intern_summary, sampling_summary, trace_cache_summary
from repro.obs.bridges import matrix_registry, run_registry
from repro.obs.manifest import collect_manifest
from repro.obs.tracer import get_tracer
from repro.sim.sampling import SamplingConfig

CHECKPOINT_VERSION = 2
"""Bumped to 2 when cells grew ``metrics``/``manifest`` payloads — version-1
checkpoints are silently recomputed rather than resumed without provenance."""


# ---------------------------------------------------------------------------
# Matrix cells
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SweepCell:
    """One cell of the experiment matrix: a workload replayed under baseline
    and Mallacc at one allocator configuration.  Fully declarative and
    picklable — the worker rebuilds fresh machines from these fields alone,
    which is what makes sharded replay bit-exact."""

    workload: str
    cache_entries: int = 32
    num_ops: int = 1000
    seed: int = 1
    model_app_traffic: bool = True
    sampled: bool = False
    """Replay through :func:`~repro.harness.experiments.compare_workload_sampled`
    instead of the exact comparison."""
    interval_ops: int = 200
    stride: int = 16
    sampler: str = "systematic"
    target_ci: float | None = None
    """Error budget in program-speedup CI half-width percentage points."""

    @property
    def cell_id(self) -> str:
        """Stable identifier; doubles as the checkpoint file stem.

        Exact cells keep their historical ids (old checkpoint directories
        stay resumable); sampled cells append every sampling knob so a
        config change never reuses a stale checkpoint."""
        suffix = "" if self.model_app_traffic else "-noapp"
        if self.sampled:
            budget = f"-t{self.target_ci:g}" if self.target_ci is not None else ""
            suffix += (
                f"-smp-{self.sampler}-i{self.interval_ops}"
                f"-k{self.stride}{budget}"
            )
        return (
            f"{self.workload}-e{self.cache_entries}"
            f"-n{self.num_ops}-s{self.seed}{suffix}"
        )

    def sampling_config(self) -> SamplingConfig:
        return SamplingConfig(
            interval_ops=self.interval_ops,
            sampler=self.sampler,
            stride=self.stride,
            target_ci=self.target_ci,
            seed=self.seed,
        )


def derive_seed(base_seed: int, workload: str) -> int:
    """Deterministic per-task seed: stable across runs, processes, and
    shard assignment (crc32, not ``hash()``, so ``PYTHONHASHSEED`` is
    irrelevant).  Cells of the same workload share a seed so cache-size
    sweep points replay the identical op stream (the Figure 17
    methodology)."""
    return (base_seed + zlib.crc32(workload.encode("utf-8"))) % (2**31 - 1)


def build_matrix(
    workloads: Sequence[str],
    cache_sizes: Sequence[int] = (32,),
    num_ops: int = 1000,
    base_seed: int = 1,
    model_app_traffic: bool = True,
    per_task_seeds: bool = True,
    sampled: bool = False,
    interval_ops: int = 200,
    stride: int = 16,
    sampler: str = "systematic",
    target_ci: float | None = None,
) -> list[SweepCell]:
    """Enumerate the (workload × cache-size) matrix in canonical order.

    With ``per_task_seeds`` each workload gets a seed derived from
    ``base_seed`` via :func:`derive_seed`; otherwise every cell uses
    ``base_seed`` verbatim (the legacy serial-sweep convention).
    ``sampled=True`` replays every cell through the interval-sampling
    engine with the given knobs (see :class:`SweepCell`).
    """
    return [
        SweepCell(
            workload=name,
            cache_entries=size,
            num_ops=num_ops,
            seed=derive_seed(base_seed, name) if per_task_seeds else base_seed,
            model_app_traffic=model_app_traffic,
            sampled=sampled,
            interval_ops=interval_ops,
            stride=stride,
            sampler=sampler,
            target_ci=target_ci,
        )
        for name in workloads
        for size in cache_sizes
    ]


@dataclass
class CellResult:
    """The scalar outcome of one cell (a serialized
    :func:`~repro.harness.experiments.summarize_comparison` payload).

    ``wall_seconds`` and the intern counters are measurement machinery, not
    science — they are excluded from :meth:`figure_data` so serial and
    sharded payloads compare equal (and so interning on/off stays
    byte-invisible in matrix output).
    """

    cell_id: str
    workload: str
    cache_entries: int
    num_ops: int
    seed: int
    summary: dict[str, float | int]
    wall_seconds: float = 0.0
    intern_hits: int = 0
    intern_misses: int = 0
    detailed_calls: int = 0
    """Calls through the detailed timing model (0 for exact cells, whose
    summary already accounts every call)."""
    warming_calls: int = 0
    metrics: dict = field(default_factory=dict)
    """This cell's serialized :class:`~repro.obs.metrics.MetricsRegistry`
    (baseline + mallacc telemetry, labeled) — checkpointed with the cell so
    the pool can merge worker registries without re-running anything."""
    manifest: dict = field(default_factory=dict)
    """Serialized :class:`~repro.obs.manifest.RunManifest` for this cell."""

    @property
    def trace_cache_hits(self) -> int:
        return int(self.summary.get("trace_cache_hits", 0))

    @property
    def trace_cache_misses(self) -> int:
        return int(self.summary.get("trace_cache_misses", 0))

    def figure_data(self) -> dict:
        """Deterministic figure/table payload for this cell."""
        return {
            "cell_id": self.cell_id,
            "workload": self.workload,
            "cache_entries": self.cache_entries,
            "num_ops": self.num_ops,
            "seed": self.seed,
            "summary": dict(sorted(self.summary.items())),
        }


def run_cell(cell: SweepCell) -> CellResult:
    """Execute one cell on fresh machines (the worker-side entry point)."""
    from repro.workloads import MACRO_WORKLOADS, MICROBENCHMARKS

    registry = {**MICROBENCHMARKS, **MACRO_WORKLOADS}
    if cell.workload not in registry:
        raise ValueError(f"unknown workload {cell.workload!r}")
    manifest = collect_manifest(asdict(cell), seed=cell.seed, cell_id=cell.cell_id)
    if cell.sampled:
        comparison = compare_workload_sampled(
            registry[cell.workload],
            num_ops=cell.num_ops,
            seed=cell.seed,
            cache_entries=cell.cache_entries,
            model_app_traffic=cell.model_app_traffic,
            sampling=cell.sampling_config(),
        )
        summary = summarize_sampled_comparison(comparison)
        detailed = comparison.baseline.detailed_calls + comparison.mallacc.detailed_calls
        warming = comparison.baseline.warming_calls + comparison.mallacc.warming_calls
    else:
        comparison = compare_workload(
            registry[cell.workload],
            num_ops=cell.num_ops,
            seed=cell.seed,
            cache_entries=cell.cache_entries,
            model_app_traffic=cell.model_app_traffic,
        )
        summary = summarize_comparison(comparison)
        detailed = warming = 0
    cell_metrics = run_registry(comparison.baseline, alloc="baseline")
    run_registry(comparison.mallacc, cell_metrics, alloc="mallacc")
    cell_metrics.counter("cells_done").inc()
    return CellResult(
        cell_id=cell.cell_id,
        workload=cell.workload,
        cache_entries=cell.cache_entries,
        num_ops=cell.num_ops,
        seed=cell.seed,
        summary=summary,
        intern_hits=comparison.baseline.intern_hits + comparison.mallacc.intern_hits,
        intern_misses=(
            comparison.baseline.intern_misses + comparison.mallacc.intern_misses
        ),
        detailed_calls=detailed,
        warming_calls=warming,
        metrics=cell_metrics.to_dict(),
        manifest=manifest.to_dict(),
    )


def _timed_cell(cell_fn: Callable[[SweepCell], CellResult], cell: SweepCell) -> CellResult:
    t0 = time.perf_counter()
    result = cell_fn(cell)
    result.wall_seconds = time.perf_counter() - t0
    if result.manifest:
        result.manifest["wall_seconds"] = result.wall_seconds
    return result


# ---------------------------------------------------------------------------
# Checkpoints
# ---------------------------------------------------------------------------
def checkpoint_path(checkpoint_dir: str | os.PathLike, cell: SweepCell) -> Path:
    return Path(checkpoint_dir) / f"{cell.cell_id}.json"


def write_checkpoint(checkpoint_dir: str | os.PathLike, cell: SweepCell, result: CellResult) -> Path:
    """Atomically persist one completed cell (temp file + rename, so a kill
    mid-write never leaves a truncated checkpoint behind)."""
    directory = Path(checkpoint_dir)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": CHECKPOINT_VERSION,
        "cell": asdict(cell),
        "result": asdict(result),
    }
    fd, tmp = tempfile.mkstemp(
        prefix=f".{cell.cell_id}.", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, sort_keys=True)
        target = checkpoint_path(directory, cell)
        os.replace(tmp, target)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return target


def load_checkpoint(checkpoint_dir: str | os.PathLike, cell: SweepCell) -> CellResult | None:
    """A cell's checkpointed result, or ``None`` if absent, unreadable, or
    written for a *different* cell definition (stale directories from an
    earlier matrix never masquerade as completed work)."""
    path = checkpoint_path(checkpoint_dir, cell)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if payload.get("version") != CHECKPOINT_VERSION:
        return None
    if payload.get("cell") != asdict(cell):
        return None
    try:
        return CellResult(**payload["result"])
    except (KeyError, TypeError):
        return None


# ---------------------------------------------------------------------------
# The sharded runner
# ---------------------------------------------------------------------------
@dataclass
class MatrixStats:
    """Run-level accounting for the progress/metrics stream."""

    cells_total: int = 0
    cells_done: int = 0
    cells_resumed: int = 0
    cells_failed: int = 0
    """Failed *attempts* (a cell that fails twice then succeeds counts 2)."""
    cells_retried: int = 0
    cells_quarantined: int = 0
    wall_seconds: float = 0.0
    per_cell_wall: dict[str, float] = field(default_factory=dict)
    trace_cache: dict[str, float] = field(default_factory=dict)
    intern: dict[str, float] = field(default_factory=dict)
    sampling: dict[str, float] = field(default_factory=dict)
    """Pooled :func:`~repro.harness.metrics.sampling_summary` over all
    completed cells (all zeros on an exact-only matrix)."""
    metrics: dict = field(default_factory=dict)
    """The merged :class:`~repro.obs.metrics.MetricsRegistry` of every
    completed cell (serialized) — the pool-level unified telemetry view."""


@dataclass
class MatrixResult:
    """Everything a sharded run produced, in canonical cell order."""

    results: dict[str, CellResult]
    quarantined: dict[str, str]
    stats: MatrixStats

    def __post_init__(self) -> None:
        overlap = set(self.results) & set(self.quarantined)
        if overlap:  # pragma: no cover - construction invariant
            raise ValueError(f"cells both completed and quarantined: {overlap}")


def _emit(progress: Callable[[dict], None] | None, event: dict) -> None:
    if progress is not None:
        progress(event)


def _attempt_round(
    pending: list[SweepCell],
    cell_fn: Callable[[SweepCell], CellResult],
    jobs: int,
) -> tuple[dict[str, CellResult], dict[str, str]]:
    """Run one attempt over ``pending`` cells; returns (done, failed).

    ``jobs <= 1`` executes inline (no pool: deterministic, debuggable, and
    what the serial differential baseline uses).  A broken pool — a worker
    killed outright — fails the affected cells rather than the whole run.
    """
    done: dict[str, CellResult] = {}
    failed: dict[str, str] = {}
    if jobs <= 1:
        for cell in pending:
            try:
                done[cell.cell_id] = _timed_cell(cell_fn, cell)
            except Exception as exc:
                failed[cell.cell_id] = f"{type(exc).__name__}: {exc}"
        return done, failed

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {
            pool.submit(_timed_cell, cell_fn, cell): cell for cell in pending
        }
        for future in as_completed(futures):
            cell = futures[future]
            try:
                done[cell.cell_id] = future.result()
            except Exception as exc:
                # Includes BrokenProcessPool: every in-flight cell on a
                # killed pool lands here and is retried on a fresh pool.
                failed[cell.cell_id] = f"{type(exc).__name__}: {exc}"
    return done, failed


def run_matrix(
    cells: Sequence[SweepCell],
    jobs: int = 1,
    checkpoint_dir: str | os.PathLike | None = None,
    resume: bool = False,
    max_retries: int = 2,
    backoff_seconds: float = 0.1,
    progress: Callable[[dict], None] | None = None,
    cell_fn: Callable[[SweepCell], CellResult] = run_cell,
) -> MatrixResult:
    """Shard ``cells`` across ``jobs`` workers with checkpoints and retry.

    * ``resume=True`` (requires ``checkpoint_dir``) skips every cell whose
      checkpoint matches its definition;
    * each completed cell is checkpointed immediately, so *any* interrupted
      run with a checkpoint directory is resumable;
    * a cell failing more than ``max_retries`` times is quarantined into
      ``MatrixResult.quarantined`` with its last error;
    * ``cell_fn`` must be picklable (a module-level function) when
      ``jobs > 1`` — injectable for fault-injection tests.
    """
    cells = list(cells)
    ids = [c.cell_id for c in cells]
    if len(set(ids)) != len(ids):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        raise ValueError(f"duplicate cells in matrix: {dupes}")
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires a checkpoint_dir")

    stats = MatrixStats(cells_total=len(cells))
    completed: dict[str, CellResult] = {}
    tracer = get_tracer()
    trace_t0 = tracer.now_us() if tracer.enabled else 0
    t_start = time.perf_counter()

    pending: list[SweepCell] = []
    for cell in cells:
        prior = load_checkpoint(checkpoint_dir, cell) if resume else None
        if prior is not None:
            completed[cell.cell_id] = prior
            stats.cells_resumed += 1
        else:
            pending.append(cell)
    _emit(progress, {
        "event": "start",
        "cells": len(cells),
        "resumed": stats.cells_resumed,
        "jobs": jobs,
    })

    by_id = {c.cell_id: c for c in cells}
    last_error: dict[str, str] = {}
    attempt = 0
    while pending and attempt <= max_retries:
        if attempt:
            delay = backoff_seconds * (2 ** (attempt - 1))
            _emit(progress, {
                "event": "retry_round",
                "attempt": attempt,
                "cells": [c.cell_id for c in pending],
                "backoff_seconds": delay,
            })
            stats.cells_retried += len(pending)
            time.sleep(delay)
        done, failed = _attempt_round(pending, cell_fn, jobs)
        for cell_id, result in done.items():
            completed[cell_id] = result
            stats.cells_done += 1
            stats.per_cell_wall[cell_id] = result.wall_seconds
            if checkpoint_dir is not None:
                write_checkpoint(checkpoint_dir, by_id[cell_id], result)
            if tracer.enabled:
                # Worker cells run in other processes; log them parent-side
                # with explicit endpoints so the matrix trace shows every
                # cell as a span ending "now".
                dur_us = max(1, int(result.wall_seconds * 1e6))
                tracer.complete(
                    "matrix_cell", tracer.now_us() - dur_us, dur_us,
                    cell=cell_id, workload=result.workload,
                )
            _emit(progress, {
                "event": "cell_done",
                "cell": cell_id,
                "wall_seconds": result.wall_seconds,
                "done": stats.cells_done + stats.cells_resumed,
                "total": stats.cells_total,
            })
        for cell_id, error in failed.items():
            stats.cells_failed += 1
            last_error[cell_id] = error
            _emit(progress, {
                "event": "cell_failed",
                "cell": cell_id,
                "attempt": attempt,
                "error": error,
            })
        pending = [by_id[cid] for cid in ids if cid in failed]
        attempt += 1

    quarantined = {cell.cell_id: last_error[cell.cell_id] for cell in pending}
    for cell_id, error in quarantined.items():
        stats.cells_quarantined += 1
        _emit(progress, {"event": "cell_quarantined", "cell": cell_id, "error": error})

    # Canonical order: results iterate in matrix order, not completion order.
    ordered = {cid: completed[cid] for cid in ids if cid in completed}
    stats.wall_seconds = time.perf_counter() - t_start
    stats.trace_cache = trace_cache_summary(*ordered.values())
    stats.intern = intern_summary(*ordered.values())
    stats.sampling = sampling_summary(*ordered.values())
    pooled = matrix_registry(r.metrics for r in ordered.values())
    pooled.counter("cells_resumed").inc(stats.cells_resumed)
    pooled.counter("cells_retried").inc(stats.cells_retried)
    pooled.counter("cells_quarantined").inc(stats.cells_quarantined)
    stats.metrics = pooled.to_dict()
    if tracer.enabled:
        tracer.complete(
            "run_matrix", trace_t0, tracer.now_us() - trace_t0,
            cells=stats.cells_total, jobs=jobs,
        )
    _emit(progress, {
        "event": "summary",
        "done": stats.cells_done,
        "resumed": stats.cells_resumed,
        "failed_attempts": stats.cells_failed,
        "retried": stats.cells_retried,
        "quarantined": stats.cells_quarantined,
        "wall_seconds": stats.wall_seconds,
        "trace_cache_hit_rate": stats.trace_cache["hit_rate"],
        "intern_hit_rate": stats.intern["hit_rate"],
    })
    return MatrixResult(results=ordered, quarantined=quarantined, stats=stats)


# ---------------------------------------------------------------------------
# Canonical output
# ---------------------------------------------------------------------------
def matrix_figure_data(result: MatrixResult) -> dict:
    """The order-stable figure/table payload of a matrix run.

    Contains only cell definitions and science (no wall times, worker
    counts, or retry noise), so any two runs of the same matrix — serial,
    sharded, resumed — serialize to identical bytes via
    :func:`matrix_to_json`.
    """
    return {
        "cells": [r.figure_data() for r in result.results.values()],
        "quarantined": sorted(result.quarantined),
    }


def matrix_to_json(result: MatrixResult) -> str:
    """Deterministic JSON serialization of :func:`matrix_figure_data`."""
    return json.dumps(matrix_figure_data(result), sort_keys=True, indent=2)

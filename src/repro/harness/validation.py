"""Simulator validation (Table 1).

The paper validated XIOSim against a real Haswell desktop on the malloc
microbenchmarks, reporting a 6.28% mean cycle error.  Without hardware, we
validate the *detailed* scheduler against an independent *analytic* model of
the same microbenchmarks — a closed-form Haswell fast-path estimate built
from first principles (dependence-chain latency vs. issue-width bound,
all-L1 assumptions for strided benchmarks).  The detailed model adds branch
warmup, cache state, slow-start refills, and real slow paths, so the two
legitimately disagree by a few percent — the same order the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.experiments import make_baseline
from repro.harness.runner import run_workload
from repro.workloads.base import Workload
from repro.workloads.micro import MICROBENCHMARKS


@dataclass(frozen=True)
class ValidationRow:
    workload: str
    simulated_cycles: float
    """Mean measured malloc+free pair cost (fast-path calls)."""
    analytic_cycles: float
    error_pct: float


# Closed-form fast-path costs (cycles), derived by hand from the micro-op
# structure in repro.alloc:
#   malloc fast = overhead 2 + chain (2 ALU + class ld + lea + head ld +
#                 next ld) = 18-20 with all L1 hits; multi-class strided
#                 footprints push the cold next-pointer load to L2 about
#                 half the time: +4 -> ~24.
#   free (non-sized) fast = overhead + pagemap radix chain + push ≈ 19
#   free (sized) fast = overhead + class chain + push ≈ 16
_ANALYTIC_MALLOC_STRIDED = 24.0
_ANALYTIC_MALLOC_LOCAL = 21.0
_ANALYTIC_FREE_FAST = 19.0
_ANALYTIC_FREE_SIZED_FAST = 16.0


def analytic_pair_cost(workload_name: str) -> float:
    """Closed-form malloc+free fast-path pair estimate per workload."""
    if workload_name == "sized_deletes":
        return _ANALYTIC_MALLOC_STRIDED + _ANALYTIC_FREE_SIZED_FAST
    if workload_name == "gauss":
        return _ANALYTIC_MALLOC_LOCAL  # never frees
    if workload_name == "gauss_free":
        # Gaussian mixes concentrate on a few classes: better locality.
        return _ANALYTIC_MALLOC_LOCAL + _ANALYTIC_FREE_FAST
    return _ANALYTIC_MALLOC_STRIDED + _ANALYTIC_FREE_FAST


def measured_pair_cost(workload: Workload, num_ops: int = 2000, seed: int = 1) -> float:
    """Mean fast-path malloc+free pair cost under the detailed simulator."""
    allocator = make_baseline()
    result = run_workload(allocator, workload.ops(seed=seed, num_ops=num_ops))
    fast = [r for r in result.records if r.is_fast_path]
    mallocs = [r.cycles for r in fast if r.is_malloc]
    frees = [r.cycles for r in fast if not r.is_malloc]
    mean_malloc = sum(mallocs) / len(mallocs) if mallocs else 0.0
    mean_free = sum(frees) / len(frees) if frees else 0.0
    return mean_malloc + mean_free


def validate(
    names: tuple[str, ...] = ("gauss", "gauss_free", "tp", "tp_small", "sized_deletes"),
    num_ops: int = 2000,
) -> list[ValidationRow]:
    """Table 1: per-microbenchmark cycle error, detailed vs analytic.

    ``antagonist`` is omitted exactly as in the paper ("it uses a simulator
    callback to emulate cache trashing and does not run natively").
    """
    rows = []
    for name in names:
        workload = MICROBENCHMARKS[name]
        simulated = measured_pair_cost(workload, num_ops=num_ops)
        analytic = analytic_pair_cost(name)
        error = 100.0 * abs(simulated - analytic) / analytic if analytic else 0.0
        rows.append(
            ValidationRow(
                workload=name,
                simulated_cycles=simulated,
                analytic_cycles=analytic,
                error_pct=error,
            )
        )
    return rows


def mean_error(rows: list[ValidationRow]) -> float:
    return sum(r.error_pct for r in rows) / len(rows) if rows else 0.0

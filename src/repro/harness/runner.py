"""Replay an op stream on an allocator and collect per-call records.

The runner owns the slot→pointer table, advances the machine clock through
application gaps, models application cache traffic by streaming through a
dedicated memory region, and executes the antagonist's eviction callback.
Warmup ops run fully (they train caches, predictors, and pool heuristics)
but are excluded from the measured statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.alloc.allocator import CallRecord, TCMalloc
from repro.harness.profile import HotPathProfiler, machine_counter_snapshot
from repro.workloads.base import Op, OpKind

_APP_REGION_BASE = 0x0000_7000_0000_0000
_APP_REGION_BYTES = 2 * 1024 * 1024
"""Application streaming region: fits in L3, thrashes L1/L2."""


@dataclass
class RunResult:
    """Everything measured while replaying one workload."""

    workload: str
    records: list[CallRecord] = field(default_factory=list)
    app_cycles: int = 0
    warmup_calls: int = 0
    warmup_cycles: int = 0
    trace_cache_hits: int = 0
    """Trace-scheduling memoization hits during this replay (0 if disabled)."""
    trace_cache_misses: int = 0
    intern_hits: int = 0
    """Emission-template intern hits during this replay (0 if disabled).
    Simulator-performance telemetry, like the trace-cache counters above —
    never part of the science payload (interning on/off is byte-invisible
    to summaries)."""
    intern_misses: int = 0

    @property
    def trace_cache_lookups(self) -> int:
        return self.trace_cache_hits + self.trace_cache_misses

    @property
    def trace_cache_hit_rate(self) -> float:
        lookups = self.trace_cache_lookups
        return self.trace_cache_hits / lookups if lookups else 0.0

    @property
    def intern_hit_rate(self) -> float:
        lookups = self.intern_hits + self.intern_misses
        return self.intern_hits / lookups if lookups else 0.0

    # -- aggregate cycle counts -------------------------------------------
    @property
    def allocator_cycles(self) -> int:
        return sum(r.cycles for r in self.records)

    @property
    def malloc_cycles(self) -> int:
        return sum(r.cycles for r in self.records if r.is_malloc)

    @property
    def free_cycles(self) -> int:
        return sum(r.cycles for r in self.records if not r.is_malloc)

    @property
    def total_cycles(self) -> int:
        return self.allocator_cycles + self.app_cycles

    @property
    def allocator_fraction(self) -> float:
        total = self.total_cycles
        return self.allocator_cycles / total if total else 0.0

    def ablated_allocator_cycles(self, name: str) -> int:
        """Allocator cycles with the named uop ablation applied per call."""
        return sum(r.ablated.get(name, r.cycles) for r in self.records)

    def ablated_malloc_cycles(self, name: str) -> int:
        return sum(r.ablated.get(name, r.cycles) for r in self.records if r.is_malloc)

    # -- path statistics ------------------------------------------------------
    def path_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for r in self.records:
            counts[r.path.value] = counts.get(r.path.value, 0) + 1
        return counts

    def fast_path_time_fraction(self, threshold: int = 100) -> float:
        """Fraction of allocator time spent in calls shorter than
        ``threshold`` cycles (the Figure 2 metric)."""
        total = self.allocator_cycles
        if not total:
            return 0.0
        fast = sum(r.cycles for r in self.records if r.cycles < threshold)
        return fast / total


def _cache_snapshots(machines) -> list[tuple[int, int]]:
    """(hits, misses) per distinct timing model, for delta accounting."""
    snaps = []
    for machine in _distinct_machines(machines):
        stats = machine.timing.cache_stats
        snaps.append(stats.snapshot() if stats is not None else (0, 0))
    return snaps


def _cache_delta(machines, before: list[tuple[int, int]]) -> tuple[int, int]:
    hits = misses = 0
    for machine, (h0, m0) in zip(_distinct_machines(machines), before):
        stats = machine.timing.cache_stats
        if stats is None:
            continue
        h1, m1 = stats.snapshot()
        hits += h1 - h0
        misses += m1 - m0
    return hits, misses


def _distinct_machines(machines) -> list:
    """Machines deduplicated by identity (threads may share one core)."""
    return list({id(m): m for m in machines}.values())


def _intern_snapshots(machines) -> list[tuple[int, int]]:
    """(hits, misses) per distinct interner, for delta accounting."""
    snaps = []
    seen: set[int] = set()
    for machine in _distinct_machines(machines):
        interner = machine.interner
        if interner is None or id(interner) in seen:
            snaps.append(None)
            continue
        seen.add(id(interner))
        snaps.append(interner.stats.snapshot())
    return snaps


def _intern_delta(machines, before) -> tuple[int, int]:
    hits = misses = 0
    for machine, snap in zip(_distinct_machines(machines), before):
        if snap is None or machine.interner is None:
            continue
        h1, m1 = machine.interner.stats.snapshot()
        hits += h1 - snap[0]
        misses += m1 - snap[1]
    return hits, misses


def _profiler_begin(profiler: HotPathProfiler | None, machines):
    """Attach ``profiler`` to every distinct machine; returns restore state
    ``(previous profilers, counter snapshot, replay timer)`` or ``None``."""
    if profiler is None:
        return None
    distinct = _distinct_machines(machines)
    previous = [m.profiler for m in distinct]
    for m in distinct:
        m.profiler = profiler
    counters = machine_counter_snapshot(distinct)
    timer = profiler.timed("replay")
    timer.__enter__()
    return (distinct, previous, counters, timer)


def _profiler_end(profiler: HotPathProfiler | None, state) -> None:
    if profiler is None or state is None:
        return
    distinct, previous, counters_before, timer = state
    timer.__exit__(None, None, None)
    for machine, prev in zip(distinct, previous):
        machine.profiler = prev
    after = machine_counter_snapshot(distinct)
    for name, value in after.items():
        profiler.count(name, value - counters_before.get(name, 0))


def run_workload(
    allocator: TCMalloc,
    ops: Iterable[Op],
    name: str = "",
    model_app_traffic: bool = True,
    profiler: HotPathProfiler | None = None,
) -> RunResult:
    """Replay ``ops`` on ``allocator`` and return the measured results.

    The allocator's own record list is disabled; records are captured from
    each call's return value so warmup can be separated cleanly.

    ``profiler`` (opt-in) is attached to the machine for the duration of the
    replay: it collects per-stage wall time and, afterwards, this run's
    deltas of the hot-path counters (intern, trace cache, hierarchy).
    """
    allocator.keep_records = False
    machine = allocator.machine
    result = RunResult(workload=name)
    slots: dict[int, int] = {}
    app_offset = 0
    cache_before = _cache_snapshots([machine])
    intern_before = _intern_snapshots([machine])
    prof_state = _profiler_begin(profiler, [machine])

    for op in ops:
        if op.kind is OpKind.ANTAGONIZE:
            machine.hierarchy.antagonize()
            continue

        if op.gap_cycles:
            machine.advance(op.gap_cycles)
            if not op.warmup:
                result.app_cycles += op.gap_cycles
        if op.app_lines and model_app_traffic:
            machine.hierarchy.touch_lines(
                _APP_REGION_BASE + app_offset, op.app_lines
            )
            app_offset = (app_offset + op.app_lines * 64) % _APP_REGION_BYTES

        if op.kind is OpKind.MALLOC:
            if op.slot in slots:
                raise ValueError(f"workload reused live slot {op.slot}")
            ptr, record = allocator.malloc(op.size)
            slots[op.slot] = ptr
        elif op.kind is OpKind.FREE:
            if op.slot not in slots:
                raise ValueError(f"workload freed unknown or dead slot {op.slot}")
            record = allocator.free(slots.pop(op.slot))
        elif op.kind is OpKind.FREE_SIZED:
            if op.slot not in slots:
                raise ValueError(f"workload freed unknown or dead slot {op.slot}")
            record = allocator.sized_free(slots.pop(op.slot), op.size)
        else:  # pragma: no cover - exhaustive over OpKind
            raise ValueError(f"unknown op kind {op.kind}")

        if op.warmup:
            result.warmup_calls += 1
            result.warmup_cycles += record.cycles
        else:
            result.records.append(record)

    _profiler_end(profiler, prof_state)
    result.trace_cache_hits, result.trace_cache_misses = _cache_delta(
        [machine], cache_before
    )
    result.intern_hits, result.intern_misses = _intern_delta([machine], intern_before)
    return result


@dataclass
class MultiThreadRunResult:
    """Aggregate of a multithreaded replay."""

    workload: str
    records: list[CallRecord] = field(default_factory=list)
    per_thread_cycles: dict[int, int] = field(default_factory=dict)
    app_cycles: int = 0
    warmup_calls: int = 0
    warmup_cycles: int = 0
    contention_cycles: int = 0
    coherence_transfers: int = 0
    trace_cache_hits: int = 0
    """Memoization hits summed over all cores (coherent mode has one
    timing model per core)."""
    trace_cache_misses: int = 0
    intern_hits: int = 0
    """Emission-template intern hits summed over all cores' interners."""
    intern_misses: int = 0

    @property
    def allocator_cycles(self) -> int:
        return sum(r.cycles for r in self.records)

    @property
    def total_cycles(self) -> int:
        return self.allocator_cycles + self.app_cycles

    @property
    def trace_cache_lookups(self) -> int:
        return self.trace_cache_hits + self.trace_cache_misses

    @property
    def trace_cache_hit_rate(self) -> float:
        lookups = self.trace_cache_lookups
        return self.trace_cache_hits / lookups if lookups else 0.0

    @property
    def intern_hit_rate(self) -> float:
        lookups = self.intern_hits + self.intern_misses
        return self.intern_hits / lookups if lookups else 0.0


def run_multithreaded(
    mt_allocator,
    ops,
    name: str = "",
    model_app_traffic: bool = True,
    profiler: HotPathProfiler | None = None,
) -> MultiThreadRunResult:
    """Replay a tid-tagged op stream on a
    :class:`repro.alloc.multithread.MultiThreadAllocator`.

    Semantics mirror :func:`run_workload` exactly: warmup calls run fully
    but land in ``warmup_calls``/``warmup_cycles`` (never in ``records`` or
    the per-thread totals), warmup gaps stay out of ``app_cycles``, and
    ``op.app_lines`` streams application traffic through the issuing
    thread's core hierarchy when ``model_app_traffic`` is on.
    """
    from repro.workloads.base import OpKind as _OpKind

    result = MultiThreadRunResult(workload=name)
    slots: dict[int, int] = {}
    machines = getattr(mt_allocator, "core_machines", [mt_allocator.machine])
    cache_before = _cache_snapshots(machines)
    intern_before = _intern_snapshots(machines)
    prof_state = _profiler_begin(profiler, machines)
    app_offset = 0
    for op in ops:
        if op.kind is _OpKind.ANTAGONIZE:
            # Evict every core's private caches (and the shared L3, in
            # coherent mode) exactly once — not just core 0's.
            antagonize = getattr(mt_allocator, "antagonize", None)
            if antagonize is not None:
                antagonize()
            else:  # pragma: no cover - legacy allocators without the hook
                for machine in _distinct_machines(machines):
                    machine.hierarchy.antagonize()
            continue
        if op.gap_cycles:
            mt_allocator.machine.advance(op.gap_cycles)
            if not op.warmup:
                result.app_cycles += op.gap_cycles
        if op.app_lines and model_app_traffic:
            core = machines[op.tid] if op.tid < len(machines) else machines[0]
            core.hierarchy.touch_lines(_APP_REGION_BASE + app_offset, op.app_lines)
            app_offset = (app_offset + op.app_lines * 64) % _APP_REGION_BYTES
        if op.kind is _OpKind.MALLOC:
            if op.slot in slots:
                raise ValueError(f"workload reused live slot {op.slot}")
            ptr, record = mt_allocator.malloc(op.tid, op.size, warmup=op.warmup)
            slots[op.slot] = ptr
        elif op.kind in (_OpKind.FREE, _OpKind.FREE_SIZED):
            if op.slot not in slots:
                raise ValueError(f"workload freed unknown or dead slot {op.slot}")
            if op.kind is _OpKind.FREE:
                record = mt_allocator.free(op.tid, slots.pop(op.slot), warmup=op.warmup)
            else:
                record = mt_allocator.sized_free(
                    op.tid, slots.pop(op.slot), op.size, warmup=op.warmup
                )
        else:  # pragma: no cover - exhaustive
            raise ValueError(f"unknown op kind {op.kind}")
        if op.warmup:
            result.warmup_calls += 1
            result.warmup_cycles += record.cycles
        else:
            result.records.append(record)
            result.per_thread_cycles[op.tid] = (
                result.per_thread_cycles.get(op.tid, 0) + record.cycles
            )
    _profiler_end(profiler, prof_state)
    result.trace_cache_hits, result.trace_cache_misses = _cache_delta(
        machines, cache_before
    )
    result.intern_hits, result.intern_misses = _intern_delta(machines, intern_before)
    result.contention_cycles = mt_allocator.contention_cycles()
    stats = mt_allocator.coherence_stats()
    if stats is not None:
        result.coherence_transfers = stats.remote_transfers
    return result

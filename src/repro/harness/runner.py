"""Replay an op stream on an allocator and collect per-call records.

The runner owns the slot→pointer table, advances the machine clock through
application gaps, models application cache traffic by streaming through a
dedicated memory region, and executes the antagonist's eviction callback.
Warmup ops run fully (they train caches, predictors, and pool heuristics)
but are excluded from the measured statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.alloc.allocator import CallRecord, TCMalloc
from repro.workloads.base import Op, OpKind

_APP_REGION_BASE = 0x0000_7000_0000_0000
_APP_REGION_BYTES = 2 * 1024 * 1024
"""Application streaming region: fits in L3, thrashes L1/L2."""


@dataclass
class RunResult:
    """Everything measured while replaying one workload."""

    workload: str
    records: list[CallRecord] = field(default_factory=list)
    app_cycles: int = 0
    warmup_calls: int = 0
    warmup_cycles: int = 0

    # -- aggregate cycle counts -------------------------------------------
    @property
    def allocator_cycles(self) -> int:
        return sum(r.cycles for r in self.records)

    @property
    def malloc_cycles(self) -> int:
        return sum(r.cycles for r in self.records if r.is_malloc)

    @property
    def free_cycles(self) -> int:
        return sum(r.cycles for r in self.records if not r.is_malloc)

    @property
    def total_cycles(self) -> int:
        return self.allocator_cycles + self.app_cycles

    @property
    def allocator_fraction(self) -> float:
        total = self.total_cycles
        return self.allocator_cycles / total if total else 0.0

    def ablated_allocator_cycles(self, name: str) -> int:
        """Allocator cycles with the named uop ablation applied per call."""
        return sum(r.ablated.get(name, r.cycles) for r in self.records)

    def ablated_malloc_cycles(self, name: str) -> int:
        return sum(r.ablated.get(name, r.cycles) for r in self.records if r.is_malloc)

    # -- path statistics ------------------------------------------------------
    def path_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for r in self.records:
            counts[r.path.value] = counts.get(r.path.value, 0) + 1
        return counts

    def fast_path_time_fraction(self, threshold: int = 100) -> float:
        """Fraction of allocator time spent in calls shorter than
        ``threshold`` cycles (the Figure 2 metric)."""
        total = self.allocator_cycles
        if not total:
            return 0.0
        fast = sum(r.cycles for r in self.records if r.cycles < threshold)
        return fast / total


def run_workload(
    allocator: TCMalloc,
    ops: Iterable[Op],
    name: str = "",
    model_app_traffic: bool = True,
) -> RunResult:
    """Replay ``ops`` on ``allocator`` and return the measured results.

    The allocator's own record list is disabled; records are captured from
    each call's return value so warmup can be separated cleanly.
    """
    allocator.keep_records = False
    machine = allocator.machine
    result = RunResult(workload=name)
    slots: dict[int, int] = {}
    app_offset = 0

    for op in ops:
        if op.kind is OpKind.ANTAGONIZE:
            machine.hierarchy.antagonize()
            continue

        if op.gap_cycles:
            machine.advance(op.gap_cycles)
            if not op.warmup:
                result.app_cycles += op.gap_cycles
        if op.app_lines and model_app_traffic:
            machine.hierarchy.touch_lines(
                _APP_REGION_BASE + app_offset, op.app_lines
            )
            app_offset = (app_offset + op.app_lines * 64) % _APP_REGION_BYTES

        if op.kind is OpKind.MALLOC:
            ptr, record = allocator.malloc(op.size)
            if op.slot in slots:
                raise ValueError(f"workload reused live slot {op.slot}")
            slots[op.slot] = ptr
        elif op.kind is OpKind.FREE:
            record = allocator.free(slots.pop(op.slot))
        elif op.kind is OpKind.FREE_SIZED:
            record = allocator.sized_free(slots.pop(op.slot), op.size)
        else:  # pragma: no cover - exhaustive over OpKind
            raise ValueError(f"unknown op kind {op.kind}")

        if op.warmup:
            result.warmup_calls += 1
            result.warmup_cycles += record.cycles
        else:
            result.records.append(record)

    return result


@dataclass
class MultiThreadRunResult:
    """Aggregate of a multithreaded replay."""

    workload: str
    records: list[CallRecord] = field(default_factory=list)
    per_thread_cycles: dict[int, int] = field(default_factory=dict)
    contention_cycles: int = 0
    coherence_transfers: int = 0

    @property
    def allocator_cycles(self) -> int:
        return sum(r.cycles for r in self.records)


def run_multithreaded(mt_allocator, ops, name: str = "") -> MultiThreadRunResult:
    """Replay a tid-tagged op stream on a
    :class:`repro.alloc.multithread.MultiThreadAllocator`."""
    from repro.workloads.base import OpKind as _OpKind

    result = MultiThreadRunResult(workload=name)
    slots: dict[int, int] = {}
    for op in ops:
        if op.kind is _OpKind.ANTAGONIZE:
            mt_allocator.machine.hierarchy.antagonize()
            continue
        if op.gap_cycles:
            mt_allocator.machine.advance(op.gap_cycles)
        if op.kind is _OpKind.MALLOC:
            ptr, record = mt_allocator.malloc(op.tid, op.size)
            slots[op.slot] = ptr
        elif op.kind is _OpKind.FREE:
            record = mt_allocator.free(op.tid, slots.pop(op.slot))
        elif op.kind is _OpKind.FREE_SIZED:
            record = mt_allocator.sized_free(op.tid, slots.pop(op.slot), op.size)
        else:  # pragma: no cover - exhaustive
            raise ValueError(f"unknown op kind {op.kind}")
        if not op.warmup:
            result.records.append(record)
            result.per_thread_cycles[op.tid] = (
                result.per_thread_cycles.get(op.tid, 0) + record.cycles
            )
    result.contention_cycles = mt_allocator.contention_cycles()
    stats = mt_allocator.coherence_stats()
    if stats is not None:
        result.coherence_transfers = stats.remote_transfers
    return result

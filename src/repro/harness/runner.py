"""Replay an op stream on an allocator and collect per-call records.

The runner owns the slot→pointer table, advances the machine clock through
application gaps, models application cache traffic by streaming through a
dedicated memory region, and executes the antagonist's eviction callback.
Warmup ops run fully (they train caches, predictors, and pool heuristics)
but are excluded from the measured statistics.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Iterable

from repro.alloc.allocator import CallRecord, TCMalloc
from repro.harness.profile import HotPathProfiler, machine_counter_snapshot
from repro.obs.manifest import RunManifest, collect_manifest
from repro.obs.tracer import get_tracer
from repro.sim.sampling import (
    MODE_DETAIL,
    MODE_SKIP,
    MODE_WARM,
    IntervalFeatures,
    SamplePlan,
    SamplingConfig,
    bootstrap_metric_ci,
    feature_vectors,
    plan_op_modes,
    plan_phase,
    plan_systematic,
)
from repro.workloads.base import Op, OpKind

from repro.sim.lazyhier import RING_BASE as _APP_REGION_BASE
from repro.sim.lazyhier import RING_BYTES as _APP_REGION_BYTES

"""Application streaming region: fits in L3, thrashes L1/L2.  The constants
are owned by repro.sim.lazyhier — the columnar engine's lazy hierarchy keys
its cursor-shaped burst recognition on this exact window."""


class AppTraffic:
    """Application cache-line streaming through the shared ring region.

    One instance per replay: every executor (the exact runner, the
    multithreaded runner, the traffic engine) advances the same cursor so
    interleaved streams touch the addresses a front-to-back replay would.
    """

    __slots__ = ("offset",)

    def __init__(self) -> None:
        self.offset = 0

    def touch(self, hierarchy, lines: int) -> None:
        hierarchy.touch_lines(_APP_REGION_BASE + self.offset, lines)
        self.offset = (self.offset + lines * 64) % _APP_REGION_BYTES


def dispatch_call(allocator, op: Op, slots: dict[int, int]) -> CallRecord:
    """Execute one malloc/free/sized-free op against the single-allocator
    API, maintaining the slot→pointer table.  Shared by :func:`run_workload`
    and the traffic engine's single-core path, so the engine's degenerate
    case is bit-identical to the reference runner by construction."""
    if op.kind is OpKind.MALLOC:
        if op.slot in slots:
            raise ValueError(f"workload reused live slot {op.slot}")
        ptr, record = allocator.malloc(op.size)
        slots[op.slot] = ptr
    elif op.kind is OpKind.FREE:
        if op.slot not in slots:
            raise ValueError(f"workload freed unknown or dead slot {op.slot}")
        record = allocator.free(slots.pop(op.slot))
    elif op.kind is OpKind.FREE_SIZED:
        if op.slot not in slots:
            raise ValueError(f"workload freed unknown or dead slot {op.slot}")
        record = allocator.sized_free(slots.pop(op.slot), op.size)
    else:  # pragma: no cover - exhaustive over OpKind
        raise ValueError(f"unknown op kind {op.kind}")
    return record


def dispatch_call_mt(
    mt_allocator, op: Op, slots: dict[int, int], tid: int | None = None
) -> CallRecord:
    """Execute one op against the tid-tagged
    :class:`~repro.alloc.multithread.MultiThreadAllocator` API.  ``tid``
    overrides ``op.tid`` (the traffic engine schedules sessions onto cores
    itself; plain multithreaded replay trusts the stream's tags)."""
    tid = op.tid if tid is None else tid
    if op.kind is OpKind.MALLOC:
        if op.slot in slots:
            raise ValueError(f"workload reused live slot {op.slot}")
        ptr, record = mt_allocator.malloc(tid, op.size, warmup=op.warmup)
        slots[op.slot] = ptr
    elif op.kind is OpKind.FREE or op.kind is OpKind.FREE_SIZED:
        if op.slot not in slots:
            raise ValueError(f"workload freed unknown or dead slot {op.slot}")
        if op.kind is OpKind.FREE:
            record = mt_allocator.free(tid, slots.pop(op.slot), warmup=op.warmup)
        else:
            record = mt_allocator.sized_free(
                tid, slots.pop(op.slot), op.size, warmup=op.warmup
            )
    else:  # pragma: no cover - exhaustive over OpKind
        raise ValueError(f"unknown op kind {op.kind}")
    return record


@dataclass
class RunResult:
    """Everything measured while replaying one workload."""

    workload: str
    records: list[CallRecord] = field(default_factory=list)
    app_cycles: int = 0
    warmup_calls: int = 0
    warmup_cycles: int = 0
    trace_cache_hits: int = 0
    """Trace-scheduling memoization hits during this replay (0 if disabled)."""
    trace_cache_misses: int = 0
    intern_hits: int = 0
    """Emission-template intern hits during this replay (0 if disabled).
    Simulator-performance telemetry, like the trace-cache counters above —
    never part of the science payload (interning on/off is byte-invisible
    to summaries)."""
    intern_misses: int = 0
    manifest: RunManifest | None = field(default=None, repr=False, compare=False)
    """Provenance record (:mod:`repro.obs.manifest`) — observability, not
    science: excluded from equality and every figure payload."""

    @property
    def trace_cache_lookups(self) -> int:
        return self.trace_cache_hits + self.trace_cache_misses

    @property
    def trace_cache_hit_rate(self) -> float:
        lookups = self.trace_cache_lookups
        return self.trace_cache_hits / lookups if lookups else 0.0

    @property
    def intern_hit_rate(self) -> float:
        lookups = self.intern_hits + self.intern_misses
        return self.intern_hits / lookups if lookups else 0.0

    # -- aggregate cycle counts -------------------------------------------
    @property
    def allocator_cycles(self) -> int:
        return sum(r.cycles for r in self.records)

    @property
    def malloc_cycles(self) -> int:
        return sum(r.cycles for r in self.records if r.is_malloc)

    @property
    def free_cycles(self) -> int:
        return sum(r.cycles for r in self.records if not r.is_malloc)

    @property
    def total_cycles(self) -> int:
        return self.allocator_cycles + self.app_cycles

    @property
    def allocator_fraction(self) -> float:
        total = self.total_cycles
        return self.allocator_cycles / total if total else 0.0

    def ablated_allocator_cycles(self, name: str) -> int:
        """Allocator cycles with the named uop ablation applied per call."""
        return sum(r.ablated.get(name, r.cycles) for r in self.records)

    def ablated_malloc_cycles(self, name: str) -> int:
        return sum(r.ablated.get(name, r.cycles) for r in self.records if r.is_malloc)

    # -- path statistics ------------------------------------------------------
    def path_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for r in self.records:
            counts[r.path.value] = counts.get(r.path.value, 0) + 1
        return counts

    def fast_path_time_fraction(self, threshold: int = 100) -> float:
        """Fraction of allocator time spent in calls shorter than
        ``threshold`` cycles (the Figure 2 metric)."""
        total = self.allocator_cycles
        if not total:
            return 0.0
        fast = sum(r.cycles for r in self.records if r.cycles < threshold)
        return fast / total


def _cache_snapshots(machines) -> list[tuple[int, int]]:
    """(hits, misses) per distinct timing model, for delta accounting."""
    snaps = []
    for machine in _distinct_machines(machines):
        stats = machine.timing.cache_stats
        snaps.append(stats.snapshot() if stats is not None else (0, 0))
    return snaps


def _cache_delta(machines, before: list[tuple[int, int]]) -> tuple[int, int]:
    hits = misses = 0
    for machine, (h0, m0) in zip(_distinct_machines(machines), before):
        stats = machine.timing.cache_stats
        if stats is None:
            continue
        h1, m1 = stats.snapshot()
        hits += h1 - h0
        misses += m1 - m0
    return hits, misses


def _distinct_machines(machines) -> list:
    """Machines deduplicated by identity (threads may share one core)."""
    return list({id(m): m for m in machines}.values())


def _intern_snapshots(machines) -> list[tuple[int, int]]:
    """(hits, misses) per distinct interner, for delta accounting."""
    snaps = []
    seen: set[int] = set()
    for machine in _distinct_machines(machines):
        interner = machine.interner
        if interner is None or id(interner) in seen:
            snaps.append(None)
            continue
        seen.add(id(interner))
        snaps.append(interner.stats.snapshot())
    return snaps


def _intern_delta(machines, before) -> tuple[int, int]:
    hits = misses = 0
    for machine, snap in zip(_distinct_machines(machines), before):
        if snap is None or machine.interner is None:
            continue
        h1, m1 = machine.interner.stats.snapshot()
        hits += h1 - snap[0]
        misses += m1 - snap[1]
    return hits, misses


def _profiler_begin(profiler: HotPathProfiler | None, machines):
    """Attach ``profiler`` to every distinct machine; returns restore state
    ``(previous profilers, counter snapshot, replay timer)`` or ``None``."""
    if profiler is None:
        return None
    distinct = _distinct_machines(machines)
    previous = [(m.profiler, m.timing.profiler) for m in distinct]
    for m in distinct:
        m.profiler = profiler
        # The timing model times columnar template compilation itself (the
        # ``columnar_compile`` stage, nested inside ``schedule``).
        m.timing.profiler = profiler
    counters = machine_counter_snapshot(distinct)
    timer = profiler.timed("replay")
    timer.__enter__()
    return (distinct, previous, counters, timer)


def _profiler_end(profiler: HotPathProfiler | None, state) -> None:
    if profiler is None or state is None:
        return
    distinct, previous, counters_before, timer = state
    timer.__exit__(None, None, None)
    for machine, (prev, prev_timing) in zip(distinct, previous):
        machine.profiler = prev
        machine.timing.profiler = prev_timing
    after = machine_counter_snapshot(distinct)
    for name, value in after.items():
        profiler.count(name, value - counters_before.get(name, 0))


def run_workload(
    allocator: TCMalloc,
    ops: Iterable[Op],
    name: str = "",
    model_app_traffic: bool = True,
    profiler: HotPathProfiler | None = None,
) -> RunResult:
    """Replay ``ops`` on ``allocator`` and return the measured results.

    The allocator's own record list is disabled; records are captured from
    each call's return value so warmup can be separated cleanly.

    ``profiler`` (opt-in) is attached to the machine for the duration of the
    replay: it collects per-stage wall time and, afterwards, this run's
    deltas of the hot-path counters (intern, trace cache, hierarchy).
    """
    allocator.keep_records = False
    machine = allocator.machine
    result = RunResult(workload=name)
    slots: dict[int, int] = {}
    app = AppTraffic()
    manifest = collect_manifest(
        {"entry": "run_workload", "workload": name,
         "model_app_traffic": model_app_traffic},
    )
    tracer = get_tracer()
    trace_t0 = tracer.now_us() if tracer.enabled else 0
    wall_t0 = perf_counter()
    cache_before = _cache_snapshots([machine])
    intern_before = _intern_snapshots([machine])
    prof_state = _profiler_begin(profiler, [machine])

    for op in ops:
        if op.kind is OpKind.ANTAGONIZE:
            machine.hierarchy.antagonize()
            continue

        if op.gap_cycles:
            machine.advance(op.gap_cycles)
            if not op.warmup:
                result.app_cycles += op.gap_cycles
        if op.app_lines and model_app_traffic:
            app.touch(machine.hierarchy, op.app_lines)

        record = dispatch_call(allocator, op, slots)

        if op.warmup:
            result.warmup_calls += 1
            result.warmup_cycles += record.cycles
        else:
            result.records.append(record)

    _profiler_end(profiler, prof_state)
    result.trace_cache_hits, result.trace_cache_misses = _cache_delta(
        [machine], cache_before
    )
    result.intern_hits, result.intern_misses = _intern_delta([machine], intern_before)
    result.manifest = manifest.finished(perf_counter() - wall_t0)
    if tracer.enabled:
        tracer.complete(
            "run_workload", trace_t0, tracer.now_us() - trace_t0,
            workload=name, calls=len(result.records),
        )
    return result


# ---------------------------------------------------------------------------
# Sampled replay
# ---------------------------------------------------------------------------
_WARMING_OF_MODE = {MODE_DETAIL: None, MODE_WARM: "warm"}
"""Machine.warming value per sampling mode (anything else is ``"skip"``)."""


@dataclass
class SampledRunResult:
    """Everything measured while replaying one workload *sampled*: detailed
    records for the sampled intervals, per-interval totals, and bootstrap
    estimates extrapolating them to the whole stream.

    ``app_cycles`` is exact, not estimated — application gaps are replayed
    for every op regardless of mode.  ``records`` holds only the detailed
    (sampled, non-warmup) calls; functional calls leave no records here.
    """

    workload: str
    config: SamplingConfig
    plan: SamplePlan
    records: list[CallRecord] = field(default_factory=list)
    interval_values: dict[int, dict[str, float]] = field(default_factory=dict)
    """Per sampled interval: raw totals keyed ``allocator``/``malloc``/
    ``free``/``ablated_allocator:<name>``/``ablated_malloc:<name>``."""
    features: list[IntervalFeatures] = field(default_factory=list)
    """Per-interval behaviour histograms (all intervals, all modes)."""
    app_cycles: int = 0
    warmup_calls: int = 0
    detailed_calls: int = 0
    warming_calls: int = 0
    """Functional calls (both warm and skip modes), excluding warmup ops."""
    rounds: int = 1
    """Adaptive refinement rounds this result took (1 = no refinement)."""
    detail_seconds: float = 0.0
    warming_seconds: float = 0.0
    trace_cache_hits: int = 0
    trace_cache_misses: int = 0
    intern_hits: int = 0
    intern_misses: int = 0
    manifest: RunManifest | None = field(default=None, repr=False, compare=False)
    """Provenance record — observability, never part of the estimates."""
    _estimates: dict[str, tuple[float, float, float]] = field(
        default_factory=dict, repr=False
    )

    # -- estimation --------------------------------------------------------
    def estimate(self, metric: str) -> tuple[float, float, float]:
        """``(point, ci_lo, ci_hi)`` for a whole-stream total of ``metric``.

        The bootstrap seed mixes the metric name in via crc32 (never
        ``hash()``), so every estimate is byte-identical across processes
        and ``PYTHONHASHSEED`` values."""
        cached = self._estimates.get(metric)
        if cached is None:
            values = {
                i: (iv.get(metric, 0.0),) for i, iv in self.interval_values.items()
            }
            cached = bootstrap_metric_ci(
                self.plan,
                values,
                lambda t: t[0],
                resamples=self.config.resamples,
                confidence=self.config.confidence,
                seed=_metric_seed(self.config.seed, metric),
            )
            self._estimates[metric] = cached
        return cached

    # -- aggregate cycle estimates (point values mirror RunResult) ----------
    @property
    def allocator_cycles(self) -> float:
        return self.estimate("allocator")[0]

    @property
    def allocator_cycles_ci(self) -> tuple[float, float]:
        return self.estimate("allocator")[1:]

    @property
    def malloc_cycles(self) -> float:
        return self.estimate("malloc")[0]

    @property
    def free_cycles(self) -> float:
        return self.estimate("free")[0]

    @property
    def total_cycles(self) -> float:
        return self.allocator_cycles + self.app_cycles

    @property
    def allocator_fraction(self) -> float:
        total = self.total_cycles
        return self.allocator_cycles / total if total else 0.0

    def ablated_allocator_cycles(self, name: str) -> float:
        return self.estimate(f"ablated_allocator:{name}")[0]

    def ablated_malloc_cycles(self, name: str) -> float:
        return self.estimate(f"ablated_malloc:{name}")[0]

    # -- path statistics (extrapolated) -------------------------------------
    def path_counts(self) -> dict[str, float]:
        """Whole-stream path counts, extrapolated with the plan weights from
        the per-interval feature histograms (which cover *every* interval,
        so this is exact, not sampled)."""
        counts: dict[str, float] = {}
        for f in self.features:
            for path, n in f.paths.items():
                counts[path] = counts.get(path, 0.0) + n
        return counts

    # -- telemetry -----------------------------------------------------------
    @property
    def detail_fraction(self) -> float:
        """Fraction of measured calls that ran through the detailed timing
        model (the sampling cost knob)."""
        total = self.detailed_calls + self.warming_calls
        return self.detailed_calls / total if total else 0.0

    @property
    def warming_throughput(self) -> float:
        """Functional-warming calls per wall-clock second (0 when nothing
        was warmed or timing was too coarse to register)."""
        if self.warming_seconds <= 0.0:
            return 0.0
        return self.warming_calls / self.warming_seconds

    @property
    def relative_ci_halfwidth(self) -> float:
        """Half-width of the allocator-cycles CI relative to its point
        estimate (the adaptive error-budget criterion)."""
        point, lo, hi = self.estimate("allocator")
        if not point:
            return 0.0
        return (hi - lo) / 2.0 / abs(point)

    @property
    def trace_cache_hit_rate(self) -> float:
        lookups = self.trace_cache_hits + self.trace_cache_misses
        return self.trace_cache_hits / lookups if lookups else 0.0

    @property
    def intern_hit_rate(self) -> float:
        lookups = self.intern_hits + self.intern_misses
        return self.intern_hits / lookups if lookups else 0.0


def _metric_seed(seed: int, metric: str) -> int:
    return (seed + zlib.crc32(metric.encode("utf-8"))) % (2**31 - 1)


def _measured_ops(ops: list[Op]) -> int:
    return sum(
        1 for op in ops if op.kind is not OpKind.ANTAGONIZE and not op.warmup
    )


def num_intervals_for(num_measured: int, interval_ops: int) -> int:
    """Interval count for a stream: full intervals, tail folded into the
    last (a short tail would otherwise be an under-weighted stratum)."""
    return max(1, num_measured // interval_ops)


def plan_for_ops(
    allocator_factory: Callable[[], TCMalloc],
    ops: list[Op],
    config: SamplingConfig,
    features: list[IntervalFeatures] | None = None,
) -> tuple[SamplePlan, list[IntervalFeatures] | None]:
    """Build the sampling plan for an op stream.

    Systematic plans are pure arithmetic.  Phase plans need per-interval
    feature vectors, collected by a skip-mode functional profiling pass on
    a fresh allocator from ``allocator_factory`` (cheap: no emission, no
    cache modeling); pass ``features`` to reuse vectors from an earlier
    pass (adaptive refinement re-plans without re-profiling).  Returns
    ``(plan, features)`` with ``features`` None for systematic plans.
    """
    n = num_intervals_for(_measured_ops(ops), config.interval_ops)
    if config.sampler == "systematic":
        return plan_systematic(n, config.stride, config.offset), None
    if features is None:
        probe = run_workload_sampled(
            allocator_factory,
            ops,
            config=SamplingConfig(
                interval_ops=config.interval_ops,
                sampler="systematic",
                stride=n,  # one detailed interval: pure profiling pass
                warmup_ops=0,
                seed=config.seed,
            ),
            name="feature-probe",
            model_app_traffic=False,
        )
        features = probe.features
    return (
        plan_phase(
            feature_vectors(features),
            config.num_clusters,
            config.samples_per_cluster,
            seed=config.seed,
        ),
        features,
    )


def run_workload_sampled(
    allocator_factory: Callable[[], TCMalloc],
    ops: Iterable[Op],
    config: SamplingConfig | None = None,
    name: str = "",
    model_app_traffic: bool = True,
    profiler: HotPathProfiler | None = None,
    plan: SamplePlan | None = None,
) -> SampledRunResult:
    """Sampled replay: detailed simulation for the plan's intervals,
    functional fast-forward (with cache warming slack) for the rest.

    Takes an allocator *factory*, not an allocator: adaptive refinement
    (``config.target_ci``) re-runs the stream on fresh machines with a
    denser plan until the allocator-cycles CI half-width is within
    ``target_ci`` percent of the point estimate (or the plan cannot get
    denser / ``max_rounds`` is hit).  ``plan`` pins the interval selection
    (used by sampled comparisons so baseline and Mallacc share intervals
    and the paired bootstrap stays paired).
    """
    cfg = config or SamplingConfig()
    ops = list(ops)
    manifest = collect_manifest(
        {"entry": "run_workload_sampled", "workload": name,
         "model_app_traffic": model_app_traffic,
         "sampler": cfg.sampler, "interval_ops": cfg.interval_ops,
         "stride": cfg.stride, "target_ci": cfg.target_ci},
        seed=cfg.seed,
    )
    tracer = get_tracer()
    trace_t0 = tracer.now_us() if tracer.enabled else 0
    wall_t0 = perf_counter()
    features: list[IntervalFeatures] | None = None
    if plan is None:
        plan, features = plan_for_ops(allocator_factory, ops, cfg, features=None)
    rounds = 0
    while True:
        rounds += 1
        result = _sampled_pass(
            allocator_factory(), ops, cfg, plan, name, model_app_traffic, profiler
        )
        result.rounds = rounds
        done = (
            cfg.target_ci is None
            or result.relative_ci_halfwidth * 100.0 <= cfg.target_ci
        )
        denser = None if done else cfg.escalated()
        if done or denser is None or rounds >= cfg.max_rounds:
            result.manifest = manifest.finished(perf_counter() - wall_t0)
            if tracer.enabled:
                tracer.complete(
                    "run_workload_sampled", trace_t0, tracer.now_us() - trace_t0,
                    workload=name, rounds=rounds,
                    detailed_calls=result.detailed_calls,
                )
            return result
        cfg = denser
        plan, features = plan_for_ops(allocator_factory, ops, cfg, features=features)


def _sampled_pass(
    allocator: TCMalloc,
    ops: list[Op],
    cfg: SamplingConfig,
    plan: SamplePlan,
    name: str,
    model_app_traffic: bool,
    profiler: HotPathProfiler | None,
) -> SampledRunResult:
    """One sampled replay over ``ops`` (the loop mirrors
    :func:`run_workload`; divergences are the per-op mode switch and the
    app-traffic gating)."""
    allocator.keep_records = False
    machine = allocator.machine
    num_measured = _measured_ops(ops)
    num_intervals = plan.num_intervals
    if num_intervals != num_intervals_for(num_measured, cfg.interval_ops):
        raise ValueError(
            f"plan has {num_intervals} intervals but the stream yields "
            f"{num_intervals_for(num_measured, cfg.interval_ops)}"
        )
    modes = plan_op_modes(
        plan, cfg.interval_ops, num_measured, cfg.warmup_ops, cfg.cache_warming
    )
    sums: dict[int, dict[str, float]] = {j: {} for j in plan.sampled}
    result = SampledRunResult(
        workload=name,
        config=cfg,
        plan=plan,
        interval_values=sums,
        features=[IntervalFeatures() for _ in range(num_intervals)],
    )
    features = result.features
    records = result.records
    interval_ops = cfg.interval_ops
    last_interval = num_intervals - 1

    slots: dict[int, int] = {}
    app_offset = 0
    measured = 0
    detailed_calls = warming_calls = 0
    cache_before = _cache_snapshots([machine])
    intern_before = _intern_snapshots([machine])
    prof_state = _profiler_begin(profiler, [machine])
    # Mode spans are long and contiguous; timing only their boundaries keeps
    # the per-op overhead at one comparison.
    current_mode: int | None = None
    span_t0 = perf_counter()
    mode_seconds = {MODE_DETAIL: 0.0, MODE_WARM: 0.0, MODE_SKIP: 0.0}

    # Warmup prefix: under "slack" warming only a tail of the warmup calls
    # runs warm (the prefix is interval 0's slack); "always" keeps the whole
    # warmup warm so exact mode stays bit-identical.  The tail is 4x the
    # steady-state slack: the warmup builds the heap (page-heap carving,
    # central-list fills), leaving a far wider cold footprint than a
    # steady-state skip stretch, and a same-depth slack leaves interval 0
    # ~50% hot-biased while 4x restores it to within a few cycles.
    if cfg.cache_warming == "always":
        skip_warmups = 0
    else:
        num_warmup = sum(
            1 for op in ops if op.warmup and op.kind is not OpKind.ANTAGONIZE
        )
        skip_warmups = max(0, num_warmup - 4 * cfg.warmup_ops)
    warmups_seen = 0

    # Skip-mode app traffic is deferred, then replayed *compressed* at the
    # next mode transition: the ring holds ``ring_lines`` consecutive lines,
    # so replaying only the last ``min(pending, ring_lines)`` lines ending at
    # the current cursor leaves every cache level in the same state as
    # streaming the full skipped traffic would (earlier touches are fully
    # shadowed by later ones for content and LRU order).
    ring_lines = _APP_REGION_BYTES // 64
    pending_app = 0
    # Size classes touched during the current skip stretch, oldest first.
    # Replaying their hot metadata lines *after* the deferred app window
    # restores the LRU interleaving of an exact replay, where every call
    # refreshes its header/head between app bursts.
    recent_cls: dict[int, None] = {}

    def _flush_deferred_app() -> None:
        nonlocal pending_app
        n = pending_app if pending_app < ring_lines else ring_lines
        pending_app = 0
        if n:
            start = (app_offset // 64 - n) % ring_lines
            first = min(n, ring_lines - start)
            ranges = [(_APP_REGION_BASE + start * 64, first)]
            if n - first:
                ranges.append((_APP_REGION_BASE, n - first))
            machine.hierarchy.touch_line_window(ranges)
        if recent_cls:
            demand = machine.hierarchy.demand_access
            translate = machine.tlb.access
            for addr in allocator.skip_warm_lines(list(recent_cls)[-16:]):
                demand(addr)
                translate(addr)
            recent_cls.clear()

    try:
        for op in ops:
            if op.kind is OpKind.ANTAGONIZE:
                # Applied in every mode: eviction is part of the functional
                # cache state the slack is trying to keep honest.  Deferred
                # app lines land first to preserve the exact replay's order.
                if pending_app or recent_cls:
                    _flush_deferred_app()
                machine.hierarchy.antagonize()
                continue

            if op.warmup:
                mode = MODE_SKIP if warmups_seen < skip_warmups else MODE_WARM
                warmups_seen += 1
            else:
                mode = modes[measured]
            if mode != current_mode:
                if (pending_app or recent_cls) and mode != MODE_SKIP:
                    _flush_deferred_app()
                now = perf_counter()
                if current_mode is not None:
                    mode_seconds[current_mode] += now - span_t0
                span_t0 = now
                current_mode = mode
                machine.warming = _WARMING_OF_MODE.get(mode, "skip")

            if op.gap_cycles:
                machine.advance(op.gap_cycles)
                if not op.warmup:
                    result.app_cycles += op.gap_cycles
            if op.app_lines and model_app_traffic:
                if mode == MODE_SKIP:
                    pending_app += op.app_lines
                else:
                    machine.hierarchy.touch_lines(
                        _APP_REGION_BASE + app_offset, op.app_lines
                    )
                # The ring cursor advances in every mode so warm/detailed
                # stretches touch the same addresses an exact replay would.
                app_offset = (app_offset + op.app_lines * 64) % _APP_REGION_BYTES

            record = None
            if op.kind is OpKind.MALLOC:
                if op.slot in slots:
                    raise ValueError(f"workload reused live slot {op.slot}")
                ff = (
                    allocator.fast_forward_malloc(op.size)
                    if mode == MODE_SKIP
                    else None
                )
                if ff is not None:
                    ptr, cl, path_value = ff
                else:
                    ptr, record = allocator.malloc(op.size)
                slots[op.slot] = ptr
            elif op.kind is OpKind.FREE or op.kind is OpKind.FREE_SIZED:
                if op.slot not in slots:
                    raise ValueError(f"workload freed unknown or dead slot {op.slot}")
                ptr = slots[op.slot]
                ff = (
                    allocator.fast_forward_free(
                        ptr,
                        op.size if op.kind is OpKind.FREE_SIZED else None,
                    )
                    if mode == MODE_SKIP
                    else None
                )
                if ff is not None:
                    cl, path_value = ff
                elif op.kind is OpKind.FREE:
                    record = allocator.free(ptr)
                else:
                    record = allocator.sized_free(ptr, op.size)
                del slots[op.slot]
            else:  # pragma: no cover - exhaustive over OpKind
                raise ValueError(f"unknown op kind {op.kind}")
            if record is not None:
                cl, path_value = record.size_class, record.path.value
            if mode == MODE_SKIP:
                if cl in recent_cls:
                    del recent_cls[cl]
                recent_cls[cl] = None

            if op.warmup:
                result.warmup_calls += 1
                continue

            j = measured // interval_ops
            if j > last_interval:
                j = last_interval
            measured += 1
            features[j].add(cl, path_value)
            if mode == MODE_DETAIL:
                detailed_calls += 1
                records.append(record)
                iv = sums[j]
                cycles = record.cycles
                iv["allocator"] = iv.get("allocator", 0.0) + cycles
                key = "malloc" if record.is_malloc else "free"
                iv[key] = iv.get(key, 0.0) + cycles
                for aname, acycles in record.ablated.items():
                    k = f"ablated_allocator:{aname}"
                    iv[k] = iv.get(k, 0.0) + acycles
                    if record.is_malloc:
                        k = f"ablated_malloc:{aname}"
                        iv[k] = iv.get(k, 0.0) + acycles
            else:
                warming_calls += 1
    finally:
        machine.warming = None
    if current_mode is not None:
        mode_seconds[current_mode] += perf_counter() - span_t0

    result.detailed_calls = detailed_calls
    result.warming_calls = warming_calls
    result.detail_seconds = mode_seconds[MODE_DETAIL]
    result.warming_seconds = mode_seconds[MODE_WARM] + mode_seconds[MODE_SKIP]
    _profiler_end(profiler, prof_state)
    if profiler is not None:
        profiler.add_stage("warming", result.warming_seconds)
        profiler.count("warming_calls", warming_calls)
        profiler.count("detailed_calls", detailed_calls)
    result.trace_cache_hits, result.trace_cache_misses = _cache_delta(
        [machine], cache_before
    )
    result.intern_hits, result.intern_misses = _intern_delta([machine], intern_before)
    return result


@dataclass
class MultiThreadRunResult:
    """Aggregate of a multithreaded replay."""

    workload: str
    records: list[CallRecord] = field(default_factory=list)
    per_thread_cycles: dict[int, int] = field(default_factory=dict)
    app_cycles: int = 0
    warmup_calls: int = 0
    warmup_cycles: int = 0
    contention_cycles: int = 0
    coherence_transfers: int = 0
    trace_cache_hits: int = 0
    """Memoization hits summed over all cores (coherent mode has one
    timing model per core)."""
    trace_cache_misses: int = 0
    intern_hits: int = 0
    """Emission-template intern hits summed over all cores' interners."""
    intern_misses: int = 0
    manifest: RunManifest | None = field(default=None, repr=False, compare=False)
    """Provenance record — observability, not science."""

    @property
    def allocator_cycles(self) -> int:
        return sum(r.cycles for r in self.records)

    @property
    def total_cycles(self) -> int:
        return self.allocator_cycles + self.app_cycles

    @property
    def trace_cache_lookups(self) -> int:
        return self.trace_cache_hits + self.trace_cache_misses

    @property
    def trace_cache_hit_rate(self) -> float:
        lookups = self.trace_cache_lookups
        return self.trace_cache_hits / lookups if lookups else 0.0

    @property
    def intern_hit_rate(self) -> float:
        lookups = self.intern_hits + self.intern_misses
        return self.intern_hits / lookups if lookups else 0.0


def run_multithreaded(
    mt_allocator,
    ops,
    name: str = "",
    model_app_traffic: bool = True,
    profiler: HotPathProfiler | None = None,
) -> MultiThreadRunResult:
    """Replay a tid-tagged op stream on a
    :class:`repro.alloc.multithread.MultiThreadAllocator`.

    Semantics mirror :func:`run_workload` exactly: warmup calls run fully
    but land in ``warmup_calls``/``warmup_cycles`` (never in ``records`` or
    the per-thread totals), warmup gaps stay out of ``app_cycles``, and
    ``op.app_lines`` streams application traffic through the issuing
    thread's core hierarchy when ``model_app_traffic`` is on.
    """
    result = MultiThreadRunResult(workload=name)
    slots: dict[int, int] = {}
    machines = getattr(mt_allocator, "core_machines", [mt_allocator.machine])
    manifest = collect_manifest(
        {"entry": "run_multithreaded", "workload": name,
         "model_app_traffic": model_app_traffic, "cores": len(machines)},
    )
    tracer = get_tracer()
    trace_t0 = tracer.now_us() if tracer.enabled else 0
    wall_t0 = perf_counter()
    cache_before = _cache_snapshots(machines)
    intern_before = _intern_snapshots(machines)
    prof_state = _profiler_begin(profiler, machines)
    app = AppTraffic()
    for op in ops:
        if op.kind is OpKind.ANTAGONIZE:
            # Evict every core's private caches (and the shared L3, in
            # coherent mode) exactly once — not just core 0's.
            antagonize = getattr(mt_allocator, "antagonize", None)
            if antagonize is not None:
                antagonize()
            else:  # pragma: no cover - legacy allocators without the hook
                for machine in _distinct_machines(machines):
                    machine.hierarchy.antagonize()
            continue
        if op.gap_cycles:
            mt_allocator.machine.advance(op.gap_cycles)
            if not op.warmup:
                result.app_cycles += op.gap_cycles
        if op.app_lines and model_app_traffic:
            core = machines[op.tid] if op.tid < len(machines) else machines[0]
            app.touch(core.hierarchy, op.app_lines)
        record = dispatch_call_mt(mt_allocator, op, slots)
        if op.warmup:
            result.warmup_calls += 1
            result.warmup_cycles += record.cycles
        else:
            result.records.append(record)
            result.per_thread_cycles[op.tid] = (
                result.per_thread_cycles.get(op.tid, 0) + record.cycles
            )
    _profiler_end(profiler, prof_state)
    result.trace_cache_hits, result.trace_cache_misses = _cache_delta(
        machines, cache_before
    )
    result.intern_hits, result.intern_misses = _intern_delta(machines, intern_before)
    result.contention_cycles = mt_allocator.contention_cycles()
    stats = mt_allocator.coherence_stats()
    if stats is not None:
        result.coherence_transfers = stats.remote_transfers
    result.manifest = manifest.finished(perf_counter() - wall_t0)
    if tracer.enabled:
        tracer.complete(
            "run_multithreaded", trace_t0, tracer.now_us() - trace_t0,
            workload=name, calls=len(result.records),
        )
    return result

"""Plain-text rendering of the paper's tables and figures.

Every renderer returns a string; benchmark targets print these so the
regenerated rows/series can be compared directly against the paper.
"""

from __future__ import annotations

from repro.harness.metrics import Histogram


def render_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """A simple aligned text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_histogram(hist: Histogram, title: str = "", width: int = 50) -> str:
    """ASCII bar chart of a time-in-calls histogram (Figures 1, 15, 16)."""
    lines = [title] if title else []
    peak = max(hist.weights) if hist.weights else 1.0
    for i, w in enumerate(hist.weights):
        if w < 0.05:
            continue
        lo = hist.bin_edges[i]
        bar = "#" * max(1, int(width * w / peak)) if peak else ""
        lines.append(f"{lo:>10.0f} cy | {bar} {w:.1f}%")
    return "\n".join(lines)


def render_bar_chart(
    labels: list[str], values: list[float], title: str = "", unit: str = "%", width: int = 40
) -> str:
    """Horizontal bars (Figures 13, 14, 18)."""
    lines = [title] if title else []
    peak = max((abs(v) for v in values), default=1.0) or 1.0
    label_w = max(len(l) for l in labels) if labels else 0
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(width * abs(value) / peak))
        sign = "-" if value < 0 else ""
        lines.append(f"{label.rjust(label_w)} | {bar} {sign}{abs(value):.1f}{unit}")
    return "\n".join(lines)


def render_series(
    x: list[int] | tuple[int, ...],
    series: dict[str, list[float]],
    title: str = "",
    x_label: str = "x",
) -> str:
    """A small numeric table of curves (Figure 17's sweep)."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, xv in enumerate(x):
        rows.append([str(xv)] + [f"{series[k][i]:.1f}" for k in series])
    return render_table(headers, rows, title=title)

"""Command-line interface: ``python -m repro <command>``.

Commands mirror the repository's main entry points so results can be
regenerated without writing code:

* ``list``        — available workloads;
* ``run``         — one workload under baseline + Mallacc, summary numbers;
* ``sweep``       — malloc-cache size sensitivity for one workload (Fig. 17);
* ``matrix``      — shard a workload × cache-size matrix across worker
  processes (``--jobs N``), with per-cell checkpoints (``--checkpoint-dir``)
  and crash-safe resumption (``--resume``);
* ``breakdown``   — fast-path component costs for a microbenchmark (Fig. 4);
* ``profile``     — hot-path profiler: where the *simulator* spends wall
  time replaying a workload (stage table + intern/trace-cache hit rates);
* ``area``        — the Section 6.4 area model;
* ``validate``    — the Table 1 simulator validation;
* ``trace``       — replay a workload with the span tracer armed and export
  a Chrome trace-event JSON (``--export-perfetto out.json``) loadable in
  Perfetto/chrome://tracing;
* ``trace-record``/``trace-run`` — capture a workload's op stream to a
  trace file and replay a trace (including traces of real applications
  converted to the format in :mod:`repro.workloads.tracefile`);
* ``traffic``     — open-loop load generation: arrival process × per-request
  allocation sessions over the multicore machine, reporting p50/p95/p99/p99.9
  allocation latency per allocator flavor and (``--load-curve``) a
  throughput-vs-offered-load sweep through the parallel harness;
* ``report``      — run the whole battery and write a markdown report, or
  diff two run payloads (``--compare A.json B.json``) and exit nonzero on
  regressions beyond ``--threshold``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.area import AreaModel
from repro.harness.ablation import fastpath_breakdown
from repro.harness.experiments import compare_workload
from repro.harness.figures import render_series, render_table
from repro.harness.metrics import (
    classes_for_coverage,
    intern_summary,
    median_cycles,
    trace_cache_summary,
)
from repro.harness.sweeps import sweep_cache_sizes
from repro.harness.validation import mean_error, validate
from repro.workloads import MACRO_WORKLOADS, MICROBENCHMARKS
from repro.workloads.tracefile import dump_ops, trace_workload

ALL_WORKLOADS = {**MICROBENCHMARKS, **MACRO_WORKLOADS}


def _workload_or_die(name: str):
    if name not in ALL_WORKLOADS:
        sys.exit(
            f"unknown workload {name!r}; run 'python -m repro list' for choices"
        )
    return ALL_WORKLOADS[name]


def cmd_list(args: argparse.Namespace) -> None:
    del args
    rows = [[w.name, "micro" if w.name in MICROBENCHMARKS else "macro", w.description[:60]]
            for w in ALL_WORKLOADS.values()]
    print(render_table(["workload", "kind", "description"], rows))


def _sampling_config_from_args(args: argparse.Namespace):
    from repro.sim.sampling import SamplingConfig

    return SamplingConfig(
        sampler=args.sampler,
        interval_ops=args.interval_ops,
        stride=args.stride,
        target_ci=args.target_ci,
        seed=args.seed,
    )


def _write_run_json(args: argparse.Namespace, comparison, summary: dict) -> None:
    """Persist one run's scalar payload (plus provenance) for
    ``repro report --compare``."""
    manifest = comparison.baseline.manifest
    payload = {
        "workload": comparison.workload,
        "ops": args.ops,
        "seed": args.seed,
        "cache_entries": args.entries,
        "summary": dict(sorted(summary.items())),
        "manifest": manifest.to_dict() if manifest is not None else {},
    }
    with open(args.json, "w") as fh:
        json.dump(payload, fh, sort_keys=True, indent=2)
        fh.write("\n")
    print(f"run payload written to {args.json}")


def cmd_run(args: argparse.Namespace) -> None:
    workload = _workload_or_die(args.workload)
    if args.sample:
        return _cmd_run_sampled(args, workload)
    memoize = False if args.no_trace_cache else None
    intern = False if args.no_intern else None
    c = compare_workload(
        workload,
        num_ops=args.ops,
        seed=args.seed,
        cache_entries=args.entries,
        memoize_traces=memoize,
        intern_traces=intern,
    )
    print(f"workload          : {c.workload}  ({args.ops} ops, seed {args.seed})")
    cache = trace_cache_summary(c.baseline, c.mallacc)
    if cache["lookups"]:
        print(f"trace cache       : {100 * cache['hit_rate']:.1f}% hit rate "
              f"({cache['hits']:.0f}/{cache['lookups']:.0f} schedules memoized)")
    else:
        print("trace cache       : disabled")
    interned = intern_summary(c.baseline, c.mallacc)
    if interned["lookups"]:
        print(f"trace intern      : {100 * interned['hit_rate']:.1f}% hit rate "
              f"({interned['hits']:.0f}/{interned['lookups']:.0f} emissions shared)")
    else:
        print("trace intern      : disabled")
    print(f"allocator fraction: {100 * c.allocator_fraction:.2f}%")
    print(f"size classes @90% : {classes_for_coverage(c.baseline.records)}")
    print(f"median malloc     : {median_cycles(c.baseline.records):.0f} -> "
          f"{median_cycles(c.mallacc.records):.0f} cycles")
    print(f"allocator speedup : {c.allocator_improvement:.1f}%  "
          f"(limit {c.allocator_limit_improvement:.1f}%)")
    print(f"malloc speedup    : {c.malloc_improvement:.1f}%  "
          f"(limit {c.malloc_limit_improvement:.1f}%)")
    print(f"program speedup   : {c.program_speedup:.2f}%")
    if args.json:
        from repro.harness.experiments import summarize_comparison

        _write_run_json(args, c, summarize_comparison(c))


def _cmd_run_sampled(args: argparse.Namespace, workload) -> None:
    from repro.harness.experiments import compare_workload_sampled
    from repro.harness.metrics import sampling_summary

    c = compare_workload_sampled(
        workload,
        num_ops=args.ops,
        seed=args.seed,
        cache_entries=args.entries,
        sampling=_sampling_config_from_args(args),
    )
    plan = c.baseline.plan
    print(f"workload          : {c.workload}  ({args.ops} ops, seed {args.seed}, "
          f"SAMPLED {c.baseline.config.sampler})")
    print(f"intervals         : {len(plan.sampled)}/{plan.num_intervals} detailed "
          f"x {c.baseline.config.interval_ops} ops"
          + (f", {c.rounds} rounds" if c.rounds > 1 else ""))
    s = sampling_summary(c.baseline, c.mallacc)
    print(f"detail fraction   : {100 * s['detail_fraction']:.1f}% of calls "
          f"({s['detailed_calls']:.0f} detailed, {s['warming_calls']:.0f} warmed)")
    for label, metric in (
        ("allocator speedup", "allocator_improvement"),
        ("malloc speedup", "malloc_improvement"),
        ("program speedup", "program_speedup"),
    ):
        point, lo, hi = c.estimate(metric)
        print(f"{label:<18}: {point:.2f}%  (95% CI [{lo:.2f}, {hi:.2f}])")
    if args.json:
        from repro.harness.experiments import summarize_sampled_comparison

        _write_run_json(args, c, summarize_sampled_comparison(c))


def cmd_trace(args: argparse.Namespace) -> None:
    """Replay one workload (baseline + Mallacc) with the span tracer armed
    and export the Chrome trace-event JSON for Perfetto."""
    from repro.obs.tracer import tracing, validate_chrome_trace

    workload = _workload_or_die(args.workload)
    with tracing() as tracer:
        if args.sample:
            from repro.harness.experiments import compare_workload_sampled

            compare_workload_sampled(
                workload,
                num_ops=args.ops,
                seed=args.seed,
                cache_entries=args.entries,
                sampling=_sampling_config_from_args(args),
            )
        else:
            compare_workload(
                workload, num_ops=args.ops, seed=args.seed,
                cache_entries=args.entries,
            )
        payload = tracer.to_chrome_trace(
            metadata={"workload": workload.name, "ops": args.ops,
                      "seed": args.seed}
        )
        count = tracer.export_chrome_trace(
            args.export_perfetto,
            metadata={"workload": workload.name, "ops": args.ops,
                      "seed": args.seed},
        )
    print(f"wrote {count} trace events to {args.export_perfetto}")
    problems = validate_chrome_trace(payload)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        sys.exit(1)


def cmd_sweep(args: argparse.Namespace) -> None:
    workload = _workload_or_die(args.workload)
    sizes = tuple(int(s) for s in args.sizes.split(","))
    result = sweep_cache_sizes(
        workload,
        sizes=sizes,
        num_ops=args.ops,
        seed=args.seed,
        jobs=args.jobs,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        batch_size=args.batch_size,
    )
    print(
        render_series(
            list(sizes),
            {"malloc speedup %": result.malloc_speedups,
             "allocator speedup %": result.allocator_speedups},
            title=f"{workload.name}: speedup vs malloc-cache entries "
                  f"(limit {result.limit_speedup:.1f}%)",
            x_label="entries",
        )
    )


def cmd_breakdown(args: argparse.Namespace) -> None:
    if args.workload not in MICROBENCHMARKS:
        sys.exit("breakdown expects a microbenchmark (see 'python -m repro list')")
    b = fastpath_breakdown(MICROBENCHMARKS[args.workload], num_ops=args.ops, seed=args.seed)
    rows = [
        ["baseline", f"{b.baseline_cycles:.1f}"],
        ["- sampling", f"{b.component_cost('sampling'):.1f}"],
        ["- size class", f"{b.component_cost('size_class'):.1f}"],
        ["- push/pop", f"{b.component_cost('push_pop'):.1f}"],
        ["- combined", f"{b.component_cost('combined'):.1f} "
                       f"({100 * b.combined_fraction:.0f}%)"],
    ]
    print(render_table(["fast path", "cycles"], rows, title=b.workload))


def cmd_area(args: argparse.Namespace) -> None:
    b = AreaModel.breakdown(args.entries)
    print(f"malloc cache, {args.entries} entries "
          f"({AreaModel.bits_per_entry(args.entries)} bits/entry):")
    print(f"  CAM  : {b.cam_bits // 8:4d} B  {b.cam_area_um2:7.0f} um^2")
    print(f"  SRAM : {b.sram_bits // 8:4d} B  {b.sram_area_um2:7.0f} um^2")
    print(f"  logic:          {b.logic_area_um2:7.0f} um^2")
    print(f"  total:          {b.total_um2:7.0f} um^2  "
          f"= {100 * b.fraction_of_haswell_core:.4f}% of a Haswell core")


def cmd_validate(args: argparse.Namespace) -> None:
    rows = validate(num_ops=args.ops)
    table = [
        [r.workload, f"{r.simulated_cycles:.1f}", f"{r.analytic_cycles:.1f}",
         f"{r.error_pct:.2f}%"]
        for r in rows
    ]
    table.append(["Average", "", "", f"{mean_error(rows):.2f}%"])
    print(render_table(["ubench", "simulated", "analytic", "error"], table,
                       title="Simulator validation (Table 1)"))


def cmd_trace_record(args: argparse.Namespace) -> None:
    workload = _workload_or_die(args.workload)
    count = dump_ops(workload.ops(seed=args.seed, num_ops=args.ops), args.out)
    print(f"wrote {count} ops of {workload.name!r} to {args.out}")


def cmd_trace_run(args: argparse.Namespace) -> None:
    workload = trace_workload(args.trace)
    c = compare_workload(workload, cache_entries=args.entries)
    print(f"trace             : {args.trace}  ({workload.default_ops} ops)")
    print(f"allocator speedup : {c.allocator_improvement:.1f}%  "
          f"(limit {c.allocator_limit_improvement:.1f}%)")
    print(f"malloc speedup    : {c.malloc_improvement:.1f}%")
    print(f"median malloc     : {median_cycles(c.baseline.records):.0f} -> "
          f"{median_cycles(c.mallacc.records):.0f} cycles")


def cmd_matrix(args: argparse.Namespace) -> None:
    """Shard a (workload × cache-size) experiment matrix across workers."""
    from repro.harness.parallel import build_matrix, matrix_to_json, run_matrix

    names = (
        list(ALL_WORKLOADS)
        if args.workloads == "all"
        else [w.strip() for w in args.workloads.split(",") if w.strip()]
    )
    for name in names:
        _workload_or_die(name)
    sizes = tuple(int(s) for s in args.sizes.split(","))
    cells = build_matrix(
        names,
        cache_sizes=sizes,
        num_ops=args.ops,
        base_seed=args.seed,
        sampled=args.sample,
        interval_ops=args.interval_ops,
        stride=args.stride,
        sampler=args.sampler,
        target_ci=args.target_ci,
    )

    def progress(event: dict) -> None:
        if not args.quiet:
            print(json.dumps(event, sort_keys=True), file=sys.stderr)

    result = run_matrix(
        cells,
        jobs=args.jobs,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        progress=progress,
        batch_size=args.batch_size,
        prewarm=not args.no_prewarm,
    )
    payload = matrix_to_json(result)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
        print(f"matrix data written to {args.out}")
    else:
        print(payload)
    s = result.stats
    print(
        f"cells: {s.cells_done} done, {s.cells_resumed} resumed, "
        f"{s.cells_retried} retried, {s.cells_quarantined} quarantined "
        f"in {s.wall_seconds:.1f}s "
        f"(trace cache {100 * s.trace_cache['hit_rate']:.1f}% hit rate)"
    )
    if result.quarantined:
        for cell_id, error in result.quarantined.items():
            print(f"QUARANTINED {cell_id}: {error}", file=sys.stderr)
        sys.exit(1)


def cmd_profile(args: argparse.Namespace) -> None:
    """Replay one workload with the hot-path profiler attached and print the
    stage/counter table (see docs/profiling.md)."""
    from repro.harness.experiments import make_baseline, make_mallacc
    from repro.harness.profile import HotPathProfiler, render_profile
    from repro.harness.runner import run_workload

    workload = _workload_or_die(args.workload)
    ops = list(workload.ops(seed=args.seed, num_ops=args.ops))
    if args.mallacc:
        allocator = make_mallacc(cache_entries=args.entries)
    else:
        allocator = make_baseline()
    profiler = HotPathProfiler()
    result = run_workload(
        allocator, ops, name=workload.name, profiler=profiler
    )
    summary = profiler.summary()
    if args.json:
        print(json.dumps(summary, sort_keys=True))
        return
    flavor = "mallacc" if args.mallacc else "baseline"
    print(f"workload          : {workload.name}  "
          f"({len(ops)} ops, seed {args.seed}, {flavor})")
    print(f"allocator cycles  : {result.allocator_cycles}")
    print()
    print(render_profile(summary))


def _quantile_str(value) -> str:
    return "overflow" if value is None else f"{value:.0f}"


def cmd_traffic(args: argparse.Namespace) -> None:
    """Open-loop traffic: tail-latency table per arrival model, optional
    offered-load sweep (see docs/traffic.md)."""
    from repro.obs.manifest import collect_manifest
    from repro.traffic import (
        OPEN_LOOP_MODELS,
        TrafficConfig,
        compare_traffic,
        traffic_load_curve,
        traffic_summary,
    )

    _workload_or_die(args.workload)
    models = OPEN_LOOP_MODELS if args.arrival == "all" else (args.arrival,)
    manifest = collect_manifest(
        {"entry": "cmd_traffic", "workload": args.workload,
         "arrival": args.arrival, "rps": args.rps,
         "duration_s": args.duration, "cores": args.cores,
         "ops_per_request": args.ops_per_request,
         "cache_entries": args.entries, "clock_hz": args.clock_hz,
         "sample_stride": args.sample_stride},
        seed=args.seed,
    )

    def _config(model: str) -> TrafficConfig:
        return TrafficConfig(
            workload=args.workload, arrival=model, rps=args.rps,
            duration_s=args.duration, clock_hz=args.clock_hz,
            cores=args.cores, ops_per_request=args.ops_per_request,
            seed=args.seed, sample_stride=args.sample_stride,
        )

    arrivals_payload: dict[str, dict] = {}
    for model in models:
        comparison = compare_traffic(_config(model), cache_entries=args.entries)
        summary = traffic_summary(comparison)
        arrivals_payload[model] = {
            "summary": summary,
            "baseline_hist": comparison.baseline.alloc_hist.to_dict(),
            "mallacc_hist": comparison.mallacc.alloc_hist.to_dict(),
        }
        rows = [
            [flavor]
            + [_quantile_str(summary[f"{flavor}_{q}"])
               for q in ("p50", "p95", "p99", "p999")]
            + [f"{summary[f'{flavor}_mean_alloc_cycles']:.0f}",
               f"{summary[f'{flavor}_throughput_rps']:.1f}"]
            for flavor in ("baseline", "mallacc")
        ]
        print(render_table(
            ["alloc", "p50", "p95", "p99", "p99.9", "mean", "rps"],
            rows,
            title=(f"{args.workload} @ {model} arrivals, "
                   f"{args.rps:g} rps offered on {args.cores} cores "
                   f"({summary['measured_requests']} measured requests): "
                   f"allocation latency, cycles"),
        ))
        print(f"  quantile improvement: "
              f"p50 {summary['p50_improvement_pct']:+.1f}%  "
              f"p95 {summary['p95_improvement_pct']:+.1f}%  "
              f"p99 {summary['p99_improvement_pct']:+.1f}%  "
              f"p99.9 {summary['p999_improvement_pct']:+.1f}%")

    curve = None
    if args.load_curve:
        loads = tuple(float(x) for x in args.load_curve.split(",") if x.strip())
        curve = traffic_load_curve(
            _config(models[0]), loads=loads, arrivals=models,
            cache_entries=args.entries, jobs=args.jobs,
            checkpoint_dir=args.checkpoint_dir, resume=args.resume,
            batch_size=args.batch_size,
        )
        rows = [
            [p["arrival"], f"{p['load']:.2f}", f"{p['offered_rps']:.1f}",
             f"{p['baseline_throughput_rps']:.1f}",
             f"{p['mallacc_throughput_rps']:.1f}",
             _quantile_str(p["baseline_p99"]), _quantile_str(p["mallacc_p99"])]
            for p in curve["points"]
        ]
        print(render_table(
            ["arrival", "load", "offered", "base rps", "accel rps",
             "base p99", "accel p99"],
            rows,
            title=(f"throughput vs offered load "
                   f"(capacity {curve['capacity_rps']:.1f} rps)"),
        ))

    if args.json:
        payload = {
            "schema": "repro.traffic/v1",
            "workload": args.workload,
            "rps": args.rps,
            "duration_s": args.duration,
            "clock_hz": args.clock_hz,
            "cores": args.cores,
            "ops_per_request": args.ops_per_request,
            "seed": args.seed,
            "cache_entries": args.entries,
            "sample_stride": args.sample_stride,
            "arrivals": arrivals_payload,
            "load_curve": curve,
            "manifest": manifest.to_dict(),
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, sort_keys=True, indent=2)
            fh.write("\n")
        print(f"traffic payload written to {args.json}")


def cmd_report(args: argparse.Namespace) -> None:
    if args.compare:
        from repro.obs.compare import (
            compare_payloads,
            cross_engine_note,
            load_payload,
            render_deltas,
        )

        path_a, path_b = args.compare
        payload_a, payload_b = load_payload(path_a), load_payload(path_b)
        note = cross_engine_note(payload_a, payload_b)
        if note:
            print(note)
        deltas = compare_payloads(payload_a, payload_b, threshold=args.threshold)
        print(render_deltas(deltas))
        if deltas:
            sys.exit(1)
        return

    from repro.harness.report import generate_report

    sampling = _sampling_config_from_args(args) if args.sample else None
    generate_report(args.out, ops=args.ops, seed=args.seed, sampling=sampling)
    mode = "sampled macro tables" if sampling else "exact"
    print(f"report written to {args.out} ({mode})")


def _add_sampling_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sample", action="store_true",
        help="use the interval-sampling engine: detailed simulation for "
             "sampled intervals, functional fast-forward elsewhere, "
             "bootstrap CIs on every reported metric",
    )
    parser.add_argument(
        "--interval-ops", type=int, default=200,
        help="measured ops per sampling interval (default 200)",
    )
    parser.add_argument(
        "--stride", type=int, default=16,
        help="systematic sampler: simulate every stride-th interval in "
             "detail (default 16)",
    )
    parser.add_argument(
        "--sampler", choices=("systematic", "phase"), default="systematic",
        help="interval selection: SMARTS-style systematic or SimPoint-style "
             "phase clustering",
    )
    parser.add_argument(
        "--target-ci", type=float, default=None,
        help="error budget: densify the plan until the program-speedup CI "
             "half-width is at most this many percentage points (e.g. 1)",
    )


def _add_parallel_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (>1 shards cells via repro.harness.parallel)",
    )
    parser.add_argument(
        "--checkpoint-dir", default=None,
        help="directory for per-cell JSON checkpoints (enables resumption)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip cells already checkpointed in --checkpoint-dir",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None, metavar="K",
        help="cells per worker task (default: auto-size one wave per "
             "worker; 1 restores per-cell tasks)",
    )
    parser.add_argument(
        "--no-prewarm", action="store_true",
        help="skip the fork-server warm bank (debugging; results are "
             "bit-identical either way, just slower)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Mallacc (ASPLOS 2017) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads").set_defaults(fn=cmd_list)

    run = sub.add_parser("run", help="compare baseline vs Mallacc on a workload")
    run.add_argument("workload")
    run.add_argument("--ops", type=int, default=3000)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--entries", type=int, default=32, help="malloc cache entries")
    run.add_argument(
        "--no-trace-cache",
        action="store_true",
        help="disable trace-scheduling memoization (debugging; results are "
             "bit-identical either way, just slower)",
    )
    run.add_argument(
        "--no-intern",
        action="store_true",
        help="disable emission-template interning (debugging; results are "
             "bit-identical either way, just slower)",
    )
    run.add_argument(
        "--json", default=None, metavar="FILE",
        help="also write the scalar summary + provenance manifest as JSON "
             "(feed two of these to 'report --compare')",
    )
    _add_sampling_args(run)
    run.set_defaults(fn=cmd_run)

    trace = sub.add_parser(
        "trace",
        help="replay a workload with the span tracer armed and export a "
             "Perfetto-loadable Chrome trace",
    )
    trace.add_argument("workload")
    trace.add_argument("--ops", type=int, default=1000)
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--entries", type=int, default=32, help="malloc cache entries")
    trace.add_argument(
        "--export-perfetto", required=True, metavar="OUT.json",
        help="write the Chrome trace-event JSON here (open in "
             "https://ui.perfetto.dev or chrome://tracing)",
    )
    _add_sampling_args(trace)
    trace.set_defaults(fn=cmd_trace)

    sweep = sub.add_parser("sweep", help="malloc-cache size sweep (Figure 17)")
    sweep.add_argument("workload")
    sweep.add_argument("--sizes", default="2,4,8,16,32")
    sweep.add_argument("--ops", type=int, default=1500)
    sweep.add_argument("--seed", type=int, default=1)
    _add_parallel_args(sweep)
    sweep.set_defaults(fn=cmd_sweep)

    matrix = sub.add_parser(
        "matrix",
        help="shard a workload x cache-size matrix across worker processes",
    )
    matrix.add_argument(
        "--workloads", default="all",
        help="comma-separated workload names, or 'all'",
    )
    matrix.add_argument("--sizes", default="32")
    matrix.add_argument("--ops", type=int, default=1500)
    matrix.add_argument("--seed", type=int, default=1)
    matrix.add_argument("--out", default=None, help="write figure/table JSON here")
    matrix.add_argument("--quiet", action="store_true",
                        help="suppress the structured progress stream on stderr")
    _add_sampling_args(matrix)
    _add_parallel_args(matrix)
    matrix.set_defaults(fn=cmd_matrix)

    breakdown = sub.add_parser("breakdown", help="fast-path components (Figure 4)")
    breakdown.add_argument("workload")
    breakdown.add_argument("--ops", type=int, default=1500)
    breakdown.add_argument("--seed", type=int, default=1)
    breakdown.set_defaults(fn=cmd_breakdown)

    area = sub.add_parser("area", help="silicon area model (Section 6.4)")
    area.add_argument("--entries", type=int, default=16)
    area.set_defaults(fn=cmd_area)

    val = sub.add_parser("validate", help="simulator validation (Table 1)")
    val.add_argument("--ops", type=int, default=1500)
    val.set_defaults(fn=cmd_validate)

    rec = sub.add_parser("trace-record", help="record a workload to a trace file")
    rec.add_argument("workload")
    rec.add_argument("--out", required=True)
    rec.add_argument("--ops", type=int, default=2000)
    rec.add_argument("--seed", type=int, default=1)
    rec.set_defaults(fn=cmd_trace_record)

    trun = sub.add_parser("trace-run", help="replay a trace file under baseline + Mallacc")
    trun.add_argument("trace")
    trun.add_argument("--entries", type=int, default=32)
    trun.set_defaults(fn=cmd_trace_run)

    prof = sub.add_parser(
        "profile",
        help="replay one workload with the hot-path profiler (simulator "
             "wall-time breakdown, not simulated cycles)",
    )
    prof.add_argument("workload")
    prof.add_argument("--ops", type=int, default=2000)
    prof.add_argument("--seed", type=int, default=1)
    prof.add_argument("--entries", type=int, default=32, help="malloc cache entries")
    prof.add_argument(
        "--mallacc", action="store_true",
        help="profile the Mallacc allocator instead of baseline TCMalloc",
    )
    prof.add_argument("--json", action="store_true", help="emit the summary as JSON")
    prof.set_defaults(fn=cmd_profile)

    traffic = sub.add_parser(
        "traffic",
        help="open-loop load generation with tail-latency reporting "
             "(p50/p95/p99/p99.9 allocation latency, load curves)",
    )
    traffic.add_argument("workload")
    traffic.add_argument(
        "--arrival", default="poisson",
        choices=("constant", "poisson", "bursty", "diurnal", "all"),
        help="arrival process; 'all' runs the three open-loop models",
    )
    traffic.add_argument(
        "--rps", type=float, default=200.0,
        help="offered load, requests per second of simulated time",
    )
    traffic.add_argument(
        "--duration", type=float, default=1.0,
        help="simulated seconds of arrivals (default 1.0)",
    )
    traffic.add_argument(
        "--cores", type=int, default=4,
        help="simulated cores sharing the central free lists (default 4)",
    )
    traffic.add_argument(
        "--ops-per-request", type=int, default=24,
        help="allocator ops per request session (default 24)",
    )
    traffic.add_argument("--entries", type=int, default=32, help="malloc cache entries")
    traffic.add_argument("--seed", type=int, default=1)
    traffic.add_argument(
        "--clock-hz", type=float, default=1_000_000.0,
        help="simulated cycles per second (default 1e6: 1 simulated ms "
             "= 1000 cycles)",
    )
    traffic.add_argument(
        "--sample-stride", type=int, default=None, metavar="K",
        help="long horizons: simulate every K-th measured request in "
             "detail, fast-forward the rest (bootstrap CI on totals)",
    )
    traffic.add_argument(
        "--load-curve", default=None, metavar="LOADS",
        help="comma-separated load multipliers (fractions of calibrated "
             "capacity, e.g. '0.2,0.5,0.8,1.1') for a throughput-vs-"
             "offered-load sweep through the parallel harness",
    )
    traffic.add_argument(
        "--json", default=None, metavar="FILE",
        help="write the traffic payload (summaries, latency histograms, "
             "load curve, manifest) as JSON",
    )
    _add_parallel_args(traffic)
    traffic.set_defaults(fn=cmd_traffic)

    rep = sub.add_parser(
        "report",
        help="run the battery and write a markdown report, or diff two "
             "run payloads with --compare",
    )
    rep.add_argument("--out", default="results.md")
    rep.add_argument("--ops", type=int, default=2000)
    rep.add_argument("--seed", type=int, default=1)
    rep.add_argument(
        "--compare", nargs=2, metavar=("A.json", "B.json"), default=None,
        help="instead of generating a report, diff two 'run --json' payloads "
             "and exit nonzero if any metric delta exceeds --threshold",
    )
    rep.add_argument(
        "--threshold", type=float, default=0.0,
        help="relative delta tolerated by --compare (default 0: the "
             "simulator is deterministic, identical runs must match exactly)",
    )
    _add_sampling_args(rep)
    rep.set_defaults(fn=cmd_report)

    return parser


def main(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    main()

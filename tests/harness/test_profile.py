"""Tests for the hot-path profiler and its runner/metrics wiring."""

import pytest

from repro.harness.experiments import make_baseline, make_mallacc
from repro.harness.metrics import intern_summary, profile_stage_shares
from repro.harness.profile import (
    HotPathProfiler,
    StageStats,
    collect_machine_counters,
    machine_counter_snapshot,
    render_profile,
)
from repro.harness.runner import run_multithreaded, run_workload
from repro.alloc.multithread import MultiThreadAllocator
from repro.workloads import MICROBENCHMARKS
from repro.workloads.threads import balanced_churn


class TestProfilerCore:
    def test_stage_accumulation(self):
        p = HotPathProfiler()
        p.add_stage("build", 0.5)
        p.add_stage("build", 0.25)
        assert p.stages["build"].seconds == pytest.approx(0.75)
        assert p.stages["build"].entries == 2

    def test_counters(self):
        p = HotPathProfiler()
        p.count("calls")
        p.count("calls", 4)
        assert p.counters["calls"] == 5

    def test_timed_context_manager(self):
        p = HotPathProfiler()
        with p.timed("schedule"):
            pass
        assert p.stages["schedule"].entries == 1
        assert p.stages["schedule"].seconds >= 0.0

    def test_summary_emission_residual(self):
        p = HotPathProfiler()
        p.add_stage("replay", 1.0)
        p.add_stage("build", 0.2)
        p.add_stage("schedule", 0.3)
        stages = p.summary()["stages"]
        assert stages["emission"]["seconds"] == pytest.approx(0.5)
        assert stages["emission"]["entries"] == 1

    def test_summary_residual_clamped_nonnegative(self):
        p = HotPathProfiler()
        p.add_stage("replay", 0.1)
        p.add_stage("schedule", 0.3)  # timer skew must not go negative
        assert p.summary()["stages"]["emission"]["seconds"] == 0.0

    def test_summary_warming_not_double_counted(self):
        """Warming runs inside the replay loop *and* is reported as its own
        stage, so the emission residual must subtract it too.  Regression
        test: the residual used to be replay - build - schedule, silently
        counting every warming second twice (once as 'warming', once inside
        'emission'), so sampled-run stage shares summed past 100%."""
        p = HotPathProfiler()
        p.add_stage("replay", 1.0)
        p.add_stage("build", 0.2)
        p.add_stage("schedule", 0.3)
        p.add_stage("warming", 0.4)
        stages = p.summary()["stages"]
        assert stages["emission"]["seconds"] == pytest.approx(0.1)
        accounted = sum(
            stages[name]["seconds"]
            for name in ("emission", "build", "schedule", "warming")
        )
        assert accounted <= stages["replay"]["seconds"] + 1e-9
        shares = profile_stage_shares(p.summary())
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_sampled_run_stage_shares_bounded(self):
        """End-to-end check of the warming fix: a sampled replay's stage
        shares (all relative to the replay wall time) must sum to ~1, not
        1 + warming-share."""
        from repro.harness.runner import run_workload_sampled
        from repro.sim.sampling import SamplingConfig

        prof = HotPathProfiler()
        wl = MICROBENCHMARKS["tp_small"]
        run_workload_sampled(
            make_baseline,
            wl.ops(seed=3, num_ops=600),
            config=SamplingConfig(interval_ops=100, stride=4),
            profiler=prof,
        )
        shares = profile_stage_shares(prof.summary())
        assert "warming" in shares
        # Timer nesting means build/schedule/warming are timed inside the
        # replay timer; allow a little skew but nothing near a whole
        # double-counted warming share.
        assert sum(shares.values()) <= 1.10

    def test_rates(self):
        p = HotPathProfiler()
        p.count("intern_hits", 9)
        p.count("intern_misses", 1)
        s = p.summary()
        assert s["rates"]["intern_hit_rate"] == pytest.approx(0.9)
        assert s["rates"]["l1_hit_rate"] is None  # no hierarchy counters seen

    def test_merge(self):
        a, b = HotPathProfiler(), HotPathProfiler()
        a.add_stage("replay", 1.0)
        b.add_stage("replay", 2.0)
        b.add_stage("build", 0.5)
        b.count("calls", 3)
        a.merge(b)
        assert a.stages["replay"].seconds == pytest.approx(3.0)
        assert a.stages["build"].entries == 1
        assert a.counters["calls"] == 3

    def test_render_profile_smoke(self):
        p = HotPathProfiler()
        p.add_stage("replay", 1.0)
        p.count("calls", 10)
        text = render_profile(p.summary())
        assert "replay" in text and "calls" in text


class TestRunnerWiring:
    def test_profiler_populated_by_run(self):
        prof = HotPathProfiler()
        alloc = make_baseline()
        result = run_workload(
            alloc,
            MICROBENCHMARKS["tp_small"].ops(seed=3, num_ops=200),
            profiler=prof,
        )
        s = prof.summary()
        assert s["stages"]["replay"]["entries"] == 1
        assert s["stages"]["build"]["entries"] == prof.counters["calls"]
        assert s["stages"]["emission"]["seconds"] >= 0.0
        assert prof.counters["calls"] == len(result.records) + result.warmup_calls
        assert prof.counters["intern_hits"] > 0
        assert prof.counters["trace_cache_hits"] > 0
        assert prof.counters["hierarchy_probes"] > 0
        shares = profile_stage_shares(s)
        assert set(shares) >= {"build", "schedule", "emission"}
        assert all(v >= 0.0 for v in shares.values())

    def test_profiler_detached_after_run(self):
        prof = HotPathProfiler()
        alloc = make_baseline()
        run_workload(
            alloc,
            MICROBENCHMARKS["tp_small"].ops(seed=3, num_ops=50),
            profiler=prof,
        )
        assert alloc.machine.profiler is None

    def test_counters_are_run_deltas_not_lifetime(self):
        alloc = make_mallacc()
        ops = list(MICROBENCHMARKS["tp_small"].ops(seed=3, num_ops=100))
        run_workload(alloc, list(ops))  # unprofiled warm run
        prof = HotPathProfiler()
        run_workload(alloc, list(ops), profiler=prof)
        # Deltas: the profiled run's calls only, not both runs'.
        lifetime = machine_counter_snapshot([alloc.machine])
        assert prof.counters["trace_cache_hits"] < lifetime["trace_cache_hits"]

    def test_profile_identical_results(self):
        """Attaching a profiler must not change a single cycle."""
        ops = list(MICROBENCHMARKS["gauss_free"].ops(seed=5, num_ops=200))
        plain = run_workload(make_baseline(), list(ops))
        profiled = run_workload(
            make_baseline(), list(ops), profiler=HotPathProfiler()
        )
        assert [r.cycles for r in plain.records] == [
            r.cycles for r in profiled.records
        ]

    def test_multithreaded_profiler_pools_cores(self):
        prof = HotPathProfiler()
        mt = MultiThreadAllocator(4, coherent=True)
        workload = balanced_churn(4)
        run_multithreaded(
            mt, workload.ops(seed=7, num_ops=300), profiler=prof
        )
        assert prof.counters["calls"] > 0
        # Coherent mode: one timing model per core, all pooled once each.
        assert prof.counters["trace_cache_hits"] + prof.counters[
            "trace_cache_misses"
        ] == sum(m.timing.cache_stats.lookups for m in mt.core_machines)


class TestSnapshotDedup:
    def test_shared_substrate_counted_once(self):
        alloc = make_baseline()
        run_workload(
            alloc, MICROBENCHMARKS["tp_small"].ops(seed=3, num_ops=100)
        )
        m = alloc.machine
        # Passing the same machine twice must not double-count anything.
        assert machine_counter_snapshot([m, m]) == machine_counter_snapshot([m])
        assert machine_counter_snapshot([m])["hierarchy_probes"] > 0

    def test_collect_adds_to_profiler(self):
        prof = HotPathProfiler()
        alloc = make_baseline()
        run_workload(
            alloc, MICROBENCHMARKS["tp_small"].ops(seed=3, num_ops=50)
        )
        collect_machine_counters(prof, [alloc.machine])
        assert prof.counters["trace_cache_hits"] == (
            alloc.machine.timing.cache_stats.hits
        )


class TestInternSummary:
    def test_pools_results(self):
        ops = list(MICROBENCHMARKS["tp_small"].ops(seed=3, num_ops=150))
        a = run_workload(make_baseline(), list(ops))
        b = run_workload(make_mallacc(), list(ops))
        s = intern_summary(a, b)
        assert s["hits"] == a.intern_hits + b.intern_hits
        assert s["lookups"] == s["hits"] + s["misses"]
        assert 0.0 < s["hit_rate"] <= 1.0

    def test_disabled_is_all_zero(self):
        ops = list(MICROBENCHMARKS["tp_small"].ops(seed=3, num_ops=50))
        r = run_workload(make_baseline(intern_traces=False), ops)
        s = intern_summary(r)
        assert s == {"hits": 0.0, "misses": 0.0, "lookups": 0.0, "hit_rate": 0.0}

    def test_stage_stats_default(self):
        assert StageStats().seconds == 0.0

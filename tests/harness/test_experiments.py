"""Tests for the comparison harness."""

import pytest

from repro.harness.experiments import (
    LIMIT_ABLATION,
    WorkloadComparison,
    compare_workload,
    geomean,
    make_baseline,
    make_mallacc,
)
from repro.harness.runner import RunResult
from repro.workloads import MICROBENCHMARKS
from tests.harness.test_metrics import rec


def result_with(cycles_list, app=1000, name="w"):
    r = RunResult(workload=name, app_cycles=app)
    r.records = [rec(c) for c in cycles_list]
    return r


class TestComparisonMath:
    def test_improvements(self):
        base = result_with([100, 100])
        accel = result_with([60, 80])
        c = WorkloadComparison(workload="w", baseline=base, mallacc=accel)
        assert c.allocator_improvement == pytest.approx(30.0)
        assert c.malloc_improvement == pytest.approx(30.0)

    def test_limit_improvement_reads_ablation(self):
        base = result_with([100])
        base.records[0].ablated[LIMIT_ABLATION] = 50
        c = WorkloadComparison(workload="w", baseline=base, mallacc=result_with([90]))
        assert c.allocator_limit_improvement == pytest.approx(50.0)

    def test_program_speedup_formula(self):
        base = result_with([100], app=900)  # total 1000
        accel = result_with([50], app=900)  # accel total 950
        c = WorkloadComparison(workload="w", baseline=base, mallacc=accel)
        assert c.program_speedup == pytest.approx(5.0)
        assert c.allocator_fraction == pytest.approx(0.1)

    def test_zero_baseline_safe(self):
        c = WorkloadComparison(
            workload="w", baseline=RunResult("w"), mallacc=RunResult("w")
        )
        assert c.allocator_improvement == 0.0


class TestGeomean:
    def test_uniform(self):
        assert geomean([20.0, 20.0, 20.0]) == pytest.approx(20.0)

    def test_mixed(self):
        g = geomean([10.0, 30.0])
        assert 10.0 < g < 30.0

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_handles_negative_entries(self):
        g = geomean([-5.0, 20.0])
        assert g < 20.0


class TestFactories:
    def test_baseline_has_limit_ablation(self):
        alloc = make_baseline()
        _, r = alloc.malloc(64)
        assert LIMIT_ABLATION in r.ablated

    def test_mallacc_cache_size(self):
        alloc = make_mallacc(cache_entries=8)
        assert alloc.malloc_cache.config.num_entries == 8


class TestEndToEndComparison:
    def test_compare_tp_small(self):
        c = compare_workload(MICROBENCHMARKS["tp_small"], num_ops=600)
        assert c.workload == "tp_small"
        # Both runs saw identical op streams.
        assert len(c.baseline.records) == len(c.mallacc.records)
        # Mallacc helps, bounded by the limit study.
        assert 0 < c.malloc_improvement <= c.malloc_limit_improvement + 8

    def test_comparison_is_reproducible(self):
        a = compare_workload(MICROBENCHMARKS["tp_small"], num_ops=300, seed=4)
        b = compare_workload(MICROBENCHMARKS["tp_small"], num_ops=300, seed=4)
        assert a.allocator_improvement == pytest.approx(b.allocator_improvement)

"""Tests for the harness statistics: bootstrap CI indexing and the
scipy-optional t-test fallback."""

import math
import random

import pytest

import repro.harness.stats as stats_mod
from repro.harness.stats import (
    SpeedupTrials,
    bootstrap_ci,
    one_sample_t_pvalue_two_sided,
)


class TestBootstrapCI:
    def test_brackets_the_sample_mean(self):
        rng = random.Random(1)
        values = [2.0 + rng.gauss(0, 0.5) for _ in range(30)]
        lo, hi = bootstrap_ci(values, confidence=0.95, resamples=1000, seed=0)
        mean = sum(values) / len(values)
        assert lo <= mean <= hi

    def test_tightens_with_more_trials(self):
        rng = random.Random(2)
        small = [1.0 + rng.gauss(0, 1.0) for _ in range(8)]
        big = small * 8  # same distribution, 8x the sample size
        lo_s, hi_s = bootstrap_ci(small, resamples=1000, seed=0)
        lo_b, hi_b = bootstrap_ci(big, resamples=1000, seed=0)
        assert (hi_b - lo_b) < (hi_s - lo_s)

    def test_single_value_degenerate(self):
        assert bootstrap_ci([3.5]) == (3.5, 3.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_rank_indices_not_off_by_one(self):
        """The interval endpoints must be actual resample order statistics
        at the ceil-based ranks — the old int() indexing read one past the
        97.5th percentile order statistic whenever alpha*resamples was
        integral."""
        from repro.sim.sampling import percentile_rank_indices

        lo_i, hi_i = percentile_rank_indices(2000, 0.95)
        assert (lo_i, hi_i) == (49, 1949)

    def test_property_ci_nests_with_confidence(self):
        """Property: for random samples, a higher-confidence interval from
        the same resample distribution contains the lower-confidence one."""
        rng = random.Random(3)
        for _ in range(20):
            n = rng.randrange(5, 40)
            values = [rng.uniform(-5, 5) for _ in range(n)]
            lo90, hi90 = bootstrap_ci(values, confidence=0.90, resamples=500, seed=7)
            lo99, hi99 = bootstrap_ci(values, confidence=0.99, resamples=500, seed=7)
            assert lo99 <= lo90 and hi90 <= hi99


class TestPurePythonTTest:
    def test_matches_scipy_when_available(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = random.Random(4)
        for _ in range(10):
            values = [rng.gauss(0.5, 1.0) for _ in range(rng.randrange(3, 25))]
            t_ref, p_ref = scipy_stats.ttest_1samp(values, 0.0)
            t, p = one_sample_t_pvalue_two_sided(values, 0.0)
            assert math.isclose(t, t_ref, rel_tol=1e-9)
            assert math.isclose(p, p_ref, rel_tol=1e-7, abs_tol=1e-12)

    def test_zero_variance(self):
        t, p = one_sample_t_pvalue_two_sided([2.0, 2.0, 2.0], 0.0)
        assert t == math.inf and p == 0.0
        t, p = one_sample_t_pvalue_two_sided([0.0, 0.0], 0.0)
        assert t == 0.0 and p == 1.0

    def test_p_value_without_scipy(self, monkeypatch):
        """stats.py must produce the same verdicts with scipy absent."""
        trials = SpeedupTrials(workload="x", speedups=[1.2, 0.8, 1.5, 0.9, 1.1])
        with_scipy = trials.p_value
        monkeypatch.setattr(stats_mod, "scipy_stats", None)
        fallback = SpeedupTrials(workload="x", speedups=[1.2, 0.8, 1.5, 0.9, 1.1])
        assert math.isclose(fallback.p_value, with_scipy, rel_tol=1e-7)
        assert fallback.significant == trials.significant


class TestPValueCaching:
    def test_cached_per_trial_count(self):
        trials = SpeedupTrials(workload="x", speedups=[1.0, 1.2, 0.9])
        first = trials.p_value
        assert trials._p_value_cache == (3, first)
        assert trials.p_value is first or trials.p_value == first

    def test_cache_invalidated_by_new_trials(self):
        trials = SpeedupTrials(workload="x", speedups=[1.0, 1.2, 0.9])
        before = trials.p_value
        trials.speedups.append(-10.0)
        after = trials.p_value
        assert after != before
        assert trials._p_value_cache == (4, after)

    def test_degenerate_counts(self):
        assert SpeedupTrials(workload="x", speedups=[]).p_value == 1.0
        assert SpeedupTrials(workload="x", speedups=[1.0]).p_value == 1.0

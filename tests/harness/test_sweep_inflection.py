"""Edge-case tests for SweepResult.inflection_size (Figure 17 analysis)."""

from repro.harness.sweeps import SweepResult


def _sweep(speedups, sizes=None):
    sizes = sizes or tuple(range(2, 2 + 2 * len(speedups), 2))
    return SweepResult(
        workload="t", sizes=tuple(sizes), malloc_speedups=list(speedups)
    )


class TestInflectionSize:
    def test_empty_sweep(self):
        assert _sweep([], sizes=()).inflection_size() is None

    def test_all_nonpositive_speedups(self):
        """Small caches that only ever hurt have no inflection point."""
        assert _sweep([-3.0, -1.5, 0.0]).inflection_size() is None

    def test_monotone_flat_curve(self):
        """A flat positive curve reaches any threshold at the first size."""
        sweep = _sweep([5.0, 5.0, 5.0, 5.0])
        assert sweep.inflection_size() == sweep.sizes[0]
        assert sweep.inflection_size(threshold_frac=1.0) == sweep.sizes[0]

    def test_exact_boundary_threshold(self):
        """A point exactly at threshold_frac * best counts (>=, not >)."""
        sweep = _sweep([2.0, 5.0, 10.0], sizes=(2, 4, 8))
        assert sweep.inflection_size(threshold_frac=0.5) == 4
        assert sweep.inflection_size(threshold_frac=0.2) == 2

    def test_sharp_jump_mid_curve(self):
        """The paper's strided benchmarks: a jump once the cache covers the
        class count."""
        sweep = _sweep([-1.0, 0.5, 0.6, 8.0, 8.2], sizes=(2, 4, 6, 8, 12))
        assert sweep.inflection_size() == 8

    def test_negative_then_positive(self):
        sweep = _sweep([-5.0, 3.0], sizes=(2, 32))
        assert sweep.inflection_size() == 32

    def test_threshold_one_requires_the_max(self):
        sweep = _sweep([1.0, 4.0, 2.0], sizes=(2, 4, 8))
        assert sweep.inflection_size(threshold_frac=1.0) == 4

    def test_best_at_end_never_reached_early(self):
        sweep = _sweep([1.0, 1.0, 100.0], sizes=(2, 4, 8))
        assert sweep.inflection_size(threshold_frac=0.5) == 8

"""Tests for the report generator (rendering, fast-scale collection)."""

import pytest

from repro.harness.report import MACRO_ORDER, MICRO_ORDER, collect, generate_report, render_markdown


@pytest.fixture(scope="module")
def data():
    # Small but real: exercises the full collection path once per module.
    return collect(ops=500, seed=3)


class TestCollect:
    def test_covers_all_workloads(self, data):
        assert set(data.comparisons) == set(MACRO_ORDER)
        assert set(data.breakdowns) == set(MICRO_ORDER)

    def test_validation_and_sweep_present(self, data):
        assert len(data.validation_rows) == 5
        assert data.sweep.malloc_speedups


class TestRender:
    def test_markdown_structure(self, data):
        text = render_markdown(data)
        assert text.startswith("# Mallacc reproduction report")
        for heading in (
            "## Allocator and malloc speedups",
            "## Fast-path components",
            "## Simulator validation",
            "## Malloc-cache size sweep",
            "## Area",
        ):
            assert heading in text

    def test_every_workload_has_a_row(self, data):
        text = render_markdown(data)
        for name in MACRO_ORDER + MICRO_ORDER:
            assert name in text

    def test_geomean_row(self, data):
        text = render_markdown(data)
        assert "**geomean**" in text

    def test_generate_writes_file(self, data, tmp_path, monkeypatch):
        # Reuse the collected data instead of re-running the battery.
        import repro.harness.report as report_mod

        monkeypatch.setattr(report_mod, "collect", lambda **kw: data)
        out = tmp_path / "r.md"
        text = generate_report(str(out), ops=500)
        assert out.read_text() == text

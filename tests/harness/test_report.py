"""Tests for the report generator (rendering, fast-scale collection)."""

from dataclasses import replace

import pytest

from repro.harness.experiments import compare_workload_sampled
from repro.harness.report import MACRO_ORDER, MICRO_ORDER, collect, generate_report, render_markdown
from repro.sim.sampling import SamplingConfig
from repro.workloads import MACRO_WORKLOADS


@pytest.fixture(scope="module")
def data():
    # Small but real: exercises the full collection path once per module.
    return collect(ops=500, seed=3)


class TestCollect:
    def test_covers_all_workloads(self, data):
        assert set(data.comparisons) == set(MACRO_ORDER)
        assert set(data.breakdowns) == set(MICRO_ORDER)

    def test_validation_and_sweep_present(self, data):
        assert len(data.validation_rows) == 5
        assert data.sweep.malloc_speedups


class TestRender:
    def test_markdown_structure(self, data):
        text = render_markdown(data)
        assert text.startswith("# Mallacc reproduction report")
        for heading in (
            "## Allocator and malloc speedups",
            "## Fast-path components",
            "## Simulator validation",
            "## Malloc-cache size sweep",
            "## Area",
        ):
            assert heading in text

    def test_every_workload_has_a_row(self, data):
        text = render_markdown(data)
        for name in MACRO_ORDER + MICRO_ORDER:
            assert name in text

    def test_geomean_row(self, data):
        text = render_markdown(data)
        assert "**geomean**" in text

    def test_generate_writes_file(self, data, tmp_path, monkeypatch):
        # Reuse the collected data instead of re-running the battery.
        import repro.harness.report as report_mod

        monkeypatch.setattr(report_mod, "collect", lambda **kw: data)
        out = tmp_path / "r.md"
        text = generate_report(str(out), ops=500)
        assert out.read_text() == text

    def test_exact_tables_marked_exact(self, data):
        text = render_markdown(data)
        assert "Exact simulation: every op replayed" in text
        assert "†" not in text
        assert "program 95% CI" not in text


@pytest.fixture(scope="module")
def sampled_data(data):
    """The same report data with the macro comparisons re-collected through
    the sampled engine (test-scale config; production stride would leave a
    500-op stream with a single sampled interval)."""
    cfg = SamplingConfig(interval_ops=100, stride=4, warmup_ops=50)
    comparisons = {
        name: compare_workload_sampled(
            MACRO_WORKLOADS[name], num_ops=500, seed=3, sampling=cfg
        )
        for name in MACRO_ORDER
    }
    return replace(data, comparisons=comparisons, sampling=cfg)


class TestSampledRender:
    def test_footnote_marks_sampled_table(self, sampled_data):
        text = render_markdown(sampled_data)
        assert "## Allocator and malloc speedups (Figures 13/14/18) †" in text
        assert "† Sampled simulation (systematic sampler" in text
        assert "docs/sampling.md" in text
        assert "Exact simulation" not in text

    def test_ci_column_present_for_every_workload(self, sampled_data):
        text = render_markdown(sampled_data)
        assert "program 95% CI" in text
        for name in MACRO_ORDER:
            row = next(l for l in text.splitlines() if l.startswith(f"| {name} "))
            point, lo, hi = sampled_data.comparisons[name].estimate("program_speedup")
            assert f"[{lo:.2f}%, {hi:.2f}%]" in row

"""Tests for text figure rendering and the cache-size sweep."""

import pytest

from repro.harness.figures import (
    render_bar_chart,
    render_histogram,
    render_series,
    render_table,
)
from repro.harness.metrics import duration_histogram
from repro.harness.sweeps import SweepResult, sweep_cache_sizes
from repro.workloads import MICROBENCHMARKS
from tests.harness.test_metrics import rec


class TestRenderers:
    def test_table_alignment_and_content(self):
        out = render_table(["name", "value"], [["tp", "12.5"], ["gauss", "3"]], title="T")
        assert "T" in out and "tp" in out and "12.5" in out
        lines = out.splitlines()
        assert len(lines) == 5  # title, header, rule, two rows

    def test_histogram_renders_peaks(self):
        h = duration_histogram([rec(20)] * 10 + [rec(2000)] * 2)
        out = render_histogram(h, title="Fig")
        assert "Fig" in out and "#" in out and "%" in out

    def test_bar_chart(self):
        out = render_bar_chart(["a", "bb"], [10.0, -5.0])
        assert "a" in out and "bb" in out and "-5.0%" in out

    def test_series(self):
        out = render_series([2, 4], {"tp": [1.0, 2.0], "gauss": [3.0, 4.0]}, x_label="entries")
        assert "entries" in out and "tp" in out and "4.0" in out

    def test_empty_inputs(self):
        assert render_bar_chart([], []) == ""
        assert "x" in render_series([], {}, x_label="x")


class TestSweep:
    def test_sweep_runs_and_shapes(self):
        result = sweep_cache_sizes(
            MICROBENCHMARKS["tp_small"], sizes=(2, 8, 16), num_ops=400
        )
        assert result.sizes == (2, 8, 16)
        assert len(result.malloc_speedups) == 3
        assert result.limit_speedup > 0

    def test_small_cache_worse_than_large(self):
        """Figure 17: too small a cache underperforms a sufficient one."""
        result = sweep_cache_sizes(
            MICROBENCHMARKS["tp_small"], sizes=(2, 16), num_ops=600
        )
        assert result.malloc_speedups[1] > result.malloc_speedups[0]

    def test_inflection_detection(self):
        r = SweepResult(
            workload="x",
            sizes=(2, 4, 8),
            malloc_speedups=[-5.0, 2.0, 40.0],
        )
        assert r.inflection_size() == 8
        r2 = SweepResult(workload="x", sizes=(2,), malloc_speedups=[-1.0])
        assert r2.inflection_size() is None

"""Tests for the sampled replay runner.

Three contracts:

* **exact-mode invariance** — ``stride=1`` + ``cache_warming='always'``
  degenerates to an exact replay, bit-identical to :func:`run_workload`;
* **flat fast-forward parity** — the allocators' fused
  ``fast_forward_malloc``/``fast_forward_free`` leave machine and allocator
  state byte-identical to the generic functional emitter path they replace;
* **telemetry** — detailed/warming call counts, detail fraction, and the
  adaptive error-budget loop behave as documented.
"""

import pytest

from repro.alloc.allocator import TCMalloc
from repro.core.accel_allocator import MallaccTCMalloc
from repro.core.malloc_cache import MallocCacheConfig
from repro.harness.experiments import make_baseline, make_mallacc
from repro.harness.runner import run_workload, run_workload_sampled
from repro.sim.sampling import SamplingConfig
from repro.sim.uop import LIMIT_STUDY_TAGS
from repro.workloads import MACRO_WORKLOADS, MICROBENCHMARKS

#: Small, fast sampled config for tests (the production default stride of 16
#: would leave a 2000-op stream with a single sampled interval).
TEST_CFG = SamplingConfig(interval_ops=100, stride=4, warmup_ops=50)


def _exact_cfg() -> SamplingConfig:
    return SamplingConfig(interval_ops=100, stride=1, cache_warming="always")


class _SlowBaseline(TCMalloc):
    """Baseline with the flat fast-forward disabled: every skip-mode op
    falls back to the generic FunctionalEmitter replay."""

    def fast_forward_malloc(self, size):
        return None

    def fast_forward_free(self, ptr, sized_hint=None):
        return None


class _SlowMallacc(MallaccTCMalloc):
    def fast_forward_malloc(self, size):
        return None

    def fast_forward_free(self, ptr, sized_hint=None):
        return None


def _snapshot(alloc):
    """Full observable state of an allocator + machine, order-stabilized."""
    m = alloc.machine
    state = {
        "clock": m.clock,
        "lists": [
            (fl.length, fl.max_length, fl.low_water, sorted(fl._contents))
            for fl in alloc.thread_cache.lists
        ],
        "size_bytes": alloc.thread_cache.size_bytes,
        "live": sorted(alloc.live.items()),
        "pred": repr(sorted(vars(m.predictor).items(), key=str)),
        "mem": repr(sorted(vars(m.memory).items(), key=str)),
    }
    if hasattr(alloc, "isa"):
        state["cache"] = [
            tuple(sorted(vars(e).items())) for e in alloc.isa.cache.entries
        ]
        state["cache_stats"] = vars(alloc.isa.cache.stats)
        state["pmu"] = (alloc.pmu.accumulated, alloc.pmu.interrupts)
    return state


class TestExactModeInvariance:
    @pytest.mark.parametrize("workload", ["tp", "gauss_free", "sized_deletes"])
    def test_bit_identical_to_run_workload(self, workload):
        wl = MICROBENCHMARKS[workload]
        ops = list(wl.ops(seed=3, num_ops=1200))
        for factory in (make_baseline, make_mallacc):
            exact = run_workload(factory(), ops, name=wl.name)
            sampled = run_workload_sampled(
                factory, ops, config=_exact_cfg(), name=wl.name
            )
            per_interval_exact = {}
            for i, rec in enumerate(exact.records):
                j = min(i // 100, sampled.plan.num_intervals - 1)
                per_interval_exact[j] = per_interval_exact.get(j, 0) + rec.cycles
            got = {
                j: iv.get("allocator", 0.0)
                for j, iv in sampled.interval_values.items()
            }
            assert got == pytest.approx(per_interval_exact)
            assert sampled.app_cycles == exact.app_cycles
            assert [r.cycles for r in sampled.records] == [
                r.cycles for r in exact.records
            ]

    def test_exact_mode_point_estimate_matches(self):
        wl = MICROBENCHMARKS["tp"]
        ops = list(wl.ops(seed=3, num_ops=1000))
        exact = run_workload(make_baseline(), ops, name=wl.name)
        sampled = run_workload_sampled(
            make_baseline, ops, config=_exact_cfg(), name=wl.name
        )
        point, lo, hi = sampled.estimate("allocator")
        assert point == pytest.approx(exact.allocator_cycles)
        assert lo <= point <= hi


class TestFlatFastForwardParity:
    @pytest.mark.parametrize(
        "workload", ["400.perlbench", "masstree.same", "xapian.pages"]
    )
    def test_baseline_flat_matches_generic(self, workload):
        wl = MACRO_WORKLOADS[workload]
        ops = list(wl.ops(seed=7, num_ops=2500))
        holder = {}

        def fast():
            holder["a"] = make_baseline()
            return holder["a"]

        def slow():
            holder["a"] = _SlowBaseline(ablations={"limit": LIMIT_STUDY_TAGS})
            return holder["a"]

        r_fast = run_workload_sampled(fast, ops, config=TEST_CFG, name=wl.name)
        a_fast = holder["a"]
        r_slow = run_workload_sampled(slow, ops, config=TEST_CFG, name=wl.name)
        a_slow = holder["a"]
        assert _snapshot(a_fast) == _snapshot(a_slow)
        assert r_fast.interval_values == r_slow.interval_values

    @pytest.mark.parametrize("workload", ["masstree.same", "xapian.abstracts"])
    def test_mallacc_flat_matches_generic(self, workload):
        wl = MACRO_WORKLOADS[workload]
        ops = list(wl.ops(seed=7, num_ops=2500))
        holder = {}

        def fast():
            holder["a"] = make_mallacc()
            return holder["a"]

        def slow():
            holder["a"] = _SlowMallacc(
                cache_config=MallocCacheConfig(num_entries=32)
            )
            return holder["a"]

        r_fast = run_workload_sampled(fast, ops, config=TEST_CFG, name=wl.name)
        a_fast = holder["a"]
        r_slow = run_workload_sampled(slow, ops, config=TEST_CFG, name=wl.name)
        a_slow = holder["a"]
        assert _snapshot(a_fast) == _snapshot(a_slow)
        assert r_fast.interval_values == r_slow.interval_values


class TestTelemetry:
    def test_call_counts_partition_measured_ops(self):
        wl = MICROBENCHMARKS["gauss_free"]
        ops = list(wl.ops(seed=2, num_ops=1500))
        result = run_workload_sampled(make_baseline, ops, config=TEST_CFG)
        measured = sum(1 for op in ops if not op.warmup)
        assert result.detailed_calls + result.warming_calls == measured
        assert result.detailed_calls == len(result.records)
        assert 0.0 < result.detail_fraction < 1.0

    def test_features_cover_every_interval(self):
        wl = MICROBENCHMARKS["tp"]
        ops = list(wl.ops(seed=2, num_ops=1200))
        result = run_workload_sampled(make_baseline, ops, config=TEST_CFG)
        assert len(result.features) == result.plan.num_intervals
        assert sum(f.ops for f in result.features) == sum(
            1 for op in ops if not op.warmup
        )

    def test_plan_mismatch_rejected(self):
        from repro.sim.sampling import plan_systematic

        wl = MICROBENCHMARKS["tp"]
        ops = list(wl.ops(seed=2, num_ops=1000))
        bad_plan = plan_systematic(3, 1)  # stream yields 10 intervals
        with pytest.raises(ValueError):
            run_workload_sampled(make_baseline, ops, config=TEST_CFG, plan=bad_plan)

    def test_adaptive_escalation_tightens_ci(self):
        wl = MICROBENCHMARKS["gauss_free"]
        ops = list(wl.ops(seed=2, num_ops=2000))
        coarse = run_workload_sampled(
            make_baseline,
            ops,
            config=SamplingConfig(interval_ops=100, stride=8, warmup_ops=50),
        )
        adaptive = run_workload_sampled(
            make_baseline,
            ops,
            config=SamplingConfig(
                interval_ops=100, stride=8, warmup_ops=50, target_ci=0.5
            ),
        )
        assert adaptive.rounds >= 1
        if adaptive.rounds > 1:
            assert (
                adaptive.relative_ci_halfwidth <= coarse.relative_ci_halfwidth
            )

    def test_phase_sampler_runs(self):
        wl = MICROBENCHMARKS["gauss_free"]
        ops = list(wl.ops(seed=2, num_ops=1500))
        result = run_workload_sampled(
            make_baseline,
            ops,
            config=SamplingConfig(
                interval_ops=100,
                sampler="phase",
                num_clusters=3,
                samples_per_cluster=2,
                warmup_ops=50,
            ),
        )
        assert result.plan.num_intervals == 15
        assert len(result.plan.strata) <= 3
        point, lo, hi = result.estimate("allocator")
        assert lo <= point <= hi

"""Tests for the ablation (Fig 4), validation (Table 1) and stats (Table 2)
harness modules."""

import pytest

from repro.harness.ablation import COMPONENT_ABLATIONS, fastpath_breakdown
from repro.harness.stats import SpeedupTrials, program_speedup_trials
from repro.harness.validation import analytic_pair_cost, mean_error, validate
from repro.workloads import MICROBENCHMARKS


class TestAblation:
    def test_component_set(self):
        assert set(COMPONENT_ABLATIONS) == {
            "sampling",
            "size_class",
            "push_pop",
            "combined",
        }

    def test_breakdown_tp_small(self):
        b = fastpath_breakdown(MICROBENCHMARKS["tp_small"], num_ops=600)
        assert b.baseline_cycles > 0
        for name in COMPONENT_ABLATIONS:
            assert b.component_cost(name) >= 0

    def test_combined_is_about_half(self):
        """The paper's Figure 4 headline: the three components together are
        ~50% of fast-path cycles."""
        b = fastpath_breakdown(MICROBENCHMARKS["tp_small"], num_ops=800)
        assert 0.35 <= b.combined_fraction <= 0.65

    def test_combined_at_least_each_component(self):
        b = fastpath_breakdown(MICROBENCHMARKS["gauss_free"], num_ops=800)
        combined = b.component_cost("combined")
        for name in ("sampling", "size_class", "push_pop"):
            assert combined >= b.component_cost(name) - 1e-9

    def test_antagonist_push_pop_grows(self):
        """Figure 4: the antagonist 'sees a significant increase in Pop
        time' versus the cache-resident strided benchmarks."""
        friendly = fastpath_breakdown(MICROBENCHMARKS["tp_small"], num_ops=600)
        hostile = fastpath_breakdown(MICROBENCHMARKS["antagonist"], num_ops=600)
        assert hostile.component_cost("push_pop") > friendly.component_cost("push_pop")
        assert hostile.baseline_cycles > friendly.baseline_cycles


class TestValidation:
    def test_rows_and_mean(self):
        rows = validate(num_ops=600)
        assert [r.workload for r in rows] == [
            "gauss",
            "gauss_free",
            "tp",
            "tp_small",
            "sized_deletes",
        ]
        for r in rows:
            assert r.simulated_cycles > 0
            assert r.error_pct >= 0
        assert mean_error(rows) < 15.0  # paper: 6.28%

    def test_analytic_costs_sensible(self):
        assert analytic_pair_cost("gauss") < analytic_pair_cost("gauss_free")
        assert analytic_pair_cost("sized_deletes") < analytic_pair_cost("tp")
        assert analytic_pair_cost("tp") == analytic_pair_cost("tp_small")

    def test_mean_error_empty(self):
        assert mean_error([]) == 0.0


class TestStats:
    def test_trials_math(self):
        t = SpeedupTrials(workload="w", speedups=[0.5, 0.6, 0.4, 0.5, 0.5])
        assert t.mean == pytest.approx(0.5)
        assert t.stddev > 0
        assert t.p_value < 0.05
        assert t.significant

    def test_noise_not_significant(self):
        t = SpeedupTrials(workload="w", speedups=[0.5, -0.6, 0.1, -0.2, 0.05])
        assert not t.significant

    def test_slowdown_not_significant(self):
        t = SpeedupTrials(workload="w", speedups=[-0.5, -0.4, -0.6])
        assert t.p_value == 1.0

    def test_degenerate_cases(self):
        assert SpeedupTrials("w", []).p_value == 1.0
        assert SpeedupTrials("w", [0.1]).p_value == 1.0
        zero_var = SpeedupTrials("w", [0.2, 0.2, 0.2])
        assert zero_var.p_value < 1e-6

    def test_program_speedup_trials_run(self):
        t = program_speedup_trials(
            MICROBENCHMARKS["tp_small"], trials=3, num_ops=300
        )
        assert len(t.speedups) == 3
        assert t.workload == "tp_small"


class TestBootstrap:
    def test_ci_brackets_mean(self):
        from repro.harness.stats import bootstrap_ci

        values = [0.4, 0.5, 0.6, 0.45, 0.55]
        lo, hi = bootstrap_ci(values)
        mean = sum(values) / len(values)
        assert lo <= mean <= hi

    def test_ci_narrows_with_less_variance(self):
        from repro.harness.stats import bootstrap_ci

        tight = bootstrap_ci([0.5, 0.5, 0.51, 0.49, 0.5])
        wide = bootstrap_ci([0.1, 0.9, 0.2, 0.8, 0.5])
        assert (tight[1] - tight[0]) < (wide[1] - wide[0])

    def test_single_value_degenerate(self):
        from repro.harness.stats import bootstrap_ci

        assert bootstrap_ci([0.3]) == (0.3, 0.3)

    def test_empty_rejected(self):
        from repro.harness.stats import bootstrap_ci

        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_deterministic_by_seed(self):
        from repro.harness.stats import bootstrap_ci

        v = [0.1, 0.4, 0.3, 0.2]
        assert bootstrap_ci(v, seed=7) == bootstrap_ci(v, seed=7)

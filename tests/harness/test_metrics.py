"""Tests for the distribution metrics."""

import pytest

from repro.alloc.allocator import CallRecord, Path
from repro.harness.metrics import (
    classes_for_coverage,
    duration_histogram,
    mean_cycles,
    median_cycles,
    size_class_cdf,
    time_weighted_cdf,
)


def rec(cycles, kind="malloc", cl=5, path=Path.FAST):
    return CallRecord(
        kind=kind, size=64, size_class=cl, path=path, cycles=cycles,
        num_uops=30, ptr=0x1000, clock=0,
    )


class TestDurationHistogram:
    def test_weights_sum_to_100(self):
        records = [rec(20), rec(30), rec(2000), rec(40000)]
        h = duration_histogram(records)
        assert sum(h.weights) == pytest.approx(100.0)

    def test_time_weighting(self):
        """One 10000-cycle call outweighs one-hundred 20-cycle calls."""
        records = [rec(20)] * 100 + [rec(10000)]
        h = duration_histogram(records)
        slow_share = sum(
            w for e, w in zip(h.bin_edges, h.weights) if e >= 5000
        )
        assert slow_share > 50

    def test_peak_detection_three_pools(self):
        """Figure 1's shape: fast / central / page-allocator peaks."""
        records = [rec(20)] * 500 + [rec(1500)] * 10 + [rec(30000)] * 2
        h = duration_histogram(records)
        peaks = h.peak_bins(min_share=5.0)
        assert len(peaks) == 3

    def test_malloc_only_filter(self):
        records = [rec(20), rec(500, kind="free")]
        h = duration_histogram(records, malloc_only=True)
        assert sum(h.weights) == pytest.approx(100.0)
        assert h.weights[duration_histogram([rec(20)]).weights.index(100.0)] == 100.0

    def test_cumulative_monotone(self):
        records = [rec(c) for c in (10, 100, 1000, 10000)]
        cum = duration_histogram(records).cumulative()
        assert all(a <= b + 1e-9 for a, b in zip(cum, cum[1:]))
        assert cum[-1] == pytest.approx(100.0)

    def test_empty_records(self):
        h = duration_histogram([])
        assert sum(h.weights) == 0.0


class TestTimeWeightedCdf:
    def test_figure2_metric(self):
        records = [rec(50)] * 60 + [rec(5000)]
        cdf = time_weighted_cdf(records)
        assert cdf[100] == pytest.approx(100.0 * 3000 / 8000)
        assert cdf[100000] == pytest.approx(100.0)

    def test_monotone_in_threshold(self):
        records = [rec(c) for c in (10, 99, 150, 2000, 60000)]
        cdf = time_weighted_cdf(records)
        values = [cdf[t] for t in sorted(cdf)]
        assert values == sorted(values)


class TestSizeClassCdf:
    def test_most_used_first(self):
        records = [rec(20, cl=1)] * 8 + [rec(20, cl=2)] * 2
        cdf = size_class_cdf(records)
        assert cdf[0] == pytest.approx(80.0)
        assert cdf[1] == pytest.approx(100.0)

    def test_ignores_frees_and_large(self):
        records = [rec(20, cl=1), rec(20, cl=0), rec(20, cl=3, kind="free")]
        cdf = size_class_cdf(records)
        assert cdf == [pytest.approx(100.0)]

    def test_classes_for_coverage(self):
        records = (
            [rec(20, cl=1)] * 70 + [rec(20, cl=2)] * 25 + [rec(20, cl=3)] * 5
        )
        assert classes_for_coverage(records, coverage=90.0) == 2
        assert classes_for_coverage(records, coverage=99.0) == 3

    def test_empty(self):
        assert size_class_cdf([]) == []
        assert classes_for_coverage([]) == 0


class TestMoments:
    def test_mean_cycles_filters(self):
        records = [rec(10), rec(30), rec(1000, kind="free")]
        assert mean_cycles(records, malloc_only=True) == 20.0
        assert mean_cycles(records, malloc_only=False) == pytest.approx(1040 / 3)

    def test_mean_fast_only(self):
        records = [rec(10), rec(5000, path=Path.PAGE_ALLOC)]
        assert mean_cycles(records, fast_only=True) == 10.0

    def test_median(self):
        records = [rec(10), rec(20), rec(90)]
        assert median_cycles(records) == 20
        records.append(rec(100))
        assert median_cycles(records) == 55.0

    def test_empty_moments(self):
        assert mean_cycles([]) == 0.0
        assert median_cycles([]) == 0.0

"""Tests for the distribution metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.allocator import CallRecord, Path
from repro.harness.metrics import (
    classes_for_coverage,
    duration_histogram,
    mean_cycles,
    median_cycles,
    size_class_cdf,
    time_weighted_cdf,
)


def rec(cycles, kind="malloc", cl=5, path=Path.FAST):
    return CallRecord(
        kind=kind, size=64, size_class=cl, path=path, cycles=cycles,
        num_uops=30, ptr=0x1000, clock=0,
    )


class TestDurationHistogram:
    def test_weights_sum_to_100(self):
        records = [rec(20), rec(30), rec(2000), rec(40000)]
        h = duration_histogram(records)
        assert sum(h.weights) == pytest.approx(100.0)

    def test_time_weighting(self):
        """One 10000-cycle call outweighs one-hundred 20-cycle calls."""
        records = [rec(20)] * 100 + [rec(10000)]
        h = duration_histogram(records)
        slow_share = sum(
            w for e, w in zip(h.bin_edges, h.weights) if e >= 5000
        )
        assert slow_share > 50

    def test_peak_detection_three_pools(self):
        """Figure 1's shape: fast / central / page-allocator peaks."""
        records = [rec(20)] * 500 + [rec(1500)] * 10 + [rec(30000)] * 2
        h = duration_histogram(records)
        peaks = h.peak_bins(min_share=5.0)
        assert len(peaks) == 3

    def test_malloc_only_filter(self):
        records = [rec(20), rec(500, kind="free")]
        h = duration_histogram(records, malloc_only=True)
        assert sum(h.weights) == pytest.approx(100.0)
        assert h.weights[duration_histogram([rec(20)]).weights.index(100.0)] == 100.0

    def test_cumulative_monotone(self):
        records = [rec(c) for c in (10, 100, 1000, 10000)]
        cum = duration_histogram(records).cumulative()
        assert all(a <= b + 1e-9 for a, b in zip(cum, cum[1:]))
        assert cum[-1] == pytest.approx(100.0)

    def test_empty_records(self):
        h = duration_histogram([])
        assert sum(h.weights) == 0.0

    def test_decade_boundaries_land_in_their_own_bin(self):
        """Regression: int(log10(cycles) * bins_per_decade) truncation put
        exact decade values (e.g. 1000: log10 = 2.999...96) one bin below
        the edge bracket the histogram reports."""
        for cycles in (10, 100, 1000, 10_000, 100_000):
            h = duration_histogram([rec(cycles)])
            idx = h.weights.index(100.0)
            assert h.bin_edges[idx] <= cycles < h.bin_edges[idx + 1]
            assert h.bin_edges[idx] == pytest.approx(cycles)

    @settings(max_examples=200, deadline=None)
    @given(
        cycles=st.lists(st.integers(min_value=1, max_value=10**7), min_size=1, max_size=30),
        bins_per_decade=st.integers(min_value=1, max_value=8),
    )
    def test_binning_agrees_with_reported_edges(self, cycles, bins_per_decade):
        """Every record's weight lands in the bin whose [lo, hi) edge
        bracket contains its duration (values past the last edge clamp into
        the final bin) — the histogram never contradicts its own
        bin_edges."""
        records = [rec(c) for c in cycles]
        h = duration_histogram(records, bins_per_decade=bins_per_decade)
        expected = [0.0] * (len(h.bin_edges) - 1)
        total = sum(cycles)
        for c in cycles:
            for i in range(len(h.bin_edges) - 1):
                if h.bin_edges[i] <= c < h.bin_edges[i + 1]:
                    break
            else:
                i = len(h.bin_edges) - 2 if c >= h.bin_edges[-1] else 0
            expected[i] += c
        expected = [100.0 * w / total for w in expected]
        assert list(h.weights) == pytest.approx(expected)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=40))
    def test_weights_always_sum_to_100(self, cycles):
        h = duration_histogram([rec(c) for c in cycles])
        assert sum(h.weights) == pytest.approx(100.0)


class TestPeakBins:
    def test_plateau_counted_once(self):
        """Two adjacent equal-weight bins are one peak spanning both, not a
        peak per bin."""
        # bin [10, 17.78): 16-cycle calls; bin [17.78, 31.6): 20-cycle calls;
        # equal time in each (5*16 == 4*20).
        records = [rec(16)] * 5 + [rec(20)] * 4
        h = duration_histogram(records)
        peaks = h.peak_bins(min_share=5.0)
        assert len(peaks) == 1
        lo, hi, share = peaks[0]
        assert lo <= 16 and hi > 20
        assert share == pytest.approx(50.0)

    def test_distinct_peaks_still_separate(self):
        records = [rec(20)] * 500 + [rec(1500)] * 10 + [rec(30000)] * 2
        peaks = duration_histogram(records).peak_bins(min_share=5.0)
        assert len(peaks) == 3

    def test_single_bin_peak_spans_one_bin(self):
        h = duration_histogram([rec(20)])
        ((lo, hi, share),) = h.peak_bins()
        assert share == pytest.approx(100.0)
        assert lo <= 20 < hi

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=30))
    def test_peaks_never_overlap_and_respect_threshold(self, cycles):
        h = duration_histogram([rec(c) for c in cycles])
        peaks = h.peak_bins(min_share=5.0)
        assert all(share >= 5.0 for _, _, share in peaks)
        spans = [(lo, hi) for lo, hi, _ in peaks]
        assert spans == sorted(spans)
        for (_, hi_a), (lo_b, _) in zip(spans, spans[1:]):
            assert hi_a <= lo_b


class TestTimeWeightedCdf:
    def test_figure2_metric(self):
        records = [rec(50)] * 60 + [rec(5000)]
        cdf = time_weighted_cdf(records)
        assert cdf[100] == pytest.approx(100.0 * 3000 / 8000)
        assert cdf[100000] == pytest.approx(100.0)

    def test_monotone_in_threshold(self):
        records = [rec(c) for c in (10, 99, 150, 2000, 60000)]
        cdf = time_weighted_cdf(records)
        values = [cdf[t] for t in sorted(cdf)]
        assert values == sorted(values)


class TestSizeClassCdf:
    def test_most_used_first(self):
        records = [rec(20, cl=1)] * 8 + [rec(20, cl=2)] * 2
        cdf = size_class_cdf(records)
        assert cdf[0] == pytest.approx(80.0)
        assert cdf[1] == pytest.approx(100.0)

    def test_ignores_frees_and_large(self):
        records = [rec(20, cl=1), rec(20, cl=0), rec(20, cl=3, kind="free")]
        cdf = size_class_cdf(records)
        assert cdf == [pytest.approx(100.0)]

    def test_classes_for_coverage(self):
        records = (
            [rec(20, cl=1)] * 70 + [rec(20, cl=2)] * 25 + [rec(20, cl=3)] * 5
        )
        assert classes_for_coverage(records, coverage=90.0) == 2
        assert classes_for_coverage(records, coverage=99.0) == 3

    def test_empty(self):
        assert size_class_cdf([]) == []
        assert classes_for_coverage([]) == 0


class TestMoments:
    def test_mean_cycles_filters(self):
        records = [rec(10), rec(30), rec(1000, kind="free")]
        assert mean_cycles(records, malloc_only=True) == 20.0
        assert mean_cycles(records, malloc_only=False) == pytest.approx(1040 / 3)

    def test_mean_fast_only(self):
        records = [rec(10), rec(5000, path=Path.PAGE_ALLOC)]
        assert mean_cycles(records, fast_only=True) == 10.0

    def test_median(self):
        records = [rec(10), rec(20), rec(90)]
        assert median_cycles(records) == 20
        records.append(rec(100))
        assert median_cycles(records) == 55.0

    def test_empty_moments(self):
        assert mean_cycles([]) == 0.0
        assert median_cycles([]) == 0.0
